bench/bench_support.ml: Analyzer Catalog Engine Gc List Log Printf Uv_db Uv_mahif Uv_retroactive Uv_transpiler Uv_util Uv_workloads Whatif
