bench/main.mli:
