examples/attack_recovery.ml: Analyzer Array Engine List Log Printf String Uv_db Uv_retroactive Uv_sql Uv_transpiler Uv_util Uv_workloads Whatif
