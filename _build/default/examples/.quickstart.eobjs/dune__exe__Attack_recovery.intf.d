examples/attack_recovery.mli:
