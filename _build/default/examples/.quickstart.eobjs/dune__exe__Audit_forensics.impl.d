examples/audit_forensics.ml: Analyzer Array Engine Filename Int64 List Log Log_io Printf String Sys Uv_db Uv_retroactive Uv_sql Whatif
