examples/audit_forensics.mli:
