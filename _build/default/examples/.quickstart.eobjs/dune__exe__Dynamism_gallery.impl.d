examples/dynamism_gallery.ml: Array Engine List Printf String Uv_applang Uv_db Uv_sql Uv_transpiler
