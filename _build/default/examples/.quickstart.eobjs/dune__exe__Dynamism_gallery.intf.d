examples/dynamism_gallery.mli:
