examples/hashjump_membership.ml: Analyzer Engine Log Printf Uv_db Uv_retroactive Uv_sql Whatif
