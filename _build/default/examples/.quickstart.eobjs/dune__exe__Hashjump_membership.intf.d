examples/hashjump_membership.mli:
