examples/quickstart.ml: Analyzer Array Engine List Log Printf Uv_db Uv_retroactive Uv_sql Uv_transpiler Whatif
