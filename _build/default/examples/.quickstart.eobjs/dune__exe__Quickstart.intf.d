examples/quickstart.mli:
