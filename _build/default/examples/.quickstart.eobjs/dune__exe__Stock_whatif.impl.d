examples/stock_whatif.ml: Analyzer Array Engine Format Log Printf Scenario Uv_db Uv_retroactive Uv_sql Uv_transpiler Whatif
