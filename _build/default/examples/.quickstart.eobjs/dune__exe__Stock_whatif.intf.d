examples/stock_whatif.mli:
