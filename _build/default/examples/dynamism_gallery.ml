(* The §C dynamism gallery: the three classes of application-language
   dynamism the paper's Appendix C walks through, each transpiled live and
   executed through its generated procedure.

     C.1  dynamic type coercion      (Figure 9)
     C.2  dynamic control-flow targets (Figure 10)
     C.3  undeterministic blackbox APIs (Figure 11)

   Run with: dune exec examples/dynamism_gallery.exe *)

open Uv_db
module T = Uv_transpiler.Transpile

let show title src schema calls verify =
  Printf.printf "\n=== %s ===\n%!" title;
  let program = Uv_applang.Parser.parse_program src in
  let results = T.transpile_all ~program () in
  let e = Engine.create () in
  ignore (Engine.exec_script e schema);
  List.iter
    (fun (t : T.t) ->
      Printf.printf "-- %s: %d path(s)%s\n%s\n" t.T.txn_name t.T.paths
        (if t.T.blackbox_params <> [] then
           Printf.sprintf ", blackbox params: %s"
             (String.concat ", "
                (List.map (fun (p, api, _) -> p ^ " <- " ^ api) t.T.blackbox_params))
         else "")
        (Uv_sql.Printer.stmt t.T.procedure);
      ignore (Engine.exec e t.T.procedure))
    results;
  List.iter (fun sql -> ignore (Engine.exec_sql e sql)) calls;
  verify e

let qstr e sql =
  match (Engine.query_sql e sql).Engine.rows with
  | row :: _ -> Uv_sql.Value.to_string row.(0)
  | [] -> "(none)"

(* ------------------------------------------------------------------ *)
(* C.1 — dynamic type coercion (Figure 9)                               *)
(* ------------------------------------------------------------------ *)

let c1 () =
  show "C.1 dynamic type coercion (Figure 9)"
    {|
function dynamic_type(userid, input1, input2, is_string) {
  if (is_string == 1) {
    SQL_exec(`INSERT INTO UserDesc VALUES (${userid}, '${input1 + '' + input2}')`);
  } else {
    SQL_exec(`INSERT INTO UserVal VALUES (${userid}, ${input1 - input2})`);
  }
}
|}
    "CREATE TABLE UserDesc (userid INT, descr VARCHAR(64));\n\
     CREATE TABLE UserVal (userid INT, value DOUBLE)"
    [
      "CALL uv_dynamic_type(1, 'he', 'llo', 1)"; (* string inputs *)
      "CALL uv_dynamic_type(2, 9, 4, 0)"; (* numeric inputs *)
    ]
    (fun e ->
      Printf.printf "string path stored: %s\n"
        (qstr e "SELECT descr FROM UserDesc WHERE userid = 1");
      Printf.printf "numeric path stored: %s\n"
        (qstr e "SELECT value FROM UserVal WHERE userid = 2"))

(* ------------------------------------------------------------------ *)
(* C.2 — dynamic control-flow targets (Figure 10)                       *)
(* ------------------------------------------------------------------ *)

let c2 () =
  show "C.2 dynamic control-flow targets (Figure 10)"
    {|
function increment(v) { SQL_exec(`UPDATE Counter SET n = n + ${v} WHERE k = 0`); }
function decrement(v) { SQL_exec(`UPDATE Counter SET n = n - ${v} WHERE k = 0`); }
function dynamic_call(fname, v) {
  var function_list = { increment: increment, decrement: decrement };
  if (fname == 'increment') {
    function_list[fname](v);
  } else {
    if (fname == 'decrement') {
      function_list[fname](v);
    } else {
      return 'unknown target';
    }
  }
}
|}
    "CREATE TABLE Counter (k INT PRIMARY KEY, n INT)"
    [
      "INSERT INTO Counter VALUES (0, 100)";
      "CALL uv_dynamic_call('increment', 7)";
      "CALL uv_dynamic_call('decrement', 3)";
    ]
    (fun e ->
      Printf.printf "counter after both jump targets: %s (expected 104)\n"
        (qstr e "SELECT n FROM Counter WHERE k = 0"))

(* ------------------------------------------------------------------ *)
(* C.3 — undeterministic blackbox APIs (Figure 11)                      *)
(* ------------------------------------------------------------------ *)

let c3 () =
  show "C.3 blackbox APIs (Figure 11)"
    {|
function external_io(message) {
  var response = http.send(message);
  if (response.code == 1) {
    SQL_exec(`INSERT INTO Results VALUES ('success', '${message}')`);
  } else {
    SQL_exec(`INSERT INTO Results VALUES ('fail', '${message}')`);
  }
}
|}
    "CREATE TABLE Results (result VARCHAR(8), log VARCHAR(64))"
    [
      (* the analyst scripts the blackbox's answer (§3.3 option 1): the
         spawned symbol is an explicit procedure parameter *)
      "CALL uv_external_io('ping', 1)";
      "CALL uv_external_io('pong', 0)";
    ]
    (fun e ->
      Printf.printf "with response.code = 1: %s\n"
        (qstr e "SELECT result FROM Results WHERE log = 'ping'");
      Printf.printf "with response.code = 0: %s\n"
        (qstr e "SELECT result FROM Results WHERE log = 'pong'"))

let () =
  c1 ();
  c2 ();
  c3 ()
