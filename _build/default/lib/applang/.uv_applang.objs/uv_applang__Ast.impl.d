lib/applang/ast.ml: List
