lib/applang/ast.mli:
