lib/applang/interp.ml: Ast Buffer Float Hashtbl List Option Parser Printf String Uv_symexec Uv_util Value
