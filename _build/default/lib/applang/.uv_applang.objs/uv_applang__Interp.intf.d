lib/applang/interp.mli: Ast Uv_symexec Value
