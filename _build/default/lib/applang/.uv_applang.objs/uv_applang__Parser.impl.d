lib/applang/parser.ml: Array Ast Buffer List Printf String
