lib/applang/parser.mli: Ast
