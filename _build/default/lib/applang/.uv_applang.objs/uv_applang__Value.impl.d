lib/applang/value.ml: Ast Float Hashtbl List Printf String Uv_sql Uv_symexec
