lib/applang/value.mli: Ast Hashtbl Uv_sql Uv_symexec
