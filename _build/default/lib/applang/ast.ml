type expr =
  | Num of float
  | Str of string
  | Template of part list
  | Bool of bool
  | Null
  | Undefined
  | Ident of string
  | Binop of string * expr * expr
  | Unop of string * expr
  | Cond of expr * expr * expr
  | Call of expr * expr list
  | Member of expr * string
  | Index of expr * expr
  | Object_lit of (string * expr) list
  | Array_lit of expr list
  | Fun_expr of string list * stmt list

and part = Ptext of string | Phole of expr

and lvalue =
  | L_ident of string
  | L_member of expr * string
  | L_index of expr * expr

and stmt =
  | Expr_stmt of expr
  | Let of string * expr option
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Break
  | Continue
  | Fun_decl of string * string list * stmt list

type program = stmt list

let functions prog =
  List.filter_map
    (function Fun_decl (name, params, body) -> Some (name, params, body) | _ -> None)
    prog
