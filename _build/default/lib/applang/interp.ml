open Value

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type hooks = {
  sql_exec : cv -> cv;
  blackbox : string -> cv list -> cv option;
  sym_access : Uv_symexec.Sym.t -> cv;
  on_branch : Uv_symexec.Sym.t -> bool -> unit;
}

let default_hooks =
  {
    sql_exec = (fun _ -> err "SQL_exec: no database attached");
    blackbox = (fun _ _ -> None);
    sym_access = (fun _ -> Value.num 0.0);
    on_branch = (fun _ _ -> ());
  }

let blackbox_apis =
  [ "Math.random"; "Date.getTime"; "Date.now"; "http.send"; "runtime.eval" ]

type t = {
  hooks : hooks;
  globals : scope;
  prng : Uv_util.Prng.t;
  mutable sim_time : float;
}

exception Return_exc of cv
exception Break_exc
exception Continue_exc

let make_obj fields =
  let tbl = Hashtbl.create (List.length fields) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) fields;
  Obj tbl

let create ?(hooks = default_hooks) ?(seed = 11) () =
  let globals : scope = Hashtbl.create 32 in
  let def name v = Hashtbl.replace globals name (ref v) in
  def "Math"
    (conc
       (make_obj
          [
            ("random", conc (Builtin "Math.random"));
            ("floor", conc (Builtin "Math.floor"));
            ("ceil", conc (Builtin "Math.ceil"));
            ("abs", conc (Builtin "Math.abs"));
            ("min", conc (Builtin "Math.min"));
            ("max", conc (Builtin "Math.max"));
            ("round", conc (Builtin "Math.round"));
          ]));
  def "Date"
    (conc
       (make_obj
          [
            ("getTime", conc (Builtin "Date.getTime"));
            ("now", conc (Builtin "Date.now"));
          ]));
  def "console" (conc (make_obj [ ("log", conc (Builtin "console.log")) ]));
  def "http" (conc (make_obj [ ("send", conc (Builtin "http.send")) ]));
  def "runtime" (conc (make_obj [ ("eval", conc (Builtin "runtime.eval")) ]));
  def "SQL_exec" (conc (Builtin "SQL_exec"));
  def "Ultraverse_log" (conc (Builtin "Ultraverse_log"));
  def "parseInt" (conc (Builtin "parseInt"));
  def "parseFloat" (conc (Builtin "parseFloat"));
  def "String" (conc (Builtin "String"));
  def "Number" (conc (Builtin "Number"));
  { hooks; globals; prng = Uv_util.Prng.create seed; sim_time = 1.7e12 }

let set_global t name v = Hashtbl.replace t.globals name (ref v)

(* ------------------------------------------------------------------ *)
(* Scope handling                                                       *)
(* ------------------------------------------------------------------ *)

let rec lookup scopes name =
  match scopes with
  | [] -> None
  | s :: rest -> (
      match Hashtbl.find_opt s name with Some r -> Some r | None -> lookup rest name)

let declare scope name v = Hashtbl.replace scope name (ref v)

(* ------------------------------------------------------------------ *)
(* Symbolic helpers                                                     *)
(* ------------------------------------------------------------------ *)

let sym_of_cv (c : cv) : Uv_symexec.Sym.t option =
  match c.sym with
  | Some s -> Some s
  | None -> (
      match c.v with
      | Num f -> Some (Uv_symexec.Sym.Const_num f)
      | Str s -> Some (Uv_symexec.Sym.Const_str s)
      | Bool b -> Some (Uv_symexec.Sym.Const_bool b)
      | Null | Undefined -> Some Uv_symexec.Sym.Const_null
      | _ -> None)

let is_symbolic (c : cv) = c.sym <> None || c.segs <> None

let combine_sym op a b =
  if is_symbolic a || is_symbolic b then
    match (sym_of_cv a, sym_of_cv b) with
    | Some sa, Some sb -> Some (Uv_symexec.Sym.Binop (op, sa, sb))
    | _ -> None
  else None

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)
(* ------------------------------------------------------------------ *)

(* A symbolic container used in scalar position collapses to the derived
   leaf's concrete value via the sym_access hook. *)
let scalarize t (c : cv) =
  match c.v with
  | Sym_container leaf -> t.hooks.sym_access leaf
  | _ -> c

let rec eval t scopes (e : Ast.expr) : cv =
  match e with
  | Ast.Num f -> num f
  | Ast.Str s -> str s
  | Ast.Bool b -> bool b
  | Ast.Null -> null
  | Ast.Undefined -> undefined
  | Ast.Template parts ->
      let cvs =
        List.map
          (function
            | Ast.Ptext s -> str s
            | Ast.Phole e -> scalarize t (eval t scopes e))
          parts
      in
      let concrete =
        String.concat "" (List.map (fun c -> to_display c.v) cvs)
      in
      if List.exists is_symbolic cvs then begin
        let segs =
          List.concat_map segs_of cvs
          |> List.fold_left
               (fun acc seg ->
                 match (acc, seg) with
                 | S_text a :: rest, S_text b -> S_text (a ^ b) :: rest
                 | _ -> seg :: acc)
               []
          |> List.rev
        in
        let sym =
          List.fold_left
            (fun acc c ->
              match (acc, sym_of_cv c) with
              | None, s -> s
              | Some a, Some b -> Some (Uv_symexec.Sym.Binop ("str.++", a, b))
              | Some a, None -> Some a)
            None cvs
        in
        { v = Str concrete; sym; segs = Some segs }
      end
      else str concrete
  | Ast.Ident name -> (
      match lookup scopes name with
      | Some r -> !r
      | None -> err "unbound identifier %s" name)
  | Ast.Binop (op, a, b) -> eval_binop t scopes op a b
  | Ast.Unop ("!", a) ->
      let v = scalarize t (eval t scopes a) in
      {
        v = Bool (not (truthy v.v));
        sym = Option.map (fun s -> Uv_symexec.Sym.Unop ("!", s)) v.sym;
        segs = None;
      }
  | Ast.Unop ("-", a) ->
      let v = scalarize t (eval t scopes a) in
      {
        v = Num (-.to_num v.v);
        sym = Option.map (fun s -> Uv_symexec.Sym.Unop ("-", s)) v.sym;
        segs = None;
      }
  | Ast.Unop ("typeof", a) ->
      let v = eval t scopes a in
      let ty =
        match v.v with
        | Num _ -> "number"
        | Str _ -> "string"
        | Bool _ -> "boolean"
        | Null -> "object"
        | Undefined -> "undefined"
        | Obj _ | Arr _ | Sym_container _ -> "object"
        | Closure _ | Builtin _ -> "function"
      in
      str ty
  | Ast.Unop (op, _) -> err "unknown unary operator %s" op
  | Ast.Cond (c, a, b) ->
      let cond = scalarize t (eval t scopes c) in
      let taken = truthy cond.v in
      (match cond.sym with Some s -> t.hooks.on_branch s taken | None -> ());
      if taken then eval t scopes a else eval t scopes b
  | Ast.Member (obj_expr, field) ->
      let obj = eval t scopes obj_expr in
      member t obj field
  | Ast.Index (obj_expr, idx_expr) ->
      let obj = eval t scopes obj_expr in
      let idx = eval t scopes idx_expr in
      index t obj idx
  | Ast.Object_lit fields ->
      let tbl = Hashtbl.create (List.length fields) in
      List.iter (fun (k, e) -> Hashtbl.replace tbl k (eval t scopes e)) fields;
      conc (Obj tbl)
  | Ast.Array_lit items ->
      conc (Arr (ref (List.map (eval t scopes) items)))
  | Ast.Fun_expr (params, body) -> conc (Closure (params, body, scopes))
  | Ast.Call (callee, args) -> eval_call t scopes callee args

and eval_binop t scopes op a_expr b_expr =
  match op with
  | "&&" ->
      let a = scalarize t (eval t scopes a_expr) in
      let taken = truthy a.v in
      (match a.sym with Some s -> t.hooks.on_branch s taken | None -> ());
      if taken then eval t scopes b_expr else a
  | "||" ->
      let a = scalarize t (eval t scopes a_expr) in
      let taken = truthy a.v in
      (match a.sym with Some s -> t.hooks.on_branch s taken | None -> ());
      if taken then a else eval t scopes b_expr
  | _ -> (
      let a = scalarize t (eval t scopes a_expr) in
      let b = scalarize t (eval t scopes b_expr) in
      let stringish =
        match (a.v, b.v) with Str _, _ | _, Str _ -> true | _ -> false
      in
      match op with
      | "+" when stringish ->
          let concrete = to_display a.v ^ to_display b.v in
          if is_symbolic a || is_symbolic b then
            {
              v = Str concrete;
              sym = combine_sym "str.++" a b;
              segs = Some (segs_concat a b);
            }
          else str concrete
      | "+" -> { v = Num (to_num a.v +. to_num b.v); sym = combine_sym "+" a b; segs = None }
      | "-" -> { v = Num (to_num a.v -. to_num b.v); sym = combine_sym "-" a b; segs = None }
      | "*" -> { v = Num (to_num a.v *. to_num b.v); sym = combine_sym "*" a b; segs = None }
      | "/" -> { v = Num (to_num a.v /. to_num b.v); sym = combine_sym "/" a b; segs = None }
      | "%" ->
          {
            v = Num (Float.rem (to_num a.v) (to_num b.v));
            sym = combine_sym "%" a b;
            segs = None;
          }
      | "==" -> { v = Bool (loose_eq a.v b.v); sym = combine_sym "==" a b; segs = None }
      | "!=" ->
          { v = Bool (not (loose_eq a.v b.v)); sym = combine_sym "!=" a b; segs = None }
      | "===" -> { v = Bool (strict_eq a.v b.v); sym = combine_sym "==" a b; segs = None }
      | "!==" ->
          { v = Bool (not (strict_eq a.v b.v)); sym = combine_sym "!=" a b; segs = None }
      | "<" | "<=" | ">" | ">=" ->
          let c =
            match (a.v, b.v) with
            | Str x, Str y -> compare x y
            | _ -> Float.compare (to_num a.v) (to_num b.v)
          in
          let r =
            match op with
            | "<" -> c < 0
            | "<=" -> c <= 0
            | ">" -> c > 0
            | _ -> c >= 0
          in
          { v = Bool r; sym = combine_sym op a b; segs = None }
      | _ -> err "unknown operator %s" op)

and member t obj field =
  match obj.v with
  | Obj tbl -> (
      match Hashtbl.find_opt tbl field with Some v -> v | None -> undefined)
  | Arr items when field = "length" -> num (float_of_int (List.length !items))
  | Str s when field = "length" -> num (float_of_int (String.length s))
  | Sym_container base ->
      let derived = Uv_symexec.Sym.Field (base, field) in
      if field = "length" then t.hooks.sym_access derived
      else { v = Sym_container derived; sym = Some derived; segs = None }
  | Str _ -> conc (Builtin ("string." ^ field))
  | Arr _ -> conc (Builtin ("array." ^ field))
  | Null | Undefined -> err "cannot read property %s of %s" field (to_display obj.v)
  | _ -> undefined

and index _t obj idx =
  match (obj.v, idx.v) with
  | Arr items, Num f ->
      let i = int_of_float f in
      if i >= 0 && i < List.length !items then List.nth !items i else undefined
  | Obj tbl, _ -> (
      match Hashtbl.find_opt tbl (to_display idx.v) with
      | Some v -> v
      | None -> undefined)
  | Sym_container base, Num f ->
      let derived = Uv_symexec.Sym.Item (base, int_of_float f) in
      { v = Sym_container derived; sym = Some derived; segs = None }
  | Sym_container base, _ ->
      let derived = Uv_symexec.Sym.Field (base, to_display idx.v) in
      { v = Sym_container derived; sym = Some derived; segs = None }
  | Str s, Num f ->
      let i = int_of_float f in
      if i >= 0 && i < String.length s then str (String.make 1 s.[i]) else undefined
  | _ -> undefined

and eval_call t scopes callee args =
  match callee with
  | Ast.Member (obj_expr, m) -> (
      let obj = eval t scopes obj_expr in
      match obj.v with
      | Str _ | Arr _ ->
          let argv = List.map (eval t scopes) args in
          call_method t obj m argv
      | _ ->
          let f = member t obj m in
          let argv = List.map (eval t scopes) args in
          apply t f argv)
  | _ ->
      let f = eval t scopes callee in
      let argv = List.map (eval t scopes) args in
      apply t f argv

and call_method t recv m argv =
  match (recv.v, m) with
  | Str s, "concat" ->
      let parts = recv :: argv in
      let concrete = String.concat "" (List.map (fun c -> to_display c.v) parts) in
      ignore s;
      if List.exists is_symbolic parts then
        let sym =
          List.fold_left
            (fun acc c ->
              match (acc, sym_of_cv c) with
              | None, s -> s
              | Some a, Some b -> Some (Uv_symexec.Sym.Binop ("str.++", a, b))
              | Some a, None -> Some a)
            None parts
        in
        let segs = List.concat_map segs_of parts in
        { v = Str concrete; sym; segs = Some segs }
      else str concrete
  | Str s, "toUpperCase" -> str (String.uppercase_ascii s)
  | Str s, "toLowerCase" -> str (String.lowercase_ascii s)
  | Str s, "indexOf" -> (
      match argv with
      | [ { v = Str needle; _ } ] ->
          let rec find i =
            if i + String.length needle > String.length s then -1
            else if String.sub s i (String.length needle) = needle then i
            else find (i + 1)
          in
          num (float_of_int (find 0))
      | _ -> num (-1.0))
  | Str s, ("substring" | "substr") ->
      let geti i d =
        match List.nth_opt argv i with
        | Some { v; _ } -> int_of_float (to_num v)
        | None -> d
      in
      let a = max 0 (geti 0 0) in
      let b = min (String.length s) (geti 1 (String.length s)) in
      if a >= b then str "" else str (String.sub s a (b - a))
  | Arr items, "push" ->
      items := !items @ argv;
      num (float_of_int (List.length !items))
  | Arr items, "pop" -> (
      match List.rev !items with
      | [] -> undefined
      | last :: rest ->
          items := List.rev rest;
          last)
  | Arr items, "includes" -> (
      match argv with
      | [ needle ] -> bool (List.exists (fun c -> loose_eq c.v needle.v) !items)
      | _ -> bool false)
  | Arr items, "join" ->
      let sep =
        match argv with { v = Str s; _ } :: _ -> s | _ -> ","
      in
      str (String.concat sep (List.map (fun c -> to_display c.v) !items))
  | Str s, "trim" -> str (String.trim s)
  | Str s, "split" -> (
      match argv with
      | [ { v = Str sep; _ } ] when sep <> "" ->
          let parts = ref [] and start = ref 0 in
          let n = String.length s and k = String.length sep in
          let i = ref 0 in
          while !i + k <= n do
            if String.sub s !i k = sep then begin
              parts := String.sub s !start (!i - !start) :: !parts;
              start := !i + k;
              i := !i + k
            end
            else incr i
          done;
          parts := String.sub s !start (n - !start) :: !parts;
          conc (Arr (ref (List.rev_map (fun p -> str p) !parts)))
      | _ ->
          (* no / empty separator: one-element array, like JS with no match *)
          conc (Arr (ref [ str s ])))
  | Arr items, "slice" ->
      let len = List.length !items in
      let norm d = function
        | Some { v; _ } ->
            let i = int_of_float (to_num v) in
            if i < 0 then max 0 (len + i) else min len i
        | None -> d
      in
      let a = norm 0 (List.nth_opt argv 0) in
      let b = norm len (List.nth_opt argv 1) in
      conc (Arr (ref (List.filteri (fun i _ -> i >= a && i < b) !items)))
  | Arr items, "indexOf" -> (
      match argv with
      | [ needle ] ->
          let rec find i = function
            | [] -> -1
            | c :: rest -> if loose_eq c.v needle.v then i else find (i + 1) rest
          in
          num (float_of_int (find 0 !items))
      | _ -> num (-1.0))
  | Arr items, "map" -> (
      match argv with
      | [ f ] -> conc (Arr (ref (List.map (fun c -> apply t f [ c ]) !items)))
      | _ -> err "map expects a function")
  | Arr items, "filter" -> (
      match argv with
      | [ f ] ->
          conc
            (Arr
               (ref
                  (List.filter
                     (fun c -> truthy (scalarize t (apply t f [ c ])).v)
                     !items)))
      | _ -> err "filter expects a function")
  | Arr items, "forEach" -> (
      match argv with
      | [ f ] ->
          List.iter (fun c -> ignore (apply t f [ c ])) !items;
          undefined
      | _ -> err "forEach expects a function")
  | _, m -> err "unknown method %s on %s" m (to_display recv.v)

and apply t f argv =
  match f.v with
  | Closure (params, body, captured) ->
      let scope : scope = Hashtbl.create 8 in
      List.iteri
        (fun i p ->
          declare scope p
            (match List.nth_opt argv i with Some v -> v | None -> undefined))
        params;
      run_body t (scope :: captured) body
  | Builtin name -> call_builtin t name argv
  | _ -> err "not a function: %s" (to_display f.v)

and call_builtin t name argv =
  let arg i = match List.nth_opt argv i with Some v -> v | None -> undefined in
  if List.mem name blackbox_apis then
    match t.hooks.blackbox name argv with
    | Some v -> v
    | None -> (
        (* concrete default implementations *)
        match name with
        | "Math.random" -> num (Uv_util.Prng.float t.prng 1.0)
        | "Date.getTime" | "Date.now" ->
            t.sim_time <- t.sim_time +. 1.0;
            num t.sim_time
        | "http.send" -> conc (make_obj [ ("code", num 1.0); ("error", str "") ])
        | "runtime.eval" -> undefined
        | _ -> undefined)
  else
    match name with
    | "SQL_exec" -> t.hooks.sql_exec (arg 0)
    | "Ultraverse_log" | "console.log" -> undefined
    | "Math.floor" -> num (Float.floor (to_num (arg 0).v))
    | "Math.ceil" -> num (Float.ceil (to_num (arg 0).v))
    | "Math.abs" -> num (Float.abs (to_num (arg 0).v))
    | "Math.round" -> num (Float.round (to_num (arg 0).v))
    | "Math.min" ->
        num
          (List.fold_left
             (fun acc c -> Float.min acc (to_num c.v))
             Float.infinity argv)
    | "Math.max" ->
        num
          (List.fold_left
             (fun acc c -> Float.max acc (to_num c.v))
             Float.neg_infinity argv)
    | "parseInt" -> (
        let v = arg 0 in
        match v.v with
        | Num f -> { v with v = Num (Float.of_int (int_of_float f)) }
        | _ -> (
            let s = String.trim (to_display v.v) in
            let digits =
              let b = Buffer.create 8 in
              (try
                 String.iteri
                   (fun i c ->
                     if (c >= '0' && c <= '9') || (i = 0 && (c = '-' || c = '+'))
                     then Buffer.add_char b c
                     else raise Exit)
                   s
               with Exit -> ());
              Buffer.contents b
            in
            match int_of_string_opt digits with
            | Some i -> { v with v = Num (float_of_int i) }
            | None -> num Float.nan))
    | "parseFloat" | "Number" ->
        let v = arg 0 in
        { v with v = Num (to_num v.v); segs = None }
    | "String" ->
        let v = arg 0 in
        { v with v = Str (to_display v.v) }
    | _ -> err "unknown builtin %s" name

and run_body t scopes body : cv =
  try
    exec_stmts t scopes body;
    undefined
  with Return_exc v -> v

and exec_stmts t scopes stmts = List.iter (exec_stmt t scopes) stmts

and exec_stmt t scopes (s : Ast.stmt) =
  match s with
  | Ast.Expr_stmt e -> ignore (eval t scopes e)
  | Ast.Let (name, init) ->
      let v = match init with Some e -> eval t scopes e | None -> undefined in
      (match scopes with
      | scope :: _ -> declare scope name v
      | [] -> err "no scope")
  | Ast.Assign (lv, e) ->
      let v = eval t scopes e in
      assign t scopes lv v
  | Ast.If (cond, then_b, else_b) ->
      let c = scalarize t (eval t scopes cond) in
      let taken = truthy c.v in
      (match c.sym with Some s -> t.hooks.on_branch s taken | None -> ());
      if taken then exec_stmts t scopes then_b else exec_stmts t scopes else_b
  | Ast.While (cond, body) ->
      let guard = ref 0 in
      let continue = ref true in
      (try
         while !continue do
           let c = scalarize t (eval t scopes cond) in
           let taken = truthy c.v in
           (match c.sym with Some s -> t.hooks.on_branch s taken | None -> ());
           if taken then begin
             incr guard;
             if !guard > 100_000 then err "loop iteration limit exceeded";
             try exec_stmts t scopes body with Continue_exc -> ()
           end
           else continue := false
         done
       with Break_exc -> ())
  | Ast.For (init, cond, update, body) ->
      let scope : scope = Hashtbl.create 4 in
      let scopes = scope :: scopes in
      (match init with Some s -> exec_stmt t scopes s | None -> ());
      let guard = ref 0 in
      let continue = ref true in
      (try
         while !continue do
           let taken =
             match cond with
             | None -> true
             | Some ce ->
                 let c = scalarize t (eval t scopes ce) in
                 let tk = truthy c.v in
                 (match c.sym with Some s -> t.hooks.on_branch s tk | None -> ());
                 tk
           in
           if taken then begin
             incr guard;
             if !guard > 100_000 then err "loop iteration limit exceeded";
             (try exec_stmts t scopes body with Continue_exc -> ());
             match update with Some s -> exec_stmt t scopes s | None -> ()
           end
           else continue := false
         done
       with Break_exc -> ())
  | Ast.Return e ->
      let v = match e with Some e -> eval t scopes e | None -> undefined in
      raise (Return_exc v)
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc
  | Ast.Fun_decl (name, params, body) ->
      (match scopes with
      | scope :: _ -> declare scope name (conc (Closure (params, body, scopes)))
      | [] -> err "no scope")

and assign t scopes lv v =
  match lv with
  | Ast.L_ident name -> (
      match lookup scopes name with
      | Some r -> r := v
      | None -> (
          (* implicit global *)
          match List.rev scopes with
          | g :: _ -> declare g name v
          | [] -> err "no scope"))
  | Ast.L_member (obj_expr, field) -> (
      let obj = eval t scopes obj_expr in
      match obj.v with
      | Obj tbl -> Hashtbl.replace tbl field v
      | _ -> err "cannot set property %s" field)
  | Ast.L_index (obj_expr, idx_expr) -> (
      let obj = eval t scopes obj_expr in
      let idx = eval t scopes idx_expr in
      match (obj.v, idx.v) with
      | Obj tbl, _ -> Hashtbl.replace tbl (to_display idx.v) v
      | Arr items, Num f ->
          let i = int_of_float f in
          let n = List.length !items in
          if i >= 0 && i < n then
            items := List.mapi (fun j x -> if j = i then v else x) !items
          else if i = n then items := !items @ [ v ]
          else err "array index out of range"
      | _ -> err "cannot set index")

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

let load t prog = exec_stmts t [ t.globals ] prog

let load_source t src = load t (Parser.parse_program src)

let call_function t name argv =
  match lookup [ t.globals ] name with
  | Some { contents = { v = Closure _; _ } as f } -> apply t f argv
  | Some _ -> err "%s is not a function" name
  | None -> err "unknown function %s" name

let has_function t name =
  match lookup [ t.globals ] name with
  | Some { contents = { v = Closure _; _ } } -> true
  | _ -> false

let functions t =
  Hashtbl.fold
    (fun name r acc ->
      match !r with { v = Closure _; _ } -> name :: acc | _ -> acc)
    t.globals []
  |> List.sort compare

let eval_expr t e = eval t [ t.globals ] e
