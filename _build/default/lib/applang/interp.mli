(** The MiniJS interpreter, shared by the live application runtime and the
    dynamic-symbolic-execution driver.

    The interpreter is "instrumented" in the paper's sense (§3.2 step 1)
    through the {!hooks} record: every database API call, blackbox native
    API call, symbolic-container access, and branch on a symbolic
    condition is routed through a hook. The live runtime installs hooks
    that talk to the real engine and record draws; the concolic driver
    installs hooks that return symbolic values and collect the path
    condition. *)

exception Runtime_error of string

type hooks = {
  sql_exec : Value.cv -> Value.cv;
      (** the application executed [SQL_exec(query_string)] *)
  blackbox : string -> Value.cv list -> Value.cv option;
      (** non-deterministic / external API; [None] falls back to the
          built-in concrete implementation *)
  sym_access : Uv_symexec.Sym.t -> Value.cv;
      (** member/index access on a symbolic container — produce the
          derived leaf's value *)
  on_branch : Uv_symexec.Sym.t -> bool -> unit;
      (** a control-flow decision depended on a symbolic condition *)
}

val default_hooks : hooks
(** Pure concrete execution: [sql_exec] raises, blackboxes use built-in
    implementations, branches are not recorded. *)

val blackbox_apis : string list
(** APIs treated as blackboxes: ["Math.random"], ["Date.getTime"],
    ["Date.now"], ["http.send"], ["runtime.eval"]. *)

type t

val create : ?hooks:hooks -> ?seed:int -> unit -> t

val load : t -> Ast.program -> unit
(** Execute top-level statements (function declarations, globals). *)

val load_source : t -> string -> unit

val call_function : t -> string -> Value.cv list -> Value.cv
(** Invoke a top-level function (an application-level transaction). *)

val has_function : t -> string -> bool

val functions : t -> string list

val eval_expr : t -> Ast.expr -> Value.cv
(** Evaluate an expression in the global scope (tests). *)

val set_global : t -> string -> Value.cv -> unit
