exception Parse_error of string

type token =
  | Tnum of float
  | Tstr of string
  | Ttemplate of tpart list
  | Tident of string
  | Tkw of string
  | Tpunct of string
  | Top of string
  | Teof

and tpart = Tp_text of string | Tp_hole of token list

let keywords =
  [ "function"; "var"; "let"; "const"; "if"; "else"; "while"; "for"; "return";
    "break"; "continue"; "true"; "false"; "null"; "undefined"; "typeof"; "new" ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

let rec tokenize_from src pos stop_at_brace =
  (* returns tokens and the position after; [stop_at_brace] is used for
     template holes, stopping at an unmatched '}' *)
  let n = String.length src in
  let pos = ref pos in
  let out = ref [] in
  let depth = ref 0 in
  let emit t = out := t :: !out in
  let err msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let finished = ref false in
  while not !finished do
    (* skip whitespace and comments *)
    let rec skip () =
      if !pos < n then
        match src.[!pos] with
        | ' ' | '\t' | '\n' | '\r' ->
            incr pos;
            skip ()
        | '/' when peek 1 = Some '/' ->
            while !pos < n && src.[!pos] <> '\n' do incr pos done;
            skip ()
        | '/' when peek 1 = Some '*' ->
            pos := !pos + 2;
            let rec close () =
              if !pos + 1 >= n then err "unterminated comment"
              else if src.[!pos] = '*' && src.[!pos + 1] = '/' then pos := !pos + 2
              else begin incr pos; close () end
            in
            close ();
            skip ()
        | _ -> ()
    in
    skip ();
    if !pos >= n then begin
      emit Teof;
      finished := true
    end
    else begin
      let c = src.[!pos] in
      if stop_at_brace && c = '}' && !depth = 0 then finished := true
      else
        match c with
        | '\'' | '"' ->
            let quote = c in
            incr pos;
            let buf = Buffer.create 16 in
            let rec go () =
              if !pos >= n then err "unterminated string";
              let ch = src.[!pos] in
              if ch = quote then incr pos
              else if ch = '\\' && !pos + 1 < n then begin
                (match src.[!pos + 1] with
                | 'n' -> Buffer.add_char buf '\n'
                | 't' -> Buffer.add_char buf '\t'
                | x -> Buffer.add_char buf x);
                pos := !pos + 2;
                go ()
              end
              else begin
                Buffer.add_char buf ch;
                incr pos;
                go ()
              end
            in
            go ();
            emit (Tstr (Buffer.contents buf))
        | '`' ->
            incr pos;
            let parts = ref [] in
            let buf = Buffer.create 16 in
            let flush_text () =
              if Buffer.length buf > 0 then begin
                parts := Tp_text (Buffer.contents buf) :: !parts;
                Buffer.clear buf
              end
            in
            let rec go () =
              if !pos >= n then err "unterminated template literal";
              let ch = src.[!pos] in
              if ch = '`' then incr pos
              else if ch = '$' && peek 1 = Some '{' then begin
                flush_text ();
                pos := !pos + 2;
                let toks, p2 = tokenize_from src !pos true in
                pos := p2;
                if !pos >= n || src.[!pos] <> '}' then err "unterminated ${...}";
                incr pos;
                parts := Tp_hole toks :: !parts;
                go ()
              end
              else if ch = '\\' && !pos + 1 < n then begin
                (match src.[!pos + 1] with
                | 'n' -> Buffer.add_char buf '\n'
                | 't' -> Buffer.add_char buf '\t'
                | x -> Buffer.add_char buf x);
                pos := !pos + 2;
                go ()
              end
              else begin
                Buffer.add_char buf ch;
                incr pos;
                go ()
              end
            in
            go ();
            flush_text ();
            emit (Ttemplate (List.rev !parts))
        | c when is_digit c ->
            let start = !pos in
            while !pos < n && (is_digit src.[!pos] || src.[!pos] = '.') do incr pos done;
            emit (Tnum (float_of_string (String.sub src start (!pos - start))))
        | c when is_ident_start c ->
            let start = !pos in
            while !pos < n && is_ident_char src.[!pos] do incr pos done;
            let s = String.sub src start (!pos - start) in
            if List.mem s keywords then emit (Tkw s) else emit (Tident s)
        | '{' ->
            incr depth;
            emit (Tpunct "{");
            incr pos
        | '}' ->
            decr depth;
            emit (Tpunct "}");
            incr pos
        | '(' | ')' | '[' | ']' | ';' | ',' | '.' | ':' | '?' ->
            emit (Tpunct (String.make 1 c));
            incr pos
        | '=' | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' ->
            (* multi-char operators *)
            let three =
              if !pos + 2 < n then String.sub src !pos 3 else ""
            in
            let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
            if three = "===" || three = "!==" then begin
              emit (Top three);
              pos := !pos + 3
            end
            else if List.mem two [ "=="; "!="; "<="; ">="; "&&"; "||"; "+="; "-=" ]
            then begin
              emit (Top two);
              pos := !pos + 2
            end
            else begin
              emit (Top (String.make 1 c));
              incr pos
            end
        | c -> err (Printf.sprintf "unexpected character %C" c)
    end
  done;
  (List.rev !out, !pos)

let tokenize src =
  let toks, _ = tokenize_from src 0 false in
  match List.rev toks with Teof :: _ -> toks | _ -> toks @ [ Teof ]

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

type state = { toks : token array; mutable pos : int }

let show_token = function
  | Tnum f -> Printf.sprintf "number %g" f
  | Tstr s -> Printf.sprintf "string %S" s
  | Ttemplate _ -> "template literal"
  | Tident s -> "identifier " ^ s
  | Tkw s -> "keyword " ^ s
  | Tpunct s -> "'" ^ s ^ "'"
  | Top s -> "operator " ^ s
  | Teof -> "end of input"

let fail st msg =
  let tok =
    if st.pos < Array.length st.toks then show_token st.toks.(st.pos) else "eof"
  in
  raise (Parse_error (Printf.sprintf "%s (at %s)" msg tok))

let peek st = st.toks.(min st.pos (Array.length st.toks - 1))
let advance st = st.pos <- st.pos + 1

let accept_punct st p =
  match peek st with
  | Tpunct q when String.equal p q ->
      advance st;
      true
  | _ -> false

let expect_punct st p = if not (accept_punct st p) then fail st ("expected '" ^ p ^ "'")

let accept_kw st k =
  match peek st with
  | Tkw q when String.equal k q ->
      advance st;
      true
  | _ -> false

let accept_op st o =
  match peek st with
  | Top q when String.equal o q ->
      advance st;
      true
  | _ -> false

let ident st =
  match peek st with
  | Tident s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

let rec parse_assign_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_or st in
  if accept_punct st "?" then begin
    let a = parse_assign_expr st in
    expect_punct st ":";
    let b = parse_assign_expr st in
    Ast.Cond (c, a, b)
  end
  else c

and parse_or st =
  let lhs = parse_and st in
  if accept_op st "||" then Ast.Binop ("||", lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_equality st in
  if accept_op st "&&" then Ast.Binop ("&&", lhs, parse_and st) else lhs

and parse_equality st =
  let lhs = ref (parse_relational st) in
  let continue = ref true in
  while !continue do
    if accept_op st "==" then lhs := Ast.Binop ("==", !lhs, parse_relational st)
    else if accept_op st "!=" then lhs := Ast.Binop ("!=", !lhs, parse_relational st)
    else if accept_op st "===" then lhs := Ast.Binop ("===", !lhs, parse_relational st)
    else if accept_op st "!==" then lhs := Ast.Binop ("!==", !lhs, parse_relational st)
    else continue := false
  done;
  !lhs

and parse_relational st =
  let lhs = ref (parse_additive st) in
  let continue = ref true in
  while !continue do
    if accept_op st "<" then lhs := Ast.Binop ("<", !lhs, parse_additive st)
    else if accept_op st "<=" then lhs := Ast.Binop ("<=", !lhs, parse_additive st)
    else if accept_op st ">" then lhs := Ast.Binop (">", !lhs, parse_additive st)
    else if accept_op st ">=" then lhs := Ast.Binop (">=", !lhs, parse_additive st)
    else continue := false
  done;
  !lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    if accept_op st "+" then lhs := Ast.Binop ("+", !lhs, parse_multiplicative st)
    else if accept_op st "-" then lhs := Ast.Binop ("-", !lhs, parse_multiplicative st)
    else continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    if accept_op st "*" then lhs := Ast.Binop ("*", !lhs, parse_unary st)
    else if accept_op st "/" then lhs := Ast.Binop ("/", !lhs, parse_unary st)
    else if accept_op st "%" then lhs := Ast.Binop ("%", !lhs, parse_unary st)
    else continue := false
  done;
  !lhs

and parse_unary st =
  if accept_op st "!" then Ast.Unop ("!", parse_unary st)
  else if accept_op st "-" then Ast.Unop ("-", parse_unary st)
  else if accept_kw st "typeof" then Ast.Unop ("typeof", parse_unary st)
  else if accept_kw st "new" then parse_unary st (* `new Date()` ~ `Date()` *)
  else parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Tpunct "." ->
        advance st;
        let name =
          match peek st with
          | Tident s ->
              advance st;
              s
          | Tkw s ->
              advance st;
              s
          | _ -> fail st "expected property name"
        in
        e := Ast.Member (!e, name)
    | Tpunct "[" ->
        advance st;
        let idx = parse_assign_expr st in
        expect_punct st "]";
        e := Ast.Index (!e, idx)
    | Tpunct "(" ->
        advance st;
        let args = ref [] in
        if peek st <> Tpunct ")" then begin
          args := [ parse_assign_expr st ];
          while accept_punct st "," do
            args := parse_assign_expr st :: !args
          done
        end;
        expect_punct st ")";
        e := Ast.Call (!e, List.rev !args)
    | _ -> continue := false
  done;
  !e

and parse_primary st =
  match peek st with
  | Tnum f ->
      advance st;
      Ast.Num f
  | Tstr s ->
      advance st;
      Ast.Str s
  | Ttemplate parts ->
      advance st;
      let conv = function
        | Tp_text s -> Ast.Ptext s
        | Tp_hole toks ->
            let sub = { toks = Array.of_list (toks @ [ Teof ]); pos = 0 } in
            let e = parse_assign_expr sub in
            Ast.Phole e
      in
      Ast.Template (List.map conv parts)
  | Tkw "true" ->
      advance st;
      Ast.Bool true
  | Tkw "false" ->
      advance st;
      Ast.Bool false
  | Tkw "null" ->
      advance st;
      Ast.Null
  | Tkw "undefined" ->
      advance st;
      Ast.Undefined
  | Tkw "function" ->
      advance st;
      let _name = match peek st with
        | Tident s -> advance st; Some s
        | _ -> None
      in
      let params = parse_params st in
      let body = parse_block st in
      Ast.Fun_expr (params, body)
  | Tident s ->
      advance st;
      Ast.Ident s
  | Tpunct "(" ->
      advance st;
      let e = parse_assign_expr st in
      expect_punct st ")";
      e
  | Tpunct "{" ->
      advance st;
      let fields = ref [] in
      if peek st <> Tpunct "}" then begin
        let one () =
          let key =
            match peek st with
            | Tident s | Tstr s ->
                advance st;
                s
            | Tkw s ->
                advance st;
                s
            | _ -> fail st "expected object key"
          in
          expect_punct st ":";
          (key, parse_assign_expr st)
        in
        fields := [ one () ];
        while accept_punct st "," do
          if peek st <> Tpunct "}" then fields := one () :: !fields
        done
      end;
      expect_punct st "}";
      Ast.Object_lit (List.rev !fields)
  | Tpunct "[" ->
      advance st;
      let items = ref [] in
      if peek st <> Tpunct "]" then begin
        items := [ parse_assign_expr st ];
        while accept_punct st "," do
          items := parse_assign_expr st :: !items
        done
      end;
      expect_punct st "]";
      Ast.Array_lit (List.rev !items)
  | t -> fail st ("unexpected " ^ show_token t)

and parse_params st =
  expect_punct st "(";
  let params = ref [] in
  if peek st <> Tpunct ")" then begin
    params := [ ident st ];
    while accept_punct st "," do
      params := ident st :: !params
    done
  end;
  expect_punct st ")";
  List.rev !params

and parse_block st =
  expect_punct st "{";
  let stmts = ref [] in
  while peek st <> Tpunct "}" do
    stmts := parse_stmt st :: !stmts
  done;
  expect_punct st "}";
  List.rev !stmts

and as_lvalue st (e : Ast.expr) : Ast.lvalue =
  match e with
  | Ast.Ident s -> Ast.L_ident s
  | Ast.Member (o, f) -> Ast.L_member (o, f)
  | Ast.Index (o, i) -> Ast.L_index (o, i)
  | _ -> fail st "invalid assignment target"

and parse_stmt st : Ast.stmt =
  match peek st with
  | Tkw "function" ->
      advance st;
      let name = ident st in
      let params = parse_params st in
      let body = parse_block st in
      Ast.Fun_decl (name, params, body)
  | Tkw ("var" | "let" | "const") ->
      advance st;
      let name = ident st in
      let init = if accept_op st "=" then Some (parse_assign_expr st) else None in
      ignore (accept_punct st ";");
      Ast.Let (name, init)
  | Tkw "if" ->
      advance st;
      expect_punct st "(";
      let cond = parse_assign_expr st in
      expect_punct st ")";
      let then_branch =
        if peek st = Tpunct "{" then parse_block st else [ parse_stmt st ]
      in
      let else_branch =
        if accept_kw st "else" then
          if peek st = Tpunct "{" then parse_block st
          else [ parse_stmt st ]
        else []
      in
      Ast.If (cond, then_branch, else_branch)
  | Tkw "while" ->
      advance st;
      expect_punct st "(";
      let cond = parse_assign_expr st in
      expect_punct st ")";
      let body = if peek st = Tpunct "{" then parse_block st else [ parse_stmt st ] in
      Ast.While (cond, body)
  | Tkw "for" ->
      advance st;
      expect_punct st "(";
      let init =
        if peek st = Tpunct ";" then None else Some (parse_simple_stmt st)
      in
      expect_punct st ";";
      let cond = if peek st = Tpunct ";" then None else Some (parse_assign_expr st) in
      expect_punct st ";";
      let update =
        if peek st = Tpunct ")" then None else Some (parse_simple_stmt st)
      in
      expect_punct st ")";
      let body = if peek st = Tpunct "{" then parse_block st else [ parse_stmt st ] in
      Ast.For (init, cond, update, body)
  | Tkw "break" ->
      advance st;
      ignore (accept_punct st ";");
      Ast.Break
  | Tkw "continue" ->
      advance st;
      ignore (accept_punct st ";");
      Ast.Continue
  | Tkw "return" ->
      advance st;
      let v =
        match peek st with
        | Tpunct ";" | Tpunct "}" -> None
        | _ -> Some (parse_assign_expr st)
      in
      ignore (accept_punct st ";");
      Ast.Return v
  | _ ->
      let s = parse_simple_stmt st in
      ignore (accept_punct st ";");
      s

(* expression or assignment statement, without consuming ';' *)
and parse_simple_stmt st : Ast.stmt =
  match peek st with
  | Tkw ("var" | "let" | "const") ->
      advance st;
      let name = ident st in
      let init = if accept_op st "=" then Some (parse_assign_expr st) else None in
      Ast.Let (name, init)
  | _ ->
      let e = parse_assign_expr st in
      if accept_op st "=" then
        let rhs = parse_assign_expr st in
        Ast.Assign (as_lvalue st e, rhs)
      else if accept_op st "+=" then
        let rhs = parse_assign_expr st in
        Ast.Assign (as_lvalue st e, Ast.Binop ("+", e, rhs))
      else if accept_op st "-=" then
        let rhs = parse_assign_expr st in
        Ast.Assign (as_lvalue st e, Ast.Binop ("-", e, rhs))
      else Ast.Expr_stmt e

let parse_program src =
  let st = { toks = Array.of_list (tokenize src); pos = 0 } in
  let stmts = ref [] in
  while peek st <> Teof do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

let parse_expr src =
  let st = { toks = Array.of_list (tokenize src); pos = 0 } in
  let e = parse_assign_expr st in
  if peek st <> Teof then fail st "trailing tokens";
  e
