(** Lexer and recursive-descent parser for MiniJS. *)

exception Parse_error of string

val parse_program : string -> Ast.program
val parse_expr : string -> Ast.expr
