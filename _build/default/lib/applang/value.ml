type t =
  | Num of float
  | Str of string
  | Bool of bool
  | Null
  | Undefined
  | Obj of (string, cv) Hashtbl.t
  | Arr of cv list ref
  | Closure of string list * Ast.stmt list * scope list
  | Builtin of string
  | Sym_container of Uv_symexec.Sym.t

and cv = { v : t; sym : Uv_symexec.Sym.t option; segs : seg list option }

and seg = S_text of string | S_hole of Uv_symexec.Sym.t

and scope = (string, cv ref) Hashtbl.t

let conc v = { v; sym = None; segs = None }
let with_sym v sym = { v; sym = Some sym; segs = None }

let num f = conc (Num f)
let str s = conc (Str s)
let bool b = conc (Bool b)
let null = conc Null
let undefined = conc Undefined

let of_scalar = function
  | Uv_symexec.Assignment.Num f -> Num f
  | Uv_symexec.Assignment.Str s -> Str s
  | Uv_symexec.Assignment.Bool b -> Bool b
  | Uv_symexec.Assignment.Null -> Null

let to_scalar = function
  | Num f -> Uv_symexec.Assignment.Num f
  | Str s -> Uv_symexec.Assignment.Str s
  | Bool b -> Uv_symexec.Assignment.Bool b
  | Null | Undefined -> Uv_symexec.Assignment.Null
  | Obj _ | Arr _ | Closure _ | Builtin _ | Sym_container _ ->
      Uv_symexec.Assignment.Str "[object]"

let truthy = function
  | Num f -> f <> 0.0 && not (Float.is_nan f)
  | Str s -> s <> ""
  | Bool b -> b
  | Null | Undefined -> false
  | Obj _ | Arr _ | Closure _ | Builtin _ | Sym_container _ -> true

let to_num = function
  | Num f -> f
  | Str s -> ( try float_of_string (String.trim s) with _ -> Float.nan)
  | Bool b -> if b then 1.0 else 0.0
  | Null -> 0.0
  | Undefined -> Float.nan
  | Obj _ | Arr _ | Closure _ | Builtin _ | Sym_container _ -> Float.nan

let num_display f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* shortest representation that round-trips *)
    let s12 = Printf.sprintf "%.12g" f in
    if float_of_string s12 = f then s12 else Printf.sprintf "%.17g" f

let rec to_display = function
  | Num f -> num_display f
  | Str s -> s
  | Bool b -> string_of_bool b
  | Null -> "null"
  | Undefined -> "undefined"
  | Obj _ -> "[object Object]"
  | Arr items -> String.concat "," (List.map (fun c -> to_display c.v) !items)
  | Closure _ | Builtin _ -> "[function]"
  | Sym_container s -> "[symbolic " ^ Uv_symexec.Sym.to_string s ^ "]"

let loose_eq a b =
  match (a, b) with
  | Null, (Null | Undefined) | Undefined, (Null | Undefined) -> true
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | (Num _ | Str _ | Bool _), (Num _ | Str _ | Bool _) ->
      let x = to_num a and y = to_num b in
      (not (Float.is_nan x)) && (not (Float.is_nan y)) && x = y
  | Obj x, Obj y -> x == y
  | Arr x, Arr y -> x == y
  | _ -> false

let strict_eq a b =
  match (a, b) with
  | Num x, Num y -> x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Null, Null | Undefined, Undefined -> true
  | Obj x, Obj y -> x == y
  | Arr x, Arr y -> x == y
  | _ -> false

let segs_of cv =
  match cv.segs with
  | Some segs -> segs
  | None -> (
      match cv.sym with
      | Some sym -> [ S_hole sym ]
      | None -> [ S_text (to_display cv.v) ])

let segs_concat a b =
  let merge segs =
    (* collapse adjacent text segments *)
    List.fold_right
      (fun seg acc ->
        match (seg, acc) with
        | S_text s, S_text s2 :: rest -> S_text (s ^ s2) :: rest
        | _ -> seg :: acc)
      segs []
  in
  merge (segs_of a @ segs_of b)

let segs_to_string segs =
  String.concat ""
    (List.map
       (function
         | S_text s -> s
         | S_hole sym -> "${" ^ Uv_symexec.Sym.to_string sym ^ "}")
       segs)

let sql_value_of = function
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Uv_sql.Value.Int (int_of_float f)
      else Uv_sql.Value.Float f
  | Str s -> Uv_sql.Value.Text s
  | Bool b -> Uv_sql.Value.Bool b
  | Null | Undefined -> Uv_sql.Value.Null
  | Obj _ | Arr _ | Closure _ | Builtin _ | Sym_container _ -> Uv_sql.Value.Null

let of_sql_value = function
  | Uv_sql.Value.Int i -> Num (float_of_int i)
  | Uv_sql.Value.Float f -> Num f
  | Uv_sql.Value.Text s -> Str s
  | Uv_sql.Value.Bool b -> Bool b
  | Uv_sql.Value.Null -> Null
