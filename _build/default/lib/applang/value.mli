(** MiniJS runtime values, optionally carrying symbolic shadows.

    A concolic value [cv] pairs the concrete value driving execution with
    (a) an optional symbolic expression — present when the value derives
    from a transaction input, a database result, or a blackbox API — and
    (b) for strings, an optional segment decomposition that remembers
    which substrings came from symbolic holes. Segments are what let the
    transpiler recover a parsable SQL statement with parameter holes from
    a dynamically assembled query string (§3.2). *)

type t =
  | Num of float
  | Str of string
  | Bool of bool
  | Null
  | Undefined
  | Obj of (string, cv) Hashtbl.t
  | Arr of cv list ref
  | Closure of string list * Ast.stmt list * scope list
  | Builtin of string  (** name resolved by the interpreter *)
  | Sym_container of Uv_symexec.Sym.t
      (** opaque symbolic record/array (a database call's result set);
          member and index access produce fresh symbolic scalars *)

and cv = {
  v : t;
  sym : Uv_symexec.Sym.t option;
  segs : seg list option;  (** string provenance segments *)
}

and seg = S_text of string | S_hole of Uv_symexec.Sym.t

and scope = (string, cv ref) Hashtbl.t

val conc : t -> cv
(** Purely concrete value. *)

val with_sym : t -> Uv_symexec.Sym.t -> cv

val num : float -> cv
val str : string -> cv
val bool : bool -> cv
val null : cv
val undefined : cv

val of_scalar : Uv_symexec.Assignment.scalar -> t
val to_scalar : t -> Uv_symexec.Assignment.scalar

val truthy : t -> bool
val to_num : t -> float
val to_display : t -> string
(** JS-style string conversion. *)

val loose_eq : t -> t -> bool
val strict_eq : t -> t -> bool

val segs_of : cv -> seg list
(** The segment decomposition of a stringish value: explicit segments if
    present, a single symbolic hole if the value is symbolic, otherwise
    one text segment. *)

val segs_concat : cv -> cv -> seg list
val segs_to_string : seg list -> string
(** Concrete rendering is impossible for holes; used for debugging. *)

val sql_value_of : t -> Uv_sql.Value.t
(** Convert a MiniJS scalar into a SQL value (used when the runtime
    passes application values into the database). *)

val of_sql_value : Uv_sql.Value.t -> t
