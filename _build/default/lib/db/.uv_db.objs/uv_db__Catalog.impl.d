lib/db/catalog.ml: Ast Buffer Hashtbl List Option Printer Schema Storage String Uv_sql Uv_util Value
