lib/db/catalog.mli: Ast Storage Uv_sql Value
