lib/db/dump.ml: Array Ast Buffer Catalog Engine Fun Hashtbl List Parser Printer Schema Storage Uv_sql
