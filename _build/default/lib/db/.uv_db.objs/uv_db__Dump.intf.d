lib/db/dump.mli: Catalog Engine
