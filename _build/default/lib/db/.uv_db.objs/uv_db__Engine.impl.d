lib/db/engine.ml: Array Ast Catalog Float Fun Hashtbl List Log Option Parser Printer Printf Schema Storage String Uv_sql Uv_util Value
