lib/db/engine.mli: Ast Catalog Log Uv_sql Uv_util Value
