lib/db/log.ml: Array Ast Catalog List Storage String Uv_sql Value
