lib/db/log.mli: Ast Catalog Storage Uv_sql Value
