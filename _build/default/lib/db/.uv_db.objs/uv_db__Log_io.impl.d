lib/db/log_io.ml: Buffer Engine Fun List Log Printf String Uv_sql
