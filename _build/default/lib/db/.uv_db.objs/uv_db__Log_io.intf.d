lib/db/log_io.mli: Engine Log Uv_sql
