lib/db/storage.ml: Array Buffer Float Hashtbl List Option Printf Schema String Sys Uv_sql Uv_util Value
