lib/db/storage.mli: Schema Uv_sql Value
