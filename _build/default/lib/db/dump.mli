(** Logical database dump (the mysqldump equivalent).

    Renders the entire catalog — table schemas, rows, views, stored
    procedures, triggers and CREATE INDEX definitions — as a SQL script
    that rebuilds a bit-identical database when executed on a fresh
    engine. Together with {!Log_io} this completes the recovery story:
    a dump is the checkpoint, the persisted statement log is the tail.

    Determinism: tables and catalog objects are emitted in name order,
    rows in rowid (insertion) order, so dumping the same database twice
    yields the same script.

    Caveat: the AUTO_INCREMENT counter is re-derived from the dumped
    rows (each explicit key bumps the counter past itself), so it can
    differ from the source only when the row holding the highest key had
    been deleted — the next fresh key may then be lower than it would
    have been on the source. *)

val to_sql : Catalog.t -> string
(** Render the catalog as an executable SQL script. *)

val save : Catalog.t -> path:string -> unit
(** [save cat ~path] writes {!to_sql} to a file. *)

val restore : Engine.t -> string -> unit
(** Execute a dump script against an engine (normally a fresh one).
    @raise Engine.Sql_error if a statement fails. *)

val load : Engine.t -> path:string -> unit
(** Read a file written by {!save} and {!restore} it. *)
