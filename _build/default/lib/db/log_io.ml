type record = {
  r_sql : string;
  r_nondet : Uv_sql.Value.t list;
  r_app_txn : string option;
}

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let header = "ULOGv1"

(* ------------------------------------------------------------------ *)
(* Escaping                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\\' ->
        if !i + 1 >= n then corrupt "dangling escape";
        (match s.[!i + 1] with
        | '\\' -> Buffer.add_char buf '\\'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | c -> corrupt "unknown escape \\%c" c);
        incr i
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let records_of_log log =
  List.map
    (fun (e : Log.entry) ->
      { r_sql = e.Log.sql; r_nondet = e.Log.nondet; r_app_txn = e.Log.app_txn })
    (Log.entries log)

let print records =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf ("Q " ^ escape r.r_sql ^ "\n");
      List.iter
        (fun v ->
          Buffer.add_string buf
            ("N " ^ escape (Uv_sql.Value.serialize v) ^ "\n"))
        r.r_nondet;
      (match r.r_app_txn with
      | Some tag -> Buffer.add_string buf ("A " ^ escape tag ^ "\n")
      | None -> ());
      Buffer.add_string buf "E\n")
    records;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

let parse text =
  let lines = String.split_on_char '\n' text in
  let lines = List.filter (fun l -> l <> "") lines in
  match lines with
  | [] -> corrupt "empty file"
  | h :: rest ->
      if h <> header then corrupt "bad header %S (want %S)" h header;
      let records = ref [] in
      (* fields of the record currently being assembled *)
      let sql = ref None and nondet = ref [] and tag = ref None in
      let flush () =
        match !sql with
        | None -> corrupt "record end without a Q line"
        | Some q ->
            records :=
              { r_sql = q; r_nondet = List.rev !nondet; r_app_txn = !tag }
              :: !records;
            sql := None;
            nondet := [];
            tag := None
      in
      List.iter
        (fun line ->
          let payload () =
            if String.length line < 2 then corrupt "short line %S" line
            else unescape (String.sub line 2 (String.length line - 2))
          in
          match line.[0] with
          | 'Q' ->
              if !sql <> None then corrupt "Q line inside an open record";
              sql := Some (payload ())
          | 'N' ->
              if !sql = None then corrupt "N line outside a record";
              let v =
                try Uv_sql.Value.deserialize (payload ())
                with Failure m -> corrupt "bad value: %s" m
              in
              nondet := v :: !nondet
          | 'A' ->
              if !sql = None then corrupt "A line outside a record";
              tag := Some (payload ())
          | 'E' -> flush ()
          | c -> corrupt "unknown line tag %C" c)
        rest;
      if !sql <> None then corrupt "truncated final record";
      List.rev !records

(* ------------------------------------------------------------------ *)
(* Files                                                                *)
(* ------------------------------------------------------------------ *)

let save log ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (print (records_of_log log)))

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      parse (really_input_string ic n))

(* ------------------------------------------------------------------ *)
(* Replay                                                               *)
(* ------------------------------------------------------------------ *)

let replay eng records =
  List.iter
    (fun r ->
      try
        ignore
          (Engine.exec_sql ?app_txn:r.r_app_txn ~nondet:r.r_nondet eng r.r_sql)
      with Engine.Sql_error _ | Engine.Signal_raised _ -> ())
    records
