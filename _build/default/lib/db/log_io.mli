(** Durable form of the statement log.

    Ultraverse's recovery story (paper §4.1) keeps the query history —
    statement text, per-statement non-determinism and the application-
    transaction tag — on disk next to the DBMS redo log; everything else
    (row images, undo records, table hashes) is re-derivable by replay.
    This module implements that redo-log persistence: a line-oriented,
    versioned, 8-bit-clean text format.

    {2 Format}

    {v
    ULOGv1
    Q <escaped sql>
    N <escaped serialized value>     (zero or more, in draw order)
    A <escaped tag>                  (optional)
    E
    v}

    Escaping maps backslash, newline and carriage return to
    [\\], [\n], [\r] so records survive any statement text. *)

type record = {
  r_sql : string;  (** statement text, parseable by {!Uv_sql.Parser} *)
  r_nondet : Uv_sql.Value.t list;
      (** recorded RAND / NOW / AUTO_INCREMENT draws, in order *)
  r_app_txn : string option;  (** application-transaction tag *)
}

exception Corrupt of string
(** Raised by {!parse} and {!load} on a malformed or truncated file. *)

val records_of_log : Log.t -> record list
(** Project the durable fields out of an in-memory log. *)

val print : record list -> string
(** Render records in the ULOGv1 format. *)

val parse : string -> record list
(** Inverse of {!print}.
    @raise Corrupt on bad input. *)

val save : Log.t -> path:string -> unit
(** [save log ~path] writes the log's durable projection to [path]. *)

val load : path:string -> record list
(** Read a file written by {!save}.
    @raise Corrupt on bad input. *)

val replay : Engine.t -> record list -> unit
(** Re-execute the records in order against [engine], forcing each
    statement's recorded non-determinism, rebuilding the full in-memory
    log (undo images, table hashes, row counts) as a side effect.
    Statements that fail with a SQL error are skipped, mirroring how the
    original execution logged only successful statements. *)

val escape : string -> string
(** Exposed for property tests. *)

val unescape : string -> string
(** Inverse of {!escape}.
    @raise Corrupt on a dangling escape. *)
