lib/mahif/mahif.ml: Array Ast Hashtbl List Option Printf Schema String Sys Uv_db Uv_sql Uv_util Value
