lib/mahif/mahif.mli: Uv_db
