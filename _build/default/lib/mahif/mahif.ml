open Uv_sql
open Ast

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* Symbolic numeric expression, conditioned on statement presence. Trees
   are deliberately unshared: Mahif's published prototype materialises
   per-tuple expressions the same way, which is what drives its
   super-linear growth. *)
type sexpr =
  | Const of float
  | Gite of bexpr * sexpr * sexpr
      (** if the guard holds in the hypothetical history then _ else _ *)
  | Add of sexpr * sexpr
  | Sub of sexpr * sexpr
  | Mul of sexpr * sexpr

(* Symbolic boolean for tuple presence / predicate match. *)
and bexpr =
  | Btrue
  | Bpresent of int  (** statement i is in the history *)
  | Band of bexpr * bexpr
  | Bor of bexpr * bexpr
  | Bnot of bexpr
  | Beq of sexpr * sexpr

type tuple = { cells : sexpr array; alive : bexpr }

type table_state = {
  columns : string list;
  mutable tuples : tuple list; (* newest first *)
}

type t = {
  tables : (string, table_state) Hashtbl.t;
  mutable nstmts : int;
}

let create () = { tables = Hashtbl.create 8; nstmts = 0 }

let statement_count t = t.nstmts

(* ------------------------------------------------------------------ *)
(* Value handling: Mahif's fragment is numeric-only                     *)
(* ------------------------------------------------------------------ *)

let num_of_value = function
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | Value.Bool b -> if b then 1.0 else 0.0
  | Value.Null -> 0.0
  | Value.Text s -> unsupported "string attribute %S" s

let rec expr_to_sexpr (e : expr) : sexpr =
  match e with
  | Lit v -> Const (num_of_value v)
  | Binop (Ast.Add, a, b) -> Add (expr_to_sexpr a, expr_to_sexpr b)
  | Binop (Ast.Sub, a, b) -> Sub (expr_to_sexpr a, expr_to_sexpr b)
  | Binop (Ast.Mul, a, b) -> Mul (expr_to_sexpr a, expr_to_sexpr b)
  | Fun_call (("RAND" | "NOW" | "CURTIME" | "CURRENT_TIMESTAMP"), _) ->
      unsupported "native SQL API"
  | Col _ -> unsupported "column reference in value position"
  | _ -> unsupported "expression beyond Mahif's fragment"

(* WHERE: conjunction of column = numeric-literal equalities *)
let rec where_to_pred columns (w : expr) : sexpr array -> bexpr =
  match w with
  | Binop (Ast.And, a, b) ->
      let pa = where_to_pred columns a and pb = where_to_pred columns b in
      fun cells -> Band (pa cells, pb cells)
  | Binop (Ast.Or, a, b) ->
      let pa = where_to_pred columns a and pb = where_to_pred columns b in
      fun cells -> Bor (pa cells, pb cells)
  | Binop (Ast.Eq, Col (_, c), (Lit _ as l)) | Binop (Ast.Eq, (Lit _ as l), Col (_, c))
    -> (
      match List.find_index (String.equal c) columns with
      | Some idx ->
          let v = expr_to_sexpr l in
          fun cells -> Beq (cells.(idx), v)
      | None -> unsupported "unknown column %s" c)
  | _ -> unsupported "predicate beyond Mahif's fragment"

(* ------------------------------------------------------------------ *)
(* History ingestion                                                    *)
(* ------------------------------------------------------------------ *)

let table_of t name columns =
  match Hashtbl.find_opt t.tables name with
  | Some ts -> ts
  | None ->
      let ts = { columns; tuples = [] } in
      Hashtbl.replace t.tables name ts;
      ts

let rec copy_sexpr = function
  | Const f -> Const f
  | Gite (g, a, b) -> Gite (copy_bexpr g, copy_sexpr a, copy_sexpr b)
  | Add (a, b) -> Add (copy_sexpr a, copy_sexpr b)
  | Sub (a, b) -> Sub (copy_sexpr a, copy_sexpr b)
  | Mul (a, b) -> Mul (copy_sexpr a, copy_sexpr b)

and copy_bexpr = function
  | Btrue -> Btrue
  | Bpresent i -> Bpresent i
  | Band (a, b) -> Band (copy_bexpr a, copy_bexpr b)
  | Bor (a, b) -> Bor (copy_bexpr a, copy_bexpr b)
  | Bnot a -> Bnot (copy_bexpr a)
  | Beq (a, b) -> Beq (copy_sexpr a, copy_sexpr b)

let ingest_stmt t idx (s : stmt) =
  match s with
  | Create_table { name; columns; _ } ->
      List.iter
        (fun (c : Schema.column) ->
          match c.Schema.col_ty with
          | Value.Ttext -> unsupported "string column %s.%s" name c.Schema.col_name
          | _ -> ())
        columns;
      ignore
        (table_of t name (List.map (fun (c : Schema.column) -> c.Schema.col_name) columns))
  | Insert_select _ -> unsupported "INSERT ... SELECT"
  | Insert { table; columns; values } ->
      let ts =
        match Hashtbl.find_opt t.tables table with
        | Some ts -> ts
        | None -> unsupported "insert into unknown table %s" table
      in
      List.iter
        (fun row ->
          let cells = Array.make (List.length ts.columns) (Const 0.0) in
          let cols = Option.value columns ~default:ts.columns in
          List.iteri
            (fun i c ->
              match List.find_index (String.equal c) ts.columns with
              | Some cidx -> (
                  match List.nth_opt row i with
                  | Some e -> cells.(cidx) <- expr_to_sexpr e
                  | None -> ())
              | None -> unsupported "unknown column %s" c)
            cols;
          ts.tuples <- { cells; alive = Bpresent idx } :: ts.tuples)
        values
  | Update { table; assigns; where } ->
      let ts =
        match Hashtbl.find_opt t.tables table with
        | Some ts -> ts
        | None -> unsupported "update on unknown table %s" table
      in
      let pred =
        match where with
        | Some w -> where_to_pred ts.columns w
        | None -> fun _ -> Btrue
      in
      ts.tuples <-
        List.map
          (fun tu ->
            let applies = Band (Bpresent idx, Band (tu.alive, pred tu.cells)) in
            let cells =
              Array.mapi
                (fun cidx cell ->
                  let cname = List.nth ts.columns cidx in
                  match List.assoc_opt cname assigns with
                  | Some e ->
                      (* if this statement applies to this tuple, the new
                         value, else the old — the per-statement wrapping
                         that blows up the state *)
                      Gite (copy_bexpr applies, expr_to_sexpr e, copy_sexpr cell)
                  | None -> cell)
                tu.cells
            in
            { tu with cells })
          ts.tuples
  | Delete { table; where } ->
      let ts =
        match Hashtbl.find_opt t.tables table with
        | Some ts -> ts
        | None -> unsupported "delete on unknown table %s" table
      in
      let pred =
        match where with
        | Some w -> where_to_pred ts.columns w
        | None -> fun _ -> Btrue
      in
      ts.tuples <-
        List.map
          (fun tu ->
            {
              tu with
              alive = Band (tu.alive, Bnot (Band (Bpresent idx, pred tu.cells)));
            })
          ts.tuples
  | Select _ -> () (* read-only: no state effect *)
  | Call _ | Transaction _ | Create_procedure _ ->
      unsupported "TRANSACTION/PROCEDURE semantics"
  | Create_trigger _ | Drop_trigger _ -> unsupported "triggers"
  | Drop_table _ | Truncate_table _ | Alter_table _ | Create_view _ | Drop_view _
  | Create_index _ | Drop_index _ | Drop_procedure _ ->
      unsupported "DDL beyond CREATE TABLE"

let load_history t log =
  Uv_db.Log.iter log (fun e ->
      t.nstmts <- t.nstmts + 1;
      ingest_stmt t e.Uv_db.Log.index e.Uv_db.Log.stmt)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)
(* ------------------------------------------------------------------ *)

let rec eval_sexpr removed = function
  | Const f -> f
  | Gite (g, a, b) ->
      if eval_bexpr removed g then eval_sexpr removed a else eval_sexpr removed b
  | Add (a, b) -> eval_sexpr removed a +. eval_sexpr removed b
  | Sub (a, b) -> eval_sexpr removed a -. eval_sexpr removed b
  | Mul (a, b) -> eval_sexpr removed a *. eval_sexpr removed b

and eval_bexpr removed = function
  | Btrue -> true
  | Bpresent i -> i <> removed
  | Band (a, b) -> eval_bexpr removed a && eval_bexpr removed b
  | Bor (a, b) -> eval_bexpr removed a || eval_bexpr removed b
  | Bnot a -> not (eval_bexpr removed a)
  | Beq (a, b) -> eval_sexpr removed a = eval_sexpr removed b

let whatif_remove t tau =
  Hashtbl.fold
    (fun name ts acc ->
      let h = Uv_util.Table_hash.create () in
      List.iter
        (fun tu ->
          if eval_bexpr tau tu.alive then begin
            let row =
              String.concat "|"
                (Array.to_list
                   (Array.map
                      (fun c -> Printf.sprintf "%.6g" (eval_sexpr tau c))
                      tu.cells))
            in
            Uv_util.Table_hash.add_row h (name ^ "|" ^ row)
          end)
        ts.tuples;
      (name, Uv_util.Table_hash.value h) :: acc)
    t.tables []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Accounting                                                           *)
(* ------------------------------------------------------------------ *)

let rec sexpr_nodes = function
  | Const _ -> 1
  | Gite (g, a, b) -> 1 + bexpr_nodes g + sexpr_nodes a + sexpr_nodes b
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> 1 + sexpr_nodes a + sexpr_nodes b

and bexpr_nodes = function
  | Btrue | Bpresent _ -> 1
  | Band (a, b) | Bor (a, b) -> 1 + bexpr_nodes a + bexpr_nodes b
  | Bnot a -> 1 + bexpr_nodes a
  | Beq (a, b) -> 1 + sexpr_nodes a + sexpr_nodes b

let expression_nodes t =
  Hashtbl.fold
    (fun _ ts acc ->
      List.fold_left
        (fun acc tu ->
          acc + bexpr_nodes tu.alive
          + Array.fold_left (fun a c -> a + sexpr_nodes c) 0 tu.cells)
        acc ts.tuples)
    t.tables 0

let memory_bytes t = expression_nodes t * 4 * (Sys.word_size / 8)
