(** Re-implementation of Mahif, the historical what-if DBMS baseline
    (Campbell, Arab & Glavic, SIGMOD'22; the paper's §5.1 comparison).

    Mahif answers a historical what-if query (remove/change a past
    update) by *symbolic* means: every tuple's cells — and its presence —
    become expressions conditioned on which history statements are in
    effect. Removing statement τ is then "evaluate everything with
    present(τ) = false". The defining behaviours the comparison depends
    on are reproduced faithfully:

    - per-statement symbolic wrapping makes expression size, memory and
      evaluation time grow super-linearly with history length (the paper
      measured hours and >100 GB at 2000 queries);
    - string/date attributes are unsupported ([Unsupported], the paper's
      "×" for SEATS);
    - TRANSACTION / CALL / DDL are unsupported — Mahif sees only the four
      basic statement types on plain tables, which is exactly why it
      cannot preserve application-level semantics (§5.1 Correctness). *)

exception Unsupported of string

type t

val create : unit -> t

val load_history : t -> Uv_db.Log.t -> unit
(** Ingest a committed history. Raises {!Unsupported} on statements or
    values outside Mahif's fragment. *)

val statement_count : t -> int

val whatif_remove : t -> int -> (string * int64) list
(** [whatif_remove t tau] evaluates the alternate universe in which the
    statement at commit index [tau] never ran. Returns per-table hashes
    of the resulting final state. *)

val expression_nodes : t -> int
(** Total symbolic-expression DAG nodes currently held (the memory
    driver behind Table 4(b)). *)

val memory_bytes : t -> int
(** Estimated resident bytes of the symbolic state. *)
