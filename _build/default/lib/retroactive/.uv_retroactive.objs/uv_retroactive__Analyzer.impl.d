lib/retroactive/analyzer.ml: Array Ast Buffer Hashtbl List Option Printf Queue Rowset Rwset Schema_view String Uv_db Uv_sql
