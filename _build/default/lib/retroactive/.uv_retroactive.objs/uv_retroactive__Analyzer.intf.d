lib/retroactive/analyzer.mli: Ast Rowset Rwset Schema_view Uv_db Uv_sql
