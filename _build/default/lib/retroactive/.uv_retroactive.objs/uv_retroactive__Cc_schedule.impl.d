lib/retroactive/cc_schedule.ml: Array Format Fun List Rowset Rwset Schema_view String Uv_db
