lib/retroactive/cc_schedule.mli: Format Rowset Uv_db Uv_sql
