lib/retroactive/hash_jumper.ml: Array Hashtbl Int64 List Option Uv_db Uv_util
