lib/retroactive/hash_jumper.mli: Uv_db
