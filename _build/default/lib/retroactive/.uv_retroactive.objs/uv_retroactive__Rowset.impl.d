lib/retroactive/rowset.ml: Array Ast Format Hashtbl List Option Schema Schema_view Set String Uv_db Uv_sql Value
