lib/retroactive/rowset.mli: Ast Format Schema_view Set Uv_db Uv_sql Value
