lib/retroactive/rwset.ml: Ast Format List Option Schema Schema_view Set String Uv_db Uv_sql
