lib/retroactive/rwset.mli: Ast Format Schema_view Set Uv_sql
