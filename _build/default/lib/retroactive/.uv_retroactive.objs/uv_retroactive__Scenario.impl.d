lib/retroactive/scenario.ml: Analyzer Format List Printf Rowset String Uv_db Whatif
