lib/retroactive/scenario.mli: Analyzer Ast Format Rowset Uv_db Uv_sql Whatif
