lib/retroactive/scheduler.ml: Array Hashtbl List Uv_util
