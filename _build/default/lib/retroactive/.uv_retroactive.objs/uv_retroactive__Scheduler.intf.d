lib/retroactive/scheduler.mli:
