lib/retroactive/schema_view.ml: Ast Hashtbl List Option Schema String Uv_db Uv_sql
