lib/retroactive/schema_view.mli: Ast Schema Uv_db Uv_sql
