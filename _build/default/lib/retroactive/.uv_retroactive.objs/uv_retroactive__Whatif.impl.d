lib/retroactive/whatif.ml: Analyzer Array Hash_jumper Hashtbl Int64 List Option Queue Scheduler String Uv_db Uv_util
