lib/retroactive/whatif.mli: Analyzer Ast Uv_db Uv_sql
