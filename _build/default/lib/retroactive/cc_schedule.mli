(** Concurrency-control scheduling from prior R/W knowledge (§6 "Using
    Ultraverse for Concurrency Control").

    Deterministic schedulers like Calvin and Bohm need a transaction's
    read/write sets *before* executing it, and fall back to expensive
    restarts when a prediction misses. Ultraverse's query dependency
    analysis provides those sets statically: given a batch of planned
    statements (not yet executed), [plan] derives each statement's
    column-wise and row-wise sets against the current schema and packs
    the batch into conflict-free waves — statements inside a wave touch
    disjoint cells and may run concurrently, waves execute in order.

    The plan preserves serializability by construction: a statement is
    placed after every earlier statement it conflicts with (read-write,
    write-read or write-write on the same column and RI value). *)



type plan = {
  waves : int list list;
      (** 0-based indexes into the input batch, wave by wave; indexes
          inside a wave are mutually conflict-free *)
  conflict_edges : int;
  statements : int;
}

val plan :
  ?config:Rowset.config -> base:Uv_db.Catalog.t -> Uv_sql.Ast.stmt list -> plan
(** Schedule a batch against the schema/alias state of [base]. *)

val wave_count : plan -> int

val parallelism : plan -> float
(** Average statements per wave — the speedup an ideal executor with
    enough workers achieves over serial execution. *)

val execute :
  Uv_db.Engine.t -> Uv_sql.Ast.stmt list -> plan -> (int * Uv_db.Engine.result) list
(** Execute the batch wave by wave (statements within a wave in index
    order — any order is equivalent by construction). Returns results in
    execution order with their batch indexes. Failed statements are
    skipped. *)

val pp : Format.formatter -> plan -> unit
