type t = {
  (* per table: arrays of change points (ascending commit index) *)
  changes : (string, (int * int64) array) Hashtbl.t;
  initial : (string, int64) Hashtbl.t;
}

let of_log ?(initial = []) log =
  let acc : (string, (int * int64) list) Hashtbl.t = Hashtbl.create 32 in
  Uv_db.Log.iter log (fun e ->
      List.iter
        (fun (table, h) ->
          let prev = Option.value (Hashtbl.find_opt acc table) ~default:[] in
          Hashtbl.replace acc table ((e.Uv_db.Log.index, h) :: prev))
        e.Uv_db.Log.written_hashes);
  let changes = Hashtbl.create 32 in
  Hashtbl.iter
    (fun table lst -> Hashtbl.replace changes table (Array.of_list (List.rev lst)))
    acc;
  let init_tbl = Hashtbl.create 8 in
  List.iter (fun (table, h) -> Hashtbl.replace init_tbl table h) initial;
  { changes; initial = init_tbl }

let initial_hash t table =
  Option.value (Hashtbl.find_opt t.initial table) ~default:0L

let hash_at t ~table ~index =
  match Hashtbl.find_opt t.changes table with
  | None -> initial_hash t table
  | Some arr ->
      (* binary search: last change point with commit index <= index *)
      let lo = ref 0 and hi = ref (Array.length arr - 1) and best = ref (-1) in
      while !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let ci, _ = arr.(mid) in
        if ci <= index then begin
          best := mid;
          lo := mid + 1
        end
        else hi := mid - 1
      done;
      if !best < 0 then initial_hash t table else snd arr.(!best)

let check_hit t cat ~mutated ~index =
  List.for_all
    (fun table ->
      let current =
        match Uv_db.Catalog.table cat table with
        | Some tbl -> Uv_db.Storage.hash tbl
        | None -> 0L
      in
      Int64.equal current (hash_at t ~table ~index))
    mutated

let delta t ~table ~index =
  let after = hash_at t ~table ~index in
  let before = hash_at t ~table ~index:(index - 1) in
  Uv_util.Table_hash.sub_mod after before

type expectations = {
  mutated_tables : string list;
  (* expected.(k).(ti) = expected hash of mutated table ti after replaying
     member position k *)
  expected : int64 array array;
}

let expectations t ~final ~mutated ~members =
  let nt = List.length mutated in
  let nm = List.length members in
  let final_of table =
    Option.value (List.assoc_opt table final) ~default:0L
  in
  let expected = Array.make_matrix (max nm 1) nt 0L in
  (* reverse scan accumulating future deltas *)
  let acc = Array.of_list (List.map final_of mutated) in
  let member_arr = Array.of_list members in
  for k = nm - 1 downto 0 do
    Array.blit acc 0 expected.(k) 0 nt;
    (* member k's delta becomes "future" for position k-1 *)
    List.iteri
      (fun ti table ->
        acc.(ti) <-
          Uv_util.Table_hash.sub_mod acc.(ti)
            (delta t ~table ~index:member_arr.(k)))
      mutated
  done;
  { mutated_tables = mutated; expected }

let converged exp cat ~member_pos =
  member_pos < Array.length exp.expected
  && List.for_all
       (fun (ti, table) ->
         let current =
           match Uv_db.Catalog.table cat table with
           | Some tbl -> Uv_db.Storage.hash tbl
           | None -> 0L
         in
         Int64.equal current exp.expected.(member_pos).(ti))
       (List.mapi (fun i tbl -> (i, tbl)) exp.mutated_tables)
