(** Hash-jumper: early termination of effectless replays (§4.5).

    During regular operation every log entry records the post-commit hash
    of each table it wrote. During a retroactive replay, after replaying
    the entry with original commit index [i], if every mutated table's
    current hash equals its hash at original commit [i] — and no further
    retroactive changes are pending — the remaining replay is guaranteed
    to re-derive the original history, so the replay can stop and the
    original tables be retained. The table hash itself is the incremental
    sum-of-row-digests modulo [2^61-1] maintained by [Uv_db.Storage];
    false-positive probability is bounded by [1/p ≈ 4.3e-19] per
    comparison (the paper's SHA-256 instantiation gives [2^-256]; the
    structure and the constant-time update property are identical). *)

type t

val of_log : ?initial:(string * int64) list -> Uv_db.Log.t -> t
(** Build the per-table hash timeline. [initial] gives hashes of tables
    that predate the log (checkpoint contents); tables absent default to
    the empty-table hash [0]. *)

val hash_at : t -> table:string -> index:int -> int64
(** The table's hash immediately after original commit [index]. *)

val check_hit : t -> Uv_db.Catalog.t -> mutated:string list -> index:int -> bool
(** Do all mutated tables in the (temporary) catalog currently hash to
    their original post-commit-[index] values? Tables missing from the
    catalog compare as the empty hash. (This is the paper's check for the
    full-rollback scheme, where the temporary tables really are in their
    historical state.) *)

val delta : t -> table:string -> index:int -> int64
(** The incremental-hash contribution of the statement at [index] to the
    table, i.e. [hash_at index - hash_at (index-1)] mod p. *)

type expectations
(** Per-member expected hashes for the *selective-undo* replay scheme:
    after replaying the k-th member, a converged replay satisfies
    [temp(T) = final(T) - Σ_{future members} delta(T)] for every mutated
    table — the state in which every non-member keeps its final effect
    and all remaining members still carry their original effects. *)

val expectations :
  t -> final:(string * int64) list -> mutated:string list -> members:int list ->
  expectations

val converged : expectations -> Uv_db.Catalog.t -> member_pos:int -> bool
(** [converged exp temp ~member_pos] — check after replaying the member at
    list position [member_pos] (0-based). *)
