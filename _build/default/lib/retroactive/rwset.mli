(** Column-wise read/write sets (§4.2, Appendix Table A).

    Column keys are fully qualified: ["Users.uid"] for a real column,
    ["_S.Users"] for the virtual schema-monitoring column of a table,
    view, procedure or trigger (§4.2 "_S.tablename").

    Design points straight from the paper:
    - conditional branches inside procedures/triggers contribute *both*
      arms (over-approximation preserves correctness);
    - SELECTs nested in any statement merge their read set into the
      wrapper;
    - reads/writes through a view expand to the parent tables' columns;
    - INSERT on an AUTO_INCREMENT table reads the primary-key column;
    - UPDATE/DELETE write the FOREIGN KEY columns of referencing tables;
    - CALL/TRANSACTION take the union of their bodies;
    - statements on a table with triggers inherit the triggered bodies'
      sets plus [_S.trigger]. *)

open Uv_sql

module Colset : Set.S with type elt = string

type rw = { r : Colset.t; w : Colset.t }

val empty : rw
val union : rw -> rw -> rw

val of_stmt : Schema_view.t -> Ast.stmt -> rw
(** Column-wise sets of one statement against the current schema view.
    The schema view is *not* advanced; callers do that with
    [Schema_view.apply] after analysing each log entry. *)

val of_select : Schema_view.t -> Ast.select -> Colset.t
(** Read set of a standalone SELECT (write set is empty by definition). *)

val pp : Format.formatter -> rw -> unit
