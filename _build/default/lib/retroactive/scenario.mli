(** Scenario management: a tree of what-if universes (§6 "Managing Many
    what-if Scenarios").

    The root scenario is the real database. Branching applies a
    retroactive target and yields a child scenario holding its own full
    catalog and merged history, so children can be branched further, and
    every universe stays independently queryable. Scenario names act as
    the paper's "what-if tags" marking where a branch forked. *)

open Uv_sql

type t

val root :
  ?name:string ->
  ?base:Uv_db.Catalog.t ->
  ?ri_config:Rowset.config ->
  Uv_db.Engine.t ->
  t
(** Wrap the live engine as the root universe. The engine is shared, not
    copied: new regular commits extend the root. [base] is the checkpoint
    the history grows from (inherited by every branch); [ri_config] the
    row-identifier configuration used by branch analyses. *)

val branch :
  ?name:string ->
  ?config:Whatif.config ->
  t ->
  Analyzer.target ->
  t * Whatif.outcome
(** Fork a child universe by applying the retroactive target to the
    scenario's history. The child owns a deep-copied catalog merged with
    the outcome's mutated tables and the outcome's merged log. *)

val branch_seq :
  ?name:string ->
  ?config:Whatif.config ->
  t ->
  Analyzer.target list ->
  t * Whatif.outcome list
(** Apply several retroactive targets as one scenario by branching
    repeatedly. Targets are applied in *descending* commit order so that
    each application leaves the earlier targets' indexes valid in the
    intermediate merged histories (a removal shifts every later index
    down by one). Intermediate scenarios are not registered as children;
    only the final universe is. *)

val name : t -> string

val parent : t -> t option

val children : t -> t list

val depth : t -> int
(** 0 for the root. *)

val query : t -> Ast.select -> Uv_db.Engine.result

val query_sql : t -> string -> Uv_db.Engine.result

val engine : t -> Uv_db.Engine.t
(** An engine over the scenario's universe (catalog + history). For the
    root this is the live engine itself. *)

val history_length : t -> int

val db_hash : t -> int64

val lineage : t -> string list
(** Names from the root to this scenario. *)

val pp_tree : Format.formatter -> t -> unit
(** Render the scenario tree (names, depths, history sizes). *)
