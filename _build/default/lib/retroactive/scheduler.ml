let makespan ~entries ~edges ~weight ~workers =
  match entries with
  | [] -> 0.0
  | _ ->
      let ids = Hashtbl.create (List.length entries) in
      List.iteri (fun pos i -> Hashtbl.replace ids i pos) entries;
      let dag = Uv_util.Dag.create (List.length entries) in
      List.iter
        (fun (later, earlier) ->
          match (Hashtbl.find_opt ids later, Hashtbl.find_opt ids earlier) with
          | Some l, Some e -> Uv_util.Dag.add_edge dag l e
          | _ -> ())
        edges;
      let weights =
        Array.of_list (List.map weight entries)
      in
      Uv_util.Dag.critical_path_makespan dag ~weights ~workers

let speedup ~serial ~parallel = if parallel <= 0.0 then 1.0 else serial /. parallel
