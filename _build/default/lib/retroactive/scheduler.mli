(** Parallel replay scheduling (§4.4).

    Ultraverse replays mutually independent queries simultaneously while
    preserving the commit order of conflicting ones. We model this as list
    scheduling over the replay conflict DAG: each replayed entry is a node
    weighted by its measured execution cost, with an edge to every earlier
    member it conflicts with (read-write, write-read or write-write on the
    same column and RI value). [makespan ~workers:1] is the serial replay
    time; with the paper's 8 vCPUs the ratio gives the parallel speedup. *)

val makespan :
  entries:int list ->
  edges:(int * int) list ->
  weight:(int -> float) ->
  workers:int ->
  float
(** [entries] are commit indexes (ascending); [edges] are [(later,
    earlier)] conflicts from [Analyzer.dependency_edges]; [weight i] is
    entry [i]'s replay cost in milliseconds. *)

val speedup : serial:float -> parallel:float -> float
