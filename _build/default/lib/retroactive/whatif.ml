
type config = {
  mode : Analyzer.mode;
  workers : int;
  hash_jumper : bool;
  grouped : bool;
}

let default_config =
  { mode = Analyzer.Cell; workers = 8; hash_jumper = false; grouped = false }

type outcome = {
  replay : Analyzer.replay_set;
  replayed : int;
  undone : int;
  failed_replays : int;
  hash_jump_at : int option;
  real_ms : float;
  serial_cost_ms : float;
  parallel_cost_ms : float;
  analysis_ms : float;
  final_db_hash : int64;
  changed : bool;
  temp_catalog : Uv_db.Catalog.t;
  new_log : Uv_db.Log.t;
}

let member_indexes (rs : Analyzer.replay_set) =
  let out = ref [] in
  Array.iteri (fun i b -> if b then out := (i + 1) :: !out) rs.Analyzer.members;
  List.rev !out

let run ?(config = default_config) ~analyzer eng (target : Analyzer.target) =
  let log = Uv_db.Engine.log eng in
  let rtt = Uv_util.Clock.rtt_ms (Uv_db.Engine.clock eng) in
  let t0 = Uv_util.Clock.now_ms () in
  (* 1. replay-set computation *)
  let rs =
    if config.grouped then
      Analyzer.replay_set_grouped ~mode:config.mode analyzer target
    else Analyzer.replay_set ~mode:config.mode analyzer target
  in
  let analysis_ms = Uv_util.Clock.now_ms () -. t0 in
  let members = member_indexes rs in
  (* 2. temporary database: mutated + consulted tables *)
  let affected = List.sort_uniq compare (rs.Analyzer.mutated @ rs.Analyzer.consulted) in
  let temp_cat = Uv_db.Catalog.snapshot_tables (Uv_db.Engine.catalog eng) affected in
  let jumper =
    if config.hash_jumper then begin
      let j = Hash_jumper.of_log ~initial:(Analyzer.base_hashes analyzer) log in
      let final =
        List.filter_map
          (fun table ->
            Option.map
              (fun tbl -> (table, Uv_db.Storage.hash tbl))
              (Uv_db.Catalog.table (Uv_db.Engine.catalog eng) table))
          rs.Analyzer.mutated
      in
      Some
        (Hash_jumper.expectations j ~final ~mutated:rs.Analyzer.mutated
           ~members)
    end
    else None
  in
  (* 3. rollback: undo members (and the removed/changed target) newest first *)
  let undo_list =
    let tgt =
      match target.Analyzer.op with
      | Analyzer.Remove | Analyzer.Change _
        when target.Analyzer.tau >= 1 && target.Analyzer.tau <= Uv_db.Log.length log
        ->
          [ target.Analyzer.tau ]
      | _ -> []
    in
    List.sort_uniq compare (tgt @ members) |> List.rev
  in
  List.iter
    (fun i ->
      let entry = Uv_db.Log.entry log i in
      Uv_db.Log.apply_undo temp_cat entry.Uv_db.Log.undo)
    undo_list;
  let undone = List.length undo_list in
  (* 4. replay forward *)
  let temp_eng = Uv_db.Engine.of_catalog ~rtt_ms:rtt temp_cat in
  let failed = ref 0 in
  let weights : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let succeeded : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let exec_timed ?app_txn ?nondet idx stmt =
    let s = Uv_util.Clock.now_ms () in
    (try
       ignore (Uv_db.Engine.exec ?app_txn ?nondet temp_eng stmt);
       Hashtbl.replace succeeded idx ()
     with Uv_db.Engine.Signal_raised _ | Uv_db.Engine.Sql_error _ -> incr failed);
    let d = Uv_util.Clock.now_ms () -. s in
    Hashtbl.replace weights idx d
  in
  (* the retroactive operation itself, just before τ *)
  (match target.Analyzer.op with
  | Analyzer.Add stmt | Analyzer.Change stmt ->
      Uv_db.Engine.set_sim_time temp_eng (1_700_000_000 + target.Analyzer.tau);
      exec_timed 0 stmt
  | Analyzer.Remove -> ());
  let hash_jump_at = ref None in
  let replayed = ref 0 in
  (try
     List.iteri
       (fun pos i ->
         let entry = Uv_db.Log.entry log i in
         Uv_db.Engine.set_sim_time temp_eng (1_700_000_000 + i);
         exec_timed ~nondet:entry.Uv_db.Log.nondet
           ?app_txn:entry.Uv_db.Log.app_txn i entry.Uv_db.Log.stmt;
         incr replayed;
         match jumper with
         | Some exp when Hash_jumper.converged exp temp_cat ~member_pos:pos ->
             hash_jump_at := Some i;
             raise Exit
         | _ -> ())
       members
   with Exit -> ());
  (* on a hash-hit the original tables are retained (§4.5): reflect the
     original's affected tables in the temporary catalog so the outcome's
     universe is consistent *)
  (match !hash_jump_at with
  | Some _ ->
      Uv_db.Catalog.copy_tables_into (Uv_db.Engine.catalog eng) ~into:temp_cat
        affected;
      (* on a hit the original timeline is retained wholesale, schema
         objects included *)
      Uv_db.Catalog.copy_objects_into (Uv_db.Engine.catalog eng) ~into:temp_cat
  | None -> ());
  (* 5. cost model *)
  let replayed_members =
    match !hash_jump_at with
    | None -> members
    | Some stop -> List.filter (fun i -> i <= stop) members
  in
  let weight i = (try Hashtbl.find weights i with Not_found -> 0.0) +. rtt in
  let op_weight = if Hashtbl.mem weights 0 then weight 0 else 0.0 in
  let serial_cost_ms =
    op_weight +. List.fold_left (fun acc i -> acc +. weight i) 0.0 replayed_members
  in
  let edges = Analyzer.dependency_edges analyzer ~members:rs.Analyzer.members in
  let parallel_cost_ms =
    op_weight
    +. Scheduler.makespan ~entries:replayed_members ~edges ~weight
         ~workers:config.workers
  in
  let changed =
    match !hash_jump_at with
    | Some _ -> false
    | None ->
        (not
           (Int64.equal
              (Uv_db.Catalog.db_hash temp_cat)
              (Uv_db.Catalog.db_hash
                 (Uv_db.Catalog.snapshot_tables (Uv_db.Engine.catalog eng)
                    affected))))
        || not
             (String.equal
                (Uv_db.Catalog.objects_signature temp_cat)
                (Uv_db.Catalog.objects_signature (Uv_db.Engine.catalog eng)))
  in
  let real_ms = Uv_util.Clock.now_ms () -. t0 in
  (* merged new-universe log: original entries for non-members, replayed
     entries for members, the retroactive operation at tau; reindexed *)
  let new_log =
    let merged = Uv_db.Log.create () in
    let temp_entries = Queue.create () in
    Uv_db.Log.iter (Uv_db.Engine.log temp_eng) (fun e -> Queue.push e temp_entries);
    (* the op's own entry (Add/Change) is the first temp entry *)
    let op_entry =
      match target.Analyzer.op with
      | (Analyzer.Add _ | Analyzer.Change _) when Hashtbl.mem succeeded 0 ->
          if Queue.is_empty temp_entries then None
          else Some (Queue.pop temp_entries)
      | _ -> None
    in
    let push e =
      Uv_db.Log.append merged
        { e with Uv_db.Log.index = Uv_db.Log.length merged + 1 }
    in
    (* only successful replays produced a log entry in the temp engine;
       an aborted transaction is correctly absent from the new history *)
    let replayed_set = Hashtbl.create 64 in
    List.iter
      (fun i -> if Hashtbl.mem succeeded i then Hashtbl.replace replayed_set i ())
      replayed_members;
    for i = 1 to Uv_db.Log.length log do
      if i = target.Analyzer.tau then begin
        (match (target.Analyzer.op, op_entry) with
        | (Analyzer.Add _ | Analyzer.Change _), Some e -> push e
        | _ -> ());
        match target.Analyzer.op with
        | Analyzer.Add _ -> push (Uv_db.Log.entry log i)
        | Analyzer.Remove | Analyzer.Change _ -> ()
      end
      else if Hashtbl.mem replayed_set i then begin
        if not (Queue.is_empty temp_entries) then push (Queue.pop temp_entries)
      end
      else if rs.Analyzer.members.(i - 1) then begin
        (* a member that was not successfully replayed: either past the
           hash-hit (the original entry re-derives itself) or an aborted
           transaction (absent from the new history) *)
        if !hash_jump_at <> None then push (Uv_db.Log.entry log i)
      end
      else push (Uv_db.Log.entry log i)
    done;
    (* an addition past the end of the history *)
    if target.Analyzer.tau > Uv_db.Log.length log then (
      match (target.Analyzer.op, op_entry) with
      | Analyzer.Add _, Some e -> push e
      | _ -> ());
    merged
  in
  {
    replay = rs;
    replayed = !replayed;
    undone;
    failed_replays = !failed;
    hash_jump_at = !hash_jump_at;
    real_ms;
    serial_cost_ms;
    parallel_cost_ms;
    analysis_ms;
    final_db_hash = Uv_db.Catalog.db_hash temp_cat;
    changed;
    temp_catalog = temp_cat;
    new_log;
  }

let commit eng outcome =
  if outcome.changed then begin
    Uv_db.Catalog.copy_tables_into outcome.temp_catalog
      ~into:(Uv_db.Engine.catalog eng)
      outcome.replay.Analyzer.mutated;
    (* retroactive DDL on schema objects (views, procedures, triggers,
       indexes) lands in the live catalog too *)
    Uv_db.Catalog.copy_objects_into outcome.temp_catalog
      ~into:(Uv_db.Engine.catalog eng)
  end

let query_new_universe outcome sel =
  let eng = Uv_db.Engine.of_catalog outcome.temp_catalog in
  Uv_db.Engine.query eng sel
