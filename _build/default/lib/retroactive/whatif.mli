(** The retroactive operation driver (§4.4): rollback, replay, update.

    Given an engine holding a committed history and a retroactive target,
    [run]:

    + computes the replay set 𝕀 with the {!Analyzer} (mode-selectable:
      column-only, row-only, or cell-wise);
    + builds a temporary database holding deep copies of the mutated and
      consulted tables (regular service on the original engine is never
      blocked);
    + rolls back 𝕀's entries in reverse commit order by applying their
      logged inverse operations (rollback option (i) of §5's
      implementation list, made selective by the dependency analysis);
    + applies the retroactive operation at τ and replays 𝕀 forward in
      commit order, forcing each entry's recorded non-determinism;
    + optionally runs the Hash-jumper after every replayed entry and
      early-terminates on a hash-hit;
    + reports two cost views: measured serial time, and the simulated
      parallel makespan over the replay conflict DAG (§4.4's parallel
      replay with [workers] threads).

    The original engine is left untouched. [commit] performs the
    database-update step, copying the mutated tables back. *)

open Uv_sql

type config = {
  mode : Analyzer.mode;  (** default [Cell] *)
  workers : int;  (** parallel replay width; the paper's testbed had 8 *)
  hash_jumper : bool;
  grouped : bool;
      (** closure at application-level-transaction granularity (the
          non-transpiled "D" system) *)
}

val default_config : config

type outcome = {
  replay : Analyzer.replay_set;
  replayed : int;  (** entries actually re-executed *)
  undone : int;  (** entries rolled back *)
  failed_replays : int;
      (** replays that signalled or errored (aborted app transactions) *)
  hash_jump_at : int option;
      (** original commit index at which the Hash-jumper fired *)
  real_ms : float;  (** measured wall time of the whole operation *)
  serial_cost_ms : float;
      (** sum of per-entry replay costs + one round trip each *)
  parallel_cost_ms : float;  (** conflict-DAG makespan with [workers] *)
  analysis_ms : float;  (** replay-set computation time *)
  final_db_hash : int64;  (** hash of the temporary universe *)
  changed : bool;  (** false when the Hash-jumper proved no effect *)
  temp_catalog : Uv_db.Catalog.t;  (** the new universe *)
  new_log : Uv_db.Log.t;
      (** the new universe's committed history: non-members keep their
          original entries, replayed members contribute their re-executed
          entries, and the retroactive operation sits at τ. This is what
          makes scenarios branchable (§6 "Managing Many what-if
          Scenarios"): a further what-if can analyse this log. *)
}

val run :
  ?config:config ->
  analyzer:Analyzer.t ->
  Uv_db.Engine.t ->
  Analyzer.target ->
  outcome
(** The analyzer must have been built over the engine's current log
    (Ultraverse derives R/W sets asynchronously during regular service;
    analysis construction is therefore not part of what-if latency). *)

val commit : Uv_db.Engine.t -> outcome -> unit
(** Database-update phase: copy the outcome's mutated tables into the
    engine's live catalog (no-op when [changed] is false). The engine's
    log is *not* rewritten — callers exploring scenarios should keep the
    outcome's temporary catalog instead. *)

val query_new_universe : outcome -> Ast.select -> Uv_db.Engine.result
(** Run a read-only query against the outcome's temporary database —
    the "what would X have been" question the analysis exists to answer. *)
