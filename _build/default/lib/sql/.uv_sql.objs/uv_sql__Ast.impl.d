lib/sql/ast.ml: Schema Value
