lib/sql/ast.mli: Schema Value
