lib/sql/lexer.ml: Buffer List Printf String
