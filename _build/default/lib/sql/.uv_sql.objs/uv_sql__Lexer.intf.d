lib/sql/lexer.mli:
