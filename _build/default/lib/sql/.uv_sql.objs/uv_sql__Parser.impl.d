lib/sql/parser.ml: Array Ast Lexer List Printf Schema String Value
