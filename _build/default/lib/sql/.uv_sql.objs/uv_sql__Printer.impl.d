lib/sql/printer.ml: Ast Buffer List Option Printf Schema String Value
