lib/sql/printer.mli: Ast
