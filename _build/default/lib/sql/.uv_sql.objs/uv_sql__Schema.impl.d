lib/sql/schema.ml: List String Value
