lib/sql/schema.mli: Value
