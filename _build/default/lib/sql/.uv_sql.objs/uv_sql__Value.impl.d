lib/sql/value.ml: Buffer Float Format Printf String
