lib/sql/value.mli: Format
