type token =
  | Ident of string
  | Keyword of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | At_var of string
  | Punct of string
  | Op of string
  | Eof

exception Lex_error of string * int

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET";
    "DELETE"; "CREATE"; "DROP"; "ALTER"; "TABLE"; "VIEW"; "INDEX"; "PROCEDURE";
    "TRIGGER"; "CALL"; "BEGIN"; "END"; "TRANSACTION"; "COMMIT"; "ROLLBACK";
    "IF"; "THEN"; "ELSE"; "ELSEIF"; "WHILE"; "DO"; "DECLARE"; "DEFAULT";
    "LEAVE"; "SIGNAL"; "SQLSTATE"; "AND"; "OR"; "NOT"; "NULL"; "TRUE"; "FALSE";
    "AS"; "ON"; "JOIN"; "GROUP"; "ORDER"; "BY"; "ASC"; "DESC"; "LIMIT"; "OFFSET"; "HAVING";
    "IN"; "EXISTS"; "BETWEEN"; "IS"; "LIKE"; "PRIMARY"; "KEY"; "AUTO_INCREMENT";
    "REFERENCES"; "FOREIGN"; "CONSTRAINT"; "UNIQUE"; "ADD"; "COLUMN"; "RENAME";
    "TO"; "TRUNCATE"; "REPLACE"; "BEFORE"; "AFTER"; "FOR"; "EACH"; "ROW";
    "WHEN"; "CASE"; "ELSE"; "DISTINCT"; "INT"; "INTEGER"; "BIGINT"; "SMALLINT";
    "TINYINT"; "DOUBLE"; "FLOAT"; "DECIMAL"; "REAL"; "NUMERIC"; "VARCHAR";
    "TEXT"; "CHAR"; "DATETIME"; "TIMESTAMP"; "DATE"; "BOOLEAN"; "BOOL";
    "IF"; "EXISTS"; "WHILE"; "END"; "OUT"; "INOUT";
  ]
  |> List.sort_uniq compare

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let rec skip_ws () =
    if !pos < n then
      match src.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
          incr pos;
          skip_ws ()
      | '-' when peek 1 = Some '-' ->
          while !pos < n && src.[!pos] <> '\n' do incr pos done;
          skip_ws ()
      | '/' when peek 1 = Some '*' ->
          pos := !pos + 2;
          let rec close () =
            if !pos + 1 >= n then raise (Lex_error ("unterminated comment", !pos))
            else if src.[!pos] = '*' && src.[!pos + 1] = '/' then pos := !pos + 2
            else begin incr pos; close () end
          in
          close ();
          skip_ws ()
      | _ -> ()
  in
  let read_string () =
    (* opening quote consumed by caller *)
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Lex_error ("unterminated string", !pos));
      match src.[!pos] with
      | '\'' when peek 1 = Some '\'' ->
          Buffer.add_char buf '\'';
          pos := !pos + 2;
          go ()
      | '\'' -> incr pos
      | '\\' when peek 1 <> None ->
          (match peek 1 with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some c -> Buffer.add_char buf c
          | None -> ());
          pos := !pos + 2;
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let read_number () =
    let start = !pos in
    while !pos < n && is_digit src.[!pos] do incr pos done;
    let is_float =
      !pos < n && src.[!pos] = '.' && (match peek 1 with Some c -> is_digit c | None -> false)
    in
    if is_float then begin
      incr pos;
      while !pos < n && is_digit src.[!pos] do incr pos done;
      Float_lit (float_of_string (String.sub src start (!pos - start)))
    end
    else Int_lit (int_of_string (String.sub src start (!pos - start)))
  in
  let read_ident () =
    let start = !pos in
    while !pos < n && is_ident_char src.[!pos] do incr pos done;
    let s = String.sub src start (!pos - start) in
    if is_keyword s then Keyword (String.uppercase_ascii s) else Ident s
  in
  let rec loop () =
    skip_ws ();
    if !pos >= n then emit Eof
    else begin
      (match src.[!pos] with
      | '\'' ->
          incr pos;
          emit (Str_lit (read_string ()))
      | '`' ->
          (* backquoted identifier, never a keyword *)
          incr pos;
          let start = !pos in
          while !pos < n && src.[!pos] <> '`' do incr pos done;
          if !pos >= n then raise (Lex_error ("unterminated `identifier`", !pos));
          emit (Ident (String.sub src start (!pos - start)));
          incr pos
      | '@' ->
          incr pos;
          let start = !pos in
          while !pos < n && is_ident_char src.[!pos] do incr pos done;
          if !pos = start then raise (Lex_error ("bare '@'", !pos));
          emit (At_var (String.sub src start (!pos - start)))
      | c when is_digit c -> emit (read_number ())
      | c when is_ident_start c -> emit (read_ident ())
      | '(' | ')' | ',' | ';' | '.' | ':' ->
          emit (Punct (String.make 1 src.[!pos]));
          incr pos
      | '<' when peek 1 = Some '>' ->
          emit (Op "<>");
          pos := !pos + 2
      | '<' when peek 1 = Some '=' ->
          emit (Op "<=");
          pos := !pos + 2
      | '>' when peek 1 = Some '=' ->
          emit (Op ">=");
          pos := !pos + 2
      | '!' when peek 1 = Some '=' ->
          emit (Op "<>");
          pos := !pos + 2
      | '=' | '<' | '>' | '+' | '-' | '*' | '/' | '%' ->
          emit (Op (String.make 1 src.[!pos]));
          incr pos
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !pos)));
      if !tokens <> [] && List.hd !tokens <> Eof then loop ()
    end
  in
  loop ();
  List.rev !tokens

let show_token = function
  | Ident s -> "identifier " ^ s
  | Keyword s -> "keyword " ^ s
  | Int_lit i -> "integer " ^ string_of_int i
  | Float_lit f -> "float " ^ string_of_float f
  | Str_lit s -> "string '" ^ s ^ "'"
  | At_var s -> "@" ^ s
  | Punct s -> "'" ^ s ^ "'"
  | Op s -> "operator " ^ s
  | Eof -> "end of input"
