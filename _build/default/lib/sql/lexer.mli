(** Tokenizer for the SQL dialect.

    Keywords are recognised case-insensitively; identifiers keep their
    original spelling. Comments ([-- ...] to end of line and [/* ... */])
    are skipped. *)

type token =
  | Ident of string      (** bare identifier (non-keyword) *)
  | Keyword of string    (** uppercased keyword *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | At_var of string     (** [@name] session/user variable *)
  | Punct of string      (** '(', ')', ',', ';', '.', ':' *)
  | Op of string         (** '=', '<>', '<', '<=', '>', '>=', '+', '-', '*', '/', '%', '!=' *)
  | Eof

exception Lex_error of string * int
(** Message and byte position. *)

val keywords : string list
(** The reserved-word list. *)

val tokenize : string -> token list
(** Whole-input tokenization, ending with [Eof]. *)

val show_token : token -> string
