(** Recursive-descent parser for the SQL dialect.

    Inside procedure and trigger bodies, bare identifiers that match a
    declared local variable or parameter parse as [Ast.Var]; everything
    else parses as a column reference, matching how the engine and the
    dependency analysis resolve names. *)

exception Parse_error of string

val parse_stmt : string -> Ast.stmt
(** Parse exactly one statement (a trailing [';'] is allowed). *)

val parse_script : string -> Ast.stmt list
(** Parse a [';']-separated sequence of statements. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests and the transpiler). *)
