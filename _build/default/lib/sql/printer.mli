(** Rendering SQL ASTs back to SQL text.

    The statement log stores rendered SQL (like MySQL's binlog in statement
    mode); the parser and this printer round-trip:
    [parse (print s)] re-parses to an equal AST for every supported
    statement, a property the test suite checks with qcheck. *)

val expr : Ast.expr -> string
val select : ?into:string list -> Ast.select -> string
(** [select ?into s] renders a SELECT; [~into] adds an [INTO var, ...]
    clause after the projection list. *)


val stmt : Ast.stmt -> string
val pstmt : ?indent:int -> Ast.pstmt -> string

val stmt_compact : Ast.stmt -> string
(** Single-line form used in log records and error messages. *)
