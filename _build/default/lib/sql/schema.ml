type column = {
  col_name : string;
  col_ty : Value.ty;
  primary_key : bool;
  auto_increment : bool;
  not_null : bool;
  unique : bool;
  references : (string * string) option;
}

let column ?(primary_key = false) ?(auto_increment = false) ?(not_null = false)
    ?(unique = false) ?references col_name col_ty =
  { col_name; col_ty; primary_key; auto_increment; not_null; unique; references }

type table = { tbl_name : string; tbl_columns : column list }

let table tbl_name tbl_columns = { tbl_name; tbl_columns }

let find_column t name =
  List.find_opt (fun c -> String.equal c.col_name name) t.tbl_columns

let column_names t = List.map (fun c -> c.col_name) t.tbl_columns

let primary_key_columns t =
  List.filter_map
    (fun c -> if c.primary_key then Some c.col_name else None)
    t.tbl_columns

let unique_columns t =
  List.filter_map
    (fun c -> if c.unique && not c.primary_key then Some c.col_name else None)
    t.tbl_columns

let auto_increment_column t =
  List.find_map
    (fun c -> if c.auto_increment then Some c.col_name else None)
    t.tbl_columns

let foreign_keys t =
  List.filter_map
    (fun c ->
      match c.references with
      | Some (ft, fc) -> Some (c.col_name, ft, fc)
      | None -> None)
    t.tbl_columns

let qualified tbl col = tbl ^ "." ^ col

let schema_column name = "_S." ^ name
