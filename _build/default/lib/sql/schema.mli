(** Table, view, and column definitions — the static shape of a database.

    The retroactive engine's column-wise analysis (§4.2, Table A) needs
    column lists, primary keys, AUTO_INCREMENT flags, and FOREIGN KEY
    references; updatable views need the mapping back to their parent
    tables. This module carries exactly that metadata. *)

type column = {
  col_name : string;
  col_ty : Value.ty;
  primary_key : bool;
  auto_increment : bool;
  not_null : bool;
  unique : bool;  (** enforced one-column UNIQUE constraint *)
  references : (string * string) option;
      (** [Some (table, column)] for a FOREIGN KEY reference. *)
}

val column :
  ?primary_key:bool ->
  ?auto_increment:bool ->
  ?not_null:bool ->
  ?unique:bool ->
  ?references:string * string ->
  string ->
  Value.ty ->
  column

type table = {
  tbl_name : string;
  tbl_columns : column list;
}

val table : string -> column list -> table

val find_column : table -> string -> column option

val column_names : table -> string list

val primary_key_columns : table -> string list

val unique_columns : table -> string list
(** UNIQUE (non-PK) columns, which get hash indexes and duplicate checks. *)

val auto_increment_column : table -> string option

val foreign_keys : table -> (string * string * string) list
(** [(local_column, foreign_table, foreign_column)] triples. *)

val qualified : string -> string -> string
(** [qualified tbl col] is ["tbl.col"], the canonical column key used
    throughout the dependency analysis. *)

val schema_column : string -> string
(** [schema_column name] is ["_S.name"]: the virtual schema-monitoring
    column for table/view/procedure/trigger [name] (§4.2 "_S"). *)
