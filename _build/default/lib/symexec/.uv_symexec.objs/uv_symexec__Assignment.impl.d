lib/symexec/assignment.ml: Float Format List Map Option Printf String Sym
