lib/symexec/assignment.mli: Format Sym
