lib/symexec/solver.ml: Array Assignment Hashtbl List Option Sym Uv_util
