lib/symexec/solver.mli: Assignment Sym
