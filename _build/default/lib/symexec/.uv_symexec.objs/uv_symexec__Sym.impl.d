lib/symexec/sym.ml: Float Format List Printf Stdlib String
