lib/symexec/sym.mli: Format
