type scalar = Num of float | Str of string | Bool of bool | Null

module M = Map.Make (struct
  type t = Sym.t

  let compare = Sym.compare
end)

type t = scalar M.t

let empty = M.empty
let of_list l = List.fold_left (fun m (k, v) -> M.add k v m) M.empty l
let set t k v = M.add k v t
let get t k = M.find_opt k t
let get_or t k ~default = Option.value (M.find_opt k t) ~default
let bindings t = M.bindings t

let scalar_truthy = function
  | Num f -> f <> 0.0 && not (Float.is_nan f)
  | Str s -> s <> ""
  | Bool b -> b
  | Null -> false

let scalar_num = function
  | Num f -> f
  | Str s -> ( try float_of_string (String.trim s) with _ -> Float.nan)
  | Bool b -> if b then 1.0 else 0.0
  | Null -> 0.0

let scalar_str = function
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
      else Printf.sprintf "%.12g" f
  | Str s -> s
  | Bool b -> string_of_bool b
  | Null -> "null"

let scalar_equal a b =
  match (a, b) with
  | Null, Null -> true
  | Null, _ | _, Null -> false
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | _ ->
      let x = scalar_num a and y = scalar_num b in
      (not (Float.is_nan x)) && (not (Float.is_nan y)) && x = y

let scalar_compare a b =
  match (a, b) with
  | Str x, Str y -> String.compare x y
  | _ -> Float.compare (scalar_num a) (scalar_num b)

let rec eval t (e : Sym.t) : scalar =
  match M.find_opt e t with
  | Some v -> v
  | None -> (
      match e with
      | Sym.Input _ | Sym.Db_result _ | Sym.Blackbox _ | Sym.Field _ | Sym.Item _
        ->
          Num 0.0
      | Sym.Const_num f -> Num f
      | Sym.Const_str s -> Str s
      | Sym.Const_bool b -> Bool b
      | Sym.Const_null -> Null
      | Sym.Unop ("!", a) -> Bool (not (scalar_truthy (eval t a)))
      | Sym.Unop ("-", a) -> Num (-.scalar_num (eval t a))
      | Sym.Unop (_, a) -> eval t a
      | Sym.Binop (op, a, b) -> (
          let va = eval t a and vb = eval t b in
          match op with
          | "str.++" -> Str (scalar_str va ^ scalar_str vb)
          | "+" -> (
              match (va, vb) with
              | Str _, _ | _, Str _ -> Str (scalar_str va ^ scalar_str vb)
              | _ -> Num (scalar_num va +. scalar_num vb))
          | "-" -> Num (scalar_num va -. scalar_num vb)
          | "*" -> Num (scalar_num va *. scalar_num vb)
          | "/" -> Num (scalar_num va /. scalar_num vb)
          | "%" -> Num (Float.rem (scalar_num va) (scalar_num vb))
          | "==" -> Bool (scalar_equal va vb)
          | "!=" -> Bool (not (scalar_equal va vb))
          | "<" -> Bool (scalar_compare va vb < 0)
          | "<=" -> Bool (scalar_compare va vb <= 0)
          | ">" -> Bool (scalar_compare va vb > 0)
          | ">=" -> Bool (scalar_compare va vb >= 0)
          | "&&" -> if scalar_truthy va then vb else va
          | "||" -> if scalar_truthy va then va else vb
          | _ -> Null))

let pp_scalar fmt = function
  | Num f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | Bool b -> Format.pp_print_bool fmt b
  | Null -> Format.pp_print_string fmt "null"

let pp fmt t =
  Format.fprintf fmt "{";
  List.iter
    (fun (k, v) -> Format.fprintf fmt "%a=%a; " Sym.pp k pp_scalar v)
    (bindings t);
  Format.fprintf fmt "}"
