(** Assignments of concrete values to symbolic leaves — a testcase.

    Concrete values are a tiny dynamic scalar type mirroring what the
    application language can receive from its inputs and database calls. *)

type scalar = Num of float | Str of string | Bool of bool | Null

type t

val empty : t
val of_list : (Sym.t * scalar) list -> t
val set : t -> Sym.t -> scalar -> t
val get : t -> Sym.t -> scalar option
val get_or : t -> Sym.t -> default:scalar -> scalar
val bindings : t -> (Sym.t * scalar) list

val scalar_truthy : scalar -> bool
val scalar_num : scalar -> float
val scalar_str : scalar -> string
val scalar_equal : scalar -> scalar -> bool
(** JS-style loose equality (numeric strings compare numerically). *)

val scalar_compare : scalar -> scalar -> int

val eval : t -> Sym.t -> scalar
(** Evaluate a symbolic expression under the assignment; unassigned
    leaves default to [Num 0]. *)

val pp_scalar : Format.formatter -> scalar -> unit
val pp : Format.formatter -> t -> unit
