type constraint_ = { cond : Sym.t; want : bool }

let satisfies asg cs =
  List.for_all
    (fun { cond; want } ->
      Assignment.scalar_truthy (Assignment.eval asg cond) = want)
    cs

(* Harvest candidate scalars for each leaf symbol from the constraints:
   any constant that appears in a comparison against (an expression
   containing) the leaf, plus neighbours and generic seeds. *)
let harvest_candidates cs =
  let tbl : (Sym.t, Assignment.scalar list ref) Hashtbl.t = Hashtbl.create 16 in
  let bucket leaf =
    match Hashtbl.find_opt tbl leaf with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.replace tbl leaf b;
        b
  in
  let add leaf (v : Assignment.scalar) =
    let b = bucket leaf in
    if not (List.mem v !b) then b := v :: !b
  in
  let scalar_of_const = function
    | Sym.Const_num f -> Some (Assignment.Num f)
    | Sym.Const_str s -> Some (Assignment.Str s)
    | Sym.Const_bool b -> Some (Assignment.Bool b)
    | Sym.Const_null -> Some Assignment.Null
    | _ -> None
  in
  let note_pair a b =
    (* if one side reduces to a constant and the other contains leaves,
       offer the constant (and numeric neighbours) to those leaves *)
    match scalar_of_const b with
    | Some v ->
        List.iter
          (fun leaf ->
            add leaf v;
            match v with
            | Assignment.Num f ->
                add leaf (Assignment.Num (f +. 1.0));
                add leaf (Assignment.Num (f -. 1.0))
            | Assignment.Str s -> add leaf (Assignment.Str (s ^ "_x"))
            | _ -> ())
          (Sym.base_symbols a)
    | None -> ()
  in
  let rec walk (e : Sym.t) =
    match e with
    | Sym.Binop (("==" | "!=" | "<" | "<=" | ">" | ">="), a, b) ->
        note_pair a b;
        note_pair b a;
        walk a;
        walk b
    | Sym.Binop (_, a, b) ->
        walk a;
        walk b
    | Sym.Unop (_, a) -> walk a
    | _ -> ()
  in
  List.iter (fun c -> walk c.cond) cs;
  (* generic seeds for every leaf mentioned anywhere *)
  let all_leaves =
    List.concat_map (fun c -> Sym.base_symbols c.cond) cs
    |> List.sort_uniq Sym.compare
  in
  List.iter
    (fun leaf ->
      add leaf (Assignment.Num 0.0);
      add leaf (Assignment.Num 1.0);
      add leaf (Assignment.Str "");
      add leaf (Assignment.Str "uv");
      add leaf (Assignment.Bool true);
      add leaf (Assignment.Bool false))
    all_leaves;
  (all_leaves, fun leaf -> Option.fold ~none:[] ~some:( ! ) (Hashtbl.find_opt tbl leaf))

let solve ?(seed = 7) ?(max_tries = 2000) cs =
  if cs = [] then Some Assignment.empty
  else begin
    let leaves, candidates = harvest_candidates cs in
    (* bounded product search over candidates, depth-first with early
       pruning on constraints whose leaves are all assigned *)
    let exception Found of Assignment.t in
    let leaf_arr = Array.of_list leaves in
    let n = Array.length leaf_arr in
    let budget = ref (max_tries * 4) in
    let rec assign i asg =
      if !budget <= 0 then ()
      else if i >= n then begin
        decr budget;
        if satisfies asg cs then raise (Found asg)
      end
      else
        List.iter
          (fun v ->
            if !budget > 0 then begin
              decr budget;
              assign (i + 1) (Assignment.set asg leaf_arr.(i) v)
            end)
          (candidates leaf_arr.(i))
    in
    try
      assign 0 Assignment.empty;
      (* randomised fallback for arithmetic shapes *)
      let prng = Uv_util.Prng.create seed in
      let random_scalar () =
        match Uv_util.Prng.int prng 4 with
        | 0 -> Assignment.Num (float_of_int (Uv_util.Prng.int_range prng (-100) 100))
        | 1 -> Assignment.Num (Uv_util.Prng.float prng 1.0)
        | 2 -> Assignment.Str (Uv_util.Prng.alpha_string prng 4)
        | _ -> Assignment.Bool (Uv_util.Prng.bool prng)
      in
      let rec try_random k =
        if k >= max_tries then None
        else begin
          let asg =
            Array.fold_left
              (fun acc leaf -> Assignment.set acc leaf (random_scalar ()))
              Assignment.empty leaf_arr
          in
          if satisfies asg cs then Some asg else try_random (k + 1)
        end
      in
      try_random 0
    with Found asg -> Some asg
  end
