(** Constraint solver for branch flipping (§3.2 step 2).

    Stands in for the paper's Z3: given a path condition — a conjunction
    of boolean symbolic expressions that must each evaluate to a required
    truth value — find an assignment of concrete scalars to the leaf
    symbols, or report failure (the paper's "unreached path" case, which
    the transpiler turns into a SIGNAL stub).

    Strategy: constraint-directed candidate synthesis. For every leaf we
    harvest candidate values from the constraints themselves (constants
    compared against the leaf, their neighbours ±1, and generic seeds like
    0, 1, "" and a random string), then search the small candidate product
    space; a bounded randomised search covers arithmetic constraints the
    harvest misses. This decides every branch shape the paper's
    benchmarks produce (equality, ordering, membership, boolean
    combinations over inputs and database results). *)

type constraint_ = { cond : Sym.t; want : bool }

val solve :
  ?seed:int ->
  ?max_tries:int ->
  constraint_ list ->
  Assignment.t option
(** [solve cs] finds an assignment satisfying every constraint, starting
    from candidate harvesting and falling back to randomised search
    ([max_tries], default 2000). *)

val satisfies : Assignment.t -> constraint_ list -> bool
