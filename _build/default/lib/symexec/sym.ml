type t =
  | Input of string
  | Db_result of int
  | Blackbox of string * int
  | Const_num of float
  | Const_str of string
  | Const_bool of bool
  | Const_null
  | Binop of string * t * t
  | Unop of string * t
  | Field of t * string
  | Item of t * int

let compare = Stdlib.compare
let equal a b = compare a b = 0

let rec to_string = function
  | Input name -> "$" ^ name
  | Db_result k -> Printf.sprintf "SQL_out%d" k
  | Blackbox (api, k) -> Printf.sprintf "bb:%s#%d" api k
  | Const_num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.12g" f
  | Const_str s -> "\"" ^ String.escaped s ^ "\""
  | Const_bool b -> string_of_bool b
  | Const_null -> "null"
  | Binop (op, a, b) -> Printf.sprintf "(%s %s %s)" (to_string a) op (to_string b)
  | Unop (op, a) -> Printf.sprintf "(%s%s)" op (to_string a)
  | Field (a, f) -> Printf.sprintf "%s.{%s}" (to_string a) f
  | Item (a, i) -> Printf.sprintf "%s[%d]" (to_string a) i

let rec is_pure_leaf = function
  | Input _ | Db_result _ | Blackbox _ -> true
  | Field (a, _) | Item (a, _) -> is_pure_leaf a
  | _ -> false

let is_leaf = is_pure_leaf

let base_symbols e =
  let acc = ref [] in
  let add s = if not (List.exists (equal s) !acc) then acc := s :: !acc in
  let rec go e =
    if is_pure_leaf e then add e
    else
      match e with
      | Binop (_, a, b) ->
          go a;
          go b
      | Unop (_, a) -> go a
      | Field (a, _) | Item (a, _) -> go a
      | _ -> ()
  in
  go e;
  List.rev !acc

let negate = function Unop ("!", e) -> e | e -> Unop ("!", e)

let pp fmt e = Format.pp_print_string fmt (to_string e)
