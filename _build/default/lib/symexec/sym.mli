(** Symbolic expressions for dynamic symbolic execution (§3.1).

    Symbols are exactly the three classes the paper enumerates:
    - {!Input}: an application-level transaction's input parameter;
    - {!Db_result}: the return value of a database API call (SQL_out_k);
    - {!Blackbox}: the return value of a non-deterministic or external
      native API ([Math.random()], [http.send()], ...).

    All other values concretise during execution. Expressions are built by
    the instrumented interpreter's hooks and rendered to SQL by the
    transpiler. *)

type t =
  | Input of string  (** transaction parameter name *)
  | Db_result of int  (** k-th database call in the transaction *)
  | Blackbox of string * int  (** API name, occurrence index *)
  | Const_num of float
  | Const_str of string
  | Const_bool of bool
  | Const_null
  | Binop of string * t * t
      (** operator names: "+", "-", "*", "/", "%", "==", "!=", "<", "<=",
          ">", ">=", "&&", "||", "str.++" *)
  | Unop of string * t  (** "!", "-" *)
  | Field of t * string  (** member access on a symbolic record *)
  | Item of t * int  (** index access on a symbolic array *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
(** Stable serialisation (assignment keys, debugging). *)

val base_symbols : t -> t list
(** The leaf symbols ({!Input}/{!Db_result}/{!Blackbox} roots, including
    [Field]/[Item] chains, which are treated as independent leaves). *)

val is_leaf : t -> bool
(** True for the assignable leaves returned by [base_symbols]. *)

val negate : t -> t
(** Logical negation, simplifying double negation. *)

val pp : Format.formatter -> t -> unit
