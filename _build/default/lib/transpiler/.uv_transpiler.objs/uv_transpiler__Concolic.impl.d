lib/transpiler/concolic.ml: Assignment Buffer Float Hashtbl List Option Printf Queue Solver String Sym Trace Uv_applang Uv_sql Uv_symexec
