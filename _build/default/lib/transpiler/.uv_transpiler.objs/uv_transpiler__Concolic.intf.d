lib/transpiler/concolic.mli: Assignment Sym Trace Uv_applang Uv_sql Uv_symexec
