lib/transpiler/runtime.ml: Array Hashtbl List Printf String Transpile Uv_applang Uv_db Uv_sql Uv_symexec Uv_util Value
