lib/transpiler/runtime.mli: Transpile Uv_applang Uv_db Uv_sql Value
