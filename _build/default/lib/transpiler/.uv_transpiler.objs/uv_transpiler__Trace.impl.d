lib/transpiler/trace.ml: Format List Option Sym Uv_sql Uv_symexec
