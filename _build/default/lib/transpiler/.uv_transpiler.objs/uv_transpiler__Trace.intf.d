lib/transpiler/trace.mli: Format Sym Uv_sql Uv_symexec
