lib/transpiler/transpile.ml: Concolic Float List Option Printf String Sym Trace Uv_applang Uv_sql Uv_symexec
