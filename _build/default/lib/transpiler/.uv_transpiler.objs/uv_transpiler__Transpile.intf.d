lib/transpiler/transpile.mli: Concolic Sym Uv_applang Uv_sql Uv_symexec
