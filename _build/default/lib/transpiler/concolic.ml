open Uv_symexec
module V = Uv_applang.Value
module I = Uv_applang.Interp

type exploration = {
  tree : Trace.tree;
  params : string list;
  runs : int;
  solver_failures : int;
  runtime_failures : int;
  observed_types : (Sym.t * Uv_sql.Value.ty) list;
}

let sentinel_str i = Printf.sprintf "\x01H%d\x01" i
let sentinel_num i = 950_000_000 + (i * 1_000)

(* ------------------------------------------------------------------ *)
(* Re-symbolisation: replace sentinel literals in a parsed statement by
   hole variables.                                                      *)
(* ------------------------------------------------------------------ *)

(* split a text literal on embedded string sentinels ("\x01H<k>\x01") *)
let split_sentinels s =
  let n = String.length s in
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      parts := `Text (Buffer.contents buf) :: !parts;
      Buffer.clear buf
    end
  in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '\x01' then begin
      match String.index_from_opt s (!i + 1) '\x01' with
      | Some j ->
          flush_text ();
          parts := `Sentinel (String.sub s !i (j - !i + 1)) :: !parts;
          i := j + 1
      | None ->
          Buffer.add_char buf s.[!i];
          incr i
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  flush_text ();
  List.rev !parts

let rec resym_expr holes (e : Uv_sql.Ast.expr) : Uv_sql.Ast.expr =
  let open Uv_sql.Ast in
  match e with
  | Lit (Uv_sql.Value.Text s) -> (
      match List.assoc_opt (`S s) holes with
      | Some name -> Var name
      | None -> (
          (* a numeric sentinel rendered inside a quoted context *)
          match int_of_string_opt s with
          | Some n -> (
              match List.assoc_opt (`N n) holes with
              | Some name -> Var name
              | None -> e)
          | None -> (
              (* embedded sentinels: rebuild as CONCAT *)
              match split_sentinels s with
              | [ `Text _ ] | [] -> e
              | parts ->
                  let resolved =
                    List.map
                      (function
                        | `Text t -> Lit (Uv_sql.Value.Text t)
                        | `Sentinel sent -> (
                            match List.assoc_opt (`S sent) holes with
                            | Some name -> Var name
                            | None -> Lit (Uv_sql.Value.Text sent)))
                      parts
                  in
                  (match resolved with
                  | [ single ] -> single
                  | _ -> Fun_call ("CONCAT", resolved)))))
  | Lit (Uv_sql.Value.Int n) -> (
      match List.assoc_opt (`N n) holes with
      | Some name -> Var name
      | None -> e)
  | Lit _ | Col _ | Var _ -> e
  | Binop (op, a, b) -> Binop (op, resym_expr holes a, resym_expr holes b)
  | Unop (op, a) -> Unop (op, resym_expr holes a)
  | Fun_call (f, args) -> Fun_call (f, List.map (resym_expr holes) args)
  | Subselect s -> Subselect (resym_select holes s)
  | Exists s -> Exists (resym_select holes s)
  | In_list (a, items) ->
      In_list (resym_expr holes a, List.map (resym_expr holes) items)
  | Between (a, b, c) ->
      Between (resym_expr holes a, resym_expr holes b, resym_expr holes c)
  | Is_null (a, p) -> Is_null (resym_expr holes a, p)

and resym_select holes (s : Uv_sql.Ast.select) : Uv_sql.Ast.select =
  let open Uv_sql.Ast in
  {
    s with
    sel_items =
      List.map
        (function
          | Star -> Star
          | Item (e, a) -> Item (resym_expr holes e, a))
        s.sel_items;
    sel_joins =
      List.map (fun j -> { j with join_on = resym_expr holes j.join_on }) s.sel_joins;
    sel_where = Option.map (resym_expr holes) s.sel_where;
    sel_group_by = List.map (resym_expr holes) s.sel_group_by;
    sel_having = Option.map (resym_expr holes) s.sel_having;
    sel_order_by = List.map (fun (e, d) -> (resym_expr holes e, d)) s.sel_order_by;
  }

let rec resym_stmt holes (s : Uv_sql.Ast.stmt) : Uv_sql.Ast.stmt =
  let open Uv_sql.Ast in
  match s with
  | Select sel -> Select (resym_select holes sel)
  | Insert { table; columns; values } ->
      Insert
        { table; columns; values = List.map (List.map (resym_expr holes)) values }
  | Insert_select { table; columns; query } ->
      Insert_select { table; columns; query = resym_select holes query }
  | Update { table; assigns; where } ->
      Update
        {
          table;
          assigns = List.map (fun (c, e) -> (c, resym_expr holes e)) assigns;
          where = Option.map (resym_expr holes) where;
        }
  | Delete { table; where } ->
      Delete { table; where = Option.map (resym_expr holes) where }
  | Call (name, args) -> Call (name, List.map (resym_expr holes) args)
  | Transaction stmts -> Transaction (List.map (resym_stmt holes) stmts)
  | other -> other

(* ------------------------------------------------------------------ *)
(* Type observation                                                     *)
(* ------------------------------------------------------------------ *)

let widen old fresh =
  let rank = function
    | Uv_sql.Value.Ttext -> 3
    | Uv_sql.Value.Tfloat -> 2
    | Uv_sql.Value.Tint -> 1
    | Uv_sql.Value.Tbool -> 0
  in
  if rank fresh > rank old then fresh else old

let ty_of_scalar = function
  | Assignment.Num f ->
      if Float.is_integer f then Uv_sql.Value.Tint else Uv_sql.Value.Tfloat
  | Assignment.Str _ -> Uv_sql.Value.Ttext
  | Assignment.Bool _ -> Uv_sql.Value.Tbool
  | Assignment.Null -> Uv_sql.Value.Tint

(* ------------------------------------------------------------------ *)
(* One concolic run                                                     *)
(* ------------------------------------------------------------------ *)

exception Run_failed of string

let run_once ~program ~name ~params ~asg ~types =
  let events = ref [] in
  let db_counter = ref 0 in
  let bb_counters : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let note_type leaf scalar =
    let ty = ty_of_scalar scalar in
    match Hashtbl.find_opt types leaf with
    | Some old -> Hashtbl.replace types leaf (widen old ty)
    | None -> Hashtbl.replace types leaf ty
  in
  let sym_access leaf =
    let scalar = Assignment.get_or asg leaf ~default:(Assignment.Num 0.0) in
    note_type leaf scalar;
    { V.v = V.of_scalar scalar; sym = Some leaf; segs = None }
  in
  let sql_exec (cv : V.cv) =
    let k = !db_counter in
    incr db_counter;
    let segs = V.segs_of cv in
    (* render with sentinels, remembering the reverse mapping; string
       context is tracked by quote parity so consecutive holes inside one
       quoted literal are all rendered as string sentinels *)
    let holes = ref [] in
    let buf = Buffer.create 64 in
    let in_string = ref false in
    List.iter
      (fun seg ->
        match seg with
        | V.S_text s ->
            String.iter (fun c -> if c = '\'' then in_string := not !in_string) s;
            Buffer.add_string buf s
        | V.S_hole sym ->
            let i = List.length !holes in
            let scalar = Assignment.eval asg sym in
            let hole_name = Printf.sprintf "__h%d" i in
            if !in_string then begin
              (* an application that quotes the hole treats it as a string:
                 widen the contributing input/blackbox leaves to TEXT *)
              List.iter
                (fun leaf -> Hashtbl.replace types leaf Uv_sql.Value.Ttext)
                (Sym.base_symbols sym);
              holes := (`S (sentinel_str i), (hole_name, sym)) :: !holes;
              Buffer.add_string buf (sentinel_str i)
            end
            else
              match scalar with
              | Assignment.Str _ ->
                  holes := (`S (sentinel_str i), (hole_name, sym)) :: !holes;
                  Buffer.add_string buf (sentinel_str i)
              | _ ->
                  holes := (`N (sentinel_num i), (hole_name, sym)) :: !holes;
                  Buffer.add_string buf (string_of_int (sentinel_num i)))
      segs;
    let text = Buffer.contents buf in
    let parsed =
      try Uv_sql.Parser.parse_stmt text
      with Uv_sql.Parser.Parse_error msg ->
        raise (Run_failed ("generated SQL failed to parse: " ^ msg ^ " in " ^ text))
    in
    let sentinel_map = List.map (fun (s, (n, _)) -> (s, n)) !holes in
    let stmt = resym_stmt sentinel_map parsed in
    let hole_syms = List.map snd !holes in
    events :=
      Trace.E_sql { Trace.call_index = k; stmt; holes = List.rev hole_syms }
      :: !events;
    let leaf = Sym.Db_result k in
    { V.v = V.Sym_container leaf; sym = Some leaf; segs = None }
  in
  let blackbox api _argv =
    let occ = Option.value (Hashtbl.find_opt bb_counters api) ~default:0 in
    Hashtbl.replace bb_counters api (occ + 1);
    let leaf = Sym.Blackbox (api, occ) in
    events := Trace.E_blackbox (api, occ) :: !events;
    if api = "http.send" then
      Some { V.v = V.Sym_container leaf; sym = Some leaf; segs = None }
    else begin
      let default =
        match api with
        | "Math.random" -> Assignment.Num 0.5
        | "Date.getTime" | "Date.now" -> Assignment.Num 1.7e12
        | _ -> Assignment.Num 0.0
      in
      let scalar = Assignment.get_or asg leaf ~default in
      note_type leaf scalar;
      Some { V.v = V.of_scalar scalar; sym = Some leaf; segs = None }
    end
  in
  let on_branch cond taken = events := Trace.E_branch (cond, taken) :: !events in
  let hooks = { I.sql_exec; blackbox; sym_access; on_branch } in
  let interp = I.create ~hooks () in
  (try I.load interp program
   with I.Runtime_error msg -> raise (Run_failed ("program load failed: " ^ msg)));
  let args =
    List.mapi
      (fun i p ->
        let leaf = Sym.Input p in
        let default = Assignment.Num (float_of_int (987_000 + i)) in
        let scalar = Assignment.get_or asg leaf ~default in
        note_type leaf scalar;
        { V.v = V.of_scalar scalar; sym = Some leaf; segs = None })
      params
  in
  (try ignore (I.call_function interp name args)
   with I.Runtime_error msg -> raise (Run_failed msg));
  List.rev !events

(* ------------------------------------------------------------------ *)
(* Exploration loop                                                     *)
(* ------------------------------------------------------------------ *)

let decisions_signature decisions =
  String.concat "|"
    (List.map
       (fun (c, taken) -> (if taken then "+" else "-") ^ Sym.to_string c)
       decisions)

let explore ?(max_runs = 64) ?(max_flip_depth = 48) ?(seed = 23) ?(seeds = [])
    ~program ~name () =
  let params =
    match
      List.find_opt (fun (n, _, _) -> String.equal n name)
        (Uv_applang.Ast.functions program)
    with
    | Some (_, params, _) -> params
    | None -> invalid_arg ("Concolic.explore: unknown function " ^ name)
  in
  let types : (Sym.t, Uv_sql.Value.ty) Hashtbl.t = Hashtbl.create 16 in
  let attempted : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let explored_paths : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter (fun s -> Queue.push s queue) seeds;
  Queue.push Assignment.empty queue;
  let traces = ref [] in
  let runs = ref 0 in
  let solver_failures = ref 0 in
  let runtime_failures = ref 0 in
  while (not (Queue.is_empty queue)) && !runs < max_runs do
    let asg = Queue.pop queue in
    incr runs;
    match run_once ~program ~name ~params ~asg ~types with
    | exception Run_failed _ -> incr runtime_failures
    | trace ->
        let decisions = Trace.branch_decisions trace in
        let sig_full = decisions_signature decisions in
        if not (Hashtbl.mem explored_paths sig_full) then begin
          Hashtbl.replace explored_paths sig_full ();
          traces := trace :: !traces
        end;
        (* flip each decision prefix *)
        let rec flips prefix depth = function
          | [] -> ()
          | (cond, taken) :: rest ->
              if depth < max_flip_depth then begin
                let flipped = prefix @ [ (cond, not taken) ] in
                let key = decisions_signature flipped in
                if not (Hashtbl.mem attempted key) then begin
                  Hashtbl.replace attempted key ();
                  let constraints =
                    List.map
                      (fun (c, want) -> { Solver.cond = c; want })
                      flipped
                  in
                  match Solver.solve ~seed:(seed + depth) constraints with
                  | Some asg' -> Queue.push asg' queue
                  | None -> incr solver_failures
                end;
                flips (prefix @ [ (cond, taken) ]) (depth + 1) rest
              end
        in
        flips [] 0 decisions
  done;
  let tree = Trace.of_traces (List.rev !traces) in
  {
    tree;
    params;
    runs = !runs;
    solver_failures = !solver_failures;
    runtime_failures = !runtime_failures;
    observed_types = Hashtbl.fold (fun k v acc -> (k, v) :: acc) types [];
  }
