(** The concolic (dynamic symbolic execution) driver (§3.1–§3.2).

    Executes an application-level transaction repeatedly through the
    instrumented MiniJS interpreter. Each run is fully concrete (driven by
    a testcase assignment) while hooks shadow inputs, database results and
    blackbox APIs symbolically and collect the path condition. After each
    run, every branch decision is negated in turn and handed to the
    solver; solved assignments become new testcases. Exploration ends
    when no unattempted flips remain or the run budget is exhausted
    (path-explosion guard, §3.3). *)

open Uv_symexec

type exploration = {
  tree : Trace.tree;
  params : string list;  (** the transaction's parameters, declared order *)
  runs : int;  (** concrete executions performed *)
  solver_failures : int;  (** flips the solver could not satisfy *)
  runtime_failures : int;  (** testcases that crashed the application *)
  observed_types : (Sym.t * Uv_sql.Value.ty) list;
      (** concrete types observed per leaf symbol across all runs,
          widened (Text > Float > Int > Bool) — drives the transpiled
          procedure's parameter and variable types (§C.1) *)
}

val explore :
  ?max_runs:int ->
  ?max_flip_depth:int ->
  ?seed:int ->
  ?seeds:Assignment.t list ->
  program:Uv_applang.Ast.program ->
  name:string ->
  unit ->
  exploration
(** Explore the top-level function [name] of [program]. [seeds] are
    extra initial testcases tried before the default one — the delta-DSE
    re-analysis (§3.3) passes the concrete inputs that reached an
    unexplored-path stub during live operation. Raises
    [Invalid_argument] if the function is not declared. *)

val sentinel_str : int -> string
(** The string sentinel used to recover hole positions from dynamically
    built SQL (exposed for tests). *)

val sentinel_num : int -> int
