open Uv_sql
module V = Uv_applang.Value
module I = Uv_applang.Interp

type mode = Raw | Transpiled

type invocation = {
  inv_tag : string;
  inv_txn : string;
  inv_args : Value.t list;
  inv_blackbox : (string * Value.t) list;
}

type t = {
  eng : Uv_db.Engine.t;
  prog : Uv_applang.Ast.program;
  transpiled_tbl : (string, Transpile.t) Hashtbl.t;
  mutable txn_counter : int;
  prng : Uv_util.Prng.t;
  mutable sim_time : float;
  mutable invocation_log : invocation list; (* reversed *)
  mutable fallbacks : int;
  (* per-invocation state *)
  mutable current_tag : string option;
  mutable draws : (string * Value.t) list; (* reversed *)
  mutable forced_draws : (string * Value.t) list;
  mutable forced_stmt_nondet : Value.t list list;
}

let create_from_program eng prog =
  {
    eng;
    prog;
    transpiled_tbl = Hashtbl.create 16;
    txn_counter = 0;
    prng = Uv_util.Prng.create 101;
    sim_time = 1.7e12;
    invocation_log = [];
    fallbacks = 0;
    current_tag = None;
    draws = [];
    forced_draws = [];
    forced_stmt_nondet = [];
  }

let create eng ~source =
  {
    eng;
    prog = Uv_applang.Parser.parse_program source;
    transpiled_tbl = Hashtbl.create 16;
    txn_counter = 0;
    prng = Uv_util.Prng.create 101;
    sim_time = 1.7e12;
    invocation_log = [];
    fallbacks = 0;
    current_tag = None;
    draws = [];
    forced_draws = [];
    forced_stmt_nondet = [];
  }

let program t = t.prog
let engine t = t.eng
let transpiled t name = Hashtbl.find_opt t.transpiled_tbl name
let invocations t = List.rev t.invocation_log
let signal_fallbacks t = t.fallbacks

(* ------------------------------------------------------------------ *)
(* Blackbox draws                                                       *)
(* ------------------------------------------------------------------ *)

let draw_blackbox t api =
  let v =
    match t.forced_draws with
    | (api', v) :: rest when String.equal api api' ->
        t.forced_draws <- rest;
        v
    | _ -> (
        match api with
        | "Math.random" -> Value.Float (Uv_util.Prng.float t.prng 1.0)
        | "Date.getTime" | "Date.now" ->
            t.sim_time <- t.sim_time +. 1.0;
            Value.Float t.sim_time
        | "http.send" -> Value.Int 1 (* response code *)
        | _ -> Value.Int 0)
  in
  t.draws <- (api, v) :: t.draws;
  v

(* ------------------------------------------------------------------ *)
(* Raw-mode hooks: every SQL_exec is a client statement                 *)
(* ------------------------------------------------------------------ *)

let result_to_rows (r : Uv_db.Engine.result) : V.cv =
  let row_obj row =
    let tbl = Hashtbl.create (List.length r.Uv_db.Engine.columns) in
    List.iteri
      (fun i col ->
        if i < Array.length row then
          Hashtbl.replace tbl col (V.conc (V.of_sql_value row.(i))))
      r.Uv_db.Engine.columns;
    V.conc (V.Obj tbl)
  in
  V.conc (V.Arr (ref (List.map row_obj r.Uv_db.Engine.rows)))

let raw_hooks t =
  {
    I.sql_exec =
      (fun cv ->
        let text = V.to_display cv.V.v in
        let nondet =
          match t.forced_stmt_nondet with
          | nd :: rest ->
              t.forced_stmt_nondet <- rest;
              Some nd
          | [] -> None
        in
        let result =
          try Uv_db.Engine.exec_sql ?app_txn:t.current_tag ?nondet t.eng text with
          | Uv_db.Engine.Sql_error msg ->
              raise (I.Runtime_error ("SQL error: " ^ msg))
          | Uv_sql.Parser.Parse_error msg ->
              raise (I.Runtime_error ("SQL parse error: " ^ msg ^ " in " ^ text))
        in
        result_to_rows result);
    blackbox =
      (fun api _argv ->
        match draw_blackbox t api with
        | Value.Int 1 when String.equal api "http.send" ->
            Some
              (V.conc
                 (V.Obj
                    (let tbl = Hashtbl.create 2 in
                     Hashtbl.replace tbl "code" (V.num 1.0);
                     Hashtbl.replace tbl "error" (V.str "");
                     tbl)))
        | v -> Some (V.conc (V.of_sql_value v)));
    sym_access = (fun _ -> V.num 0.0);
    on_branch = (fun _ _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Invocation                                                           *)
(* ------------------------------------------------------------------ *)

let fresh_tag t name =
  t.txn_counter <- t.txn_counter + 1;
  Printf.sprintf "%s#%d" name t.txn_counter

let run_raw t name (args : Value.t list) =
  let interp = I.create ~hooks:(raw_hooks t) () in
  I.load interp t.prog;
  let argv = List.map (fun v -> V.conc (V.of_sql_value v)) args in
  match I.call_function interp name argv with
  | _ -> Ok Uv_db.Engine.empty_result
  | exception I.Runtime_error msg -> Error msg

(* Unexplored dynamism discovered at runtime (§3.3/§C): re-run the DSE
   seeded with the inputs that exposed it and delta-update the installed
   procedure when the analysis actually improved. *)
let delta_update t (tr : Transpile.t) (args : Value.t list) =
  try
    let scalar_of = function
      | Value.Int i -> Uv_symexec.Assignment.Num (float_of_int i)
      | Value.Float f -> Uv_symexec.Assignment.Num f
      | Value.Text s -> Uv_symexec.Assignment.Str s
      | Value.Bool b -> Uv_symexec.Assignment.Bool b
      | Value.Null -> Uv_symexec.Assignment.Null
    in
    let seed_asg =
      List.fold_left2
        (fun acc p v ->
          Uv_symexec.Assignment.set acc (Uv_symexec.Sym.Input p) (scalar_of v))
        Uv_symexec.Assignment.empty tr.Transpile.app_params args
    in
    let fresh =
      Transpile.transpile ~seeds:[ seed_asg ] ~program:t.prog
        ~name:tr.Transpile.txn_name ()
    in
    let improved =
      fresh.Transpile.unexplored < tr.Transpile.unexplored
      || fresh.Transpile.paths > tr.Transpile.paths
      || fresh.Transpile.procedure <> tr.Transpile.procedure
    in
    if improved then begin
      Hashtbl.replace t.transpiled_tbl fresh.Transpile.txn_name fresh;
      ignore
        (Uv_db.Engine.exec t.eng
           (Uv_sql.Ast.Drop_procedure fresh.Transpile.proc_name));
      ignore (Uv_db.Engine.exec t.eng fresh.Transpile.procedure)
    end
  with Invalid_argument _ | Failure _ -> ()

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let run_transpiled t (tr : Transpile.t) (args : Value.t list) =
  (* evaluate blackbox parameters natively, in declaration order *)
  let bb_args =
    List.map (fun (_, api, _) -> draw_blackbox t api) tr.Transpile.blackbox_params
  in
  let all = args @ bb_args in
  let call =
    Uv_sql.Ast.Call
      (tr.Transpile.proc_name, List.map (fun v -> Uv_sql.Ast.Lit v) all)
  in
  let fallback () =
    t.fallbacks <- t.fallbacks + 1;
    let result = run_raw t tr.Transpile.txn_name args in
    delta_update t tr args;
    result
  in
  match Uv_db.Engine.exec ?app_txn:t.current_tag t.eng call with
  | r -> Ok r
  | exception Uv_db.Engine.Sql_error msg ->
      (* a parameter-coercion failure is §C.1's dynamic typing discovered
         in live operation: fall back and delta-analyse *)
      if starts_with "cannot coerce" msg then fallback () else Error msg
  | exception Uv_db.Engine.Signal_raised state ->
      if String.equal state "45000" then
        (* unexplored-path stub hit (§3.3) *)
        fallback ()
      else Error ("SIGNAL " ^ state)

let invoke_inner ?(stmt_nondet = []) t ~mode name args ~forced =
  let tag = fresh_tag t name in
  t.current_tag <- Some tag;
  t.draws <- [];
  t.forced_draws <- forced;
  t.forced_stmt_nondet <- stmt_nondet;
  let result =
    match mode with
    | Raw -> run_raw t name args
    | Transpiled -> (
        match Hashtbl.find_opt t.transpiled_tbl name with
        | Some tr -> run_transpiled t tr args
        | None -> run_raw t name args)
  in
  t.invocation_log <-
    {
      inv_tag = tag;
      inv_txn = name;
      inv_args = args;
      inv_blackbox = List.rev t.draws;
    }
    :: t.invocation_log;
  t.current_tag <- None;
  t.forced_draws <- [];
  t.forced_stmt_nondet <- [];
  result

let invoke t ~mode name args = invoke_inner t ~mode name args ~forced:[]

let replay_invocation ?(stmt_nondet = []) t ~mode inv =
  invoke_inner ~stmt_nondet t ~mode inv.inv_txn inv.inv_args
    ~forced:inv.inv_blackbox

let transpile_install ?max_runs t =
  let results = Transpile.transpile_all ?max_runs ~program:t.prog () in
  List.iter
    (fun (tr : Transpile.t) ->
      if not (Hashtbl.mem t.transpiled_tbl tr.Transpile.txn_name) then begin
        Hashtbl.replace t.transpiled_tbl tr.Transpile.txn_name tr;
        ignore (Uv_db.Engine.exec t.eng tr.Transpile.procedure)
      end)
    results;
  results
