(** The augmented application runtime (§2, Figure 3).

    Hosts a MiniJS application over the SQL engine and executes its
    application-level transactions in either of the paper's two shapes:

    - {!Raw} — the unmodified application: the interpreter runs the
      function body and every [SQL_exec] travels to the engine as its own
      client statement (one round trip each). This is the baseline "B"
      system's execution path.
    - {!Transpiled} — the transaction is a single [CALL] of its
      transpiled SQL procedure (one round trip total). This is the "T"
      path. Blackbox API values are computed natively on the fly and
      passed as the extra procedure arguments (§3.3).

    Every invocation is tagged ["name#n"] so the engine log can group the
    statements of one application-level transaction (the augmented code's
    [Ultraverse_log] record), and the runtime keeps its own invocation log
    with the recorded blackbox draws so baseline replays are
    deterministic. *)

open Uv_sql

type mode = Raw | Transpiled

type invocation = {
  inv_tag : string;
  inv_txn : string;
  inv_args : Value.t list;
  inv_blackbox : (string * Value.t) list;
      (** draws in order: (API name, value) *)
}

type t

val create : Uv_db.Engine.t -> source:string -> t
(** Load the application source over the given engine. *)

val create_from_program : Uv_db.Engine.t -> Uv_applang.Ast.program -> t
(** Same, from an already-parsed program (replay runtimes share the
    original's program). *)

val program : t -> Uv_applang.Ast.program

val engine : t -> Uv_db.Engine.t

val transpile_install : ?max_runs:int -> t -> Transpile.t list
(** Transpile every database-updating transaction and [CREATE] the
    procedures on the engine. Idempotent. *)

val transpiled : t -> string -> Transpile.t option

val invoke :
  t -> mode:mode -> string -> Value.t list -> (Uv_db.Engine.result, string) result
(** Execute one application-level transaction. In [Transpiled] mode a
    SIGNAL from an unexplored-path stub falls back to [Raw] execution of
    the same invocation, then triggers the delta DSE analysis (§3.3): the
    transaction is re-explored with the failing inputs as an extra seed
    testcase and its procedure is re-installed with the newly discovered
    path incorporated. Counted in [signal_fallbacks]. *)

val replay_invocation :
  ?stmt_nondet:Value.t list list ->
  t ->
  mode:mode ->
  invocation ->
  (Uv_db.Engine.result, string) result
(** Re-execute a past invocation with its recorded blackbox draws.
    [stmt_nondet] forces the engine-level non-determinism (RAND, NOW,
    AUTO_INCREMENT keys) of the invocation's statements, one list per
    statement in issue order — §4.4's "the replay uses the same primary
    key value as in the past". Statements beyond the list draw fresh. *)

val invocations : t -> invocation list
(** In commit order. *)

val signal_fallbacks : t -> int
