open Uv_symexec

type sql_record = {
  call_index : int;
  stmt : Uv_sql.Ast.stmt;
  holes : (string * Sym.t) list;
}

type event =
  | E_sql of sql_record
  | E_blackbox of string * int
  | E_branch of Sym.t * bool

type trace = event list

type tree =
  | Leaf
  | Sql of sql_record * tree
  | Blackbox of string * int * tree
  | Branch of Sym.t * tree option * tree option

exception Divergence of string

let rec insert tree trace =
  match (tree, trace) with
  | t, [] -> t
  | Leaf, E_sql r :: rest -> Sql (r, insert Leaf rest)
  | Leaf, E_blackbox (api, k) :: rest -> Blackbox (api, k, insert Leaf rest)
  | Leaf, E_branch (cond, taken) :: rest ->
      if taken then Branch (cond, Some (insert Leaf rest), None)
      else Branch (cond, None, Some (insert Leaf rest))
  | Sql (r, t), E_sql r2 :: rest ->
      if r.call_index <> r2.call_index then
        raise (Divergence "database call index mismatch")
      else Sql (r, insert t rest)
  | Blackbox (api, k, t), E_blackbox (api2, k2) :: rest ->
      if api <> api2 || k <> k2 then raise (Divergence "blackbox call mismatch")
      else Blackbox (api, k, insert t rest)
  | Branch (cond, tt, ft), E_branch (cond2, taken) :: rest ->
      if not (Sym.equal cond cond2) then
        raise (Divergence "branch condition mismatch")
      else if taken then
        Branch (cond, Some (insert (Option.value tt ~default:Leaf) rest), ft)
      else Branch (cond, tt, Some (insert (Option.value ft ~default:Leaf) rest))
  | Sql _, (E_blackbox _ | E_branch _) :: _
  | Blackbox _, (E_sql _ | E_branch _) :: _
  | Branch _, (E_sql _ | E_blackbox _) :: _ ->
      raise (Divergence "event kind mismatch at same trace position")

let of_traces traces = List.fold_left insert Leaf traces

let rec count_paths = function
  | Leaf -> 1
  | Sql (_, t) | Blackbox (_, _, t) -> count_paths t
  | Branch (_, tt, ft) ->
      let side = function None -> 0 | Some t -> count_paths t in
      max 1 (side tt + side ft)

let rec count_unexplored = function
  | Leaf -> 0
  | Sql (_, t) | Blackbox (_, _, t) -> count_unexplored t
  | Branch (_, tt, ft) ->
      let side = function None -> 1 | Some t -> count_unexplored t in
      side tt + side ft

let branch_decisions trace =
  List.filter_map
    (function E_branch (c, taken) -> Some (c, taken) | _ -> None)
    trace

let rec pp fmt = function
  | Leaf -> Format.fprintf fmt "•"
  | Sql (r, t) ->
      Format.fprintf fmt "SQL#%d[%s];@ %a" r.call_index
        (Uv_sql.Ast.stmt_kind r.stmt) pp t
  | Blackbox (api, k, t) -> Format.fprintf fmt "BB(%s#%d);@ %a" api k pp t
  | Branch (cond, tt, ft) ->
      let side fmt = function
        | None -> Format.fprintf fmt "?"
        | Some t -> pp fmt t
      in
      Format.fprintf fmt "@[<hv 2>if %a {@ %a@ } else {@ %a@ }@]" Sym.pp cond side
        tt side ft
