(** Execution traces and the concretised execution path tree (§3.2).

    One concolic run of an application-level transaction yields a {!trace}
    — the ordered database calls, blackbox calls, and symbolic branch
    decisions it made. Traces from all explored testcases merge into a
    {!tree}, the paper's "program execution path tree", which the
    transpiler walks to emit the SQL PROCEDURE. *)

open Uv_symexec

type sql_record = {
  call_index : int;  (** k in SQL_out_k *)
  stmt : Uv_sql.Ast.stmt;
      (** parsed statement whose symbolic holes are [Var "__h<n>"] *)
  holes : (string * Sym.t) list;  (** hole variable -> symbolic expr *)
}

type event =
  | E_sql of sql_record
  | E_blackbox of string * int  (** API name, occurrence *)
  | E_branch of Sym.t * bool

type trace = event list

type tree =
  | Leaf
  | Sql of sql_record * tree
  | Blackbox of string * int * tree
  | Branch of Sym.t * tree option * tree option
      (** [None] side = never explored (SIGNAL stub in the transpiled
          procedure) *)

exception Divergence of string
(** Two traces disagreed on a non-branch event at the same position —
    the program is not deterministic modulo declared symbols. *)

val insert : tree -> trace -> tree
(** Merge one trace into the tree. *)

val of_traces : trace list -> tree

val count_paths : tree -> int
(** Number of explored root-to-leaf paths. *)

val count_unexplored : tree -> int
(** Number of [None] branch sides (SIGNAL stubs). *)

val branch_decisions : trace -> (Sym.t * bool) list

val pp : Format.formatter -> tree -> unit
