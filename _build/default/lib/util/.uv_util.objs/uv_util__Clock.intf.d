lib/util/clock.mli:
