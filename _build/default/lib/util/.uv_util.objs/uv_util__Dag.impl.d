lib/util/dag.ml: Array Float List
