lib/util/dag.mli:
