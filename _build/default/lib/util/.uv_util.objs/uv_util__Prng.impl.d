lib/util/prng.ml: Array Char Int64 List String
