lib/util/prng.mli:
