lib/util/stats.ml: Gc List Sys
