lib/util/stats.mli:
