lib/util/table_hash.ml: Char Int64 List String
