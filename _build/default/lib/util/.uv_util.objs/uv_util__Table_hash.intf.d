lib/util/table_hash.mli:
