lib/util/textgrid.ml: Array Buffer List Printf String
