lib/util/textgrid.mli:
