type t = {
  rtt_ms : float;
  mutable simulated : float;
  mutable started : float;
}

let now_ms () = Unix.gettimeofday () *. 1000.0

let create ?(rtt_ms = 1.0) () = { rtt_ms; simulated = 0.0; started = now_ms () }

let rtt_ms t = t.rtt_ms

let charge_rtt t ?(count = 1) () = t.simulated <- t.simulated +. (float_of_int count *. t.rtt_ms)

let charge_ms t ms = t.simulated <- t.simulated +. ms

let simulated_ms t = t.simulated

let real_elapsed_ms t = now_ms () -. t.started

let total_ms t = real_elapsed_ms t +. t.simulated

let reset t =
  t.simulated <- 0.0;
  t.started <- now_ms ()
