(** Two-clock measurement: real monotonic time plus a simulated cost clock.

    The paper measures wall-clock time on a client/server MySQL deployment
    with ~1 ms round trips and an 8-vCPU parallel replay. Our engine is
    in-process, so round-trip latency and multi-core replay are modelled on
    a simulated clock: callers charge simulated costs (RTT per client/server
    round trip, per-query replay cost on a worker) and read back both the
    real elapsed time and the simulated makespan. *)

type t

val create : ?rtt_ms:float -> unit -> t
(** [create ~rtt_ms ()] starts both clocks. [rtt_ms] (default [1.0]) is the
    simulated client-server round-trip cost in milliseconds. *)

val rtt_ms : t -> float

val charge_rtt : t -> ?count:int -> unit -> unit
(** Charge [count] (default 1) round trips to the simulated clock. *)

val charge_ms : t -> float -> unit
(** Charge an arbitrary simulated cost in milliseconds. *)

val simulated_ms : t -> float
(** Total simulated cost charged so far. *)

val real_elapsed_ms : t -> float
(** Real monotonic time since [create]. *)

val total_ms : t -> float
(** Real elapsed time plus simulated charges — the number the benches
    report as "what the paper's deployment would observe". *)

val reset : t -> unit

val now_ms : unit -> float
(** Monotonic timestamp helper for ad-hoc timing. *)
