type t = {
  n : int;
  succ : int list array; (* raw, may contain duplicates *)
  pred : int list array;
  mutable dirty : bool;
  mutable succ_dedup : int list array; (* cache *)
  mutable pred_dedup : int list array;
}

let create n =
  {
    n;
    succ = Array.make (max n 1) [];
    pred = Array.make (max n 1) [];
    dirty = true;
    succ_dedup = [||];
    pred_dedup = [||];
  }

let node_count t = t.n

let add_edge t src dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Dag.add_edge: node out of range";
  t.succ.(src) <- dst :: t.succ.(src);
  t.pred.(dst) <- src :: t.pred.(dst);
  t.dirty <- true

let dedup lst = List.sort_uniq compare lst

let refresh t =
  if t.dirty then begin
    t.succ_dedup <- Array.map dedup t.succ;
    t.pred_dedup <- Array.map dedup t.pred;
    t.dirty <- false
  end

let successors t i =
  refresh t;
  t.succ_dedup.(i)

let predecessors t i =
  refresh t;
  t.pred_dedup.(i)

let edge_count t =
  refresh t;
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.succ_dedup

let reachable_from t seeds =
  refresh t;
  let seen = Array.make t.n false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit t.succ_dedup.(i)
    end
  in
  List.iter (fun s -> if s >= 0 && s < t.n then visit s) seeds;
  seen

let topological_order t =
  refresh t;
  (* Edges point src -> dst with dst required first: order by DFS on
     successors, emitting a node after everything it depends on. *)
  let state = Array.make t.n 0 in
  (* 0 = unvisited, 1 = in progress, 2 = done *)
  let out = ref [] in
  let rec visit i =
    match state.(i) with
    | 2 -> ()
    | 1 -> invalid_arg "Dag.topological_order: cycle"
    | _ ->
        state.(i) <- 1;
        List.iter visit t.succ_dedup.(i);
        state.(i) <- 2;
        out := i :: !out
  in
  for i = 0 to t.n - 1 do
    visit i
  done;
  (* [out] has dependents before dependencies reversed by the cons order:
     a node is consed after its successors, so !out lists dependents first;
     reverse to put dependencies first. *)
  List.rev !out

let critical_path_makespan t ~weights ~workers =
  refresh t;
  if t.n = 0 then 0.0
  else begin
    let order = topological_order t in
    (* earliest finish ignoring worker limits (critical path) *)
    let finish = Array.make t.n 0.0 in
    List.iter
      (fun i ->
        let ready =
          List.fold_left (fun acc d -> Float.max acc finish.(d)) 0.0 t.succ_dedup.(i)
        in
        finish.(i) <- ready +. weights.(i))
      order;
    let critical = Array.fold_left Float.max 0.0 finish in
    if workers >= t.n then critical
    else begin
      (* Greedy list scheduling in topological order with [workers] lanes:
         each node starts at max(dependency finish, earliest free lane). *)
      let lanes = Array.make (max workers 1) 0.0 in
      let sched_finish = Array.make t.n 0.0 in
      List.iter
        (fun i ->
          let dep_ready =
            List.fold_left (fun acc d -> Float.max acc sched_finish.(d)) 0.0 t.succ_dedup.(i)
          in
          (* earliest free lane *)
          let best = ref 0 in
          for l = 1 to Array.length lanes - 1 do
            if lanes.(l) < lanes.(!best) then best := l
          done;
          let start = Float.max dep_ready lanes.(!best) in
          let fin = start +. weights.(i) in
          lanes.(!best) <- fin;
          sched_finish.(i) <- fin)
        order;
      Array.fold_left Float.max 0.0 lanes
    end
  end
