(** Directed acyclic graphs over dense integer node ids.

    Used for the query dependency graph (§4.2–§4.3) and the replay
    conflict graph (§4.4). Nodes are [0 .. n-1]; edges point from a later
    query to the earlier query it depends on, so dependency edges can never
    form a cycle. *)

type t

val create : int -> t
(** [create n] is an edgeless graph with nodes [0..n-1]. *)

val node_count : t -> int

val add_edge : t -> int -> int -> unit
(** [add_edge g src dst] adds [src -> dst]. Duplicate edges are kept cheap
    to add and deduplicated lazily. *)

val successors : t -> int -> int list
(** Deduplicated, sorted successor list. *)

val predecessors : t -> int -> int list
(** Deduplicated, sorted predecessor list (reverse edges). *)

val edge_count : t -> int

val reachable_from : t -> int list -> bool array
(** [reachable_from g seeds] marks every node reachable from any seed by
    following edges forward (including the seeds themselves). *)

val topological_order : t -> int list
(** A topological order (dependencies before dependents, i.e. [dst] before
    [src] for every edge). Raises [Invalid_argument] on a cycle. *)

val critical_path_makespan :
  t -> weights:float array -> workers:int -> float
(** List-scheduling makespan of executing every node on [workers] identical
    workers, where a node may start only after all nodes it points to have
    finished. With [workers = max_int] this is the critical-path length;
    with [workers = 1] it is the serial sum. Used to model §4.4's parallel
    replay of non-conflicting queries. *)
