type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: fast, high-quality, and trivially reproducible. *)
let bits64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  (* mask to 62 bits so the OCaml int is always non-negative *)
  let r = Int64.to_int (Int64.logand (bits64 t) 0x3FFFFFFFFFFFFFFFL) in
  r mod bound

let int_range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = float t 1.0 < p

let pick t arr = arr.(int t (Array.length arr))

let pick_list t l = List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let alpha_string t n =
  String.init n (fun _ -> Char.chr (Char.code 'a' + int t 26))
