(** Deterministic pseudo-random number generator (splitmix64).

    All workload generators draw from this PRNG so histories are
    reproducible from a seed; nothing in the library uses the global
    [Random] state. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. [bound] must be positive. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [[lo, hi]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val alpha_string : t -> int -> string
(** [alpha_string t n] is a random lowercase ASCII string of length [n]. *)

val bits64 : t -> int64
(** Raw 64 bits of the splitmix64 stream. *)
