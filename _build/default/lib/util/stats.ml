let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let sorted xs = List.sort compare xs

let percentile p xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
      let n = List.length s in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1
      in
      List.nth s (max 0 (min (n - 1) rank))

let median xs = percentile 50.0 xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
      sqrt var

let geomean xs =
  match xs with
  | [] -> 0.0
  | _ -> exp (mean (List.map log xs))

let live_words () =
  Gc.minor ();
  let st = Gc.stat () in
  st.Gc.live_words

let live_bytes () = live_words () * (Sys.word_size / 8)
