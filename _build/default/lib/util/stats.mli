(** Small numeric helpers shared by the bench harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val median : float list -> float

val stddev : float list -> float
(** Population standard deviation. *)

val geomean : float list -> float
(** Geometric mean of positive samples. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [[0,100]], nearest-rank on sorted data. *)

val live_words : unit -> int
(** Live heap words right now (after a minor collection), used to account
    memory overhead the way Table 4(b) does. *)

val live_bytes : unit -> int
