let modulus = 0x1FFFFFFFFFFFFFFFL (* 2^61 - 1 *)

type t = { mutable acc : int64 }

let create () = { acc = 0L }

let copy t = { acc = t.acc }

let value t = t.acc

(* FNV-1a over the row bytes, then fold the 64-bit digest into [0, p). *)
let row_digest s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  (* Second mixing round to decorrelate short rows. *)
  let z = !h in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.logxor z (Int64.shift_right_logical z 33) in
  Int64.rem (Int64.logand z Int64.max_int) modulus

let add_mod a b =
  let s = Int64.add a b in
  if Int64.unsigned_compare s modulus >= 0 then Int64.sub s modulus else s

let sub_mod a b = add_mod a (Int64.sub modulus b)

let add_row t row = t.acc <- add_mod t.acc (row_digest row)

let remove_row t row = t.acc <- sub_mod t.acc (row_digest row)

let equal a b = Int64.equal a.acc b.acc

let combine hashes =
  (* Polynomial combination so the same multiset of table hashes in a
     different per-table assignment yields a different DB hash. *)
  List.fold_left
    (fun acc h ->
      let scaled = Int64.rem (Int64.logand (Int64.mul acc 31L) Int64.max_int) modulus in
      add_mod scaled (Int64.rem h modulus))
    7L hashes
