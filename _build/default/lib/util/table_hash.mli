(** Incremental, order-independent table hashing (§4.5 Hash-jumper).

    The hash of a table is the sum, modulo the Mersenne prime [p = 2^61-1],
    of a collision-resistant digest of each row. Inserting a row adds its
    digest; deleting subtracts it; an update is a delete followed by an
    insert. The cost of maintaining the hash is therefore linear in the
    number of rows touched by a statement and independent of table size,
    exactly as required by the paper's Hash-jumper.

    The paper uses SHA-256 (collision bound [2^-256]); we use a 64-bit
    FNV-1a digest folded modulo [2^61-1] (collision bound [2^-61]), which
    keeps the same constant-time update structure. *)

type t
(** Mutable accumulator for one table's hash. *)

val modulus : int64
(** The prime [p = 2^61 - 1]. *)

val create : unit -> t
(** Hash of the empty table (value 0). *)

val copy : t -> t

val value : t -> int64
(** Current hash value, in [[0, p)]. *)

val row_digest : string -> int64
(** Digest of one serialized row, in [[0, p)]. Exposed for tests. *)

val add_row : t -> string -> unit
(** Fold an inserted row (serialized) into the hash. *)

val remove_row : t -> string -> unit
(** Fold a deleted row (serialized) out of the hash. *)

val equal : t -> t -> bool

val add_mod : int64 -> int64 -> int64
(** Addition modulo [p]; operands must be in [[0, p)]. *)

val sub_mod : int64 -> int64 -> int64

val combine : int64 list -> int64
(** Order-sensitive combination of several table hashes into one database
    state hash (used to log the whole-DB hash per commit). *)
