type t = {
  title : string;
  header : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~header = { title; header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.header) rows
  in
  let pad r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let all = pad t.header :: List.map pad rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun r -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) r)
    all;
  let buf = Buffer.create 1024 in
  let line ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let row r =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (widths.(i) - String.length c + 1) ' ');
        Buffer.add_char buf '|')
      r;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  line '-';
  row (pad t.header);
  line '=';
  List.iter row (List.map pad rows);
  line '-';
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fmt_ms ms =
  if ms < 1.0 then Printf.sprintf "%.3fms" ms
  else if ms < 1000.0 then Printf.sprintf "%.2fms" ms
  else if ms < 60_000.0 then Printf.sprintf "%.2fs" (ms /. 1000.0)
  else if ms < 3_600_000.0 then Printf.sprintf "%.1fmin" (ms /. 60_000.0)
  else Printf.sprintf "%.2fH" (ms /. 3_600_000.0)

let fmt_bytes b =
  let f = float_of_int b in
  if b < 1024 then Printf.sprintf "%db" b
  else if b < 1024 * 1024 then Printf.sprintf "%.1fKB" (f /. 1024.0)
  else if b < 1024 * 1024 * 1024 then Printf.sprintf "%.1fMB" (f /. 1048576.0)
  else Printf.sprintf "%.2fGB" (f /. 1073741824.0)

let fmt_speedup x = Printf.sprintf "%.1fx" x
