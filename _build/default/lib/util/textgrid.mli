(** Plain-text table rendering for the benchmark harness.

    Produces aligned, boxed tables similar to the paper's Tables 4–8 so
    EXPERIMENTS.md can paste bench output verbatim. *)

type t

val create : title:string -> header:string list -> t

val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells. *)

val render : t -> string

val print : t -> unit
(** [render] followed by [print_string] and a flush. *)

val fmt_ms : float -> string
(** Human scale: "0.82ms", "1.24s", "2.1H" like the paper's tables. *)

val fmt_bytes : int -> string
(** "482b", "43MB", "3.5GB". *)

val fmt_speedup : float -> string
(** "23.6x". *)
