lib/workloads/astore.ml: List Printf Uv_retroactive Uv_util Wtypes
