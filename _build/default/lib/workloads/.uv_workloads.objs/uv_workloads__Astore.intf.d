lib/workloads/astore.mli: Wtypes
