lib/workloads/dsystem.ml: Analyzer Array Catalog Engine Hashtbl List Log Scheduler Uv_db Uv_retroactive Uv_transpiler Uv_util
