lib/workloads/dsystem.mli: Ast Uv_db Uv_retroactive Uv_sql Uv_transpiler
