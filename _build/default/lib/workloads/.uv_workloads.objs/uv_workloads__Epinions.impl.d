lib/workloads/epinions.ml: List Printf Uv_retroactive Uv_util Wtypes
