lib/workloads/epinions.mli: Wtypes
