lib/workloads/seats.ml: List Printf Uv_retroactive Uv_util Wtypes
