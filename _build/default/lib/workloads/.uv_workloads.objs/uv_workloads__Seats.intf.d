lib/workloads/seats.mli: Wtypes
