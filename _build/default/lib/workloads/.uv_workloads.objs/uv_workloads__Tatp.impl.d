lib/workloads/tatp.ml: List Printf Uv_retroactive Uv_util Wtypes
