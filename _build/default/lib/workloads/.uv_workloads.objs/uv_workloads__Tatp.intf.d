lib/workloads/tatp.mli: Wtypes
