lib/workloads/tpcc.ml: List Printf Uv_retroactive Uv_util Wtypes
