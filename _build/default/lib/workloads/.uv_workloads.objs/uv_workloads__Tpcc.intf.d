lib/workloads/tpcc.mli: Wtypes
