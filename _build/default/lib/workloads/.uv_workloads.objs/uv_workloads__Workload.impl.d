lib/workloads/workload.ml: Astore Epinions List Seats String Tatp Tpcc Uv_db Uv_retroactive Uv_sql Uv_transpiler Uv_util Value Wtypes
