lib/workloads/workload.mli: Uv_db Uv_retroactive Uv_sql Uv_transpiler Uv_util Value
