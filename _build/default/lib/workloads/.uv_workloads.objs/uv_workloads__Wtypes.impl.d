lib/workloads/wtypes.ml: List Uv_db Uv_retroactive Uv_sql Uv_util Value
