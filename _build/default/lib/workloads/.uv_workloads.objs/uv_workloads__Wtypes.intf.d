lib/workloads/wtypes.mli: Uv_db Uv_retroactive Uv_sql Uv_util Value
