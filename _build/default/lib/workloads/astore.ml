(* AStore: the open-source ExpressJS e-commerce macro-benchmark. The
   paper's AStore has 61 application-level transactions of which 20
   update the database; we port the 20 updating transactions (several
   with multi-query check-then-act flows and one with a cart loop) plus
   representative read-only handlers. PlaceOrder is the motivating Figure
   1 flow: it refuses to order without a registered shipping address. RI
   columns per §D.5. *)

open Wtypes

let schema_sql =
  {|
CREATE TABLE Users (UserID INT PRIMARY KEY, Username VARCHAR(32), Email VARCHAR(64), Password VARCHAR(64), IsAdmin INT);
CREATE TABLE Addresses (AddressID INT PRIMARY KEY AUTO_INCREMENT, UserID INT REFERENCES Users(UserID), Street VARCHAR(64), City VARCHAR(32), Zip VARCHAR(10));
CREATE TABLE Categories (CategoryID INT PRIMARY KEY, Name VARCHAR(32));
CREATE TABLE Products (ProductID INT PRIMARY KEY, CategoryID INT REFERENCES Categories(CategoryID), Name VARCHAR(64), Price DOUBLE, Stock INT);
CREATE TABLE Orders (OrderID INT PRIMARY KEY AUTO_INCREMENT, UserID INT REFERENCES Users(UserID), AddressID INT, Status VARCHAR(16), Total DOUBLE);
CREATE TABLE OrderDetails (OrderID INT REFERENCES Orders(OrderID), ProductID INT REFERENCES Products(ProductID), Quantity INT, UnitPrice DOUBLE);
CREATE TABLE Messages (MessageID INT PRIMARY KEY AUTO_INCREMENT, Email VARCHAR(64), Body VARCHAR(256), Answered INT);
CREATE TABLE Subscribers (Email VARCHAR(64) PRIMARY KEY, Active INT);
|}

let app_source =
  {|
function RegisterUser(user_id, username, email, password) {
  var dup = SQL_exec(`SELECT COUNT(*) FROM Users WHERE UserID = ${user_id}`);
  if (dup[0]['COUNT(*)'] != 0) {
    return 'user exists';
  }
  SQL_exec(`INSERT INTO Users VALUES (${user_id}, '${username}', '${email}', '${password}', 0)`);
}

function UpdateUserEmail(user_id, email) {
  SQL_exec(`UPDATE Users SET Email = '${email}' WHERE UserID = ${user_id}`);
}

function UpdateUserPassword(user_id, password) {
  SQL_exec(`UPDATE Users SET Password = '${password}' WHERE UserID = ${user_id}`);
}

function DeleteUser(user_id) {
  SQL_exec(`DELETE FROM Addresses WHERE UserID = ${user_id}`);
  SQL_exec(`DELETE FROM Users WHERE UserID = ${user_id}`);
}

function AddAddress(user_id, street, city, zip) {
  SQL_exec(`INSERT INTO Addresses (UserID, Street, City, Zip) VALUES (${user_id}, '${street}', '${city}', '${zip}')`);
}

function UpdateAddress(address_id, street, city) {
  SQL_exec(`UPDATE Addresses SET Street = '${street}', City = '${city}' WHERE AddressID = ${address_id}`);
}

function DeleteAddress(address_id) {
  SQL_exec(`DELETE FROM Addresses WHERE AddressID = ${address_id}`);
}

function AddCategory(category_id, name) {
  SQL_exec(`INSERT INTO Categories VALUES (${category_id}, '${name}')`);
}

function AddProduct(product_id, category_id, name, price, stock) {
  SQL_exec(`INSERT INTO Products VALUES (${product_id}, ${category_id}, '${name}', ${price}, ${stock})`);
}

function UpdateProductPrice(product_id, price) {
  SQL_exec(`UPDATE Products SET Price = ${price} WHERE ProductID = ${product_id}`);
}

function RestockProduct(product_id, amount) {
  SQL_exec(`UPDATE Products SET Stock = Stock + ${amount} WHERE ProductID = ${product_id}`);
}

function DeleteProduct(product_id) {
  SQL_exec(`DELETE FROM Products WHERE ProductID = ${product_id}`);
}

function PlaceOrder(user_id, p1, p2, qty) {
  var addr = SQL_exec(`SELECT AddressID FROM Addresses WHERE UserID = ${user_id}`);
  if (addr.length == 0) {
    return 'Error: user has no shipping address';
  }
  var address_id = addr[0]['AddressID'];
  SQL_exec(`INSERT INTO Orders (UserID, AddressID, Status, Total) VALUES (${user_id}, ${address_id}, 'pending', 0)`);
  var order_rows = SQL_exec(`SELECT MAX(OrderID) FROM Orders WHERE UserID = ${user_id}`);
  var order_id = order_rows[0]['MAX(OrderID)'];
  var cart = [p1, p2];
  var total = 0;
  for (var k = 0; k < 2; k = k + 1) {
    var pid = cart[k];
    var prod = SQL_exec(`SELECT Price FROM Products WHERE ProductID = ${pid}`);
    var price = prod[0]['Price'];
    SQL_exec(`INSERT INTO OrderDetails VALUES (${order_id}, ${pid}, ${qty}, ${price})`);
    SQL_exec(`UPDATE Products SET Stock = Stock - ${qty} WHERE ProductID = ${pid}`);
    total = total + price * qty;
  }
  SQL_exec(`UPDATE Orders SET Total = ${total} WHERE OrderID = ${order_id}`);
}

function CancelOrder(order_id) {
  SQL_exec(`UPDATE Orders SET Status = 'cancelled' WHERE OrderID = ${order_id}`);
}

function ShipOrder(order_id) {
  SQL_exec(`UPDATE Orders SET Status = 'shipped' WHERE OrderID = ${order_id}`);
}

function SendMessage(email, body) {
  SQL_exec(`INSERT INTO Messages (Email, Body, Answered) VALUES ('${email}', '${body}', 0)`);
}

function AnswerMessage(message_id) {
  SQL_exec(`UPDATE Messages SET Answered = 1 WHERE MessageID = ${message_id}`);
}

function DeleteMessage(message_id) {
  SQL_exec(`DELETE FROM Messages WHERE MessageID = ${message_id}`);
}

function Subscribe(email) {
  var dup = SQL_exec(`SELECT COUNT(*) FROM Subscribers WHERE Email = '${email}'`);
  if (dup[0]['COUNT(*)'] == 0) {
    SQL_exec(`INSERT INTO Subscribers VALUES ('${email}', 1)`);
  } else {
    SQL_exec(`UPDATE Subscribers SET Active = 1 WHERE Email = '${email}'`);
  }
}

function Unsubscribe(email) {
  SQL_exec(`UPDATE Subscribers SET Active = 0 WHERE Email = '${email}'`);
}

function GetProduct(product_id) {
  return SQL_exec(`SELECT Name, Price, Stock FROM Products WHERE ProductID = ${product_id}`);
}

function ListOrders(user_id) {
  return SQL_exec(`SELECT OrderID, Status, Total FROM Orders WHERE UserID = ${user_id}`);
}

function GetUser(user_id) {
  return SQL_exec(`SELECT Username, Email FROM Users WHERE UserID = ${user_id}`);
}
|}

let ri_config =
  {
    Uv_retroactive.Rowset.ri_columns =
      [
        ("Users", [ "UserID" ]);
        ("Addresses", [ "AddressID" ]);
        ("Categories", [ "CategoryID" ]);
        ("Products", [ "ProductID" ]);
        ("Orders", [ "OrderID" ]);
        ("OrderDetails", [ "OrderID" ]);
        ("Messages", [ "MessageID" ]);
        ("Subscribers", [ "Email" ]);
      ];
    ri_aliases = [];
  }

let base_users = 50
let base_products = 40
let categories = 8

let populate eng ~scale prng =
  let users = base_users * scale and products = base_products * scale in
  bulk_insert eng "Users"
    (List.init users (fun i ->
         let u = i + 1 in
         [
           vint u;
           vstr (Printf.sprintf "user%d" u);
           vstr (Printf.sprintf "user%d@shop.com" u);
           vstr (Uv_util.Prng.alpha_string prng 12);
           vint 0;
         ]));
  bulk_insert eng "Addresses"
    (List.init users (fun i ->
         let u = i + 1 in
         [
           vint u;
           vint u;
           vstr (Printf.sprintf "%d Main St" u);
           vstr "Osaka";
           vstr (Printf.sprintf "%05d" (10_000 + u));
         ]));
  bulk_insert eng "Categories"
    (List.init categories (fun i ->
         [ vint (i + 1); vstr (Printf.sprintf "cat%d" (i + 1)) ]));
  bulk_insert eng "Products"
    (List.init products (fun i ->
         let p = i + 1 in
         [
           vint p;
           vint (1 + (p mod categories));
           vstr (Printf.sprintf "product%d" p);
           vfloat (5.0 +. Uv_util.Prng.float prng 95.0);
           vint (50 + Uv_util.Prng.int prng 100);
         ]))

let generate_update prng ~scale ~n ~dep_rate =
  let users = base_users * scale and products = base_products * scale in
  List.init n (fun _ ->
      let u = entity prng ~dep_rate ~hot:1 ~pool:users in
      let p = entity prng ~dep_rate ~hot:1 ~pool:products in
      match Uv_util.Prng.int prng 10 with
      | 0 ->
          let p2 = entity prng ~dep_rate ~hot:1 ~pool:products in
          call "PlaceOrder"
            [ vint u; vint p; vint p2; vint (1 + Uv_util.Prng.int prng 3) ]
      | 1 -> call "UpdateUserEmail" [ vint u; vstr (Uv_util.Prng.alpha_string prng 10) ]
      | 2 ->
          call "UpdateProductPrice"
            [ vint p; vfloat (5.0 +. Uv_util.Prng.float prng 95.0) ]
      | 3 -> call "RestockProduct" [ vint p; vint (1 + Uv_util.Prng.int prng 20) ]
      | 4 ->
          call "AddAddress"
            [
              vint u;
              vstr (Uv_util.Prng.alpha_string prng 12);
              vstr "Kyoto";
              vstr "60001";
            ]
      | 5 ->
          call "SendMessage"
            [
              vstr (Printf.sprintf "user%d@shop.com" u);
              vstr (Uv_util.Prng.alpha_string prng 24);
            ]
      | 6 -> call "Subscribe" [ vstr (Printf.sprintf "user%d@shop.com" u) ]
      | 7 -> call "CancelOrder" [ vint (1 + Uv_util.Prng.int prng (max 1 (n / 10))) ]
      | 8 -> call "ShipOrder" [ vint (1 + Uv_util.Prng.int prng (max 1 (n / 10))) ]
      | _ ->
          call "UpdateUserPassword" [ vint u; vstr (Uv_util.Prng.alpha_string prng 12) ])

let numeric_history prng ~n ~dep_rate =
  let products = min base_products (max 4 (n / 3)) in
  let ddl =
    [
      "CREATE TABLE Products (ProductID INT PRIMARY KEY, Price DOUBLE, Stock INT)";
      "CREATE TABLE OrderDetails (OrderID INT, ProductID INT, Quantity INT)";
    ]
  in
  let seed =
    List.init products (fun i ->
        Printf.sprintf "INSERT INTO Products VALUES (%d, %d, %d)" (i + 1)
          (5 + Uv_util.Prng.int prng 95)
          (50 + Uv_util.Prng.int prng 100))
  in
  let ops =
    List.init (max 0 (n - List.length ddl - List.length seed)) (fun i ->
        let p = entity prng ~dep_rate ~hot:1 ~pool:products in
        match Uv_util.Prng.int prng 3 with
        | 0 ->
            Printf.sprintf "UPDATE Products SET Price = %d WHERE ProductID = %d"
              (5 + Uv_util.Prng.int prng 95)
              p
        | 1 ->
            Printf.sprintf "UPDATE Products SET Stock = %d WHERE ProductID = %d"
              (Uv_util.Prng.int prng 150)
              p
        | _ ->
            Printf.sprintf "INSERT INTO OrderDetails VALUES (%d, %d, %d)" (i + 1) p
              (1 + Uv_util.Prng.int prng 3))
  in
  let pre = List.length ddl + List.length seed in
  let mid = max 1 (List.length ops / 2) in
  let before = List.filteri (fun i _ -> i < mid) ops in
  let after = List.filteri (fun i _ -> i >= mid) ops in
  (* a guaranteed hot-entity statement at the middle: the deterministic
     retroactive target *)
  let hot = "UPDATE Products SET Price = 55 WHERE ProductID = 1" in
  (ddl @ seed @ before @ (hot :: after), pre + mid + 1)

(* The paper's histories mix read-only transactions with the updating
   ones; reads cost the full-replay baselines real work while the
   dependency analysis skips them. *)
let generate prng ~scale ~n ~dep_rate =
  let updates = generate_update prng ~scale ~n ~dep_rate in
  List.concat_map
    (fun call_item ->
      if Uv_util.Prng.chance prng 0.3 then
        let read =
          match Uv_util.Prng.int prng 3 with
          | 0 -> call "GetProduct" [ vint (1 + Uv_util.Prng.int prng base_products) ]
          | 1 -> call "ListOrders" [ vint (1 + Uv_util.Prng.int prng base_users) ]
          | _ -> call "GetUser" [ vint (1 + Uv_util.Prng.int prng base_users) ]
        in
        [ read; call_item ]
      else [ call_item ])
    updates
  |> fun all -> List.filteri (fun i _ -> i < n) all

let workload =
  {
    name = "AStore";
    schema_sql;
    app_source;
    ri_config;
    populate;
    generate;
    target_call = call "AddAddress" [ vint 1; vstr "1 First Ave"; vstr "Nara"; vstr "63001" ];
    mahif_capable = true;
    numeric_history = Some numeric_history;
  }
