open Uv_db
open Uv_retroactive
module R = Uv_transpiler.Runtime

type outcome = {
  member_invocations : int;
  total_invocations : int;
  undone_entries : int;
  replayed_entries : int;
  analysis_ms : float;
  real_ms : float;
  serial_cost_ms : float;
  parallel_cost_ms : float;
  temp_catalog : Catalog.t;
}

let tag_of_invocation (inv : R.invocation) = inv.R.inv_tag

let run ?(workers = 8) ?(rtt_ms = 1.0) ~analyzer ~runtime eng ~target_tag =
  let t0 = Uv_util.Clock.now_ms () in
  let log = Engine.log eng in
  (* entries of the target transaction *)
  let target_entries = ref [] in
  Log.iter log (fun e ->
      if e.Log.app_txn = Some target_tag then target_entries := e.Log.index :: !target_entries);
  let target_entries = List.rev !target_entries in
  let tau = match target_entries with i :: _ -> i | [] -> 1 in
  (* transaction-granular replay set *)
  let rs =
    Analyzer.replay_set_grouped ~mode:Analyzer.Cell analyzer
      { Analyzer.tau; op = Analyzer.Remove }
  in
  let analysis_ms = Uv_util.Clock.now_ms () -. t0 in
  (* the target's own entries must be rolled back and NOT replayed *)
  let target_set = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace target_set i ()) target_entries;
  let members =
    Array.mapi
      (fun i m -> m && not (Hashtbl.mem target_set (i + 1)))
      rs.Analyzer.members
  in
  let member_list = ref [] in
  Array.iteri (fun i m -> if m then member_list := (i + 1) :: !member_list) members;
  let member_entries = List.rev !member_list in
  (* member transactions, by tag, in first-entry order *)
  let tag_set = Hashtbl.create 1024 in
  let member_tags = ref [] in
  List.iter
    (fun i ->
      match (Log.entry log i).Log.app_txn with
      | Some tag when (not (Hashtbl.mem tag_set tag)) && tag <> target_tag ->
          Hashtbl.replace tag_set tag ();
          member_tags := tag :: !member_tags
      | _ -> ())
    member_entries;
  let member_tags = List.rev !member_tags in
  (* temporary database over the affected tables *)
  let affected = List.sort_uniq compare (rs.Analyzer.mutated @ rs.Analyzer.consulted) in
  let temp_cat = Catalog.snapshot_tables (Engine.catalog eng) affected in
  (* rollback: target entries + member entries, newest first *)
  let undo_list =
    List.sort_uniq compare (target_entries @ member_entries) |> List.rev
  in
  List.iter
    (fun i -> Log.apply_undo temp_cat (Log.entry log i).Log.undo)
    undo_list;
  (* replay: re-invoke the member application functions against the
     temporary database with their recorded inputs and draws *)
  let temp_eng = Engine.of_catalog ~rtt_ms temp_cat in
  let temp_rt = R.create_from_program temp_eng (R.program runtime) in
  let invocations = R.invocations runtime in
  (* per-transaction queue of the original statements' recorded
     non-determinism: the replay reuses past RAND values and past
     AUTO_INCREMENT keys (§4.4); gathered for all tags in one log pass *)
  let nondet_by_tag = Hashtbl.create 1024 in
  Log.iter log (fun e ->
      match e.Log.app_txn with
      | Some tag when Hashtbl.mem tag_set tag ->
          let q =
            match Hashtbl.find_opt nondet_by_tag tag with
            | Some q -> q
            | None ->
                let q = ref [] in
                Hashtbl.replace nondet_by_tag tag q;
                q
          in
          q := e.Log.nondet :: !q
      | _ -> ());
  let nondet_of_tag tag =
    match Hashtbl.find_opt nondet_by_tag tag with
    | Some q -> List.rev !q
    | None -> []
  in
  List.iter
    (fun (inv : R.invocation) ->
      if Hashtbl.mem tag_set inv.R.inv_tag then
        ignore
          (R.replay_invocation
             ~stmt_nondet:(nondet_of_tag inv.R.inv_tag)
             temp_rt ~mode:R.Raw inv))
    invocations;
  let replayed_entries = Log.length (Engine.log temp_eng) in
  let real_ms = Uv_util.Clock.now_ms () -. t0 in
  let serial_cost_ms = real_ms +. (float_of_int replayed_entries *. rtt_ms) in
  (* parallel view: conflict DAG over the member entries, weighted by the
     average per-statement replay cost *)
  let per_stmt =
    (real_ms -. analysis_ms) /. float_of_int (max 1 replayed_entries)
  in
  let edges = Analyzer.dependency_edges analyzer ~members in
  let parallel_cost_ms =
    analysis_ms
    +. Scheduler.makespan ~entries:member_entries ~edges
         ~weight:(fun _ -> per_stmt +. rtt_ms)
         ~workers
  in
  {
    member_invocations = List.length member_tags;
    total_invocations = List.length invocations;
    undone_entries = List.length undo_list;
    replayed_entries;
    analysis_ms;
    real_ms;
    serial_cost_ms;
    parallel_cost_ms;
    temp_catalog = temp_cat;
  }

let query outcome sel =
  Engine.query (Engine.of_catalog outcome.temp_catalog) sel
