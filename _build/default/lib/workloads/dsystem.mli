(** The "D" system of §5: dependency-analysed replay of *non-transpiled*
    application-level transactions.

    D works over the raw per-query history (every [SQL_exec] its own log
    entry, tagged with its invocation). The analyzer computes the replay
    set at transaction granularity; rollback undoes the member entries;
    the replay phase then re-invokes the member *application functions*
    through the interpreter with their recorded inputs and blackbox draws
    — preserving application-level control flow, unlike replaying the raw
    statements (which would repeat the original branch decisions even
    when the hypothetical past invalidates them). *)

open Uv_sql

type outcome = {
  member_invocations : int;  (** transactions re-invoked *)
  total_invocations : int;
  undone_entries : int;
  replayed_entries : int;  (** statements issued by the re-invocations *)
  analysis_ms : float;
  real_ms : float;
  serial_cost_ms : float;  (** real + one round trip per replayed statement *)
  parallel_cost_ms : float;
      (** conflict-DAG makespan over the member entries (8 workers) *)
  temp_catalog : Uv_db.Catalog.t;
}

val run :
  ?workers:int ->
  ?rtt_ms:float ->
  analyzer:Uv_retroactive.Analyzer.t ->
  runtime:Uv_transpiler.Runtime.t ->
  Uv_db.Engine.t ->
  target_tag:string ->
  outcome
(** Retroactively remove the application-level transaction tagged
    [target_tag] from the engine's raw-mode history. *)

val tag_of_invocation : Uv_transpiler.Runtime.invocation -> string

val query : outcome -> Ast.select -> Uv_db.Engine.result
