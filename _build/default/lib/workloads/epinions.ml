(* Epinions (BenchBase): online-review social network. Four
   database-updating transactions, each a single UPDATE — the paper notes
   Epinions sees no round-trip benefit from transpilation (§5.2) but the
   largest dependency-analysis benefit. RI columns per §D.1. *)

open Wtypes

let schema_sql =
  {|
CREATE TABLE useracct (u_id INT PRIMARY KEY, name VARCHAR(32), email VARCHAR(64), creation_date INT);
CREATE TABLE item (i_id INT PRIMARY KEY, title VARCHAR(64), description VARCHAR(128), creation_date INT);
CREATE TABLE review (a_id INT PRIMARY KEY, u_id INT REFERENCES useracct(u_id), i_id INT REFERENCES item(i_id), rating INT, comment VARCHAR(128));
CREATE TABLE trust (source_u_id INT, target_u_id INT, trust INT, creation_date INT);
|}

let app_source =
  {|
function UpdateUserName(u_id, name) {
  SQL_exec(`UPDATE useracct SET name = '${name}' WHERE u_id = ${u_id}`);
}

function UpdateItemTitle(i_id, title) {
  SQL_exec(`UPDATE item SET title = '${title}' WHERE i_id = ${i_id}`);
}

function UpdateReviewRating(a_id, rating) {
  SQL_exec(`UPDATE review SET rating = ${rating} WHERE a_id = ${a_id}`);
}

function UpdateTrustRating(source_u_id, target_u_id, trust) {
  SQL_exec(`UPDATE trust SET trust = ${trust} WHERE source_u_id = ${source_u_id} AND target_u_id = ${target_u_id}`);
}

function GetItemAverageRating(i_id) {
  var rows = SQL_exec(`SELECT AVG(rating) FROM review WHERE i_id = ${i_id}`);
  return rows[0]['AVG(rating)'];
}

function GetReviewsByUser(u_id) {
  return SQL_exec(`SELECT a_id, i_id, rating FROM review WHERE u_id = ${u_id}`);
}
|}

let ri_config =
  {
    Uv_retroactive.Rowset.ri_columns =
      [
        ("useracct", [ "u_id" ]);
        ("item", [ "i_id" ]);
        ("review", [ "a_id" ]);
        ("trust", [ "source_u_id"; "target_u_id" ]);
      ];
    ri_aliases = [];
  }

let base_users = 60
let base_items = 50

let populate eng ~scale prng =
  let users = base_users * scale and items = base_items * scale in
  bulk_insert eng "useracct"
    (List.init users (fun i ->
         [
           vint (i + 1);
           vstr (Printf.sprintf "user%d" (i + 1));
           vstr (Printf.sprintf "u%d@mail.com" (i + 1));
           vint 1_700_000_000;
         ]));
  bulk_insert eng "item"
    (List.init items (fun i ->
         [
           vint (i + 1);
           vstr (Printf.sprintf "item%d" (i + 1));
           vstr (Uv_util.Prng.alpha_string prng 24);
           vint 1_700_000_000;
         ]));
  (* one review per (user, two items), ids dense *)
  let reviews = ref [] in
  let rid = ref 0 in
  for u = 1 to users do
    for k = 0 to 1 do
      incr rid;
      let item = 1 + ((u + (k * 7)) mod items) in
      reviews :=
        [
          vint !rid;
          vint u;
          vint item;
          vint (1 + Uv_util.Prng.int prng 5);
          vstr (Uv_util.Prng.alpha_string prng 16);
        ]
        :: !reviews
    done
  done;
  bulk_insert eng "review" (List.rev !reviews);
  bulk_insert eng "trust"
    (List.init users (fun i ->
         [
           vint (i + 1);
           vint (1 + ((i + 1) mod users));
           vint (Uv_util.Prng.int prng 2);
           vint 1_700_000_000;
         ]))

let generate_update prng ~scale ~n ~dep_rate =
  let users = base_users * scale and items = base_items * scale in
  let reviews = 2 * users in
  List.init n (fun _ ->
      match Uv_util.Prng.int prng 4 with
      | 0 ->
          let u = entity prng ~dep_rate ~hot:1 ~pool:users in
          call "UpdateUserName" [ vint u; vstr (Uv_util.Prng.alpha_string prng 8) ]
      | 1 ->
          let i = entity prng ~dep_rate ~hot:1 ~pool:items in
          call "UpdateItemTitle" [ vint i; vstr (Uv_util.Prng.alpha_string prng 12) ]
      | 2 ->
          let a = entity prng ~dep_rate ~hot:1 ~pool:reviews in
          call "UpdateReviewRating" [ vint a; vint (1 + Uv_util.Prng.int prng 5) ]
      | _ ->
          let s = entity prng ~dep_rate ~hot:1 ~pool:users in
          call "UpdateTrustRating"
            [ vint s; vint (1 + (s mod users)); vint (Uv_util.Prng.int prng 2) ])

(* Numeric projection for the Mahif head-to-head: ratings and trust
   edges only. *)
let numeric_history prng ~n ~dep_rate =
  let users = min base_users (max 4 (n / 6)) in
  let reviews = 2 * users in
  let ddl =
    [
      "CREATE TABLE review (a_id INT PRIMARY KEY, u_id INT, i_id INT, rating INT)";
      "CREATE TABLE trust (source_u_id INT, target_u_id INT, trust INT)";
    ]
  in
  let seed =
    List.init reviews (fun i ->
        Printf.sprintf "INSERT INTO review VALUES (%d, %d, %d, %d)" (i + 1)
          (1 + (i mod users))
          (1 + (i mod base_items))
          (1 + Uv_util.Prng.int prng 5))
  in
  let ops =
    List.init (max 0 (n - List.length ddl - List.length seed)) (fun _ ->
        if Uv_util.Prng.chance prng 0.7 then
          let a = entity prng ~dep_rate ~hot:1 ~pool:reviews in
          Printf.sprintf "UPDATE review SET rating = %d WHERE a_id = %d"
            (1 + Uv_util.Prng.int prng 5)
            a
        else
          let s = entity prng ~dep_rate ~hot:1 ~pool:users in
          Printf.sprintf "INSERT INTO trust VALUES (%d, %d, %d)" s
            (1 + (s mod users))
            (Uv_util.Prng.int prng 2))
  in
  let pre = List.length ddl + List.length seed in
  let mid = max 1 (List.length ops / 2) in
  let before = List.filteri (fun i _ -> i < mid) ops in
  let after = List.filteri (fun i _ -> i >= mid) ops in
  (* a guaranteed hot-entity statement at the middle: the deterministic
     retroactive target *)
  let hot = "UPDATE review SET rating = 3 WHERE a_id = 1" in
  (ddl @ seed @ before @ (hot :: after), pre + mid + 1)

(* The paper's histories mix read-only transactions with the updating
   ones; reads cost the full-replay baselines real work while the
   dependency analysis skips them. *)
let generate prng ~scale ~n ~dep_rate =
  let updates = generate_update prng ~scale ~n ~dep_rate in
  List.concat_map
    (fun call_item ->
      if Uv_util.Prng.chance prng 0.3 then
        let read =
          if Uv_util.Prng.bool prng then
            call "GetItemAverageRating" [ vint (1 + Uv_util.Prng.int prng base_items) ]
          else call "GetReviewsByUser" [ vint (1 + Uv_util.Prng.int prng base_users) ]
        in
        [ read; call_item ]
      else [ call_item ])
    updates
  |> fun all -> List.filteri (fun i _ -> i < n) all

let workload =
  {
    name = "Epinions";
    schema_sql;
    app_source;
    ri_config;
    populate;
    generate;
    target_call = call "UpdateReviewRating" [ vint 1; vint 5 ];
    mahif_capable = true;
    numeric_history = Some numeric_history;
  }
