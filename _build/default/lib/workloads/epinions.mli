(** The EPINIONS benchmark (§5, §D): schema, MiniJS transaction code,
    row-identifier configuration and history generator. See
    {!Workload.t} for the record's field documentation. *)

val workload : Wtypes.t
