(* SEATS: airline ticket reservations. Every updating transaction keys on
   string reservation/customer identifiers, which is why Mahif cannot run
   it ("×" in Tables 4–5). NewReservation runs a multi-query
   check-then-book flow, so transpilation collapses several round trips
   (§5.2). RI/alias configuration per §D.3. *)

open Wtypes

let schema_sql =
  {|
CREATE TABLE airport (ap_id INT PRIMARY KEY, ap_code VARCHAR(3), ap_co_id INT);
CREATE TABLE customer (c_id INT PRIMARY KEY, c_id_str VARCHAR(64), c_base_ap_id INT REFERENCES airport(ap_id), c_balance DOUBLE);
CREATE TABLE flight (f_id INT PRIMARY KEY, f_al_id INT, f_depart_ap_id INT REFERENCES airport(ap_id), f_arrive_ap_id INT REFERENCES airport(ap_id), f_seats_left INT, f_base_price DOUBLE);
CREATE TABLE frequent_flyer (ff_c_id INT REFERENCES customer(c_id), ff_al_id INT, ff_c_id_str VARCHAR(64));
CREATE TABLE reservation (r_id INT PRIMARY KEY AUTO_INCREMENT, r_c_id INT REFERENCES customer(c_id), r_f_id INT REFERENCES flight(f_id), r_seat INT, r_price DOUBLE);
|}

let app_source =
  {|
function NewReservation(c_id_str, f_id, seat) {
  var cust = SQL_exec(`SELECT c_id, c_balance FROM customer WHERE c_id_str = '${c_id_str}'`);
  if (cust.length == 0) {
    return 'unknown customer';
  }
  var c_id = cust[0]['c_id'];
  var flight = SQL_exec(`SELECT f_seats_left, f_base_price FROM flight WHERE f_id = ${f_id}`);
  if (flight[0]['f_seats_left'] <= 0) {
    return 'no seats available';
  }
  var taken = SQL_exec(`SELECT COUNT(*) FROM reservation WHERE r_f_id = ${f_id} AND r_seat = ${seat}`);
  if (taken[0]['COUNT(*)'] != 0) {
    return 'seat taken';
  }
  var price = flight[0]['f_base_price'];
  SQL_exec(`INSERT INTO reservation (r_c_id, r_f_id, r_seat, r_price) VALUES (${c_id}, ${f_id}, ${seat}, ${price})`);
  SQL_exec(`UPDATE flight SET f_seats_left = f_seats_left - 1 WHERE f_id = ${f_id}`);
  SQL_exec(`UPDATE customer SET c_balance = c_balance - ${price} WHERE c_id = ${c_id}`);
}

function DeleteReservation(c_id_str, f_id) {
  var cust = SQL_exec(`SELECT c_id FROM customer WHERE c_id_str = '${c_id_str}'`);
  if (cust.length == 0) {
    return 'unknown customer';
  }
  var c_id = cust[0]['c_id'];
  var res = SQL_exec(`SELECT r_id, r_price FROM reservation WHERE r_c_id = ${c_id} AND r_f_id = ${f_id}`);
  if (res.length == 0) {
    return 'no reservation';
  }
  var r_id = res[0]['r_id'];
  var price = res[0]['r_price'];
  SQL_exec(`DELETE FROM reservation WHERE r_id = ${r_id}`);
  SQL_exec(`UPDATE flight SET f_seats_left = f_seats_left + 1 WHERE f_id = ${f_id}`);
  SQL_exec(`UPDATE customer SET c_balance = c_balance + ${price} WHERE c_id = ${c_id}`);
}

function UpdateReservation(c_id_str, f_id, new_seat) {
  var cust = SQL_exec(`SELECT c_id FROM customer WHERE c_id_str = '${c_id_str}'`);
  if (cust.length == 0) {
    return 'unknown customer';
  }
  var c_id = cust[0]['c_id'];
  var taken = SQL_exec(`SELECT COUNT(*) FROM reservation WHERE r_f_id = ${f_id} AND r_seat = ${new_seat}`);
  if (taken[0]['COUNT(*)'] == 0) {
    SQL_exec(`UPDATE reservation SET r_seat = ${new_seat} WHERE r_c_id = ${c_id} AND r_f_id = ${f_id}`);
  } else {
    return 'seat taken';
  }
}

function UpdateCustomer(c_id_str, delta) {
  SQL_exec(`UPDATE customer SET c_balance = c_balance + ${delta} WHERE c_id_str = '${c_id_str}'`);
}

function FindOpenSeats(f_id) {
  return SQL_exec(`SELECT r_seat FROM reservation WHERE r_f_id = ${f_id}`);
}

function FindFlights(depart, arrive) {
  return SQL_exec(`SELECT f_id, f_seats_left FROM flight WHERE f_depart_ap_id = ${depart} AND f_arrive_ap_id = ${arrive}`);
}

function GetCustomerReservations(c_id_str) {
  var cust = SQL_exec(`SELECT c_id FROM customer WHERE c_id_str = '${c_id_str}'`);
  if (cust.length == 0) {
    return 'unknown customer';
  }
  var c_id = cust[0]['c_id'];
  return SQL_exec(`SELECT r_id, r_f_id, r_seat FROM reservation WHERE r_c_id = ${c_id}`);
}
|}

let ri_config =
  {
    Uv_retroactive.Rowset.ri_columns =
      [
        ("customer", [ "c_id" ]);
        ("flight", [ "f_id" ]);
        ("frequent_flyer", [ "ff_c_id" ]);
        ("reservation", [ "r_c_id"; "r_f_id" ]);
        ("airport", [ "ap_id" ]);
      ];
    ri_aliases =
      [
        ("customer", "c_id_str", "c_id");
        ("frequent_flyer", "ff_c_id_str", "ff_c_id");
      ];
  }

let base_customers = 80
let base_flights = 40
let airports = 10

let c_str c = Printf.sprintf "CUST-%06d" c

let populate eng ~scale prng =
  let customers = base_customers * scale and flights = base_flights * scale in
  bulk_insert eng "airport"
    (List.init airports (fun i ->
         [ vint (i + 1); vstr (Printf.sprintf "A%02d" i); vint (1 + (i mod 3)) ]));
  bulk_insert eng "customer"
    (List.init customers (fun i ->
         let c = i + 1 in
         [
           vint c;
           vstr (c_str c);
           vint (1 + (c mod airports));
           vfloat (100.0 +. Uv_util.Prng.float prng 900.0);
         ]));
  bulk_insert eng "flight"
    (List.init flights (fun i ->
         let f = i + 1 in
         [
           vint f;
           vint (1 + (f mod 4));
           vint (1 + (f mod airports));
           vint (1 + ((f + 3) mod airports));
           vint (20 + Uv_util.Prng.int prng 30);
           vfloat (50.0 +. Uv_util.Prng.float prng 400.0);
         ]));
  bulk_insert eng "frequent_flyer"
    (List.init (customers / 2) (fun i ->
         let c = (2 * i) + 1 in
         [ vint c; vint (1 + (c mod 4)); vstr (c_str c) ]))

let generate_update prng ~scale ~n ~dep_rate =
  let customers = base_customers * scale and flights = base_flights * scale in
  List.init n (fun _ ->
      let c = entity prng ~dep_rate ~hot:1 ~pool:customers in
      let f = entity prng ~dep_rate ~hot:1 ~pool:flights in
      match Uv_util.Prng.int prng 4 with
      | 0 ->
          call "NewReservation"
            [ vstr (c_str c); vint f; vint (1 + Uv_util.Prng.int prng 60) ]
      | 1 -> call "DeleteReservation" [ vstr (c_str c); vint f ]
      | 2 ->
          call "UpdateReservation"
            [ vstr (c_str c); vint f; vint (1 + Uv_util.Prng.int prng 60) ]
      | _ ->
          call "UpdateCustomer"
            [ vstr (c_str c); vfloat (Uv_util.Prng.float prng 50.0 -. 25.0) ])

(* The paper's histories mix read-only transactions with the updating
   ones; reads cost the full-replay baselines real work while the
   dependency analysis skips them. *)
let generate prng ~scale ~n ~dep_rate =
  let updates = generate_update prng ~scale ~n ~dep_rate in
  List.concat_map
    (fun call_item ->
      if Uv_util.Prng.chance prng 0.3 then
        let read =
          match Uv_util.Prng.int prng 3 with
          | 0 -> call "FindOpenSeats" [ vint (1 + Uv_util.Prng.int prng base_flights) ]
          | 1 ->
              call "FindFlights"
                [ vint (1 + Uv_util.Prng.int prng airports);
                  vint (1 + Uv_util.Prng.int prng airports) ]
          | _ ->
              call "GetCustomerReservations"
                [ vstr (c_str (1 + Uv_util.Prng.int prng base_customers)) ]
        in
        [ read; call_item ]
      else [ call_item ])
    updates
  |> fun all -> List.filteri (fun i _ -> i < n) all

let workload =
  {
    name = "SEATS";
    schema_sql;
    app_source;
    ri_config;
    populate;
    generate;
    target_call = call "NewReservation" [ vstr (c_str 1); vint 1; vint 1 ];
    mahif_capable = false;
    numeric_history = None;
  }
