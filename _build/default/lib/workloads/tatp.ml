(* TATP: telecom subscriber management. Four database-updating
   transactions; UpdateLocation and the call-forwarding pair address the
   subscriber through the sub_nbr alias column (§D.2's alias
   configuration). *)

open Wtypes

let schema_sql =
  {|
CREATE TABLE subscriber (s_id INT PRIMARY KEY, sub_nbr VARCHAR(15), bit_1 INT, hex_1 INT, byte2_1 INT, msc_location INT, vlr_location INT);
CREATE TABLE special_facility (s_id INT REFERENCES subscriber(s_id), sf_type INT, is_active INT, error_cntrl INT, data_a INT);
CREATE TABLE call_forwarding (s_id INT REFERENCES subscriber(s_id), sf_type INT, start_time INT, end_time INT, numberx VARCHAR(15));
|}

let app_source =
  {|
function UpdateSubscriberData(s_id, bit_1, sf_type, data_a) {
  SQL_exec(`UPDATE subscriber SET bit_1 = ${bit_1} WHERE s_id = ${s_id}`);
  SQL_exec(`UPDATE special_facility SET data_a = ${data_a} WHERE s_id = ${s_id} AND sf_type = ${sf_type}`);
}

function UpdateLocation(sub_nbr, vlr_location) {
  SQL_exec(`UPDATE subscriber SET vlr_location = ${vlr_location} WHERE sub_nbr = '${sub_nbr}'`);
}

function InsertCallForwarding(sub_nbr, sf_type, start_time, end_time, numberx) {
  var rows = SQL_exec(`SELECT s_id FROM subscriber WHERE sub_nbr = '${sub_nbr}'`);
  var s_id = rows[0]['s_id'];
  var active = SQL_exec(`SELECT COUNT(*) FROM special_facility WHERE s_id = ${s_id} AND sf_type = ${sf_type} AND is_active = 1`);
  if (active[0]['COUNT(*)'] != 0) {
    SQL_exec(`INSERT INTO call_forwarding VALUES (${s_id}, ${sf_type}, ${start_time}, ${end_time}, '${numberx}')`);
  } else {
    return 'no active special facility';
  }
}

function DeleteCallForwarding(sub_nbr, sf_type, start_time) {
  var rows = SQL_exec(`SELECT s_id FROM subscriber WHERE sub_nbr = '${sub_nbr}'`);
  var s_id = rows[0]['s_id'];
  SQL_exec(`DELETE FROM call_forwarding WHERE s_id = ${s_id} AND sf_type = ${sf_type} AND start_time = ${start_time}`);
}

function GetSubscriberData(s_id) {
  return SQL_exec(`SELECT * FROM subscriber WHERE s_id = ${s_id}`);
}

function GetNewDestination(s_id, sf_type, start_time, end_time) {
  return SQL_exec(`SELECT numberx FROM call_forwarding WHERE s_id = ${s_id} AND sf_type = ${sf_type} AND start_time <= ${start_time} AND end_time > ${end_time}`);
}

function GetAccessData(s_id, sf_type) {
  return SQL_exec(`SELECT data_a, error_cntrl FROM special_facility WHERE s_id = ${s_id} AND sf_type = ${sf_type}`);
}
|}

let ri_config =
  {
    Uv_retroactive.Rowset.ri_columns =
      [
        ("subscriber", [ "s_id" ]);
        ("call_forwarding", [ "s_id" ]);
        ("special_facility", [ "s_id" ]);
      ];
    ri_aliases = [ ("subscriber", "sub_nbr", "s_id") ];
  }

let base_subs = 100

let sub_nbr_of s = Printf.sprintf "%015d" s

let populate eng ~scale prng =
  let subs = base_subs * scale in
  bulk_insert eng "subscriber"
    (List.init subs (fun i ->
         let s = i + 1 in
         [
           vint s;
           vstr (sub_nbr_of s);
           vint (Uv_util.Prng.int prng 2);
           vint (Uv_util.Prng.int prng 256);
           vint (Uv_util.Prng.int prng 256);
           vint (Uv_util.Prng.int prng 1_000_000);
           vint (Uv_util.Prng.int prng 1_000_000);
         ]));
  let sf = ref [] in
  for s = 1 to subs do
    for sf_type = 1 to 2 do
      sf :=
        [
          vint s;
          vint sf_type;
          vint 1;
          vint (Uv_util.Prng.int prng 256);
          vint (Uv_util.Prng.int prng 256);
        ]
        :: !sf
    done
  done;
  bulk_insert eng "special_facility" (List.rev !sf)

let generate_update prng ~scale ~n ~dep_rate =
  let subs = base_subs * scale in
  List.init n (fun _ ->
      let s = entity prng ~dep_rate ~hot:1 ~pool:subs in
      match Uv_util.Prng.int prng 4 with
      | 0 ->
          call "UpdateSubscriberData"
            [
              vint s;
              vint (Uv_util.Prng.int prng 2);
              vint (1 + Uv_util.Prng.int prng 2);
              vint (Uv_util.Prng.int prng 256);
            ]
      | 1 ->
          call "UpdateLocation"
            [ vstr (sub_nbr_of s); vint (Uv_util.Prng.int prng 1_000_000) ]
      | 2 ->
          call "InsertCallForwarding"
            [
              vstr (sub_nbr_of s);
              vint (1 + Uv_util.Prng.int prng 2);
              vint (Uv_util.Prng.int prng 24);
              vint (1 + Uv_util.Prng.int prng 24);
              vstr (sub_nbr_of (1 + Uv_util.Prng.int prng subs));
            ]
      | _ ->
          call "DeleteCallForwarding"
            [
              vstr (sub_nbr_of s);
              vint (1 + Uv_util.Prng.int prng 2);
              vint (Uv_util.Prng.int prng 24);
            ])

let numeric_history prng ~n ~dep_rate =
  let subs = min base_subs (max 4 (n / 3)) in
  let ddl =
    [
      "CREATE TABLE subscriber (s_id INT PRIMARY KEY, bit_1 INT, vlr_location INT)";
      "CREATE TABLE call_forwarding (s_id INT, sf_type INT, start_time INT)";
    ]
  in
  let seed =
    List.init subs (fun i ->
        Printf.sprintf "INSERT INTO subscriber VALUES (%d, %d, %d)" (i + 1)
          (Uv_util.Prng.int prng 2)
          (Uv_util.Prng.int prng 1_000_000))
  in
  let ops =
    List.init (max 0 (n - List.length ddl - List.length seed)) (fun _ ->
        let s = entity prng ~dep_rate ~hot:1 ~pool:subs in
        match Uv_util.Prng.int prng 3 with
        | 0 ->
            Printf.sprintf "UPDATE subscriber SET vlr_location = %d WHERE s_id = %d"
              (Uv_util.Prng.int prng 1_000_000)
              s
        | 1 ->
            Printf.sprintf "INSERT INTO call_forwarding VALUES (%d, %d, %d)" s
              (1 + Uv_util.Prng.int prng 2)
              (Uv_util.Prng.int prng 24)
        | _ ->
            Printf.sprintf
              "DELETE FROM call_forwarding WHERE s_id = %d AND sf_type = %d" s
              (1 + Uv_util.Prng.int prng 2))
  in
  let pre = List.length ddl + List.length seed in
  let mid = max 1 (List.length ops / 2) in
  let before = List.filteri (fun i _ -> i < mid) ops in
  let after = List.filteri (fun i _ -> i >= mid) ops in
  (* a guaranteed hot-entity statement at the middle: the deterministic
     retroactive target *)
  let hot = "UPDATE subscriber SET vlr_location = 424242 WHERE s_id = 1" in
  (ddl @ seed @ before @ (hot :: after), pre + mid + 1)

(* The paper's histories mix read-only transactions with the updating
   ones; reads cost the full-replay baselines real work while the
   dependency analysis skips them. *)
let generate prng ~scale ~n ~dep_rate =
  let updates = generate_update prng ~scale ~n ~dep_rate in
  List.concat_map
    (fun call_item ->
      if Uv_util.Prng.chance prng 0.3 then
        let read =
          match Uv_util.Prng.int prng 3 with
          | 0 -> call "GetSubscriberData" [ vint (1 + Uv_util.Prng.int prng base_subs) ]
          | 1 ->
              call "GetAccessData"
                [ vint (1 + Uv_util.Prng.int prng base_subs);
                  vint (1 + Uv_util.Prng.int prng 2) ]
          | _ ->
              call "GetNewDestination"
                [ vint (1 + Uv_util.Prng.int prng base_subs);
                  vint (1 + Uv_util.Prng.int prng 2);
                  vint 20; vint 4 ]
        in
        [ read; call_item ]
      else [ call_item ])
    updates
  |> fun all -> List.filteri (fun i _ -> i < n) all

let workload =
  {
    name = "TATP";
    schema_sql;
    app_source;
    ri_config;
    populate;
    generate;
    target_call =
      call "UpdateLocation" [ vstr (sub_nbr_of 1); vint 424242 ];
    mahif_capable = true;
    numeric_history = Some numeric_history;
  }
