(* Shared workload record shape; re-exported with documentation by
   [Workload]. Kept in its own module so each benchmark module can build
   the record without a dependency cycle through [Workload.all]. *)

open Uv_sql

type txn_call = { txn : string; args : Value.t list }

type t = {
  name : string;
  schema_sql : string;
  app_source : string;
  ri_config : Uv_retroactive.Rowset.config;
  populate : Uv_db.Engine.t -> scale:int -> Uv_util.Prng.t -> unit;
  generate :
    Uv_util.Prng.t -> scale:int -> n:int -> dep_rate:float -> txn_call list;
  target_call : txn_call;
  mahif_capable : bool;
  numeric_history :
    (Uv_util.Prng.t -> n:int -> dep_rate:float -> string list * int) option;
      (* numeric-only projection of the workload (CREATE TABLEs + DML) for
         the Mahif comparison, plus the 1-based index of a canonical
         hot-entity statement near the middle of the history — the
         deterministic retroactive target; None when every update needs
         strings *)
}

(* helpers shared by the generators *)

let vint i = Value.Int i
let vstr s = Value.Text s
let vfloat f = Value.Float f

let call txn args = { txn; args }

(* Pick the hot entity with probability [dep_rate], else a cold one. *)
let entity prng ~dep_rate ~hot ~pool =
  if Uv_util.Prng.chance prng dep_rate then hot
  else 2 + Uv_util.Prng.int prng (max 1 (pool - 1))

let bulk_insert eng table rows =
  (* multi-row INSERT statements keep population fast *)
  let chunk = 256 in
  let rec go rows =
    match rows with
    | [] -> ()
    | _ ->
        let now, rest =
          let rec split i acc = function
            | [] -> (List.rev acc, [])
            | x :: r when i < chunk -> split (i + 1) (x :: acc) r
            | r -> (List.rev acc, r)
          in
          split 0 [] rows
        in
        let stmt =
          Uv_sql.Ast.Insert
            {
              table;
              columns = None;
              values = List.map (List.map (fun v -> Uv_sql.Ast.Lit v)) now;
            }
        in
        ignore (Uv_db.Engine.exec eng stmt);
        go rest
  in
  go rows
