(** Shared workload record shape and generator helpers. The documented
    public face is {!Workload}; benchmark modules build this record. *)

open Uv_sql

type txn_call = { txn : string; args : Value.t list }

type t = {
  name : string;
  schema_sql : string;
  app_source : string;
  ri_config : Uv_retroactive.Rowset.config;
  populate : Uv_db.Engine.t -> scale:int -> Uv_util.Prng.t -> unit;
  generate :
    Uv_util.Prng.t -> scale:int -> n:int -> dep_rate:float -> txn_call list;
  target_call : txn_call;
  mahif_capable : bool;
  numeric_history :
    (Uv_util.Prng.t -> n:int -> dep_rate:float -> string list * int) option;
}

val vint : int -> Value.t
val vstr : string -> Value.t
val vfloat : float -> Value.t

val call : string -> Value.t list -> txn_call

val entity :
  Uv_util.Prng.t -> dep_rate:float -> hot:int -> pool:int -> int
(** The dependency-rate knob: the hot entity with probability
    [dep_rate], otherwise a uniformly random cold one. *)

val bulk_insert : Uv_db.Engine.t -> string -> Value.t list list -> unit
(** Chunked multi-row INSERTs for fast population. *)
