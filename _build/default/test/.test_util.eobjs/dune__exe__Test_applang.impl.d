test/test_applang.ml: Alcotest Uv_applang Uv_symexec
