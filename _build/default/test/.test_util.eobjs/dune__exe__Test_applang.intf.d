test/test_applang.mli:
