test/test_db.ml: Alcotest Array Catalog Char Dump Engine Filename Fun Gen Int64 List Log Log_io Printf QCheck QCheck_alcotest Schema Storage String Sys Uv_db Uv_sql Uv_util Value
