test/test_mahif.ml: Alcotest Array Engine List Log Printf QCheck QCheck_alcotest Uv_db Uv_mahif Uv_sql Uv_util
