test/test_mahif.mli:
