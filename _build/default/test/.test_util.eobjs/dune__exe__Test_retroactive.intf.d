test/test_retroactive.mli:
