test/test_sql.ml: Alcotest Ast Bytes Char Gen Lexer List Parser Printer QCheck QCheck_alcotest Schema String Uv_sql Value
