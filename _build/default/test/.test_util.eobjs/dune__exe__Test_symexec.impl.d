test/test_symexec.ml: Alcotest Assignment List QCheck QCheck_alcotest Solver Sym Uv_symexec
