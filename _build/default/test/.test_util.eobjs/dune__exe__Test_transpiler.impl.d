test/test_transpiler.ml: Alcotest Array Ast Engine Int64 List Log Parser Printer Printf Prng QCheck QCheck_alcotest String Uv_applang Uv_db Uv_sql Uv_transpiler Uv_util Value
