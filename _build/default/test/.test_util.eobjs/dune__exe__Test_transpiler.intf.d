test/test_transpiler.mli:
