test/test_util.ml: Alcotest Array Clock Dag Fun Int64 List Prng QCheck QCheck_alcotest Stats String Table_hash Textgrid Uv_util
