test/test_workloads.ml: Alcotest Analyzer Catalog Engine List Log Printf Storage Uv_db Uv_retroactive Uv_transpiler Uv_util Uv_workloads Whatif
