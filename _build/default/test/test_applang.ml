(* Tests for the MiniJS substrate: parsing, interpreter semantics
   (dynamic typing, closures, objects, template strings, dynamic call
   targets), and hook behaviour. *)

module A = Uv_applang.Ast
module P = Uv_applang.Parser
module I = Uv_applang.Interp
module V = Uv_applang.Value

let check = Alcotest.check

let eval_src src =
  let i = I.create () in
  (I.eval_expr i (P.parse_expr src)).V.v

let run_and_call ?hooks src name args =
  let i = I.create ?hooks () in
  I.load_source i src;
  (I.call_function i name args).V.v

let num_val = function
  | V.Num f -> f
  | v -> Alcotest.failf "expected number, got %s" (V.to_display v)

let str_val = function
  | V.Str s -> s
  | v -> Alcotest.failf "expected string, got %s" (V.to_display v)

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

let test_parse_function_decl () =
  match P.parse_program "function f(a, b) { return a + b; }" with
  | [ A.Fun_decl ("f", [ "a"; "b" ], [ A.Return (Some _) ]) ] -> ()
  | _ -> Alcotest.fail "function decl shape"

let test_parse_template () =
  match P.parse_expr "`x=${a + 1}!`" with
  | A.Template [ A.Ptext "x="; A.Phole (A.Binop ("+", _, _)); A.Ptext "!" ] -> ()
  | _ -> Alcotest.fail "template parts"

let test_parse_precedence () =
  match P.parse_expr "1 + 2 * 3 == 7 && true" with
  | A.Binop ("&&", A.Binop ("==", A.Binop ("+", _, A.Binop ("*", _, _)), _), _) -> ()
  | _ -> Alcotest.fail "precedence"

let test_parse_member_chain () =
  match P.parse_expr "a.b[0].c(1)" with
  | A.Call (A.Member (A.Index (A.Member (A.Ident "a", "b"), A.Num 0.0), "c"), [ _ ]) ->
      ()
  | _ -> Alcotest.fail "postfix chain"

let test_parse_for_loop () =
  match P.parse_program "for (var i = 0; i < 3; i = i + 1) { x = x + i; }" with
  | [ A.For (Some (A.Let ("i", _)), Some _, Some (A.Assign _), _) ] -> ()
  | _ -> Alcotest.fail "for loop"

let test_parse_error () =
  match P.parse_program "function ) {" with
  | exception P.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

(* ------------------------------------------------------------------ *)
(* Interpreter                                                          *)
(* ------------------------------------------------------------------ *)

let test_arith_and_coercion () =
  check (Alcotest.float 1e-9) "add" 5.0 (num_val (eval_src "2 + 3"));
  check Alcotest.string "string concat" "a1" (str_val (eval_src "'a' + 1"));
  check (Alcotest.float 1e-9) "numeric string" 6.0 (num_val (eval_src "'2' * 3"));
  check (Alcotest.float 1e-9) "modulo" 1.0 (num_val (eval_src "7 % 3"))

let test_equality_modes () =
  (match eval_src "1 == '1'" with
  | V.Bool true -> ()
  | _ -> Alcotest.fail "loose equality coerces");
  match eval_src "1 === '1'" with
  | V.Bool false -> ()
  | _ -> Alcotest.fail "strict equality does not"

let test_truthiness_branches () =
  let v =
    run_and_call "function f(x) { if (x) { return 'yes'; } return 'no'; }" "f"
      [ V.str "" ]
  in
  check Alcotest.string "empty string falsy" "no" (str_val v)

let test_closures () =
  let v =
    run_and_call
      "function mk(n) { return function(x) { return x + n; }; }\n\
       function f() { var add2 = mk(2); return add2(40); }"
      "f" []
  in
  check (Alcotest.float 1e-9) "closure captures" 42.0 (num_val v)

let test_objects_arrays () =
  let v =
    run_and_call
      "function f() { var o = { a: 1, b: [10, 20] }; o.a = o.a + 1; \
       o.b.push(30); return o.a + o.b[2] + o.b.length; }"
      "f" []
  in
  check (Alcotest.float 1e-9) "object/array ops" 35.0 (num_val v)

let test_dynamic_call_target () =
  (* §C.2: function resolved through a table at runtime *)
  let v =
    run_and_call
      "function inc(x) { return x + 1; }\n\
       function dec(x) { return x - 1; }\n\
       function f(name) { var tbl = { increment: inc, decrement: dec }; \
       return tbl[name](10); }"
      "f"
      [ V.str "decrement" ]
  in
  check (Alcotest.float 1e-9) "dynamic dispatch" 9.0 (num_val v)

let test_while_and_for () =
  let v =
    run_and_call
      "function f(n) { var s = 0; for (var i = 1; i <= n; i = i + 1) { s += \
       i; } var j = 0; while (j < 3) { s = s + 100; j = j + 1; } return s; }"
      "f" [ V.num 4.0 ]
  in
  check (Alcotest.float 1e-9) "loops" 310.0 (num_val v)

let test_string_methods () =
  check Alcotest.string "concat method" "ab" (str_val (eval_src "'a'.concat('b')"));
  check Alcotest.string "upper" "AB" (str_val (eval_src "'ab'.toUpperCase()"));
  check (Alcotest.float 1e-9) "indexOf" 1.0 (num_val (eval_src "'abc'.indexOf('b')"));
  check Alcotest.string "substring" "bc" (str_val (eval_src "'abcd'.substring(1, 3)"));
  check (Alcotest.float 1e-9) "length" 3.0 (num_val (eval_src "'abc'.length"))

let test_template_evaluation () =
  let v =
    run_and_call "function f(uid) { return `SELECT * WHERE id = ${uid + 1}`; }" "f"
      [ V.num 41.0 ]
  in
  check Alcotest.string "template" "SELECT * WHERE id = 42" (str_val v)

let test_ternary_and_typeof () =
  check Alcotest.string "ternary" "big" (str_val (eval_src "5 > 1 ? 'big' : 'small'"));
  check Alcotest.string "typeof" "number" (str_val (eval_src "typeof 3"))

let test_runtime_error () =
  match run_and_call "function f() { return nosuch; }" "f" [] with
  | exception I.Runtime_error _ -> ()
  | _ -> Alcotest.fail "unbound identifier should raise"

let test_builtin_math () =
  check (Alcotest.float 1e-9) "floor" 3.0 (num_val (eval_src "Math.floor(3.7)"));
  check (Alcotest.float 1e-9) "max" 9.0 (num_val (eval_src "Math.max(1, 9, 4)"));
  check (Alcotest.float 1e-9) "abs" 2.5 (num_val (eval_src "Math.abs(0 - 2.5)"));
  check (Alcotest.float 1e-9) "parseInt" 42.0 (num_val (eval_src "parseInt('42abc')"))

(* ------------------------------------------------------------------ *)
(* Hooks                                                                *)
(* ------------------------------------------------------------------ *)

let test_sql_hook_receives_query () =
  let seen = ref "" in
  let hooks =
    {
      I.default_hooks with
      I.sql_exec =
        (fun cv ->
          seen := V.to_display cv.V.v;
          V.conc (V.Arr (ref [])));
    }
  in
  ignore
    (run_and_call ~hooks "function f(uid) { SQL_exec(`SELECT ${uid}`); return 0; }"
       "f" [ V.num 7.0 ]);
  check Alcotest.string "query text" "SELECT 7" !seen

let test_blackbox_hook_overrides () =
  let hooks =
    {
      I.default_hooks with
      I.blackbox = (fun _api _ -> Some (V.num 0.25));
    }
  in
  let v = run_and_call ~hooks "function f() { return Math.random(); }" "f" [] in
  check (Alcotest.float 1e-9) "hooked value" 0.25 (num_val v)

let test_branch_hook_fires_on_symbolic () =
  let fired = ref [] in
  let hooks =
    {
      I.default_hooks with
      I.on_branch = (fun _sym taken -> fired := taken :: !fired);
    }
  in
  let i = I.create ~hooks () in
  I.load_source i "function f(x) { if (x > 1) { return 1; } return 0; }";
  (* symbolic argument -> branch recorded *)
  let sym_arg = V.with_sym (V.Num 5.0) (Uv_symexec.Sym.Input "x") in
  ignore (I.call_function i "f" [ sym_arg ]);
  check Alcotest.(list bool) "one decision, taken" [ true ] !fired;
  (* concrete argument -> nothing recorded *)
  fired := [];
  ignore (I.call_function i "f" [ V.num 5.0 ]);
  check Alcotest.(list bool) "no decision for concrete" [] !fired

let test_array_and_string_methods () =
  let v =
    run_and_call
      {|
function f() {
  var xs = [3, 1, 4, 1, 5];
  var doubled = xs.map(function (x) { return x * 2; });
  var big = doubled.filter(function (x) { return x > 4; });
  var total = 0;
  big.forEach(function (x) { total = total + x; });
  // doubled = [6,2,8,2,10]; big = [6,8,10]; total = 24
  var parts = 'a,b,,c'.split(',');
  var tail = xs.slice(2);
  var neg = xs.slice(-2);
  return total + parts.length * 100 + xs.indexOf(4) * 1000
       + tail.length * 10 + neg.length;
}
|}
      "f" []
  in
  (* 24 + 400 + 2000 + 30 + 2 *)
  check (Alcotest.float 1e-9) "combined" 2456.0 (num_val v);
  let v = run_and_call "function g() { return '  pad  '.trim(); }" "g" [] in
  check Alcotest.string "trim" "pad" (str_val v)

let test_break_continue () =
  (* break stops only the innermost loop *)
  let v =
    run_and_call
      {|
function f() {
  var total = 0;
  for (var i = 0; i < 10; i = i + 1) {
    if (i == 3) { continue; }
    if (i == 6) { break; }
    total = total + i;
  }
  // 0+1+2+4+5 = 12
  var j = 0;
  while (true) {
    j = j + 1;
    if (j >= 4) { break; }
  }
  return total + j;
}
|}
      "f" []
  in
  check (Alcotest.float 1e-9) "break/continue semantics" 16.0 (num_val v);
  (* break in an inner loop does not escape the outer loop *)
  let v =
    run_and_call
      {|
function g() {
  var n = 0;
  for (var i = 0; i < 3; i = i + 1) {
    for (var j = 0; j < 100; j = j + 1) {
      if (j == 2) { break; }
      n = n + 1;
    }
  }
  return n;
}
|}
      "g" []
  in
  check (Alcotest.float 1e-9) "inner break only" 6.0 (num_val v)

let test_segments_track_holes () =
  let segs = ref [] in
  let hooks =
    {
      I.default_hooks with
      I.sql_exec =
        (fun cv ->
          segs := V.segs_of cv;
          V.conc (V.Arr (ref [])));
    }
  in
  let i = I.create ~hooks () in
  I.load_source i "function f(uid) { SQL_exec(`A ${uid} B`); return 0; }";
  let sym_arg = V.with_sym (V.Str "zz") (Uv_symexec.Sym.Input "uid") in
  ignore (I.call_function i "f" [ sym_arg ]);
  match !segs with
  | [ V.S_text "A "; V.S_hole (Uv_symexec.Sym.Input "uid"); V.S_text " B" ] -> ()
  | _ -> Alcotest.failf "unexpected segments: %s" (V.segs_to_string !segs)

let () =
  Alcotest.run "uv_applang"
    [
      ( "parser",
        [
          Alcotest.test_case "function decl" `Quick test_parse_function_decl;
          Alcotest.test_case "template" `Quick test_parse_template;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "member chain" `Quick test_parse_member_chain;
          Alcotest.test_case "for loop" `Quick test_parse_for_loop;
          Alcotest.test_case "parse error" `Quick test_parse_error;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "arith/coercion" `Quick test_arith_and_coercion;
          Alcotest.test_case "equality" `Quick test_equality_modes;
          Alcotest.test_case "truthiness" `Quick test_truthiness_branches;
          Alcotest.test_case "closures" `Quick test_closures;
          Alcotest.test_case "objects/arrays" `Quick test_objects_arrays;
          Alcotest.test_case "dynamic call target" `Quick test_dynamic_call_target;
          Alcotest.test_case "loops" `Quick test_while_and_for;
          Alcotest.test_case "break/continue" `Quick test_break_continue;
          Alcotest.test_case "array/string methods" `Quick
            test_array_and_string_methods;
          Alcotest.test_case "string methods" `Quick test_string_methods;
          Alcotest.test_case "templates" `Quick test_template_evaluation;
          Alcotest.test_case "ternary/typeof" `Quick test_ternary_and_typeof;
          Alcotest.test_case "runtime error" `Quick test_runtime_error;
          Alcotest.test_case "math builtins" `Quick test_builtin_math;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "sql_exec" `Quick test_sql_hook_receives_query;
          Alcotest.test_case "blackbox override" `Quick test_blackbox_hook_overrides;
          Alcotest.test_case "branch recording" `Quick
            test_branch_hook_fires_on_symbolic;
          Alcotest.test_case "string segments" `Quick test_segments_track_holes;
        ] );
    ]
