(* Tests for the Mahif baseline: correctness of its symbolic what-if
   answers against the engine oracle on its numeric fragment, its feature
   gates, and the super-linear growth behaviour the comparison relies
   on. *)

open Uv_db

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let run e sql = ignore (Engine.exec_sql e sql)

let numeric_history seed n =
  let prng = Uv_util.Prng.create seed in
  let stmts =
    ref
      [
        "CREATE TABLE t (id INT PRIMARY KEY, v INT)";
      ]
  in
  for i = 1 to 5 do
    stmts := Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i * 10) :: !stmts
  done;
  for _ = 1 to n do
    let id = 1 + Uv_util.Prng.int prng 5 in
    let sql =
      match Uv_util.Prng.int prng 3 with
      | 0 ->
          Printf.sprintf "UPDATE t SET v = %d WHERE id = %d"
            (Uv_util.Prng.int prng 100) id
      | 1 -> Printf.sprintf "DELETE FROM t WHERE id = %d" id
      | _ ->
          Printf.sprintf "INSERT INTO t VALUES (%d, %d)"
            (100 + Uv_util.Prng.int prng 100_000)
            (Uv_util.Prng.int prng 100)
    in
    stmts := sql :: !stmts
  done;
  List.rev !stmts

let build_engine stmts =
  let e = Engine.create () in
  List.iter (fun sql -> try run e sql with Engine.Sql_error _ -> ()) stmts;
  e

(* engine-side oracle: table contents without statement tau, compared by
   multiset of (id, v) pairs *)
let oracle_rows stmts tau =
  let e = Engine.create () in
  List.iteri
    (fun i sql ->
      if i + 1 <> tau then try run e sql with Engine.Sql_error _ -> ())
    stmts;
  let r = Engine.query_sql e "SELECT id, v FROM t ORDER BY id ASC" in
  List.map
    (fun row -> (Uv_sql.Value.to_int row.(0), Uv_sql.Value.to_int row.(1)))
    r.Engine.rows

let mahif_rows stmts tau =
  let e = build_engine stmts in
  let m = Uv_mahif.Mahif.create () in
  Uv_mahif.Mahif.load_history m (Engine.log e);
  Uv_mahif.Mahif.whatif_remove m tau

(* Mahif returns per-table hashes; compare to the hash of the oracle
   state computed the same way. *)
let oracle_hashes stmts tau =
  let rows = oracle_rows stmts tau in
  let h = Uv_util.Table_hash.create () in
  List.iter
    (fun (id, v) ->
      Uv_util.Table_hash.add_row h (Printf.sprintf "t|%d|%d" id v))
    rows;
  [ ("t", Uv_util.Table_hash.value h) ]

let test_whatif_matches_engine () =
  let stmts = numeric_history 5 20 in
  (* remove the 8th statement (an op on the populated table) *)
  let tau = 8 in
  check
    Alcotest.(list (pair string int64))
    "mahif == engine oracle" (oracle_hashes stmts tau) (mahif_rows stmts tau)

let prop_mahif_oracle =
  QCheck.Test.make ~name:"mahif what-if == engine oracle (random numeric histories)"
    ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 7 20))
    (fun (seed, tau) ->
      let stmts = numeric_history seed 18 in
      mahif_rows stmts tau = oracle_hashes stmts tau)

let test_rejects_strings () =
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT, s VARCHAR(8))";
  let m = Uv_mahif.Mahif.create () in
  match Uv_mahif.Mahif.load_history m (Engine.log e) with
  | exception Uv_mahif.Mahif.Unsupported _ -> ()
  | () -> Alcotest.fail "string column must be unsupported"

let test_rejects_procedures () =
  let e = Engine.create () in
  run e "CREATE TABLE t (a INT)";
  run e "CREATE PROCEDURE p() BEGIN INSERT INTO t VALUES (1); END";
  let m = Uv_mahif.Mahif.create () in
  match Uv_mahif.Mahif.load_history m (Engine.log e) with
  | exception Uv_mahif.Mahif.Unsupported _ -> ()
  | () -> Alcotest.fail "procedures must be unsupported"

let test_rejects_native_api () =
  let e = Engine.create () in
  run e "CREATE TABLE t (a DOUBLE)";
  run e "INSERT INTO t VALUES (RAND())";
  let m = Uv_mahif.Mahif.create () in
  match Uv_mahif.Mahif.load_history m (Engine.log e) with
  | exception Uv_mahif.Mahif.Unsupported _ -> ()
  | () -> Alcotest.fail "RAND must be unsupported"

let state_nodes n =
  let stmts = numeric_history 1 n in
  let e = build_engine stmts in
  let m = Uv_mahif.Mahif.create () in
  Uv_mahif.Mahif.load_history m (Engine.log e);
  Uv_mahif.Mahif.expression_nodes m

let test_superlinear_growth () =
  (* doubling the history should much more than double the symbolic
     state: updates wrap every live tuple's expression *)
  let n1 = state_nodes 40 and n2 = state_nodes 80 in
  Alcotest.(check bool)
    (Printf.sprintf "superlinear growth (%d -> %d)" n1 n2)
    true
    (n2 > 3 * n1)

let test_memory_accounting_positive () =
  let stmts = numeric_history 2 30 in
  let e = build_engine stmts in
  let m = Uv_mahif.Mahif.create () in
  Uv_mahif.Mahif.load_history m (Engine.log e);
  Alcotest.(check bool) "memory estimate positive" true
    (Uv_mahif.Mahif.memory_bytes m > 0);
  check Alcotest.int "statement count"
    (Log.length (Engine.log e))
    (Uv_mahif.Mahif.statement_count m)

let () =
  Alcotest.run "uv_mahif"
    [
      ( "correctness",
        [
          Alcotest.test_case "matches engine" `Quick test_whatif_matches_engine;
          qtest prop_mahif_oracle;
        ] );
      ( "feature gates",
        [
          Alcotest.test_case "strings" `Quick test_rejects_strings;
          Alcotest.test_case "procedures" `Quick test_rejects_procedures;
          Alcotest.test_case "native APIs" `Quick test_rejects_native_api;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "superlinear state growth" `Quick test_superlinear_growth;
          Alcotest.test_case "memory accounting" `Quick
            test_memory_accounting_positive;
        ] );
    ]
