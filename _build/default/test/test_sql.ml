(* Tests for ultraverse.sql: value semantics, lexing, parsing, printing,
   and the parse∘print round-trip property over generated statements. *)

open Uv_sql

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Values                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_truthiness () =
  Alcotest.(check bool) "null false" false (Value.to_bool Value.Null);
  Alcotest.(check bool) "zero false" false (Value.to_bool (Value.Int 0));
  Alcotest.(check bool) "nonzero true" true (Value.to_bool (Value.Int 7));
  Alcotest.(check bool) "'0' false" false (Value.to_bool (Value.Text "0"));
  Alcotest.(check bool) "'x' true" true (Value.to_bool (Value.Text "x"))

let test_value_coercions () =
  check Alcotest.int "text to int" 42 (Value.to_int (Value.Text "42"));
  check (Alcotest.float 1e-9) "int to float" 3.0 (Value.to_float (Value.Int 3));
  (match Value.coerce Value.Tint (Value.Text "17") with
  | Value.Int 17 -> ()
  | v -> Alcotest.failf "expected Int 17, got %s" (Value.to_string v));
  Alcotest.check_raises "bad text to int"
    (Failure "cannot coerce 'abc' to INT") (fun () ->
      ignore (Value.coerce Value.Tint (Value.Text "abc")))

let test_value_null_propagation () =
  Alcotest.(check bool) "null + x = null" true
    (Value.is_null (Value.add Value.Null (Value.Int 1)));
  Alcotest.(check bool) "null = x is false" false
    (Value.equal_sql Value.Null (Value.Int 1));
  Alcotest.(check bool) "div by zero null" true
    (Value.is_null (Value.div (Value.Int 1) (Value.Int 0)))

let test_value_numeric_string_compare () =
  check Alcotest.int "'10' vs 9 numeric" 1
    (Value.compare_sql (Value.Text "10") (Value.Int 9));
  check Alcotest.int "'abc' vs 'abd'" (-1)
    (Value.compare_sql (Value.Text "abc") (Value.Text "abd"))

let test_value_arith () =
  (match Value.add (Value.Int 2) (Value.Int 3) with
  | Value.Int 5 -> ()
  | _ -> Alcotest.fail "2+3");
  (match Value.mul (Value.Int 2) (Value.Float 1.5) with
  | Value.Float 3.0 -> ()
  | _ -> Alcotest.fail "2*1.5");
  match Value.modulo (Value.Int 7) (Value.Int 3) with
  | Value.Int 1 -> ()
  | _ -> Alcotest.fail "7 mod 3"

let test_value_literals () =
  check Alcotest.string "quote escaping" "'it''s'"
    (Value.to_literal (Value.Text "it's"));
  check Alcotest.string "null literal" "NULL" (Value.to_literal Value.Null);
  check Alcotest.string "bool literal" "TRUE" (Value.to_literal (Value.Bool true))

let prop_serialize_injective =
  QCheck.Test.make ~name:"serialize is injective on scalars" ~count:300
    QCheck.(pair (oneof [map (fun i -> Value.Int i) int; map (fun s -> Value.Text s) string; map (fun b -> Value.Bool b) bool])
             (oneof [map (fun i -> Value.Int i) int; map (fun s -> Value.Text s) string; map (fun b -> Value.Bool b) bool]))
    (fun (a, b) ->
      if Value.serialize a = Value.serialize b then a = b else true)

let prop_deserialize_roundtrip =
  QCheck.Test.make ~name:"deserialize inverts serialize" ~count:500
    QCheck.(
      oneof
        [
          always Value.Null;
          map (fun i -> Value.Int i) int;
          map (fun f -> Value.Float f) float;
          map (fun b -> Value.Bool b) bool;
          map (fun s -> Value.Text s) string;
          always (Value.Float infinity);
          always (Value.Float neg_infinity);
          always (Value.Float 0.1);
          always (Value.Float (-0.0));
        ])
    (fun v ->
      let back = Value.deserialize (Value.serialize v) in
      (* compare via re-serialisation so NaN-free structural equality works
         for every payload including -0.0 *)
      String.equal (Value.serialize back) (Value.serialize v))

let test_deserialize_rejects_garbage () =
  List.iter
    (fun s ->
      match Value.deserialize s with
      | exception Failure _ -> ()
      | v -> Alcotest.failf "accepted %S as %s" s (Value.to_string v))
    [ ""; "Ix"; "F-"; "B2"; "T9:short"; "T-1:"; "Z"; "N5" ]

let test_ty_of_name () =
  let expect name ty = Alcotest.(check bool) name true (Value.ty_of_name name = ty) in
  expect "VARCHAR(32)" (Some Value.Ttext);
  expect "int" (Some Value.Tint);
  expect "DECIMAL(10,2)" (Some Value.Tfloat);
  expect "BOOLEAN" (Some Value.Tbool);
  Alcotest.(check bool) "junk" true (Value.ty_of_name "BLOB9" = None)

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT a, 'x''y' FROM t1 WHERE n >= 2.5 -- c" in
  check Alcotest.int "token count" 11 (List.length toks)

let test_lexer_string_escape () =
  match Lexer.tokenize "'it''s'" with
  | [ Lexer.Str_lit s; Lexer.Eof ] -> check Alcotest.string "unescaped" "it's" s
  | _ -> Alcotest.fail "expected one string literal"

let test_lexer_comments () =
  match Lexer.tokenize "/* block */ SELECT -- line\n 1" with
  | [ Lexer.Keyword "SELECT"; Lexer.Int_lit 1; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "comments should be skipped"

let test_lexer_operators () =
  match Lexer.tokenize "a != b <> c <= d" with
  | [ Lexer.Ident "a"; Lexer.Op "<>"; Lexer.Ident "b"; Lexer.Op "<>";
      Lexer.Ident "c"; Lexer.Op "<="; Lexer.Ident "d"; Lexer.Eof ] ->
      ()
  | _ -> Alcotest.fail "operator normalisation"

let test_lexer_at_var () =
  match Lexer.tokenize "@foo" with
  | [ Lexer.At_var "foo"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "@var"

let test_lexer_backquote () =
  match Lexer.tokenize "`select`" with
  | [ Lexer.Ident "select"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "backquoted identifier is never a keyword"

let test_lexer_error_position () =
  try
    ignore (Lexer.tokenize "SELECT #");
    Alcotest.fail "expected lex error"
  with Lexer.Lex_error (_, pos) -> check Alcotest.int "position" 7 pos

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

let parse = Parser.parse_stmt

let test_parse_select_shape () =
  match parse "SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY b DESC LIMIT 5" with
  | Ast.Select s ->
      check Alcotest.int "items" 2 (List.length s.Ast.sel_items);
      Alcotest.(check bool) "where" true (s.Ast.sel_where <> None);
      check Alcotest.int "order" 1 (List.length s.Ast.sel_order_by);
      Alcotest.(check (option int)) "limit" (Some 5) s.Ast.sel_limit
  | _ -> Alcotest.fail "not a select"

let test_parse_join () =
  match parse "SELECT * FROM a JOIN b ON b.x = a.x JOIN c ON c.y = b.y" with
  | Ast.Select s -> check Alcotest.int "joins" 2 (List.length s.Ast.sel_joins)
  | _ -> Alcotest.fail "join parse"

let test_parse_insert_multi_row () =
  match parse "INSERT INTO t (a, b) VALUES (1, 2), (3, 4)" with
  | Ast.Insert { columns = Some [ "a"; "b" ]; values; _ } ->
      check Alcotest.int "rows" 2 (List.length values)
  | _ -> Alcotest.fail "insert parse"

let test_parse_create_table_constraints () =
  match
    parse
      "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, uid VARCHAR(8) NOT \
       NULL, r INT REFERENCES other(oid))"
  with
  | Ast.Create_table { columns = [ a; b; c ]; _ } ->
      Alcotest.(check bool) "pk" true a.Schema.primary_key;
      Alcotest.(check bool) "auto" true a.Schema.auto_increment;
      Alcotest.(check bool) "not null" true b.Schema.not_null;
      Alcotest.(check (option (pair string string)))
        "fk" (Some ("other", "oid")) c.Schema.references
  | _ -> Alcotest.fail "create table parse"

let test_parse_table_level_constraints () =
  match
    parse
      "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a), FOREIGN KEY (b) \
       REFERENCES u(x))"
  with
  | Ast.Create_table { columns = [ a; b ]; _ } ->
      Alcotest.(check bool) "pk applied" true a.Schema.primary_key;
      Alcotest.(check (option (pair string string)))
        "fk applied" (Some ("u", "x")) b.Schema.references
  | _ -> Alcotest.fail "table-level constraints"

let test_parse_procedure_scope () =
  (* inside the body, declared names parse as Var, columns as Col *)
  match
    parse
      "CREATE PROCEDURE p(IN uid INT) BEGIN DECLARE n INT; SELECT COUNT(*) \
       INTO n FROM t WHERE owner = uid; IF n > 0 THEN DELETE FROM t WHERE \
       owner = uid; END IF; END"
  with
  | Ast.Create_procedure { body; params = [ ("uid", Value.Tint) ]; _ } -> (
      match body with
      | [ Ast.P_declare ("n", Value.Tint, None); Ast.P_select_into (s, [ "n" ]); Ast.P_if ([ (cond, _) ], []) ] ->
          (match s.Ast.sel_where with
          | Some (Ast.Binop (Ast.Eq, Ast.Col (None, "owner"), Ast.Var "uid")) -> ()
          | _ -> Alcotest.fail "param should resolve to Var");
          (match cond with
          | Ast.Binop (Ast.Gt, Ast.Var "n", Ast.Lit (Value.Int 0)) -> ()
          | _ -> Alcotest.fail "declared local should resolve to Var")
      | _ -> Alcotest.fail "unexpected body shape")
  | _ -> Alcotest.fail "procedure parse"

let test_parse_transaction () =
  match parse "BEGIN TRANSACTION; INSERT INTO t VALUES (1); DELETE FROM t; COMMIT" with
  | Ast.Transaction [ Ast.Insert _; Ast.Delete _ ] -> ()
  | _ -> Alcotest.fail "transaction parse"

let test_parse_trigger () =
  match
    parse
      "CREATE TRIGGER tg AFTER INSERT ON t FOR EACH ROW BEGIN UPDATE s SET n \
       = n + 1 WHERE k = NEW.k; END"
  with
  | Ast.Create_trigger { timing = Ast.After; event = Ast.Ev_insert; table = "t"; _ }
    ->
      ()
  | _ -> Alcotest.fail "trigger parse"

let test_parse_case_expression () =
  match Parser.parse_expr "CASE WHEN a > 1 THEN 'big' ELSE 'small' END" with
  | Ast.Fun_call ("IF", [ _; Ast.Lit (Value.Text "big"); Ast.Lit (Value.Text "small") ]) ->
      ()
  | _ -> Alcotest.fail "case lowering"

let test_parse_in_between () =
  (match Parser.parse_expr "a IN (1, 2, 3)" with
  | Ast.In_list (_, l) -> check Alcotest.int "in items" 3 (List.length l)
  | _ -> Alcotest.fail "in");
  match Parser.parse_expr "a BETWEEN 1 AND 5" with
  | Ast.Between _ -> ()
  | _ -> Alcotest.fail "between"

let test_parse_errors () =
  List.iter
    (fun bad ->
      match parse bad with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %s" bad)
    [
      "SELECT FROM";
      "INSERT t VALUES (1)";
      "UPDATE SET a = 1";
      "CREATE TABLE t (a)";
      "SELECT 1 extra garbage (";
    ]

let test_parse_script () =
  let stmts = Parser.parse_script "SELECT 1; SELECT 2; INSERT INTO t VALUES (3)" in
  check Alcotest.int "three statements" 3 (List.length stmts)

(* ------------------------------------------------------------------ *)
(* Printer round-trip                                                   *)
(* ------------------------------------------------------------------ *)

let roundtrip_cases =
  [
    "SELECT COUNT(*) FROM t WHERE a = 1";
    "SELECT DISTINCT a, b FROM t";
    "SELECT a, SUM(b) FROM t GROUP BY a ORDER BY a ASC LIMIT 3";
    "SELECT u.x FROM users AS u JOIN orders o ON o.uid = u.id WHERE u.x IN (1, 2)";
    "INSERT INTO t VALUES (1, 'x', NULL, TRUE)";
    "UPDATE t SET a = a + 1, b = 'z' WHERE c BETWEEN 1 AND 9";
    "DELETE FROM t WHERE a IS NOT NULL";
    "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(8) REFERENCES u(x))";
    "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(8) UNIQUE, c INT NOT NULL)";
    "DROP TABLE IF EXISTS t";
    "ALTER TABLE t ADD COLUMN z DOUBLE";
    "ALTER TABLE t RENAME TO t2";
    "CREATE VIEW v AS SELECT a FROM t WHERE a > 0";
    "CREATE INDEX ix ON t (a, b)";
    "CALL proc(1, 'x')";
    "TRUNCATE TABLE t";
    "SELECT (SELECT MAX(x) FROM u) FROM t";
    "SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.a = t.a)";
    "SELECT a, SUM(b) FROM t GROUP BY a HAVING (SUM(b) > 10)";
    "SELECT COUNT(DISTINCT a) FROM t";
    "SELECT a, SUM(DISTINCT b) FROM t GROUP BY a HAVING (COUNT(*) >= 2)";
    "SELECT * FROM t WHERE a IN (SELECT x FROM u WHERE (u.y = 1))";
    "INSERT INTO t SELECT a, (b + 1) FROM u WHERE (a > 0)";
    "INSERT INTO t (x, y) SELECT a, COUNT(*) FROM u GROUP BY a";
    "SELECT a FROM t ORDER BY a ASC LIMIT 10 OFFSET 20";
    "SELECT ROWCOUNT((SELECT g FROM t GROUP BY g HAVING (COUNT(*) >= 2)))";
  ]

(* robustness: arbitrary input must either parse or raise Parse_error /
   Lex_error — never any other exception *)
let prop_parser_total =
  QCheck.Test.make ~name:"parser is total (Parse_error or success)" ~count:500
    QCheck.(string_of_size Gen.(0 -- 60))
    (fun input ->
      match Parser.parse_stmt input with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Lexer.Lex_error _ -> true)

(* near-miss SQL: mutate one character of a valid statement *)
let prop_parser_total_mutated =
  QCheck.Test.make ~name:"parser survives single-char mutations" ~count:300
    QCheck.(pair (int_range 0 1000) (int_range 0 255))
    (fun (pos, repl) ->
      let base = "SELECT a, SUM(b) FROM t WHERE a IN (1, 2) GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC LIMIT 3" in
      let b = Bytes.of_string base in
      Bytes.set b (pos mod String.length base) (Char.chr repl);
      match Parser.parse_stmt (Bytes.to_string b) with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Lexer.Lex_error _ -> true)

let test_roundtrip_fixed () =
  List.iter
    (fun src ->
      let a = parse src in
      let printed = Printer.stmt a in
      let b =
        try parse printed
        with Parser.Parse_error m ->
          Alcotest.failf "reparse of %S failed: %s" printed m
      in
      if a <> b then Alcotest.failf "round-trip mismatch for %s" src)
    roundtrip_cases

(* Generator of random expressions/statements for a qcheck round-trip. *)
let gen_stmt =
  let open QCheck.Gen in
  let ident = oneofl [ "a"; "b"; "c"; "t1"; "zap" ] in
  let lit =
    oneof
      [
        map (fun i -> Ast.Lit (Value.Int i)) (int_range (-50) 50);
        map (fun s -> Ast.Lit (Value.Text s)) (oneofl [ "x"; "it's"; "" ]);
        return (Ast.Lit Value.Null);
        return (Ast.Lit (Value.Bool true));
      ]
  in
  let rec expr n =
    if n <= 0 then oneof [ lit; map (fun c -> Ast.Col (None, c)) ident ]
    else
      oneof
        [
          lit;
          map (fun c -> Ast.Col (None, c)) ident;
          map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) (expr (n - 1)) (expr (n - 1));
          map2 (fun a b -> Ast.Binop (Ast.Eq, a, b)) (expr (n - 1)) (expr (n - 1));
          map2 (fun a b -> Ast.Binop (Ast.And, a, b)) (expr (n - 1)) (expr (n - 1));
          map (fun a -> Ast.Unop (Ast.Not, a)) (expr (n - 1));
          map (fun args -> Ast.Fun_call ("CONCAT", args)) (list_size (int_range 1 3) (expr (n - 1)));
        ]
  in
  let where = opt (expr 2) in
  oneof
    [
      map2
        (fun tbl w ->
          Ast.Select
            (Ast.select ~from:(tbl, None) ?where:w [ Ast.Star ]))
        ident where;
      map2
        (fun tbl vals -> Ast.Insert { table = tbl; columns = None; values = [ vals ] })
        ident
        (list_size (int_range 1 4) lit);
      QCheck.Gen.map3
        (fun tbl col w -> Ast.Update { table = tbl; assigns = [ (col, Ast.Lit (Value.Int 1)) ]; where = w })
        ident ident where;
      map2 (fun tbl w -> Ast.Delete { table = tbl; where = w }) ident where;
    ]

let prop_roundtrip_generated =
  QCheck.Test.make ~name:"parse (print s) = s for generated statements" ~count:300
    (QCheck.make gen_stmt ~print:Printer.stmt)
    (fun s ->
      let printed = Printer.stmt s in
      match Parser.parse_stmt printed with
      | reparsed -> reparsed = s
      | exception Parser.Parse_error _ -> false)

let test_printer_compact () =
  let s = parse "CREATE PROCEDURE p() BEGIN SELECT 1; END" in
  let compact = Printer.stmt_compact s in
  Alcotest.(check bool) "single line" false (String.contains compact '\n')

(* ------------------------------------------------------------------ *)
(* Schema helpers                                                       *)
(* ------------------------------------------------------------------ *)

let test_schema_helpers () =
  let t =
    Schema.table "t"
      [
        Schema.column ~primary_key:true "id" Value.Tint;
        Schema.column ~auto_increment:true "seq" Value.Tint;
        Schema.column ~references:("u", "x") "fk" Value.Tint;
      ]
  in
  check Alcotest.(list string) "pk" [ "id" ] (Schema.primary_key_columns t);
  Alcotest.(check (option string)) "auto" (Some "seq") (Schema.auto_increment_column t);
  check
    Alcotest.(list (triple string string string))
    "fks"
    [ ("fk", "u", "x") ]
    (Schema.foreign_keys t);
  check Alcotest.string "qualified" "t.id" (Schema.qualified "t" "id");
  check Alcotest.string "schema col" "_S.t" (Schema.schema_column "t")

let () =
  Alcotest.run "uv_sql"
    [
      ( "value",
        [
          Alcotest.test_case "truthiness" `Quick test_value_truthiness;
          Alcotest.test_case "coercions" `Quick test_value_coercions;
          Alcotest.test_case "null propagation" `Quick test_value_null_propagation;
          Alcotest.test_case "numeric string compare" `Quick
            test_value_numeric_string_compare;
          Alcotest.test_case "arithmetic" `Quick test_value_arith;
          Alcotest.test_case "literals" `Quick test_value_literals;
          Alcotest.test_case "type names" `Quick test_ty_of_name;
          qtest prop_serialize_injective;
          qtest prop_deserialize_roundtrip;
          qtest prop_parser_total;
          qtest prop_parser_total_mutated;
          Alcotest.test_case "deserialize rejects garbage" `Quick
            test_deserialize_rejects_garbage;
        ] );
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "string escapes" `Quick test_lexer_string_escape;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "at-var" `Quick test_lexer_at_var;
          Alcotest.test_case "backquote" `Quick test_lexer_backquote;
          Alcotest.test_case "error position" `Quick test_lexer_error_position;
        ] );
      ( "parser",
        [
          Alcotest.test_case "select shape" `Quick test_parse_select_shape;
          Alcotest.test_case "joins" `Quick test_parse_join;
          Alcotest.test_case "multi-row insert" `Quick test_parse_insert_multi_row;
          Alcotest.test_case "column constraints" `Quick
            test_parse_create_table_constraints;
          Alcotest.test_case "table constraints" `Quick
            test_parse_table_level_constraints;
          Alcotest.test_case "procedure scoping" `Quick test_parse_procedure_scope;
          Alcotest.test_case "transaction" `Quick test_parse_transaction;
          Alcotest.test_case "trigger" `Quick test_parse_trigger;
          Alcotest.test_case "case expression" `Quick test_parse_case_expression;
          Alcotest.test_case "in/between" `Quick test_parse_in_between;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "script" `Quick test_parse_script;
        ] );
      ( "printer",
        [
          Alcotest.test_case "fixed round-trips" `Quick test_roundtrip_fixed;
          Alcotest.test_case "compact is single line" `Quick test_printer_compact;
          qtest prop_roundtrip_generated;
        ] );
      ("schema", [ Alcotest.test_case "helpers" `Quick test_schema_helpers ]);
    ]
