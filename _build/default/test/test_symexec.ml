(* Tests for the symbolic-execution substrate: expression algebra,
   assignment evaluation, and the branch-flipping solver. *)

open Uv_symexec

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let x = Sym.Input "x"
let y = Sym.Input "y"
let num f = Sym.Const_num f
let str s = Sym.Const_str s

let solve cs = Solver.solve (List.map (fun (cond, want) -> { Solver.cond; want }) cs)

let must_solve cs =
  match solve cs with
  | Some asg -> asg
  | None -> Alcotest.fail "expected a solution"

(* ------------------------------------------------------------------ *)
(* Sym                                                                  *)
(* ------------------------------------------------------------------ *)

let test_base_symbols () =
  let e = Sym.Binop ("+", x, Sym.Binop ("*", y, num 2.0)) in
  check Alcotest.int "two leaves" 2 (List.length (Sym.base_symbols e));
  let nested = Sym.Field (Sym.Item (Sym.Db_result 0, 0), "COUNT(*)") in
  check Alcotest.int "field chain is one leaf" 1
    (List.length (Sym.base_symbols (Sym.Binop ("==", nested, num 0.0))));
  Alcotest.(check bool) "chain is leaf" true (Sym.is_leaf nested)

let test_negate_simplifies () =
  let e = Sym.Binop ("==", x, num 1.0) in
  (match Sym.negate e with Sym.Unop ("!", _) -> () | _ -> Alcotest.fail "wraps");
  match Sym.negate (Sym.negate e) with
  | Sym.Binop ("==", _, _) -> ()
  | _ -> Alcotest.fail "double negation cancels"

let test_to_string_stable () =
  let e = Sym.Binop ("&&", Sym.Binop (">", x, num 0.0), Sym.Blackbox ("api", 1)) in
  check Alcotest.string "same serialisation" (Sym.to_string e) (Sym.to_string e)

(* ------------------------------------------------------------------ *)
(* Assignment                                                           *)
(* ------------------------------------------------------------------ *)

let test_assignment_eval () =
  let asg = Assignment.of_list [ (x, Assignment.Num 3.0); (y, Assignment.Num 4.0) ] in
  (match Assignment.eval asg (Sym.Binop ("+", x, y)) with
  | Assignment.Num 7.0 -> ()
  | _ -> Alcotest.fail "3+4");
  (match Assignment.eval asg (Sym.Binop ("<", x, y)) with
  | Assignment.Bool true -> ()
  | _ -> Alcotest.fail "3<4");
  match Assignment.eval asg (Sym.Binop ("str.++", str "a", x)) with
  | Assignment.Str "a3" -> ()
  | _ -> Alcotest.fail "string concat"

let test_assignment_default_leaf () =
  match Assignment.eval Assignment.empty x with
  | Assignment.Num 0.0 -> ()
  | _ -> Alcotest.fail "unassigned leaf defaults to 0"

let test_scalar_loose_equality () =
  Alcotest.(check bool) "'5' == 5" true
    (Assignment.scalar_equal (Assignment.Str "5") (Assignment.Num 5.0));
  Alcotest.(check bool) "null != 0" false
    (Assignment.scalar_equal Assignment.Null (Assignment.Num 0.0))

(* ------------------------------------------------------------------ *)
(* Solver                                                               *)
(* ------------------------------------------------------------------ *)

let test_solver_equality () =
  let asg = must_solve [ (Sym.Binop ("==", x, num 42.0), true) ] in
  match Assignment.eval asg x with
  | Assignment.Num 42.0 -> ()
  | v -> Alcotest.failf "expected 42, got %s" (Assignment.scalar_str v)

let test_solver_string_equality () =
  let asg = must_solve [ (Sym.Binop ("==", x, str "gold"), true) ] in
  match Assignment.eval asg x with
  | Assignment.Str "gold" -> ()
  | _ -> Alcotest.fail "string equality"

let test_solver_negation () =
  let asg = must_solve [ (Sym.Binop ("==", x, num 5.0), false) ] in
  match Assignment.eval asg x with
  | Assignment.Num 5.0 -> Alcotest.fail "must avoid 5"
  | _ -> ()

let test_solver_ordering () =
  let asg =
    must_solve
      [ (Sym.Binop (">", x, num 10.0), true); (Sym.Binop ("<", x, num 20.0), true) ]
  in
  let v = Assignment.scalar_num (Assignment.eval asg x) in
  Alcotest.(check bool) "10 < x < 20" true (v > 10.0 && v < 20.0)

let test_solver_conjunction_over_two_vars () =
  let asg =
    must_solve
      [
        (Sym.Binop ("==", x, num 1.0), true);
        (Sym.Binop ("==", y, str "hot"), true);
      ]
  in
  Alcotest.(check bool) "x equals 1 (loosely)" true
    (Assignment.scalar_equal (Assignment.eval asg x) (Assignment.Num 1.0));
  Alcotest.(check bool) "y equals 'hot'" true
    (Assignment.scalar_equal (Assignment.eval asg y) (Assignment.Str "hot"))

let test_solver_db_leaf () =
  (* the NewOrder branch shape: row count not zero *)
  let leaf = Sym.Field (Sym.Item (Sym.Db_result 0, 0), "COUNT(*)") in
  let asg = must_solve [ (Sym.Binop ("!=", leaf, num 0.0), true) ] in
  Alcotest.(check bool) "nonzero count" true
    (Assignment.scalar_truthy (Assignment.eval asg (Sym.Binop ("!=", leaf, num 0.0))))

let test_solver_unsat () =
  (match
     solve
       [
         (Sym.Binop ("==", x, num 1.0), true);
         (Sym.Binop ("==", x, num 2.0), true);
       ]
   with
  | None -> ()
  | Some _ -> Alcotest.fail "contradiction must fail");
  match solve [ (Sym.Binop ("<", x, x), true) ] with
  | None -> ()
  | Some _ -> Alcotest.fail "x < x must fail"

let test_solver_boolean_combination () =
  let cond =
    Sym.Binop
      ("&&", Sym.Binop (">", x, num 0.0), Sym.Unop ("!", Sym.Binop ("==", y, num 0.0)))
  in
  let asg = must_solve [ (cond, true) ] in
  Alcotest.(check bool) "satisfied" true
    (Assignment.scalar_truthy (Assignment.eval asg cond))

let test_solver_arithmetic_fallback () =
  (* needs the randomized search: x + y == x * y has solutions like 2,2 *)
  let cond = Sym.Binop ("==", Sym.Binop ("+", x, y), num 10.0) in
  let asg = must_solve [ (cond, true) ] in
  Alcotest.(check bool) "x+y=10" true
    (Assignment.scalar_truthy (Assignment.eval asg cond))

let test_satisfies () =
  let cs = [ { Solver.cond = Sym.Binop ("==", x, num 3.0); want = true } ] in
  Alcotest.(check bool) "yes" true
    (Solver.satisfies (Assignment.of_list [ (x, Assignment.Num 3.0) ]) cs);
  Alcotest.(check bool) "no" false
    (Solver.satisfies (Assignment.of_list [ (x, Assignment.Num 4.0) ]) cs)

(* Property: whenever the solver answers, the answer satisfies. *)
let prop_solutions_satisfy =
  QCheck.Test.make ~name:"solver answers always satisfy" ~count:200
    QCheck.(pair (int_range (-20) 20) bool)
    (fun (k, want) ->
      let cs =
        [
          { Solver.cond = Sym.Binop ("==", x, num (float_of_int k)); want };
          { Solver.cond = Sym.Binop (">", y, num 0.0); want = not want };
        ]
      in
      match Solver.solve cs with
      | Some asg -> Solver.satisfies asg cs
      | None -> false (* these are always satisfiable *))

let () =
  Alcotest.run "uv_symexec"
    [
      ( "sym",
        [
          Alcotest.test_case "base symbols" `Quick test_base_symbols;
          Alcotest.test_case "negate" `Quick test_negate_simplifies;
          Alcotest.test_case "stable serialisation" `Quick test_to_string_stable;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "eval" `Quick test_assignment_eval;
          Alcotest.test_case "default leaf" `Quick test_assignment_default_leaf;
          Alcotest.test_case "loose equality" `Quick test_scalar_loose_equality;
        ] );
      ( "solver",
        [
          Alcotest.test_case "equality" `Quick test_solver_equality;
          Alcotest.test_case "string equality" `Quick test_solver_string_equality;
          Alcotest.test_case "negation" `Quick test_solver_negation;
          Alcotest.test_case "ordering" `Quick test_solver_ordering;
          Alcotest.test_case "two variables" `Quick
            test_solver_conjunction_over_two_vars;
          Alcotest.test_case "db-result leaf" `Quick test_solver_db_leaf;
          Alcotest.test_case "unsatisfiable" `Quick test_solver_unsat;
          Alcotest.test_case "boolean combination" `Quick
            test_solver_boolean_combination;
          Alcotest.test_case "arithmetic fallback" `Quick
            test_solver_arithmetic_fallback;
          Alcotest.test_case "satisfies" `Quick test_satisfies;
          qtest prop_solutions_satisfy;
        ] );
    ]
