(* Tests for the DSE + transpiler pipeline: path exploration, hole
   recovery, the §C dynamism gallery (dynamic types, dynamic control-flow
   targets, blackbox APIs), unexplored-path SIGNAL stubs, and — most
   importantly — behavioural equivalence: the transpiled procedure must
   have the same database effect as the interpreted application. *)

open Uv_sql
open Uv_db
module T = Uv_transpiler.Transpile
module C = Uv_transpiler.Concolic
module R = Uv_transpiler.Runtime

let check = Alcotest.check

let run e sql = ignore (Engine.exec_sql e sql)

let qint e sql =
  let r = Engine.query_sql e sql in
  match r.Engine.rows with
  | row :: _ -> Value.to_int row.(0)
  | [] -> Alcotest.failf "no rows from %s" sql

let qstr e sql =
  let r = Engine.query_sql e sql in
  match r.Engine.rows with
  | row :: _ -> Value.to_string row.(0)
  | [] -> Alcotest.failf "no rows from %s" sql

let neworder_src =
  {|
function NewOrder(orderer_uid, order_id) {
  var result_rows = SQL_exec(`SELECT COUNT(*) FROM Address WHERE owner_uid = '${orderer_uid}'`);
  if (result_rows[0]['COUNT(*)'] != 0) {
    SQL_exec(`INSERT INTO Orders VALUES ('${order_id}', '${orderer_uid}')`);
  } else {
    return 'Error: no address';
  }
}
|}

let neworder_schema e =
  run e "CREATE TABLE Address (owner_uid VARCHAR(16) PRIMARY KEY, city VARCHAR(32))";
  run e "CREATE TABLE Orders (oid VARCHAR(8), ord_uid VARCHAR(16))"

(* ------------------------------------------------------------------ *)
(* Exploration                                                          *)
(* ------------------------------------------------------------------ *)

let test_explores_both_branches () =
  let program = Uv_applang.Parser.parse_program neworder_src in
  let ex = C.explore ~program ~name:"NewOrder" () in
  check Alcotest.int "two paths" 2 (Uv_transpiler.Trace.count_paths ex.C.tree);
  check Alcotest.int "no stubs" 0 (Uv_transpiler.Trace.count_unexplored ex.C.tree);
  check Alcotest.(list string) "params in declared order"
    [ "orderer_uid"; "order_id" ] ex.C.params

let test_loop_unrolls_bounded () =
  let src =
    {|
function Batch(a, b) {
  var items = [a, b];
  for (var k = 0; k < 2; k = k + 1) {
    SQL_exec(`INSERT INTO T VALUES (${items[k]})`);
  }
}
|}
  in
  let program = Uv_applang.Parser.parse_program src in
  let ex = C.explore ~program ~name:"Batch" () in
  (* concrete loop bound: single path with two SQL events *)
  check Alcotest.int "one path" 1 (Uv_transpiler.Trace.count_paths ex.C.tree)

let test_unexplored_becomes_stub () =
  (* a branch the solver cannot flip (condition over an opaque API with no
     harvestable candidates is still flippable; use a contradiction) *)
  let src =
    {|
function F(x) {
  if (x != x) {
    SQL_exec(`INSERT INTO T VALUES (1)`);
  } else {
    SQL_exec(`INSERT INTO T VALUES (2)`);
  }
}
|}
  in
  let program = Uv_applang.Parser.parse_program src in
  let tr = T.transpile ~program ~name:"F" () in
  check Alcotest.int "one stub" 1 tr.T.unexplored;
  (* the stub compiles to SIGNAL SQLSTATE '45000' *)
  let printed = Printer.stmt tr.T.procedure in
  Alcotest.(check bool) "signal stub present" true
    (let re = "SIGNAL SQLSTATE '45000'" in
     let rec search i =
       i + String.length re <= String.length printed
       && (String.sub printed i (String.length re) = re || search (i + 1))
     in
     search 0)

let test_path_explosion_guard () =
  (* a symbolic loop bound explodes; the run budget caps exploration *)
  let src =
    {|
function Loop(n) {
  var i = 0;
  while (i < n) {
    SQL_exec(`INSERT INTO T VALUES (${i})`);
    i = i + 1;
  }
}
|}
  in
  let program = Uv_applang.Parser.parse_program src in
  let ex = C.explore ~max_runs:10 ~program ~name:"Loop" () in
  Alcotest.(check bool) "bounded runs" true (ex.C.runs <= 10)

(* ------------------------------------------------------------------ *)
(* Equivalence: transpiled procedure == interpreted application         *)
(* ------------------------------------------------------------------ *)

let test_neworder_equivalence () =
  let program = Uv_applang.Parser.parse_program neworder_src in
  let tr = T.transpile ~program ~name:"NewOrder" () in
  (* engine A: transpiled calls; engine B: raw interpretation *)
  let ea = Engine.create () in
  neworder_schema ea;
  ignore (Engine.exec ea tr.T.procedure);
  run ea "INSERT INTO Address VALUES ('alice', 'Osaka')";
  run ea "CALL uv_NewOrder('alice', 'o1')";
  run ea "CALL uv_NewOrder('bob', 'o2')";
  let eb = Engine.create () in
  neworder_schema eb;
  run eb "INSERT INTO Address VALUES ('alice', 'Osaka')";
  let rt = R.create eb ~source:neworder_src in
  ignore (R.invoke rt ~mode:R.Raw "NewOrder" [ Value.Text "alice"; Value.Text "o1" ]);
  ignore (R.invoke rt ~mode:R.Raw "NewOrder" [ Value.Text "bob"; Value.Text "o2" ]);
  check Alcotest.int64 "identical Orders table"
    (Engine.table_hash eb "Orders") (Engine.table_hash ea "Orders")

let test_runtime_transpiled_mode () =
  let e = Engine.create () in
  neworder_schema e;
  let rt = R.create e ~source:neworder_src in
  let trs = R.transpile_install rt in
  check Alcotest.int "one transaction transpiled" 1 (List.length trs);
  run e "INSERT INTO Address VALUES ('alice', 'Osaka')";
  ignore
    (R.invoke rt ~mode:R.Transpiled "NewOrder" [ Value.Text "alice"; Value.Text "o1" ]);
  check Alcotest.int "order placed via procedure" 1
    (qint e "SELECT COUNT(*) FROM Orders");
  (* the transaction is ONE log entry (one round trip), tagged *)
  let last = Log.entry (Engine.log e) (Log.length (Engine.log e)) in
  (match last.Log.stmt with
  | Ast.Call ("uv_NewOrder", _) -> ()
  | _ -> Alcotest.fail "transpiled mode should log a CALL");
  Alcotest.(check bool) "tagged with app txn" true (last.Log.app_txn <> None)

let test_raw_mode_tags_all_queries () =
  let e = Engine.create () in
  neworder_schema e;
  run e "INSERT INTO Address VALUES ('alice', 'Osaka')";
  let before = Log.length (Engine.log e) in
  let rt = R.create e ~source:neworder_src in
  ignore (R.invoke rt ~mode:R.Raw "NewOrder" [ Value.Text "alice"; Value.Text "o1" ]);
  (* raw mode: SELECT + INSERT, two entries, same tag *)
  check Alcotest.int "two statements logged" (before + 2) (Log.length (Engine.log e));
  let e1 = Log.entry (Engine.log e) (before + 1) in
  let e2 = Log.entry (Engine.log e) (before + 2) in
  Alcotest.(check bool) "same invocation tag" true (e1.Log.app_txn = e2.Log.app_txn)

(* ------------------------------------------------------------------ *)
(* §C dynamism gallery                                                  *)
(* ------------------------------------------------------------------ *)

let test_c1_dynamic_type_coercion () =
  (* Figure 9: inputs are strings on one path, numbers on the other *)
  let src =
    {|
function dynamic_type(userid, input1, input2, is_string) {
  if (is_string == 1) {
    SQL_exec(`INSERT INTO UserDesc VALUES (${userid}, '${input1 + '' + input2}')`);
  } else {
    SQL_exec(`INSERT INTO UserVal VALUES (${userid}, ${input1 - input2})`);
  }
}
|}
  in
  let program = Uv_applang.Parser.parse_program src in
  let tr = T.transpile ~program ~name:"dynamic_type" () in
  check Alcotest.int "both type paths" 2 tr.T.paths;
  (* execute both paths through the transpiled procedure *)
  let e = Engine.create () in
  run e "CREATE TABLE UserDesc (userid INT, descr VARCHAR(64))";
  run e "CREATE TABLE UserVal (userid INT, value DOUBLE)";
  ignore (Engine.exec e tr.T.procedure);
  run e "CALL uv_dynamic_type(7, 'ab', 'cd', 1)";
  run e "CALL uv_dynamic_type(8, 10, 4, 0)";
  check Alcotest.string "string path" "abcd"
    (qstr e "SELECT descr FROM UserDesc WHERE userid = 7");
  check Alcotest.int "numeric path" 6
    (qint e "SELECT value FROM UserVal WHERE userid = 8")

let test_c2_dynamic_control_flow_targets () =
  (* Figure 10: the callee is picked from a table by name *)
  let src =
    {|
function increment(v) { SQL_exec(`UPDATE C SET n = n + ${v} WHERE k = 0`); }
function decrement(v) { SQL_exec(`UPDATE C SET n = n - ${v} WHERE k = 0`); }
function dynamic_call(fname, v) {
  var tbl = { increment: increment, decrement: decrement };
  if (fname == 'increment') {
    tbl[fname](v);
  } else {
    if (fname == 'decrement') {
      tbl[fname](v);
    } else {
      return 'unknown';
    }
  }
}
|}
  in
  let program = Uv_applang.Parser.parse_program src in
  let tr = T.transpile ~program ~name:"dynamic_call" () in
  Alcotest.(check bool) "discovered both targets" true (tr.T.paths >= 2);
  let e = Engine.create () in
  run e "CREATE TABLE C (k INT PRIMARY KEY, n INT)";
  run e "INSERT INTO C VALUES (0, 10)";
  ignore (Engine.exec e tr.T.procedure);
  run e "CALL uv_dynamic_call('increment', 5)";
  run e "CALL uv_dynamic_call('decrement', 3)";
  check Alcotest.int "both jump targets work" 12 (qint e "SELECT n FROM C")

let test_c3_blackbox_api () =
  (* Figure 11: an external response decides the branch; the blackbox
     value becomes an extra procedure parameter *)
  let src =
    {|
function external_io(message) {
  var response = http.send(message);
  if (response.code == 1) {
    SQL_exec(`INSERT INTO Results VALUES ('success', '${message}')`);
  } else {
    SQL_exec(`INSERT INTO Results VALUES ('fail', '${message}')`);
  }
}
|}
  in
  let program = Uv_applang.Parser.parse_program src in
  let tr = T.transpile ~program ~name:"external_io" () in
  check Alcotest.int "blackbox params" 1 (List.length tr.T.blackbox_params);
  let e = Engine.create () in
  run e "CREATE TABLE Results (result VARCHAR(8), log VARCHAR(64))";
  ignore (Engine.exec e tr.T.procedure);
  (* the analyst can force either response (§3.3's option 1) *)
  run e "CALL uv_external_io('hello', 1)";
  run e "CALL uv_external_io('world', 0)";
  check Alcotest.int "success path" 1
    (qint e "SELECT COUNT(*) FROM Results WHERE result = 'success'");
  check Alcotest.int "fail path" 1
    (qint e "SELECT COUNT(*) FROM Results WHERE result = 'fail'")

let test_signal_fallback_to_raw () =
  (* an invocation that hits a SIGNAL stub falls back to raw execution *)
  let src =
    {|
function F(x) {
  if (x != x) {
    SQL_exec(`INSERT INTO T VALUES (1)`);
  } else {
    SQL_exec(`INSERT INTO T VALUES (2)`);
  }
}
|}
  in
  let e = Engine.create () in
  run e "CREATE TABLE T (a INT)";
  let rt = R.create e ~source:src in
  ignore (R.transpile_install rt);
  (* NaN != NaN is true in JS; engine SQL semantics differ, so the CALL
     takes the stubbed arm for NaN input — but for a normal number the
     else-arm runs fine *)
  (match R.invoke rt ~mode:R.Transpiled "F" [ Value.Int 3 ] with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "unexpected error: %s" m);
  check Alcotest.int "else arm executed" 1 (qint e "SELECT COUNT(*) FROM T WHERE a = 2")

let test_insert_select_through_dse () =
  (* an application transaction whose SQL is INSERT ... SELECT (plus a
     HAVING aggregate) survives the whole pipeline: concolic exploration,
     hole recovery, procedure emission, and transpiled == raw execution *)
  let src =
    {|
function Archive(cutoff) {
  SQL_exec(`INSERT INTO OldOrders SELECT id, total FROM Orders WHERE total < ${cutoff}`);
  SQL_exec(`DELETE FROM Orders WHERE total < ${cutoff}`);
  var rows = SQL_exec(`SELECT region FROM Orders GROUP BY region HAVING COUNT(*) >= ${2}`);
  if (rows.length > 0) {
    SQL_exec(`INSERT INTO Busy VALUES (${rows.length})`);
  }
}
|}
  in
  let schema =
    "CREATE TABLE Orders (id INT PRIMARY KEY, total INT, region INT); \
     CREATE TABLE OldOrders (id INT, total INT); \
     CREATE TABLE Busy (n INT)"
  in
  let populate e =
    ignore (Engine.exec_script e schema);
    run e
      "INSERT INTO Orders VALUES (1, 5, 1), (2, 50, 1), (3, 7, 2), (4, 90, 1)"
  in
  (* raw execution *)
  let e_raw = Engine.create () in
  populate e_raw;
  let rt_raw = R.create e_raw ~source:src in
  (match R.invoke rt_raw ~mode:R.Raw "Archive" [ Value.Int 10 ] with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "raw failed: %s" m);
  (* transpiled execution *)
  let e_tr = Engine.create () in
  populate e_tr;
  let rt_tr = R.create e_tr ~source:src in
  let trs = R.transpile_install rt_tr in
  Alcotest.(check bool) "Archive transpiled" true
    (List.exists (fun (t : T.t) -> t.T.txn_name = "Archive") trs);
  (match R.invoke rt_tr ~mode:R.Transpiled "Archive" [ Value.Int 10 ] with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "transpiled failed: %s" m);
  List.iter
    (fun (name, _) ->
      check Alcotest.int64 ("table " ^ name)
        (Engine.table_hash e_raw name) (Engine.table_hash e_tr name))
    (Uv_db.Catalog.tables (Engine.catalog e_raw));
  (* semantic spot-checks *)
  check Alcotest.int "archived rows" 2 (qint e_tr "SELECT COUNT(*) FROM OldOrders");
  check Alcotest.int "orders left" 2 (qint e_tr "SELECT COUNT(*) FROM Orders");
  check Alcotest.int "busy regions (HAVING)" 1 (qint e_tr "SELECT n FROM Busy")

let test_delta_dse_retranspilation () =
  (* after a stub fallback, the procedure is delta-updated with the newly
     discovered path (§3.3): the next invocation takes the procedure, not
     the fallback *)
  let src =
    {|
function Route(kind, v) {
  if (kind == 'credit') {
    SQL_exec(`INSERT INTO Ledger VALUES ('credit', ${v})`);
  } else {
    if (kind == 'debit') {
      SQL_exec(`INSERT INTO Ledger VALUES ('debit', ${v})`);
    } else {
      SQL_exec(`INSERT INTO Ledger VALUES ('other', ${v})`);
    }
  }
}
|}
  in
  let e = Engine.create () in
  run e "CREATE TABLE Ledger (kind VARCHAR(8), v DOUBLE)";
  let rt = R.create e ~source:src in
  (* starve the initial DSE so some branch stays unexplored *)
  ignore (R.transpile_install ~max_runs:1 rt);
  let before = R.transpiled rt "Route" in
  let stubs_before =
    match before with Some t -> t.T.unexplored | None -> Alcotest.fail "no txn"
  in
  Alcotest.(check bool) "initial analysis left stubs" true (stubs_before > 0);
  (* hit the stub: falls back to raw AND delta-updates *)
  (match R.invoke rt ~mode:R.Transpiled "Route" [ Value.Text "debit"; Value.Int 5 ] with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "fallback failed: %s" m);
  check Alcotest.int "fallback counted" 1 (R.signal_fallbacks rt);
  check Alcotest.int "row written by fallback" 1
    (qint e "SELECT COUNT(*) FROM Ledger WHERE kind = 'debit'");
  let stubs_after =
    match R.transpiled rt "Route" with
    | Some t -> t.T.unexplored
    | None -> Alcotest.fail "txn vanished"
  in
  Alcotest.(check bool)
    (Printf.sprintf "delta update reduced stubs (%d -> %d)" stubs_before stubs_after)
    true (stubs_after < stubs_before);
  (* same input again: handled by the updated procedure, no new fallback *)
  ignore (R.invoke rt ~mode:R.Transpiled "Route" [ Value.Text "debit"; Value.Int 7 ]);
  check Alcotest.int "no second fallback" 1 (R.signal_fallbacks rt);
  check Alcotest.int "procedure handled it" 2
    (qint e "SELECT COUNT(*) FROM Ledger WHERE kind = 'debit'")

let test_transpile_all_transitive () =
  (* a dispatcher that reaches SQL only through a function table must be
     recognised as a database-updating transaction *)
  let src =
    {|
function helper(v) { SQL_exec(`INSERT INTO T VALUES (${v})`); }
function Dispatcher(v) {
  var table = { go: helper };
  table['go'](v);
}
function pure(v) { return v + 1; }
|}
  in
  let program = Uv_applang.Parser.parse_program src in
  let names =
    List.map (fun (t : T.t) -> t.T.txn_name) (T.transpile_all ~program ())
    |> List.sort compare
  in
  check Alcotest.(list string) "dispatcher included, pure excluded"
    [ "Dispatcher"; "helper" ] names

let test_augmented_source () =
  let program = Uv_applang.Parser.parse_program neworder_src in
  let s = T.augmented_source program "NewOrder" in
  Alcotest.(check bool) "contains log call" true
    (let re = "Ultraverse_log" in
     let rec search i =
       i + String.length re <= String.length s
       && (String.sub s i (String.length re) = re || search (i + 1))
     in
     search 0)

let test_transpiled_procedure_parses () =
  (* printing then reparsing the generated procedure succeeds *)
  let program = Uv_applang.Parser.parse_program neworder_src in
  let tr = T.transpile ~program ~name:"NewOrder" () in
  let printed = Printer.stmt tr.T.procedure in
  match Parser.parse_stmt printed with
  | Ast.Create_procedure _ -> ()
  | _ -> Alcotest.fail "generated procedure must reparse"

(* ------------------------------------------------------------------ *)
(* Property: random generated transactions transpile equivalently       *)
(* ------------------------------------------------------------------ *)

(* A tiny generator of application transactions over a fixed schema:
   1-3 statements drawn from templates, optionally guarded by a branch on
   a database read. Raw interpretation and the transpiled procedure must
   leave identical databases for random arguments. *)
let random_txn_source prng =
  let open Uv_util in
  let stmt k =
    match Prng.int prng 4 with
    | 0 -> Printf.sprintf "SQL_exec(`INSERT INTO T VALUES (${p1}, ${p2 + %d})`);" k
    | 1 -> Printf.sprintf "SQL_exec(`UPDATE T SET b = ${p2} WHERE a = ${p1 - %d}`);" k
    | 2 -> Printf.sprintf "SQL_exec(`DELETE FROM T WHERE a = ${p1 + %d}`);" k
    | _ ->
        Printf.sprintf
          "SQL_exec(`UPDATE T SET b = b + %d WHERE a > ${p2}`);" (k + 1)
  in
  let body = String.concat "\n  " (List.init (1 + Prng.int prng 3) stmt) in
  if Prng.bool prng then
    Printf.sprintf
      {|
function Txn(p1, p2) {
  var rows = SQL_exec(`SELECT COUNT(*) FROM T WHERE a = ${p1}`);
  if (rows[0]['COUNT(*)'] != 0) {
    %s
  } else {
    SQL_exec(`INSERT INTO T VALUES (${p1}, 0)`);
  }
}
|}
      body
  else Printf.sprintf {|
function Txn(p1, p2) {
  %s
}
|} body

let prop_random_txn_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random transactions: raw == transpiled" ~count:40
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let prng = Uv_util.Prng.create seed in
         let src = random_txn_source prng in
         let args =
           [
             Value.Int (Uv_util.Prng.int_range prng (-3) 8);
             Value.Int (Uv_util.Prng.int_range prng (-3) 8);
           ]
         in
         let run mode =
           let e = Engine.create () in
           run e "CREATE TABLE T (a INT, b INT)";
           run e "INSERT INTO T VALUES (1, 10), (2, 20), (3, 30)";
           let rt = R.create e ~source:src in
           (match mode with
           | R.Transpiled -> ignore (R.transpile_install rt)
           | R.Raw -> ());
           (match R.invoke rt ~mode "Txn" args with Ok _ | Error _ -> ());
           Engine.table_hash e "T"
         in
         Int64.equal (run R.Raw) (run R.Transpiled)))

let () =
  Alcotest.run "uv_transpiler"
    [
      ( "exploration",
        [
          Alcotest.test_case "both branches" `Quick test_explores_both_branches;
          Alcotest.test_case "bounded loops" `Quick test_loop_unrolls_bounded;
          Alcotest.test_case "stub for unexplored" `Quick test_unexplored_becomes_stub;
          Alcotest.test_case "path-explosion guard" `Quick test_path_explosion_guard;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "NewOrder" `Quick test_neworder_equivalence;
          Alcotest.test_case "runtime transpiled mode" `Quick
            test_runtime_transpiled_mode;
          Alcotest.test_case "raw mode tagging" `Quick test_raw_mode_tags_all_queries;
        ] );
      ( "dynamism (§C)",
        [
          Alcotest.test_case "dynamic types" `Quick test_c1_dynamic_type_coercion;
          Alcotest.test_case "dynamic call targets" `Quick
            test_c2_dynamic_control_flow_targets;
          Alcotest.test_case "blackbox API" `Quick test_c3_blackbox_api;
          Alcotest.test_case "signal fallback" `Quick test_signal_fallback_to_raw;
          Alcotest.test_case "insert-select through DSE" `Quick
            test_insert_select_through_dse;
          Alcotest.test_case "delta DSE re-transpilation" `Quick
            test_delta_dse_retranspilation;
          Alcotest.test_case "transitive SQL detection" `Quick
            test_transpile_all_transitive;
          Alcotest.test_case "augmented source" `Quick test_augmented_source;
          Alcotest.test_case "procedure reparses" `Quick
            test_transpiled_procedure_parses;
        ] );
      ("equivalence property", [ prop_random_txn_equivalence ]);
    ]
