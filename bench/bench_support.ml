(* Shared machinery for the benchmark harness: building histories in each
   execution mode, the four system variants (B, T, D, T+D) of §5, and the
   Mahif baseline hookup.

   Cost reporting follows DESIGN.md's two-clock policy: [real] is measured
   wall time of the in-process work; [rtt] adds the simulated
   client-server round trips (1 ms each by default, the paper's LAN
   setup); for the dependency-analysed systems the parallel makespan over
   the replay conflict DAG stands in for the paper's 8-vCPU parallel
   replay. *)

open Uv_db
open Uv_retroactive
module W = Uv_workloads.Workload
module R = Uv_transpiler.Runtime

let rtt_ms = 1.0

type built = {
  workload : W.t;
  eng : Engine.t;
  rt : R.t;
  base : Catalog.t;
  calls : W.txn_call list;
  mode : R.mode;
}

(* Build a history of [n] transaction calls (the hot-entity target call
   first) at the given dependency rate, executed in [mode]. *)
let build ?(seed = 91) ?(scale = 1) ~mode ~n ~dep_rate (w : W.t) =
  let eng, rt = W.setup ~seed ~scale ~mode w in
  let base = Engine.snapshot eng in
  let prng = Uv_util.Prng.create (seed + 1) in
  let calls = w.W.target_call :: w.W.generate prng ~scale ~n ~dep_rate in
  ignore (W.run_history rt ~mode calls);
  { workload = w; eng; rt; base; calls; mode }

type cost = {
  real : float;  (** measured milliseconds *)
  with_rtt : float;  (** plus simulated round trips *)
  replayed : int;
  extra : string;  (** free-form note (hash-jump point, ...) *)
}

let time f =
  let t0 = Uv_util.Clock.now_ms () in
  let r = f () in
  (r, Uv_util.Clock.now_ms () -. t0)

(* ------------------------------------------------------------------ *)
(* System B: serial full replay of the application-level transactions
   through the interpreter (every query its own round trip).            *)
(* ------------------------------------------------------------------ *)

let run_b (b : built) : cost =
  let invocations = R.invocations b.rt in
  let replay_eng = Engine.of_catalog ~rtt_ms (Catalog.snapshot b.base) in
  let rt2 = R.create replay_eng ~source:b.workload.W.app_source in
  let (), real =
    time (fun () ->
        List.iter
          (fun inv -> ignore (R.replay_invocation rt2 ~mode:R.Raw inv))
          invocations)
  in
  let rtts = Log.length (Engine.log replay_eng) in
  {
    real;
    with_rtt = real +. (float_of_int rtts *. rtt_ms);
    replayed = rtts;
    extra = "";
  }

(* ------------------------------------------------------------------ *)
(* System T: serial full replay of the transpiled procedures (one round
   trip per transaction).                                                *)
(* ------------------------------------------------------------------ *)

let run_t (b : built) : cost =
  let invocations = R.invocations b.rt in
  let replay_eng = Engine.of_catalog ~rtt_ms (Catalog.snapshot b.base) in
  let rt2 = R.create replay_eng ~source:b.workload.W.app_source in
  (* reuse the already-computed transpilations by installing them fresh *)
  let (), transpile_unused = time (fun () -> ignore (R.transpile_install rt2)) in
  ignore transpile_unused;
  let (), real =
    time (fun () ->
        List.iter
          (fun inv -> ignore (R.replay_invocation rt2 ~mode:R.Transpiled inv))
          invocations)
  in
  let rtts = List.length invocations in
  {
    real;
    with_rtt = real +. (float_of_int rtts *. rtt_ms);
    replayed = rtts;
    extra = "";
  }

(* ------------------------------------------------------------------ *)
(* Systems D and T+D: dependency-analysed replay via the what-if driver. *)
(* ------------------------------------------------------------------ *)

let run_dep ?(hash_jumper = false) ?(workers = 8) ~grouped (b : built) : cost =
  let analyzer =
    Analyzer.analyze ~config:b.workload.W.ri_config ~base:b.base (Engine.log b.eng)
  in
  let config = Whatif.Config.make ~grouped ~hash_jumper ~workers () in
  let out =
    Whatif.run_exn ~config ~analyzer b.eng { Analyzer.tau = 1; op = Analyzer.Remove }
  in
  {
    real = out.Whatif.real_ms;
    (* the parallel makespan already includes one round trip per replayed
       statement *)
    with_rtt = out.Whatif.analysis_ms +. out.Whatif.simulated_parallel_ms;
    replayed = out.Whatif.replayed;
    extra =
      (match out.Whatif.hash_jump_at with
      | Some i -> Printf.sprintf "hash-hit@%d" i
      | None -> "");
  }

(* System D: transaction-granular analysis + app-function replay over a
   raw-mode history *)
let run_d (b : built) : cost =
  let analyzer =
    Analyzer.analyze ~config:b.workload.W.ri_config ~base:b.base (Engine.log b.eng)
  in
  let target_tag =
    match R.invocations b.rt with
    | inv :: _ -> Uv_workloads.Dsystem.tag_of_invocation inv
    | [] -> "none"
  in
  let out =
    Uv_workloads.Dsystem.run ~rtt_ms ~analyzer ~runtime:b.rt b.eng ~target_tag
  in
  {
    real = out.Uv_workloads.Dsystem.real_ms;
    with_rtt = out.Uv_workloads.Dsystem.parallel_cost_ms;
    replayed = out.Uv_workloads.Dsystem.replayed_entries;
    extra =
      Printf.sprintf "%d/%d txns" out.Uv_workloads.Dsystem.member_invocations
        out.Uv_workloads.Dsystem.total_invocations;
  }

let run_whatif ?config (b : built) tau op =
  let analyzer =
    Analyzer.analyze ~config:b.workload.W.ri_config ~base:b.base (Engine.log b.eng)
  in
  Whatif.run_exn ?config ~analyzer b.eng { Analyzer.tau = tau; op }

(* ------------------------------------------------------------------ *)
(* Mahif baseline on the numeric projection                              *)
(* ------------------------------------------------------------------ *)

type mahif_result = { m_ms : float; m_bytes : int }

let run_mahif (w : W.t) ~n ~dep_rate : mahif_result option =
  match w.W.numeric_history with
  | None -> None
  | Some gen -> (
      let prng = Uv_util.Prng.create 7 in
      let stmts, tau = gen prng ~n ~dep_rate in
      let eng = Engine.create () in
      List.iter
        (fun sql -> try ignore (Engine.exec_sql eng sql) with Engine.Sql_error _ -> ())
        stmts;
      try
        let m = Uv_mahif.Mahif.create () in
        let (), load_ms = time (fun () -> Uv_mahif.Mahif.load_history m (Engine.log eng)) in
        let tau = min tau (Log.length (Engine.log eng)) in
        let _, answer_ms = time (fun () -> Uv_mahif.Mahif.whatif_remove m tau) in
        Some { m_ms = load_ms +. answer_ms; m_bytes = Uv_mahif.Mahif.memory_bytes m }
      with Uv_mahif.Mahif.Unsupported _ -> None)

(* Ultraverse + full-replay baseline over the same numeric history. *)
let run_numeric_pair (w : W.t) ~n ~dep_rate =
  match w.W.numeric_history with
  | None -> None
  | Some gen ->
      let prng = Uv_util.Prng.create 7 in
      let stmts, tau = gen prng ~n ~dep_rate in
      let eng = Engine.create ~rtt_ms () in
      List.iter
        (fun sql -> try ignore (Engine.exec_sql eng sql) with Engine.Sql_error _ -> ())
        stmts;
      let tau = min tau (Log.length (Engine.log eng)) in
      (* T+D: dependency-analysed what-if *)
      let analyzer = Analyzer.analyze (Engine.log eng) in
      let out = Whatif.run_exn ~analyzer eng { Analyzer.tau; op = Analyzer.Remove } in
      let td = out.Whatif.analysis_ms +. out.Whatif.simulated_parallel_ms in
      (* B: replay everything from tau on a snapshot *)
      let snap = Engine.snapshot eng in
      let replay_eng = Engine.of_catalog ~rtt_ms (Catalog.snapshot snap) in
      let (), b_real =
        time (fun () ->
            (* full-replay semantics: undo everything back to tau, then
               re-execute the tail *)
            let log = Engine.log eng in
            for i = Log.length log downto tau do
              Log.apply_undo (Engine.catalog replay_eng) (Log.entry log i).Log.undo
            done;
            for i = tau + 1 to Log.length log do
              let e = Log.entry log i in
              try ignore (Engine.exec ~nondet:e.Log.nondet replay_eng e.Log.stmt)
              with Engine.Sql_error _ | Engine.Signal_raised _ -> ()
            done)
      in
      let b_tail = max 0 (Log.length (Engine.log eng) - tau) in
      Some (td, b_real +. (float_of_int b_tail *. rtt_ms))

(* live-heap measurement around a thunk *)
let live_delta f =
  Gc.compact ();
  let before = Uv_util.Stats.live_bytes () in
  let r = f () in
  Gc.full_major ();
  let after = Uv_util.Stats.live_bytes () in
  (r, max 0 (after - before))
