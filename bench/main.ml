(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5), scaled per DESIGN.md §3, plus the ablation
   benches DESIGN.md calls out and a Bechamel micro-benchmark section for
   the core primitives.

   Run everything:     dune exec bench/main.exe
   One experiment:     dune exec bench/main.exe -- --only t4a
   List experiments:   dune exec bench/main.exe -- --list
   Smaller/faster:     dune exec bench/main.exe -- --quick
   Micro-benchmarks:   dune exec bench/main.exe -- --only micro *)

open Uv_db
open Uv_retroactive
module W = Uv_workloads.Workload
module R = Uv_transpiler.Runtime
module S = Bench_support
module G = Uv_util.Textgrid

let quick = ref false

let sz full q = if !quick then q else full

let fmt = G.fmt_ms

let workloads () = W.all ()

(* ------------------------------------------------------------------ *)
(* Table 4(a) + 4(b): Ultraverse (T+D) vs full replay (B) vs Mahif      *)
(* ------------------------------------------------------------------ *)

let bench_t4 () =
  let sizes = if !quick then [ 100; 250 ] else [ 250; 500; 1000; 2000 ] in
  let speed =
    G.create ~title:"Table 4(a): what-if time, T+D vs B vs Mahif (dep 50%)"
      ~header:
        ("Bench"
        :: List.concat_map
             (fun n -> [ Printf.sprintf "%dq T+D" n; "B"; "Mahif" ])
             sizes)
  in
  let ram =
    G.create ~title:"Table 4(b): memory overhead for the what-if"
      ~header:
        ("Bench"
        :: List.concat_map (fun n -> [ Printf.sprintf "%dq T+D" n; "Mahif" ]) sizes)
  in
  List.iter
    (fun (w : W.t) ->
      let srow = ref [ w.W.name ] and rrow = ref [ w.W.name ] in
      List.iter
        (fun n ->
          match S.run_numeric_pair w ~n ~dep_rate:0.5 with
          | Some (td, b) ->
              let mahif = S.run_mahif w ~n ~dep_rate:0.5 in
              let td_bytes =
                (* analyzer + temp tables held during the what-if *)
                let prng = Uv_util.Prng.create 7 in
                let stmts, tau =
                  (Option.get w.W.numeric_history) prng ~n ~dep_rate:0.5
                in
                let eng = Engine.create () in
                List.iter
                  (fun sql ->
                    try ignore (Engine.exec_sql eng sql) with Engine.Sql_error _ -> ())
                  stmts;
                let _, bytes =
                  S.live_delta (fun () ->
                      let analyzer = Analyzer.analyze (Engine.log eng) in
                      let out =
                        Whatif.run_exn ~analyzer eng
                          { Analyzer.tau = tau; op = Analyzer.Remove }
                      in
                      (* both the analyzer's indexes and the temporary
                         universe are resident during the operation *)
                      (analyzer, out))
                in
                bytes
              in
              srow := !srow @ [ fmt td; fmt b;
                                (match mahif with
                                | Some m -> fmt m.S.m_ms
                                | None -> "x") ];
              rrow :=
                !rrow
                @ [ G.fmt_bytes td_bytes;
                    (match mahif with
                    | Some m -> G.fmt_bytes m.S.m_bytes
                    | None -> "x") ]
          | None ->
              (* SEATS: strings everywhere; run its app history for ours *)
              let b = S.build ~mode:R.Transpiled ~n:(n / 4) ~dep_rate:0.5 w in
              let td = S.run_dep ~grouped:false b in
              let bb = S.run_b b in
              srow := !srow @ [ fmt td.S.with_rtt; fmt bb.S.with_rtt; "x" ];
              rrow := !rrow @ [ "-"; "x" ])
        sizes;
      G.add_row speed !srow;
      G.add_row ram !rrow)
    (workloads ());
  G.print speed;
  G.print ram

(* ------------------------------------------------------------------ *)
(* Table 5: what-if time across database sizes                          *)
(* ------------------------------------------------------------------ *)

let bench_t5 () =
  let scales = if !quick then [ 1; 2 ] else [ 1; 4; 16 ] in
  let t =
    G.create ~title:"Table 5: what-if time across DB sizes (fixed history)"
      ~header:
        ("Bench"
        :: List.concat_map
             (fun s -> [ Printf.sprintf "%dx rows" s; "T+D"; "B" ]) scales)
  in
  let n = sz 300 100 in
  List.iter
    (fun (w : W.t) ->
      let row = ref [ w.W.name ] in
      List.iter
        (fun scale ->
          let b = S.build ~scale ~mode:R.Transpiled ~n ~dep_rate:0.3 w in
          let dbsize = Catalog.memory_bytes (Engine.catalog b.S.eng) in
          let td = S.run_dep ~grouped:false b in
          let bb = S.run_b b in
          row := !row @ [ G.fmt_bytes dbsize; fmt td.S.with_rtt; fmt bb.S.with_rtt ])
        scales;
      G.add_row t !row)
    (workloads ());
  G.print t

(* ------------------------------------------------------------------ *)
(* Figure 8(a): B vs T vs D vs T+D on a long history                    *)
(* ------------------------------------------------------------------ *)

let bench_f8a () =
  let n = sz 2000 400 in
  let t =
    G.create
      ~title:
        (Printf.sprintf
           "Figure 8(a): what-if runtime, %d-transaction history (1%% targets)" n)
      ~header:[ "Bench"; "B"; "T"; "D"; "T+D"; "T+D replayed"; "of" ]
  in
  List.iter
    (fun (w : W.t) ->
      (* raw-mode history drives B and D *)
      let braw = S.build ~mode:R.Raw ~n ~dep_rate:0.3 w in
      let b = S.run_b braw in
      let d = S.run_d braw in
      (* transpiled-mode history drives T and T+D *)
      let btr = S.build ~mode:R.Transpiled ~n ~dep_rate:0.3 w in
      let tt = S.run_t btr in
      let td = S.run_dep ~grouped:false btr in
      G.add_row t
        [
          w.W.name;
          fmt b.S.with_rtt;
          fmt tt.S.with_rtt;
          fmt d.S.with_rtt;
          fmt td.S.with_rtt;
          string_of_int td.S.replayed;
          string_of_int (Log.length (Engine.log btr.S.eng));
        ])
    (workloads ());
  G.print t

(* ------------------------------------------------------------------ *)
(* Table 6(a): Hash-jumper runtime across hash-hit points               *)
(* ------------------------------------------------------------------ *)

(* hot-entity absolute-set statement per workload: initialised at the
   start, overwritten at X% of the history, target = change the init *)
let overwrite_stmt (w : W.t) v =
  match w.W.name with
  | "Epinions" -> Printf.sprintf "UPDATE review SET rating = %d WHERE a_id = 1" v
  | "TATP" -> Printf.sprintf "UPDATE subscriber SET vlr_location = %d WHERE s_id = 1" v
  | "SEATS" -> Printf.sprintf "UPDATE customer SET c_balance = %d WHERE c_id = 1" v
  | "TPC-C" -> Printf.sprintf "UPDATE warehouse SET w_ytd = %d WHERE w_id = 1" v
  | _ -> Printf.sprintf "UPDATE Products SET Price = %d WHERE ProductID = 1" v

let bench_t6a () =
  let n = sz 1000 200 in
  let points = [ 0.10; 0.25; 0.50; 1.00 ] in
  let t =
    G.create
      ~title:
        (Printf.sprintf
           "Table 6(a): Hash-jumper runtime vs hash-hit point (%d-txn history)" n)
      ~header:
        ("Bench"
        :: List.map (fun p -> Printf.sprintf "at %.0f%%" (100.0 *. p)) points)
  in
  List.iter
    (fun (w : W.t) ->
      let row = ref [ w.W.name ] in
      List.iter
        (fun point ->
          let eng, rt = W.setup ~mode:R.Transpiled w in
          let base = Engine.snapshot eng in
          ignore (Engine.exec_sql eng (overwrite_stmt w 100)); (* the init *)
          let prng = Uv_util.Prng.create 5 in
          let calls = w.W.generate prng ~scale:1 ~n ~dep_rate:0.0 in
          let cut = int_of_float (float_of_int n *. point) in
          List.iteri
            (fun i c ->
              if i = cut - 1 && point < 1.0 then
                (* the overwrite that re-joins the original timeline *)
                ignore (Engine.exec_sql eng (overwrite_stmt w 555));
              ignore (R.invoke rt ~mode:R.Transpiled c.W.txn c.W.args))
            calls;
          let analyzer =
            Analyzer.analyze ~config:w.W.ri_config ~base (Engine.log eng)
          in
          let config = Whatif.Config.make ~hash_jumper:true () in
          let target =
            {
              Analyzer.tau = 1;
              op = Analyzer.Change (Uv_sql.Parser.parse_stmt (overwrite_stmt w 101));
            }
          in
          let out = Whatif.run_exn ~config ~analyzer eng target in
          let note =
            match out.Whatif.hash_jump_at with Some _ -> "" | None -> "*"
          in
          row :=
            !row
            @ [
                Printf.sprintf "%s%s"
                  (fmt (out.Whatif.analysis_ms +. out.Whatif.simulated_parallel_ms))
                  note;
              ])
        points;
      G.add_row t !row)
    (workloads ());
  G.print t;
  print_endline "  (* = no hash-hit: the 100% column measures pure jumper overhead)"

(* ------------------------------------------------------------------ *)
(* Table 6(b): regular transaction speed, B vs T                        *)
(* ------------------------------------------------------------------ *)

let bench_t6b () =
  let n = sz 300 100 in
  let t =
    G.create ~title:"Table 6(b): regular application-transaction latency"
      ~header:[ "Bench"; "B (raw)"; "T (transpiled)"; "speedup" ]
  in
  List.iter
    (fun (w : W.t) ->
      let per_txn mode =
        let eng, rt = W.setup ~mode w in
        let prng = Uv_util.Prng.create 3 in
        let calls = w.W.generate prng ~scale:1 ~n ~dep_rate:0.2 in
        let (), real = S.time (fun () -> ignore (W.run_history rt ~mode calls)) in
        let rtts = Log.length (Engine.log eng) in
        (real +. (float_of_int rtts *. S.rtt_ms)) /. float_of_int n
      in
      let b = per_txn R.Raw and tr = per_txn R.Transpiled in
      G.add_row t [ w.W.name; fmt b; fmt tr; G.fmt_speedup (b /. tr) ])
    (workloads ());
  G.print t

(* ------------------------------------------------------------------ *)
(* Table 7(a): transpilation time                                       *)
(* ------------------------------------------------------------------ *)

let bench_t7a () =
  let t =
    G.create ~title:"Table 7(a): SQL transpiler analysis time (offline, once)"
      ~header:[ "Bench"; "txns"; "paths"; "DSE runs"; "time" ]
  in
  List.iter
    (fun (w : W.t) ->
      let eng, rt = W.setup ~mode:R.Raw w in
      ignore eng;
      let trs, ms = S.time (fun () -> R.transpile_install rt) in
      let paths =
        List.fold_left (fun a (x : Uv_transpiler.Transpile.t) -> a + x.Uv_transpiler.Transpile.paths) 0 trs
      in
      let runs =
        List.fold_left (fun a (x : Uv_transpiler.Transpile.t) -> a + x.Uv_transpiler.Transpile.runs) 0 trs
      in
      G.add_row t
        [
          w.W.name;
          string_of_int (List.length trs);
          string_of_int paths;
          string_of_int runs;
          fmt ms;
        ])
    (workloads ());
  G.print t

(* ------------------------------------------------------------------ *)
(* Table 7(b): log size per query                                       *)
(* ------------------------------------------------------------------ *)

let bench_t7b () =
  let n = sz 400 150 in
  let t =
    G.create ~title:"Table 7(b): average log bytes per query"
      ~header:[ "Bench"; "engine binlog"; "Ultraverse extra"; "overhead" ]
  in
  List.iter
    (fun (w : W.t) ->
      let b = S.build ~mode:R.Transpiled ~n ~dep_rate:0.3 w in
      let total_bin = ref 0 and total_uv = ref 0 and count = ref 0 in
      Log.iter (Engine.log b.S.eng) (fun e ->
          incr count;
          total_bin := !total_bin + Log.binlog_bytes e;
          total_uv := !total_uv + Log.uv_log_bytes e);
      let avg x = !x / max 1 !count in
      G.add_row t
        [
          w.W.name;
          Printf.sprintf "%db" (avg total_bin);
          Printf.sprintf "%db" (avg total_uv);
          Printf.sprintf "%.1f%%"
            (100.0 *. float_of_int (avg total_uv) /. float_of_int (avg total_bin));
        ])
    (workloads ());
  G.print t

(* ------------------------------------------------------------------ *)
(* Table 7(c): dependency-logger overhead during regular operation      *)
(* ------------------------------------------------------------------ *)

let bench_t7c () =
  let n = sz 500 150 in
  let t =
    G.create
      ~title:
        "Table 7(c): asynchronous R/W-set + hash logging overhead (vs \
         execution time)"
      ~header:[ "Bench"; "T+D"; "T+D+H" ]
  in
  List.iter
    (fun (w : W.t) ->
      let eng, rt = W.setup ~mode:R.Transpiled w in
      let base = Engine.snapshot eng in
      let prng = Uv_util.Prng.create 3 in
      let calls = w.W.generate prng ~scale:1 ~n ~dep_rate:0.3 in
      let (), exec_ms = S.time (fun () -> ignore (W.run_history rt ~mode:R.Transpiled calls)) in
      let _, analyze_ms =
        S.time (fun () ->
            Analyzer.analyze ~config:w.W.ri_config ~base (Engine.log eng))
      in
      let _, jumper_ms = S.time (fun () -> Hash_jumper.of_log (Engine.log eng)) in
      let pct x = Printf.sprintf "%.1f%%" (100.0 *. x /. exec_ms) in
      G.add_row t [ w.W.name; pct analyze_ms; pct (analyze_ms +. jumper_ms) ])
    (workloads ());
  G.print t

(* ------------------------------------------------------------------ *)
(* Table 7(d): what-if running concurrently with regular operations     *)
(* ------------------------------------------------------------------ *)

let bench_t7d () =
  let n = sz 300 100 in
  let t =
    G.create
      ~title:
        "Table 7(d): regular-operation slowdown while a what-if replays on \
         the same machine"
      ~header:[ "Bench"; "1-core interleaved"; "amortised over 8 vCPUs" ]
  in
  List.iter
    (fun (w : W.t) ->
      (* baseline: regular txns alone *)
      let eng1, rt1 = W.setup ~mode:R.Transpiled w in
      ignore eng1;
      let prng = Uv_util.Prng.create 3 in
      let calls = w.W.generate prng ~scale:1 ~n ~dep_rate:0.3 in
      (* warm-up pass, then the measured run *)
      ignore (W.run_history rt1 ~mode:R.Transpiled calls);
      let eng1b, rt1b = W.setup ~mode:R.Transpiled w in
      ignore eng1b;
      let (), alone = S.time (fun () -> ignore (W.run_history rt1b ~mode:R.Transpiled calls)) in
      (* interleaved: the what-if's actual replay set (members only)
         spread across the regular stream on the same core *)
      let b = S.build ~mode:R.Transpiled ~n ~dep_rate:0.3 w in
      let analyzer =
        Analyzer.analyze ~config:w.W.ri_config ~base:b.S.base (Engine.log b.S.eng)
      in
      let rs =
        Analyzer.replay_set analyzer { Analyzer.tau = 1; op = Analyzer.Remove }
      in
      let temp = Engine.of_catalog (Catalog.snapshot b.S.base) in
      let replay_entries =
        Log.to_array (Engine.log b.S.eng)
        |> Array.to_list
        |> List.filter (fun e -> rs.Analyzer.members.(e.Log.index - 1))
        |> Array.of_list
      in
      let idx = ref 0 in
      let eng2, rt2 = W.setup ~mode:R.Transpiled w in
      ignore eng2;
      let prng2 = Uv_util.Prng.create 3 in
      let calls2 = w.W.generate prng2 ~scale:1 ~n ~dep_rate:0.3 in
      let stride = max 1 (n / max 1 (Array.length replay_entries)) in
      let k = ref 0 in
      let (), mixed =
        S.time (fun () ->
            List.iter
              (fun c ->
                ignore (R.invoke rt2 ~mode:R.Transpiled c.W.txn c.W.args);
                incr k;
                if !k mod stride = 0 && !idx < Array.length replay_entries
                then begin
                  let e = replay_entries.(!idx) in
                  incr idx;
                  try ignore (Engine.exec ~nondet:e.Log.nondet temp e.Log.stmt)
                  with Engine.Sql_error _ | Engine.Signal_raised _ -> ()
                end)
              calls2)
      in
      let raw = Float.max 0.0 (100.0 *. ((mixed /. alone) -. 1.0)) in
      G.add_row t
        [
          w.W.name;
          Printf.sprintf "%.1f%%" raw;
          (* the paper's testbed runs the replay on spare vCPUs; the
             regular stream then only pays ~1/8 of the contention *)
          Printf.sprintf "%.1f%%" (raw /. 8.0);
        ])
    (workloads ());
  G.print t

(* ------------------------------------------------------------------ *)
(* Table 8(a): scalability over history size                            *)
(* ------------------------------------------------------------------ *)

let bench_t8a () =
  let sizes = if !quick then [ 200; 600 ] else [ 500; 1500; 4500 ] in
  let t =
    G.create ~title:"Table 8(a): what-if time across history sizes"
      ~header:
        ("Bench"
        :: List.concat_map
             (fun n -> [ Printf.sprintf "%dtx B" n; "T"; "D"; "T+D" ])
             sizes)
  in
  List.iter
    (fun (w : W.t) ->
      let row = ref [ w.W.name ] in
      List.iter
        (fun n ->
          let braw = S.build ~mode:R.Raw ~n ~dep_rate:0.3 w in
          let b = S.run_b braw in
          let d = S.run_d braw in
          let btr = S.build ~mode:R.Transpiled ~n ~dep_rate:0.3 w in
          let tt = S.run_t btr in
          let td = S.run_dep ~grouped:false btr in
          row :=
            !row
            @ [ fmt b.S.with_rtt; fmt tt.S.with_rtt; fmt d.S.with_rtt; fmt td.S.with_rtt ])
        sizes;
      G.add_row t !row)
    (workloads ());
  G.print t

(* ------------------------------------------------------------------ *)
(* Table 8(b): speedup vs B across DB sizes                             *)
(* ------------------------------------------------------------------ *)

let bench_t8b () =
  let scales = if !quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let n = sz 400 150 in
  let t =
    G.create ~title:"Table 8(b): speedup against B across DB sizes"
      ~header:
        ("Bench"
        :: List.concat_map
             (fun s -> [ Printf.sprintf "%dx T" s; "D"; "T+D" ])
             scales)
  in
  List.iter
    (fun (w : W.t) ->
      let row = ref [ w.W.name ] in
      List.iter
        (fun scale ->
          let braw = S.build ~scale ~mode:R.Raw ~n ~dep_rate:0.3 w in
          let b = S.run_b braw in
          let d = S.run_d braw in
          let btr = S.build ~scale ~mode:R.Transpiled ~n ~dep_rate:0.3 w in
          let tt = S.run_t btr in
          let td = S.run_dep ~grouped:false btr in
          let sp (c : S.cost) = G.fmt_speedup (b.S.with_rtt /. c.S.with_rtt) in
          row := !row @ [ sp tt; sp d; sp td ])
        scales;
      G.add_row t !row)
    (workloads ());
  G.print t

(* ------------------------------------------------------------------ *)
(* Table 8(c): speedup vs dependency rate                               *)
(* ------------------------------------------------------------------ *)

let bench_t8c () =
  let rates = [ 0.01; 0.10; 0.50; 1.00 ] in
  let n = sz 600 200 in
  let t =
    G.create ~title:"Table 8(c): speedup against B across dependency rates"
      ~header:
        ("Bench"
        :: List.concat_map
             (fun r -> [ Printf.sprintf "%.0f%% T" (100.0 *. r); "D"; "T+D" ])
             rates)
  in
  List.iter
    (fun (w : W.t) ->
      let row = ref [ w.W.name ] in
      List.iter
        (fun rate ->
          let braw = S.build ~mode:R.Raw ~n ~dep_rate:rate w in
          let b = S.run_b braw in
          let d = S.run_d braw in
          let btr = S.build ~mode:R.Transpiled ~n ~dep_rate:rate w in
          let tt = S.run_t btr in
          let td = S.run_dep ~grouped:false btr in
          let sp (c : S.cost) = G.fmt_speedup (b.S.with_rtt /. c.S.with_rtt) in
          row := !row @ [ sp tt; sp d; sp td ])
        rates;
      G.add_row t !row)
    (workloads ());
  G.print t

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let bench_abl_colrow () =
  let n = sz 600 200 in
  let t =
    G.create
      ~title:"Ablation: replay-set size by analysis granularity (remove target)"
      ~header:[ "Bench"; "history"; "column-only"; "row-only"; "cell-wise" ]
  in
  List.iter
    (fun (w : W.t) ->
      let b = S.build ~mode:R.Transpiled ~n ~dep_rate:0.3 w in
      let analyzer =
        Analyzer.analyze ~config:w.W.ri_config ~base:b.S.base (Engine.log b.S.eng)
      in
      let rs = Analyzer.replay_set analyzer { Analyzer.tau = 1; op = Analyzer.Remove } in
      G.add_row t
        [
          w.W.name;
          string_of_int (Log.length (Engine.log b.S.eng));
          string_of_int rs.Analyzer.col_only_count;
          string_of_int rs.Analyzer.row_only_count;
          string_of_int rs.Analyzer.member_count;
        ])
    (workloads ());
  G.print t

let bench_abl_parallel () =
  let n = sz 600 200 in
  let t =
    G.create ~title:"Ablation: parallel replay makespan vs worker count"
      ~header:[ "Bench"; "serial"; "2 workers"; "4"; "8"; "16" ]
  in
  List.iter
    (fun (w : W.t) ->
      let b = S.build ~mode:R.Transpiled ~n ~dep_rate:0.3 w in
      let cost workers =
        (S.run_dep ~workers ~grouped:false b).S.with_rtt
      in
      let serial = (S.run_dep ~workers:1 ~grouped:false b).S.with_rtt in
      G.add_row t
        [
          w.W.name;
          fmt serial;
          fmt (cost 2);
          fmt (cost 4);
          fmt (cost 8);
          fmt (cost 16);
        ])
    (workloads ());
  G.print t

(* per-experiment real worker counts for the uv.bench/1 report: a bare
   wall_ms is unreadable across hosts without the parallelism that
   produced it *)
let experiment_workers : (string * int list) list ref = ref []

let note_workers id ws =
  if not (List.mem_assoc id !experiment_workers) then
    experiment_workers := (id, ws) :: !experiment_workers

(* --profile: per-wave queue-wait and lane-utilization histograms from
   the wave executor's uv_obs counters, one row per (bench, workers) *)
let profile = ref false

let exec_profile_results : Uv_obs.Json.t list ref = ref []

let profile_row bench workers obs =
  let module J = Uv_obs.Json in
  let hists =
    match Uv_obs.Trace.metrics_payload obs with
    | J.Obj fields -> (
        match List.assoc_opt "histograms" fields with
        | Some (J.Obj hs) -> hs
        | _ -> [])
    | _ -> []
  in
  let hist name =
    match List.assoc_opt name hists with Some h -> h | None -> J.Null
  in
  J.Obj
    [
      ("bench", J.Str bench);
      ("workers", J.Int workers);
      ("queue_wait_ms", hist "replay.queue_wait_ms");
      ("utilization", hist "replay.utilization");
    ]

let bench_exec_parallel () =
  (* the wave executor on real domains, not the simulated makespan: the
     same what-if runs at each worker count; wall times must shrink while
     the final universe hash stays bitwise identical. Measured speedup is
     bounded by min(host cores, DAG parallelism) — on a single-core host
     extra domains only add minor-GC barrier latency, so the speedup
     column is expected to collapse there while hashes must still agree. *)
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "host parallelism: %d core%s — speedup@4 meaningful only when >= 4\n"
    cores
    (if cores = 1 then "" else "s");
  let n = sz 1500 300 in
  let scale = sz 8 4 in
  let dep_rate = if !quick then 0.05 else 0.02 in
  let t =
    G.create
      ~title:"Measured parallel replay: wave executor wall time vs workers"
      ~header:
        [ "Bench"; "members"; "1 worker"; "2"; "4"; "8"; "speedup@4"; "hash" ]
  in
  List.iter
    (fun (w : W.t) ->
      note_workers "exec-parallel" [ 1; 2; 4; 8 ];
      (* join parked replay pools: an idle domain taxes every minor
         collection of the serial build below *)
      Uv_util.Domain_pool.drain ();
      let b = S.build ~scale ~mode:R.Transpiled ~n ~dep_rate w in
      let analyzer =
        Analyzer.analyze ~config:w.W.ri_config ~base:b.S.base (Engine.log b.S.eng)
      in
      let target = { Analyzer.tau = 1; op = Analyzer.Remove } in
      let run ~obs workers =
        Whatif.run_exn
          ~config:(Whatif.Config.make ~workers ~obs ())
          ~analyzer b.S.eng target
      in
      let best workers =
        (* wall times are noisy at this scale: best of three *)
        let obs =
          if !profile then Uv_obs.Trace.create () else Uv_obs.Trace.disabled
        in
        let outs = List.init 3 (fun _ -> run ~obs workers) in
        if !profile then
          exec_profile_results :=
            profile_row w.W.name workers obs :: !exec_profile_results;
        let ms =
          List.fold_left
            (fun acc o ->
              match o.Whatif.measured_parallel_ms with
              | Some m -> min acc m
              | None -> acc)
            infinity outs
        in
        (List.hd outs, ms)
      in
      let o1, ms1 = best 1 in
      let _, ms2 = best 2 in
      let o4, ms4 = best 4 in
      let o8, ms8 = best 8 in
      let hash_ok =
        o4.Whatif.final_db_hash = o1.Whatif.final_db_hash
        && o8.Whatif.final_db_hash = o1.Whatif.final_db_hash
      in
      if not hash_ok then
        failwith (w.W.name ^ ": parallel replay hash diverged across workers");
      G.add_row t
        [
          w.W.name;
          string_of_int o1.Whatif.replay.Analyzer.member_count;
          fmt ms1;
          fmt ms2;
          fmt ms4;
          fmt ms8;
          G.fmt_speedup (ms1 /. max ms4 0.001);
          "ok";
        ])
    (workloads ());
  G.print t

(* ------------------------------------------------------------------ *)
(* Repeated what-if amortization: session caches, cold vs warm          *)
(* ------------------------------------------------------------------ *)

(* per-workload rows for the uv.bench/1 report (--json) *)
let repeat_results : Uv_obs.Json.t list ref = ref []

let bench_whatif_repeat () =
  note_workers "whatif-repeat" [ 1; 4 ];
  let n = sz 600 150 in
  let warm_runs = 5 in
  let t =
    G.create
      ~title:
        "Repeated what-if: session caches (incremental analyzer + plan cache \
         + checkpoint ladder) cold vs warm"
      ~header:
        [ "Bench"; "history"; "cold"; "warm"; "speedup"; "rollback"; "plans";
          "hash" ]
  in
  let two_x = ref 0 in
  List.iter
    (fun (w : W.t) ->
      (* two engines over the same seeded history: a bare one for the
         cold baseline and one whose checkpoint ladder was recorded
         during regular service for the warm session. Checkpointing is
         observation-only, so the two logs — and therefore the two
         universes every run below produces — are identical. *)
      (* raw mode: the log holds plain SQL statements, the granularity at
         which plans compile (a transpiled history logs procedure calls) *)
      let build_hist cp =
        let eng, rt = W.setup ~mode:R.Raw w in
        let base = Engine.snapshot eng in
        if cp > 0 then Engine.enable_checkpoints eng ~every:cp;
        let prng = Uv_util.Prng.create 92 in
        let calls =
          w.W.target_call :: w.W.generate prng ~scale:1 ~n ~dep_rate:0.3
        in
        ignore (W.run_history rt ~mode:R.Raw calls);
        (eng, base)
      in
      let eng_cold, base_cold = build_hist 0 in
      let eng_warm, base_warm = build_hist 32 in
      let target = { Analyzer.tau = 1; op = Analyzer.Remove } in
      (* cold: what a sessionless client pays for every question — a full
         analyzer build over the whole history plus an uncached run *)
      let cold workers =
        S.time (fun () ->
            let analyzer =
              Analyzer.analyze ~config:w.W.ri_config ~base:base_cold
                (Engine.log eng_cold)
            in
            Whatif.run_exn
              ~config:(Whatif.Config.make ~workers ~plans:false ())
              ~analyzer eng_cold target)
      in
      let session workers =
        Whatif.Service.open_session @@ Whatif.Service.create
          ~config:(Whatif.Config.make ~workers ~checkpoint_every:32 ())
          ~rowset:w.W.ri_config ~base:base_warm eng_warm
      in
      let run_session s =
        match Whatif.Session.run s target with
        | Ok o -> o
        | Error e -> failwith (Whatif.Error.to_string e)
      in
      let s1 = session 1 in
      let primed = run_session s1 in
      (* the first session run pays the analyzer build *)
      let warm_out = ref primed and warm_ms = ref infinity in
      for _ = 1 to warm_runs do
        let o, ms = S.time (fun () -> run_session s1) in
        if ms < !warm_ms then begin warm_ms := ms; warm_out := o end
      done;
      let cold_out = ref None and cold_ms = ref infinity in
      for _ = 1 to 3 do
        let o, ms = cold 1 in
        if ms < !cold_ms then begin cold_ms := ms; cold_out := Some o end
      done;
      let cold1 = Option.get !cold_out in
      (* the amortization must never change the answer: final hashes with
         caches/checkpoints on vs off, at 1 and 4 workers *)
      let cold4, _ = cold 4 in
      let s4 = session 4 in
      let warm4a = run_session s4 in
      let warm4b = run_session s4 in
      let h = cold1.Whatif.final_db_hash in
      let hash_ok =
        List.for_all
          (fun (o : Whatif.outcome) -> o.Whatif.final_db_hash = h)
          [ primed; !warm_out; cold4; warm4a; warm4b ]
      in
      if not hash_ok then
        failwith (w.W.name ^ ": cached what-if hash diverged from cold run");
      let speedup = !cold_ms /. Float.max !warm_ms 0.001 in
      if speedup >= 2.0 then incr two_x;
      G.add_row t
        [
          w.W.name;
          string_of_int (Log.length (Engine.log eng_cold));
          fmt !cold_ms;
          fmt !warm_ms;
          G.fmt_speedup speedup;
          !warm_out.Whatif.rollback_strategy;
          string_of_int !warm_out.Whatif.plans_used;
          "ok";
        ];
      repeat_results :=
        !repeat_results
        @ [
            Uv_obs.Json.Obj
              [
                ("workload", Uv_obs.Json.Str w.W.name);
                ("history", Uv_obs.Json.Int (Log.length (Engine.log eng_cold)));
                ("cold_ms", Uv_obs.Json.Float !cold_ms);
                ("warm_ms", Uv_obs.Json.Float !warm_ms);
                ("speedup", Uv_obs.Json.Float speedup);
                ( "rollback_strategy",
                  Uv_obs.Json.Str !warm_out.Whatif.rollback_strategy );
                ("plans_used", Uv_obs.Json.Int !warm_out.Whatif.plans_used);
                ("hash_identical", Uv_obs.Json.Bool hash_ok);
              ];
          ])
    (workloads ());
  G.print t;
  Printf.printf "warm >= 2x cold on %d/%d workloads\n" !two_x
    (List.length (workloads ()))

(* A retroactive addition whose effect no later statement can erase: an
   accumulator shift or a persisting fresh row. Every replay diverges
   permanently, so the jumper never fires and its per-member comparisons
   are pure overhead. *)
let nohit_stmt (w : W.t) =
  match w.W.name with
  | "TPC-C" -> "UPDATE warehouse SET w_ytd = w_ytd + 7 WHERE w_id = 1"
  | "SEATS" -> "UPDATE customer SET c_balance = c_balance + 7 WHERE c_id = 1"
  | "AStore" -> "UPDATE Products SET Stock = Stock + 7 WHERE ProductID = 1"
  | "TATP" -> "INSERT INTO call_forwarding VALUES (1, 1, 99, 99, 'x')"
  | _ -> "INSERT INTO trust VALUES (1, 2, 1, 0)"

let bench_abl_hash () =
  let n = sz 600 200 in
  let t =
    G.create ~title:"Ablation: Hash-jumper overhead when no hash-hit occurs"
      ~header:[ "Bench"; "jumper off"; "jumper on"; "overhead"; "hit?" ]
  in
  List.iter
    (fun (w : W.t) ->
      let eng, rt = W.setup ~mode:R.Transpiled w in
      let base = Engine.snapshot eng in
      let prng = Uv_util.Prng.create 5 in
      let calls = w.W.generate prng ~scale:1 ~n ~dep_rate:0.3 in
      ignore (W.run_history rt ~mode:R.Transpiled calls);
      let analyzer = Analyzer.analyze ~config:w.W.ri_config ~base (Engine.log eng) in
      let target =
        {
          Analyzer.tau = 1;
          op = Analyzer.Add (Uv_sql.Parser.parse_stmt (nohit_stmt w));
        }
      in
      let run hj =
        let config = Whatif.Config.make ~hash_jumper:hj () in
        Gc.compact ();
        Whatif.run_exn ~config ~analyzer eng target
      in
      (* nine back-to-back (off, on) pairs after one warmup each: allocator
         noise drifts over the run, so the overhead is the median of the
         per-pair ratios (drift hits both arms of a pair alike), and the
         displayed times are the medians of each arm *)
      ignore (run false);
      ignore (run true);
      let pairs =
        List.init 9 (fun _ ->
            let off = run false in
            let on = run true in
            (off, on))
      in
      let median xs =
        let s = List.sort compare xs in
        List.nth s (List.length s / 2)
      in
      let off_ms = median (List.map (fun (o, _) -> o.Whatif.real_ms) pairs) in
      let on_ms = median (List.map (fun (_, o) -> o.Whatif.real_ms) pairs) in
      let ratio =
        median
          (List.map
             (fun (off, on) -> on.Whatif.real_ms /. max off.Whatif.real_ms 0.001)
             pairs)
      in
      let on = snd (List.hd pairs) in
      G.add_row t
        [
          w.W.name;
          fmt off_ms;
          fmt on_ms;
          Printf.sprintf "%.1f%%" (100.0 *. (ratio -. 1.0));
          (match on.Whatif.hash_jump_at with
          | Some i -> Printf.sprintf "hit@%d" i
          | None -> "no");
        ])
    (workloads ());
  G.print t

let bench_abl_index () =
  (* our engine design choice: hash indexes on PRIMARY KEY / CREATE INDEX
     columns turn point accesses from O(table) scans into O(1) probes.
     The same history runs against an indexed and an index-less schema. *)
  let rows = sz 20_000 4_000 and updates = sz 1_000 300 in
  let t =
    G.create
      ~title:
        "Ablation: hash indexes (point updates + what-if on the same history)"
      ~header:
        [ "rows"; "updates"; "indexed"; "full-scan"; "speedup"; "whatif idx";
          "whatif scan" ]
  in
  let build indexed =
    let e = Engine.create () in
    let key_decl = if indexed then "k INT PRIMARY KEY" else "k INT" in
    ignore
      (Engine.exec_sql e
         (Printf.sprintf "CREATE TABLE items (%s, v INT)" key_decl));
    let prng = Uv_util.Prng.create 11 in
    for i = 1 to rows do
      ignore
        (Engine.exec_sql e
           (Printf.sprintf "INSERT INTO items VALUES (%d, %d)" i
              (Uv_util.Prng.int prng 1000)))
    done;
    Engine.reset_log e;
    let base = Engine.snapshot e in
    let stmts =
      List.init updates (fun _ ->
          Printf.sprintf "UPDATE items SET v = v + 1 WHERE k = %d"
            (1 + Uv_util.Prng.int prng rows))
    in
    let (), run_ms =
      S.time (fun () -> List.iter (fun sql -> ignore (Engine.exec_sql e sql)) stmts)
    in
    (e, base, run_ms)
  in
  let e_idx, base_idx, idx_ms = build true in
  let e_scan, base_scan, scan_ms = build false in
  let whatif e base =
    let analyzer = Analyzer.analyze ~base (Engine.log e) in
    let out = Whatif.run_exn ~analyzer e { Analyzer.tau = 1; op = Analyzer.Remove } in
    out.Whatif.real_ms
  in
  let w_idx = whatif e_idx base_idx in
  let w_scan = whatif e_scan base_scan in
  G.add_row t
    [
      string_of_int rows;
      string_of_int updates;
      fmt idx_ms;
      fmt scan_ms;
      G.fmt_speedup (scan_ms /. max idx_ms 0.001);
      fmt w_idx;
      fmt w_scan;
    ];
  G.print t

let bench_abl_cc () =
  (* §6: prior R/W knowledge lets a deterministic scheduler pack a batch
     into conflict-free waves without optimistic restarts *)
  let n = sz 400 150 in
  let t =
    G.create
      ~title:"Ablation: deterministic concurrency-control scheduling (§6)"
      ~header:[ "Bench"; "batch"; "waves"; "parallelism"; "plan time" ]
  in
  List.iter
    (fun (w : W.t) ->
      let eng, _rt = W.setup ~mode:R.Raw w in
      let prng = Uv_util.Prng.create 17 in
      (* a batch of single-statement updates drawn from the workload's
         numeric projection when available, else from its app calls *)
      let stmts =
        match w.W.numeric_history with
        | Some gen ->
            let all, _ = gen prng ~n:(n * 2) ~dep_rate:0.2 in
            all
            |> List.filter_map (fun sql ->
                   match Uv_sql.Parser.parse_stmt sql with
                   | Uv_sql.Ast.Update _ as s -> Some s
                   | Uv_sql.Ast.Insert _ as s -> Some s
                   | _ -> None)
            |> List.filteri (fun i _ -> i < n)
        | None ->
            List.init n (fun i ->
                Uv_sql.Parser.parse_stmt
                  (Printf.sprintf
                     "UPDATE customer SET c_balance = %d WHERE c_id = %d" i
                     (1 + (i mod 80))))
      in
      let plan, ms =
        S.time (fun () -> Cc_schedule.plan ~base:(Engine.catalog eng) stmts)
      in
      G.add_row t
        [
          w.W.name;
          string_of_int plan.Cc_schedule.statements;
          string_of_int (Cc_schedule.wave_count plan);
          Printf.sprintf "%.1fx" (Cc_schedule.parallelism plan);
          fmt ms;
        ])
    (workloads ());
  G.print t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core primitives                     *)
(* ------------------------------------------------------------------ *)

let bench_micro () =
  let open Bechamel in
  (* shared fixtures *)
  let eng = Engine.create () in
  ignore
    (Engine.exec_sql eng "CREATE TABLE t (id INT PRIMARY KEY, v INT, w INT)");
  for i = 1 to 100 do
    ignore (Engine.exec_sql eng (Printf.sprintf "INSERT INTO t VALUES (%d, %d, 0)" i i))
  done;
  for i = 1 to 400 do
    ignore
      (Engine.exec_sql eng
         (Printf.sprintf "UPDATE t SET v = %d WHERE id = %d" i ((i mod 100) + 1)))
  done;
  let log = Engine.log eng in
  let sv = Schema_view.create () in
  Schema_view.apply sv (Uv_sql.Parser.parse_stmt "CREATE TABLE t (id INT PRIMARY KEY, v INT, w INT)");
  let stmt = Uv_sql.Parser.parse_stmt "UPDATE t SET v = 7 WHERE id = 31" in
  let tests =
    [
      Test.make ~name:"parse-update" (Staged.stage (fun () ->
          ignore (Uv_sql.Parser.parse_stmt "UPDATE t SET v = 7 WHERE id = 31")));
      Test.make ~name:"colwise-rwset" (Staged.stage (fun () ->
          ignore (Rwset.of_stmt sv stmt)));
      Test.make ~name:"rowwise-rwset" (Staged.stage (fun () ->
          let rowstate = Rowset.create Rowset.default_config in
          ignore (Rowset.of_entry rowstate sv stmt [])));
      Test.make ~name:"table-hash-row" (Staged.stage (fun () ->
          let h = Uv_util.Table_hash.create () in
          Uv_util.Table_hash.add_row h "t|I1|I2|I3"));
      Test.make ~name:"analyze-500-entry-log" (Staged.stage (fun () ->
          ignore (Analyzer.analyze log)));
      Test.make ~name:"engine-update" (Staged.stage (fun () ->
          ignore (Engine.query_sql eng "SELECT COUNT(*) FROM t WHERE v > 50")));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg [ instance ] test
  in
  let t =
    G.create ~title:"Micro-benchmarks (Bechamel, monotonic clock)"
      ~header:[ "primitive"; "time/run" ]
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun _ inner ->
          Hashtbl.iter
            (fun name raw ->
                let analyzed =
                  Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                                 ~predictors:[| Measure.run |])
                    Toolkit.Instance.monotonic_clock
                    (Hashtbl.of_seq (Seq.return (name, raw)))
                in
                Hashtbl.iter
                  (fun name ols ->
                    match Analyze.OLS.estimates ols with
                    | Some [ est ] ->
                        G.add_row t [ name; Printf.sprintf "%.0fns" est ]
                    | _ -> G.add_row t [ name; "-" ])
                  analyzed)
            inner)
        (Hashtbl.of_seq (Seq.return ("g", results))))
    tests;
  G.print t

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Template matrix: per-statement vs matrix-backed closure              *)
(* ------------------------------------------------------------------ *)

(* per-workload rows for the uv.bench/1 report (--json) *)
let template_results : Uv_obs.Json.t list ref = ref []

(* Closure time at n and 10n with a constant hot-entity count (dep_rate
   scaled by 1/10), per-statement oracle vs matrix fast path. The fast
   path must return the identical replay set (hard failure otherwise);
   its growth factor across the 10x history is the paper's claim that
   template-level analysis scales with the replay set, not the log. *)
let bench_template_analysis () =
  let module T = Uv_analysis.Template_extract in
  let module M = Uv_analysis.Template_matrix in
  let module F = Uv_analysis.Template_fastpath in
  let n_small = sz 250 60 in
  let reps = 9 in
  let t =
    G.create
      ~title:
        "Template matrix: closure time, per-statement oracle vs \
         matrix-backed fast path (n and 10n, constant hot set)"
      ~header:
        [ "Bench"; "hist n"; "oracle"; "matrix"; "hist 10n"; "oracle";
          "matrix"; "growth o"; "growth m"; "set" ]
  in
  List.iter
    (fun (w : W.t) ->
      let set = T.extract ~schema:w.W.schema_sql ~source:w.W.app_source () in
      let matrix = M.build ~config:w.W.ri_config set in
      let measure n dep_rate =
        let eng, rt = W.setup ~mode:R.Raw w in
        let base = Engine.snapshot eng in
        let prng = Uv_util.Prng.create 92 in
        let calls =
          w.W.target_call :: w.W.generate prng ~scale:1 ~n ~dep_rate
        in
        ignore (W.run_history rt ~mode:R.Raw calls);
        let log = Engine.log eng in
        let anl = Analyzer.analyze ~config:w.W.ri_config ~base log in
        let fast = F.prepare ~log ~set ~matrix anl in
        (* target a hot-entity write with a bounded removal closure: the
           paper's scenario is a replay set that stays small while the
           history grows, so skip reads (their removal depends on
           nothing) and table-wide conflicts like append INSERTs (their
           closure grows with the history, measuring replay, not
           analysis); fall back to the first nonempty closure *)
        let tau =
          let n = Log.length log in
          (* a constant: the hot set's size is governed by dep_rate, not
             by the history length *)
          let cap = 32 in
          let closure_size i =
            let rs = Analyzer.replay_set anl { Analyzer.tau = i; op = Analyzer.Remove } in
            Array.fold_left (fun a b -> if b then a + 1 else a) 0 rs.Analyzer.members
          in
          let rec scan i fallback =
            if i > n || i > 80 then Option.value fallback ~default:1
            else if
              Uv_retroactive.Rwset.Colset.is_empty
                (Analyzer.info anl i).Analyzer.rw.Uv_retroactive.Rwset.w
            then scan (i + 1) fallback
            else
              let m = closure_size i in
              if m > 0 && m <= cap then i
              else
                scan (i + 1)
                  (if fallback = None && m > 0 then Some i else fallback)
          in
          scan 1 None
        in
        let target = { Analyzer.tau; op = Analyzer.Remove } in
        let best f =
          let ms = ref infinity and out = ref None in
          for _ = 1 to reps do
            let o, m = S.time f in
            if m < !ms then ms := m;
            out := Some o
          done;
          (Option.get !out, !ms)
        in
        let oracle, oracle_ms = best (fun () -> Analyzer.replay_set anl target) in
        let fp, fast_ms = best (fun () -> F.replay_set fast anl target) in
        if oracle.Analyzer.members <> fp.Analyzer.members then
          failwith (w.W.name ^ ": matrix-backed replay set diverged");
        (Log.length log, oracle.Analyzer.member_count, oracle_ms, fast_ms)
      in
      let h1, m1, o1, f1 = measure n_small 0.2 in
      let h10, m10, o10, f10 = measure (10 * n_small) 0.02 in
      let growth_o = o10 /. Float.max o1 0.001
      and growth_m = f10 /. Float.max f1 0.001 in
      G.add_row t
        [
          w.W.name;
          string_of_int h1;
          fmt o1;
          fmt f1;
          string_of_int h10;
          fmt o10;
          fmt f10;
          Printf.sprintf "%.1fx" growth_o;
          Printf.sprintf "%.1fx" growth_m;
          "equal";
        ];
      template_results :=
        !template_results
        @ [
            Uv_obs.Json.Obj
              [
                ("workload", Uv_obs.Json.Str w.W.name);
                ("history_small", Uv_obs.Json.Int h1);
                ("history_big", Uv_obs.Json.Int h10);
                ("members_small", Uv_obs.Json.Int m1);
                ("members_big", Uv_obs.Json.Int m10);
                ("oracle_ms_small", Uv_obs.Json.Float o1);
                ("matrix_ms_small", Uv_obs.Json.Float f1);
                ("oracle_ms_big", Uv_obs.Json.Float o10);
                ("matrix_ms_big", Uv_obs.Json.Float f10);
                ("oracle_growth", Uv_obs.Json.Float growth_o);
                ("matrix_growth", Uv_obs.Json.Float growth_m);
                ("replay_sets_equal", Uv_obs.Json.Bool true);
              ];
          ])
    (workloads ());
  G.print t

(* ------------------------------------------------------------------ *)
(* History scale: segmented store, 100x history, constant replay set    *)
(* ------------------------------------------------------------------ *)

(* per-run rows for the uv.bench/1 report (--json) *)
let history_scale_results : Uv_obs.Json.t list ref = ref []

(* The paper's headline claim, finally at scale: what-if analysis cost
   tracks the replay-set size, not the history length. An AStore history
   grows 100x (full: 100k+ transactions) with the dependency rate scaled
   down 100x so the hot set stays constant; the history is persisted
   through the segmented Log_store and analysed by streaming it one
   segment at a time. Hard gates (failwith):
   - the store-replayed engine's what-if hash equals the legacy
     single-file path's, at both sizes;
   - replay-set closure time grows < 2x across the 100x history;
   - peak resident log memory in the streamed analysis is bounded by
     one segment + the manifest (and is a small fraction of the store);
   - with checkpoint alignment on, every recorded rung sits exactly on
     a sealed-segment boundary. *)
let bench_history_scale () =
  let w = W.by_name "astore" in
  let n_small = sz 1000 200 in
  let factor = 100 in
  let n_big = n_small * factor in
  let seg_cap = sz 4096 512 in
  let dep_small = 0.2 in
  let dep_big = dep_small /. float_of_int factor in
  let reps = 5 in
  let tmp = Filename.temp_file "uv_hist_scale" "" in
  Sys.remove tmp;
  Sys.mkdir tmp 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      rm tmp)
  @@ fun () ->
  (* execute a history streaming through the chunked generator, the
     canonical hot-entity target call first so tau = 1 *)
  let build n dep_rate =
    let eng, rt = W.setup ~mode:R.Raw w in
    let base = Engine.snapshot eng in
    ignore (W.run_history rt ~mode:R.Raw [ w.W.target_call ]);
    let prng = Uv_util.Prng.create 92 in
    ignore
      (W.generate_scaled w prng ~scale:1 ~n ~dep_rate ~chunk:2000 (fun calls ->
           ignore (W.run_history rt ~mode:R.Raw calls))
        : int);
    (eng, base)
  in
  let best f =
    let ms = ref infinity and out = ref None in
    for _ = 1 to reps do
      let o, m = S.time f in
      if m < !ms then ms := m;
      out := Some o
    done;
    (Option.get !out, !ms)
  in
  (* one size; [deep] additionally replays the legacy single file into
     its own engine (a third full execution of the history, affordable
     at the small size — the big size proves the record streams are
     bit-identical instead and lets the shared replay machinery carry
     the equivalence) *)
  let measure label n dep_rate ~deep =
    let phase name f =
      let out, ms = S.time f in
      Printf.printf "  [%s] %s: %.0fms\n%!" label name ms;
      out
    in
    let eng, base = phase "execute" (fun () -> build n dep_rate) in
    let dir = Filename.concat tmp (label ^ ".store") in
    let file = Filename.concat tmp (label ^ ".ulog") in
    phase "persist" (fun () ->
        let store = Log_store.open_ ~segment_cap:seg_cap dir in
        Log_store.append_log store (Engine.log eng);
        Log_store.close store;
        Log_store.save_log_file (Engine.log eng) ~path:file);
    (* store path, ladder aligned to segment boundaries only (a huge
       stride isolates the boundary rungs for the alignment gate) *)
    let e_store = Engine.create () in
    Engine.restore e_store base;
    Engine.enable_checkpoints e_store ~every:1_000_000_000;
    let store_r = Log_store.open_ dir in
    phase "replay store" (fun () ->
        ignore (Log_store.replay store_r e_store : int list));
    if not (Int64.equal (Engine.db_hash e_store) (Engine.db_hash eng)) then
      failwith (label ^ ": store replay diverged from the original execution");
    (* the legacy single-file path holds byte-for-byte the same records
       (streamed against the store one segment at a time, so the
       resident bound below stays meaningful) *)
    let rem = ref (Log_store.load_log_file ~path:file) in
    Log_store.iter_range store_r ~lo:1 ~hi:(Log_store.length store_r)
      (fun _ r ->
        match !rem with
        | x :: tl when x = r -> rem := tl
        | _ -> failwith (label ^ ": store records diverge from the single file"));
    if !rem <> [] then
      failwith (label ^ ": single file holds records the store lacks");
    let e_file =
      if not deep then None
      else begin
        let e = Engine.create () in
        Engine.restore e base;
        phase "replay file" (fun () ->
            ignore
              (Log_io.replay e (Log_store.load_log_file ~path:file)
                : int list));
        if not (Int64.equal (Engine.db_hash e) (Engine.db_hash e_store)) then
          failwith (label ^ ": store replay diverged from the single-file path");
        Some e
      end
    in
    let bounds = Log_store.boundaries store_r in
    (match Engine.checkpoints e_store with
    | Some ladder ->
        let rungs = Checkpoint.rungs ladder in
        if bounds <> [] && rungs = [] then
          failwith (label ^ ": no checkpoint rung landed on a segment boundary");
        List.iter
          (fun (at, _) ->
            if not (List.mem at bounds) then
              failwith
                (Printf.sprintf "%s: rung at %d is not a segment boundary"
                   label at))
          rungs
    | None -> failwith "checkpoint ladder vanished");
    (* streamed analysis: one segment resident at a time *)
    let (anl, analysis_ms) =
      S.time (fun () ->
          Analyzer.of_source ~config:w.W.ri_config ~base
            (Analyzer.source_of_store store_r))
    in
    (* the canonical question: the hot-entity target call runs first, so
       the scan settles on its earliest writing statement whose removal
       closure is non-degenerate — that closure covers the hot chain,
       whose size the dep-rate scaling holds roughly constant across
       history sizes (the experiment's control variable), and a
       multi-member closure keeps the per-member gate out of
       microsecond-level timing noise *)
    let target =
      let n = Log_store.length store_r in
      let closure_size i =
        List.length
          (Analyzer.replay_members anl
             { Analyzer.tau = i; op = Analyzer.Remove })
      in
      let rec scan i fallback =
        if i > n || i > 80 then Option.value fallback ~default:1
        else if
          Uv_retroactive.Rwset.Colset.is_empty
            (Analyzer.info anl i).Analyzer.rw.Uv_retroactive.Rwset.w
        then scan (i + 1) fallback
        else
          let m = closure_size i in
          if m >= 2 then i
          else
            scan (i + 1)
              (if fallback = None && m > 0 then Some i else fallback)
      in
      { Analyzer.tau = scan 1 None; op = Analyzer.Remove }
    in
    (* the per-question cost the gate is about: the joint (cell-conflict)
       closure, whose work is bounded by the row-value buckets it
       touches, not the history *)
    let joint, closure_ms =
      best (fun () -> Analyzer.replay_members anl target)
    in
    let member_count = List.length joint in
    Printf.printf "  [%s] n=%d tau=%d joint=%d/%.4fms analysis=%.1fms\n%!"
      label (Log_store.length store_r) target.Analyzer.tau member_count
      closure_ms analysis_ms;
    (* soundness vs the default Cell closure: joint must be a subset *)
    let cell = Analyzer.replay_set anl target in
    List.iter
      (fun i ->
        if not cell.Analyzer.members.(i - 1) then
          failwith
            (Printf.sprintf "%s: joint member %d outside the Cell closure"
               label i))
      joint;
    (* the what-if itself, twice with the one analyzer: once on the
       joint replay set and once on the default Cell set (on the
       file-replayed engine when [deep], else on the store-replayed one
       — run_exn leaves the engine intact) — equal final hashes check
       the joint closure's sufficiency, and under [deep] the
       persistence paths too *)
    let out_store =
      phase "whatif store (joint)" (fun () ->
          Whatif.run_exn
            ~config:(Whatif.Config.make ~mode:Analyzer.Joint ())
            ~analyzer:anl e_store target)
    in
    let cell_engine, cell_label =
      match e_file with
      | Some e -> (e, "whatif file (cell)")
      | None -> (e_store, "whatif store (cell)")
    in
    let out_cell =
      phase cell_label (fun () ->
          Whatif.run_exn ~analyzer:anl cell_engine target)
    in
    if
      not
        (Int64.equal out_store.Whatif.final_db_hash
           out_cell.Whatif.final_db_hash)
    then
      failwith
        (label ^ ": joint and cell what-ifs disagree on the universe hash");
    let segs = Log_store.segments store_r in
    let max_seg =
      List.fold_left (fun a s -> max a s.Log_store.seg_bytes) 0 segs
    in
    let total = List.fold_left (fun a s -> a + s.Log_store.seg_bytes) 0 segs in
    let peak = Log_store.resident_peak_bytes store_r in
    let manifest = Log_store.manifest_bytes store_r in
    if peak > max_seg then
      failwith
        (Printf.sprintf
           "%s: analysis held %d bytes resident, more than one segment (%d)"
           label peak max_seg);
    let length = Log_store.length store_r in
    Log_store.close store_r;
    ( length,
      member_count,
      closure_ms,
      analysis_ms,
      out_store.Whatif.final_db_hash,
      peak,
      manifest,
      max_seg,
      total,
      List.length segs )
  in
  let h1, m1, c1, a1, _, _, _, _, _, _ =
    measure "small" n_small dep_small ~deep:true
  in
  let h2, m2, c2, a2, _, peak, manifest, max_seg, total, nsegs =
    measure "big" n_big dep_big ~deep:false
  in
  (* the replay sets the tau-scan finds at the two sizes need not be
     equal, so the gate normalizes by replay-set size: cost per member
     must stay flat while the history grows 100x — exactly the "cost
     tracks the replay set, not the history" claim *)
  let per_member c m = c /. Float.max (float_of_int m) 1. in
  let growth = per_member c2 m2 /. Float.max (per_member c1 m1) 0.0001 in
  if growth >= 2.0 then
    failwith
      (Printf.sprintf
         "per-member closure cost grew %.2fx (%.4f -> %.4f ms/member) while \
          the history grew %dx (gate: < 2x)"
         growth (per_member c1 m1) (per_member c2 m2) factor);
  if total >= 10 * max_seg && peak * 5 > total then
    failwith
      (Printf.sprintf
         "analysis was not streaming: peak %d bytes vs %d store bytes" peak
         total);
  (* the scaled generator covers all five workloads at 100k+ calls
     (generation only: the claim here is that histories of that size are
     producible and chunked, not that every engine executes them) *)
  let gen_n = sz 100_000 2_000 in
  let gen_counts =
    List.map
      (fun (wk : W.t) ->
        let prng = Uv_util.Prng.create 17 in
        let produced =
          W.generate_scaled wk prng ~scale:1 ~n:gen_n ~dep_rate:0.05
            ~chunk:5000 (fun _ -> ())
        in
        if produced < gen_n then
          failwith
            (Printf.sprintf "%s: scaled generator produced %d < %d calls"
               wk.W.name produced gen_n);
        (wk.W.name, produced))
      (workloads ())
  in
  let t =
    G.create
      ~title:
        (Printf.sprintf
           "History scale: %dx history through the segmented store (cap %d)"
           factor seg_cap)
      ~header:
        [ "history"; "members"; "closure"; "analysis"; "peak res"; "store" ]
  in
  G.add_row t
    [ string_of_int h1; string_of_int m1; fmt c1; fmt a1; "-"; "-" ];
  G.add_row t
    [
      string_of_int h2; string_of_int m2; fmt c2; fmt a2;
      G.fmt_bytes (peak + manifest); G.fmt_bytes total;
    ];
  G.print t;
  Printf.printf
    "per-member closure cost grew %.2fx across a %dx history; replay set %d \
     -> %d; peak resident %d bytes of a %d-byte store (%d segments)\n"
    growth factor m1 m2 (peak + manifest) total nsegs;
  history_scale_results :=
    !history_scale_results
    @ [
        Uv_obs.Json.Obj
          [
            ("workload", Uv_obs.Json.Str w.W.name);
            ("history_small", Uv_obs.Json.Int h1);
            ("history_big", Uv_obs.Json.Int h2);
            ("members_small", Uv_obs.Json.Int m1);
            ("members_big", Uv_obs.Json.Int m2);
            ("closure_ms_small", Uv_obs.Json.Float c1);
            ("closure_ms_big", Uv_obs.Json.Float c2);
            ("closure_growth_per_member", Uv_obs.Json.Float growth);
            ("analysis_ms_small", Uv_obs.Json.Float a1);
            ("analysis_ms_big", Uv_obs.Json.Float a2);
            ("segment_cap", Uv_obs.Json.Int seg_cap);
            ("segments_big", Uv_obs.Json.Int nsegs);
            ("resident_peak_bytes", Uv_obs.Json.Int peak);
            ("manifest_bytes", Uv_obs.Json.Int manifest);
            ("max_segment_bytes", Uv_obs.Json.Int max_seg);
            ("store_bytes", Uv_obs.Json.Int total);
            ("whatif_hashes_equal", Uv_obs.Json.Bool true);
            ("memory_bounded", Uv_obs.Json.Bool true);
            ( "generator_calls",
              Uv_obs.Json.Obj
                (List.map
                   (fun (name, n) -> (name, Uv_obs.Json.Int n))
                   gen_counts) );
          ];
      ]

let experiments =
  [
    ("t4a", "Table 4(a)+(b): vs Mahif (speed and memory)", bench_t4);
    ("t5", "Table 5: DB-size scaling", bench_t5);
    ("f8a", "Figure 8(a): B/T/D/T+D", bench_f8a);
    ("t6a", "Table 6(a): Hash-jumper hit points", bench_t6a);
    ("t6b", "Table 6(b): regular transaction speed", bench_t6b);
    ("t7a", "Table 7(a): transpilation time", bench_t7a);
    ("t7b", "Table 7(b): log sizes", bench_t7b);
    ("t7c", "Table 7(c): logging overhead", bench_t7c);
    ("t7d", "Table 7(d): concurrent what-if slowdown", bench_t7d);
    ("t8a", "Table 8(a): history-size scaling", bench_t8a);
    ("t8b", "Table 8(b): speedup vs DB size", bench_t8b);
    ("t8c", "Table 8(c): speedup vs dependency rate", bench_t8c);
    ("abl-colrow", "Ablation: analysis granularity", bench_abl_colrow);
    ("abl-parallel", "Ablation: replay parallelism", bench_abl_parallel);
    ("exec-parallel", "Measured parallel replay (wave executor)", bench_exec_parallel);
    ("whatif-repeat", "Repeated what-if: session caches cold vs warm", bench_whatif_repeat);
    ("template-analysis", "Template matrix: per-statement vs matrix-backed closure", bench_template_analysis);
    ("history-scale", "Segmented store: 100x history, constant replay set", bench_history_scale);
    ("abl-hash", "Ablation: Hash-jumper overhead", bench_abl_hash);
    ("abl-index", "Ablation: hash indexes vs full scans", bench_abl_index);
    ("abl-cc", "Ablation: CC scheduling from prior R/W knowledge", bench_abl_cc);
    ("micro", "Bechamel micro-benchmarks", bench_micro);
  ]

let () =
  let only = ref None in
  let list_only = ref false in
  let smoke = ref false in
  let json = ref false in
  let args =
    [
      ("--only", Arg.String (fun s -> only := Some s), "run one experiment id");
      ("--quick", Arg.Set quick, "smaller sizes for a fast pass");
      ( "--smoke",
        Arg.Set smoke,
        "CI sanity pass: the measured-parallel and whatif-repeat \
         experiments at quick sizes (fails hard on any cross-worker or \
         cached-vs-cold hash divergence)" );
      ("--list", Arg.Set list_only, "list experiment ids");
      ( "--json",
        Arg.Set json,
        "after the tables, emit a uv.bench/1 report of per-experiment wall \
         times as the last line" );
      ( "--profile",
        Arg.Set profile,
        "collect per-wave queue-wait and lane-utilization histograms from \
         the wave executor's uv_obs counters during exec-parallel (adds \
         clock reads to the hot path; wall times get slightly noisier) — \
         reported under exec_parallel_profile in the --json payload" );
    ]
  in
  Arg.parse args (fun _ -> ()) "ultraverse benchmark harness";
  if !smoke then quick := true;
  if !list_only then
    List.iter (fun (id, desc, _) -> Printf.printf "%-14s %s\n" id desc) experiments
  else begin
    let chosen =
      match (!smoke, !only) with
      | true, _ ->
          List.filter
            (fun (i, _, _) -> i = "exec-parallel" || i = "whatif-repeat")
            experiments
      | false, None -> List.filter (fun (id, _, _) -> id <> "micro") experiments
      | false, Some id -> List.filter (fun (i, _, _) -> i = id) experiments
    in
    if chosen = [] then (
      prerr_endline "unknown experiment id; use --list";
      exit 1);
    let timings =
      List.map
        (fun (id, desc, f) ->
          Printf.printf "\n############ %s — %s ############\n%!" id desc;
          let (), ms = S.time f in
          Printf.printf "(%s in %s)\n%!" id (G.fmt_ms ms);
          (id, ms))
        chosen
    in
    if !json then
      let module J = Uv_obs.Json in
      print_endline
        (Uv_obs.Report.to_string ~schema:"uv.bench/1"
           (J.Obj
              ([
                 ("quick", J.Bool !quick);
                 ("host_domains", J.Int (Domain.recommended_domain_count ()));
                 ( "experiments",
                   J.List
                     (List.map
                        (fun (id, ms) ->
                          J.Obj
                            ([ ("id", J.Str id); ("wall_ms", J.Float ms) ]
                            @
                            match List.assoc_opt id !experiment_workers with
                            | Some ws ->
                                [
                                  ( "workers",
                                    J.List (List.map (fun w -> J.Int w) ws) );
                                ]
                            | None -> []))
                        timings) );
               ]
              @ (match !exec_profile_results with
                | [] -> []
                | rows ->
                    [ ("exec_parallel_profile", J.List (List.rev rows)) ])
              @ (match !repeat_results with
                | [] -> []
                | rows -> [ ("whatif_repeat", J.List rows) ])
              @ (match !template_results with
                | [] -> []
                | rows -> [ ("template_analysis", J.List rows) ])
              @
              match !history_scale_results with
              | [] -> []
              | rows -> [ ("history_scale", J.List rows) ])))
  end
