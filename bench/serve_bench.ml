(* serve-bench: sustained concurrent what-if load against a live
   [ultraverse serve] daemon whose history keeps growing under ingest.

   The daemon is started in-process on a Unix socket; N client domains
   hammer it with what-if requests over their own connections while an
   ingest domain appends committed DML through the same protocol. Every
   client records per-request wall latency; a sample of the served
   outcomes is re-run afterwards through the one-shot path (an engine
   replayed to exactly the history length the daemon reported for that
   answer) and the bench fails hard if any final universe hash differs.

   The last stdout line is a uv.bench/1 report (tracked as BENCH_7.json
   by CI):  dune exec bench/serve_bench.exe -- --smoke            *)

open Uv_retroactive
module J = Uv_obs.Json
module Clock = Uv_util.Clock

(* ------------------------------------------------------------------ *)
(* deterministic workload: one table, always-applicable DML            *)
(* ------------------------------------------------------------------ *)

let seed_stmts n =
  "CREATE TABLE accounts (id INT PRIMARY KEY, owner VARCHAR(16), balance INT);"
  :: List.init (n - 1) (fun i ->
         if i mod 3 = 0 then
           Printf.sprintf
             "INSERT INTO accounts (id, owner, balance) VALUES (%d, 'u%d', %d);"
             i i (100 + i)
         else
           Printf.sprintf
             "UPDATE accounts SET balance = balance + %d WHERE id = %d;"
             (1 + (i mod 7))
             (i - (i mod 3)))

(* the ingest tail touches fresh ids so every statement applies *)
let tail_stmt base i =
  if i mod 2 = 0 then
    Printf.sprintf
      "INSERT INTO accounts (id, owner, balance) VALUES (%d, 'g%d', %d);"
      (base + i) i (200 + i)
  else
    Printf.sprintf "UPDATE accounts SET balance = balance - 1 WHERE id = %d;"
      (base + i - 1)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
      let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) idx))

(* ------------------------------------------------------------------ *)

type sample = { tau : int; history_len : int; hash : string }

type client_result = {
  latencies : float list;
  ok : int;
  saturated : int;
  deadline : int;
  failures : int;
  samples : sample list;
}

let run_client ~addr ~requests ~taus ~sample_every ~cid () =
  let c = Serve.Client.connect addr in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      let lat = ref [] and ok = ref 0 and sat = ref 0 in
      let ded = ref 0 and bad = ref 0 and samples = ref [] in
      let ntau = Array.length taus in
      for i = 0 to requests - 1 do
        let tau = taus.((i + (cid * 3)) mod ntau) in
        let t0 = Clock.now_ms () in
        (match Serve.Client.whatif ~id:i ~tau ~op:"remove" c () with
        | Ok (Serve.Client.Result r) ->
            lat := (Clock.now_ms () -. t0) :: !lat;
            incr ok;
            if i mod sample_every = cid then (
              match (J.member "final_db_hash" r, J.member "history_len" r) with
              | Some (J.Str hash), Some (J.Int history_len) ->
                  samples := { tau; history_len; hash } :: !samples
              | _ -> incr bad)
        | Ok (Serve.Client.Refused { code = "saturated"; retry_after_ms; _ })
          ->
            incr sat;
            Unix.sleepf (Option.value retry_after_ms ~default:5.0 /. 1000.0)
        | Ok (Serve.Client.Refused { code = "deadline"; _ }) -> incr ded
        | Ok (Serve.Client.Refused _) | Error _ -> incr bad)
      done;
      {
        latencies = !lat;
        ok = !ok;
        saturated = !sat;
        deadline = !ded;
        failures = !bad;
        samples = !samples;
      })

let run_ingester ~addr ~base ~count ~pause_ms ~stop () =
  let c = Serve.Client.connect addr in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      let sent = ref 0 in
      (try
         while !sent < count && not (Atomic.get stop) do
           (match Serve.Client.ingest c (tail_stmt base !sent) with
           | Ok (Serve.Client.Result _) -> incr sent
           | Ok (Serve.Client.Refused _) | Error _ -> raise Exit);
           Unix.sleepf (pause_ms /. 1000.0)
         done
       with Exit -> ());
      !sent)

(* replay the exact prefix the daemon answered over, one-shot style *)
let verify_samples ~all_stmts samples =
  let module Engine = Uv_db.Engine in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s -> Hashtbl.replace tbl (s.tau, s.history_len) s.hash)
    samples;
  let divergent = ref [] in
  Hashtbl.iter
    (fun (tau, len) served ->
      let eng = Engine.create () in
      List.iteri
        (fun i sql ->
          if i < len then ignore (Engine.exec eng (Uv_sql.Parser.parse_stmt sql)))
        all_stmts;
      let svc =
        Whatif.Service.create ~config:(Whatif.Config.make ~workers:1 ()) eng
      in
      match Whatif.Service.run svc { Analyzer.tau; op = Analyzer.Remove } with
      | Ok r ->
          let oneshot = Printf.sprintf "%Lx" r.outcome.Whatif.final_db_hash in
          if oneshot <> served then divergent := (tau, len, served, oneshot) :: !divergent
      | Error e -> divergent := (tau, len, served, Whatif.Error.code_name e.code) :: !divergent)
    tbl;
  (Hashtbl.length tbl, !divergent)

(* ------------------------------------------------------------------ *)

let () =
  let smoke = ref false in
  let clients = ref 0 and per_client = ref 0 in
  Arg.parse
    [
      ( "--smoke",
        Arg.Set smoke,
        "CI sizes (4 clients x 250 requests, small seed history)" );
      ("--clients", Arg.Set_int clients, "concurrent client count");
      ("--requests", Arg.Set_int per_client, "requests per client");
    ]
    (fun _ -> ())
    "ultraverse serve bench";
  let seed_n = if !smoke then 40 else 120 in
  let clients = if !clients > 0 then !clients else if !smoke then 4 else 6 in
  let per_client =
    if !per_client > 0 then !per_client else if !smoke then 250 else 500
  in
  let tail_n = if !smoke then 120 else 400 in
  let seed = seed_stmts seed_n in
  let all_stmts = seed @ List.init tail_n (tail_stmt (seed_n + 10)) in
  let eng = Uv_db.Engine.create () in
  List.iter
    (fun sql -> ignore (Uv_db.Engine.exec eng (Uv_sql.Parser.parse_stmt sql)))
    seed;
  (* one replay lane per request: the concurrency under test is across
     requests (the worker pool), not inside one replay *)
  let svc =
    Whatif.Service.create ~config:(Whatif.Config.make ~workers:1 ()) eng
  in
  Whatif.Service.publish svc;
  let sock = Filename.temp_file "uv-serve-bench" ".sock" in
  Sys.remove sock;
  let addr = Serve.Unix_sock sock in
  let srv =
    Serve.start
      ~config:
        {
          Serve.default_config with
          workers = max 2 (min 4 (Domain.recommended_domain_count () - 2));
          queue_capacity = 64;
          max_clients = clients + 4;
        }
      svc addr
  in
  let taus =
    (* DML positions inside the seed region: always < history_len *)
    Array.init 12 (fun i -> 2 + (i * (seed_n - 4) / 12))
  in
  let stop = Atomic.make false in
  Printf.printf
    "serve-bench: %d clients x %d requests, seed history %d, ingest tail %d\n%!"
    clients per_client seed_n tail_n;
  let t0 = Clock.now_ms () in
  let ingester =
    Domain.spawn
      (run_ingester ~addr ~base:(seed_n + 10) ~count:tail_n ~pause_ms:2.0 ~stop)
  in
  let workers =
    List.init clients (fun cid ->
        Domain.spawn
          (run_client ~addr ~requests:per_client ~taus
             ~sample_every:(max clients (per_client / 20))
             ~cid))
  in
  let results = List.map Domain.join workers in
  Atomic.set stop true;
  let ingested = Domain.join ingester in
  let wall_ms = Clock.now_ms () -. t0 in
  let history_end = Whatif.Service.history_len svc in
  Serve.stop srv;
  let sum f = List.fold_left (fun a r -> a + f r) 0 results in
  let ok = sum (fun r -> r.ok)
  and saturated = sum (fun r -> r.saturated)
  and deadline = sum (fun r -> r.deadline)
  and failures = sum (fun r -> r.failures) in
  let lats =
    List.concat_map (fun r -> r.latencies) results |> Array.of_list
  in
  Array.sort compare lats;
  let p50 = percentile lats 50.0
  and p95 = percentile lats 95.0
  and p99 = percentile lats 99.0 in
  let samples = List.concat_map (fun r -> r.samples) results in
  Printf.printf
    "  %d ok, %d saturated, %d deadline, %d failures; history %d -> %d (%d \
     ingested) in %.0f ms (%.0f req/s)\n\
    \  latency ms: p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n\
     verifying %d sampled outcomes against the one-shot path...\n\
     %!"
    ok saturated deadline failures seed_n history_end ingested wall_ms
    (float_of_int ok /. wall_ms *. 1000.0)
    p50 p95 p99
    (if Array.length lats = 0 then 0.0 else lats.(Array.length lats - 1))
    (List.length samples);
  let verified, divergent = verify_samples ~all_stmts samples in
  List.iter
    (fun (tau, len, served, oneshot) ->
      Printf.eprintf
        "HASH DIVERGENCE: tau=%d history_len=%d served=%s one-shot=%s\n%!" tau
        len served oneshot)
    divergent;
  Printf.printf "  %d distinct (tau, history_len) points verified: %s\n%!"
    verified
    (if divergent = [] then "all hash-identical" else "DIVERGED");
  if failures > 0 then prerr_endline "serve-bench: request failures";
  print_endline
    (Uv_obs.Report.to_string ~schema:"uv.bench/1"
       (J.Obj
          [
            ("bench", J.Str "serve");
            ("smoke", J.Bool !smoke);
            ("clients", J.Int clients);
            ("requests_per_client", J.Int per_client);
            ("ok", J.Int ok);
            ("saturated", J.Int saturated);
            ("deadline_exceeded", J.Int deadline);
            ("failures", J.Int failures);
            ("history_start", J.Int seed_n);
            ("history_end", J.Int history_end);
            ("ingested", J.Int ingested);
            ("wall_ms", J.Float wall_ms);
            ("throughput_rps", J.Float (float_of_int ok /. wall_ms *. 1000.0));
            ("p50_ms", J.Float p50);
            ("p95_ms", J.Float p95);
            ("p99_ms", J.Float p99);
            ("verified_samples", J.Int verified);
            ("hash_identical", J.Bool (divergent = []));
          ]));
  if divergent <> [] || failures > 0 || ok < clients * per_client - saturated - deadline
  then exit 1
