(* The shared flag vocabulary of the ultraverse CLI.

   Before this module every subcommand re-declared its own --json,
   --workers, --deadline, --tau/--op/--stmt, --seed … with drifting doc
   strings and defaults. Each flag now has exactly one definition with
   one typed accessor; subcommands compose the terms they need. The
   serve/client subcommands were built on this module from day one. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---------- positional arguments ---------- *)

let history_pos =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"HISTORY.SQL" ~doc:"committed history script")

let history_pos_opt = Arg.(value & pos 0 (some file) None & info [] ~docv:"HISTORY.SQL")

(* ---------- retroactive target ---------- *)

let tau =
  Arg.(
    required
    & opt (some int) None
    & info [ "tau" ] ~doc:"target commit index")

let tau_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "tau" ] ~doc:"target commit index (optional)")

let op =
  Arg.(value & opt string "remove" & info [ "op" ] ~doc:"remove | add | change")

let stmt_text =
  Arg.(
    value
    & opt (some string) None
    & info [ "stmt" ] ~doc:"statement for add/change")

let parse_op op stmt_text =
  let module Analyzer = Uv_retroactive.Analyzer in
  match (op, stmt_text) with
  | "remove", _ -> Analyzer.Remove
  | "add", Some sql -> Analyzer.Add (Uv_sql.Parser.parse_stmt sql)
  | "change", Some sql -> Analyzer.Change (Uv_sql.Parser.parse_stmt sql)
  | _ -> failwith "--op add/change requires --stmt"

(* ---------- output & execution knobs ---------- *)

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"emit the result as a JSON report")

let workers =
  (* default to the host's available parallelism: extra domains beyond
     the core count only add GC-barrier overhead *)
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "workers" ]
        ~doc:"parallel replay worker (domain) count (default: host parallelism)")

let deadline =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"MS"
        ~doc:
          "wall-clock budget per what-if run in milliseconds; an exceeded \
           budget aborts that run cleanly (the original database untouched)")

let seed =
  Arg.(
    value
    & opt int 7
    & info [ "seed" ] ~docv:"N"
        ~doc:"PRNG seed for generated workloads (determinism knob)")

let query =
  Arg.(
    value
    & opt (some string) None
    & info [ "query" ] ~doc:"SELECT to run against the resulting database")

let checkpoint_every =
  Arg.(
    value
    & opt int 0
    & info [ "checkpoint-every" ] ~docv:"K"
        ~doc:
          "snapshot the catalog every K committed statements; the rollback \
           phase can then jump to the nearest checkpoint below τ instead of \
           undoing the whole tail (0 disables)")

let segment_cap =
  Arg.(
    value
    & opt (some int) None
    & info [ "segment-cap" ] ~docv:"K"
        ~doc:
          "persist as a segmented log store (a directory of capped ULOGv2 \
           chunk files under a manifest) with K records per segment")

let segment_scope =
  Arg.(
    value
    & opt (some int) None
    & info [ "segment" ] ~docv:"SEQ"
        ~doc:"scope the check to one chunk file of a segmented store")

let no_plans =
  Arg.(
    value
    & flag
    & info [ "no-plans" ]
        ~doc:
          "disable the compiled-statement-plan cache (outcomes are identical \
           either way; this exists for benchmarking)")

(* ---------- serve endpoint ---------- *)

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let tcp_port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (with $(b,--host))")

let tcp_host =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host for $(b,--port)")

let addr_of ~socket ~host ~port =
  match (socket, port) with
  | Some path, None -> Ok (Uv_retroactive.Serve.Unix_sock path)
  | None, Some p -> Ok (Uv_retroactive.Serve.Tcp (host, p))
  | None, None -> Error "an endpoint is required: --socket PATH or --port N"
  | Some _, Some _ -> Error "--socket and --port are mutually exclusive"

(* ---------- shared history loading ---------- *)

let exec_history eng path =
  let module Engine = Uv_db.Engine in
  let stmts = Uv_sql.Parser.parse_script (read_file path) in
  List.iter
    (fun s ->
      try ignore (Engine.exec eng s)
      with Engine.Sql_error msg ->
        Printf.eprintf "warning: statement failed (%s): %s\n" msg
          (Uv_sql.Printer.stmt_compact s))
    stmts

let load_history ?(checkpoint_every = 0) path =
  let module Engine = Uv_db.Engine in
  let eng = Engine.create () in
  if checkpoint_every > 0 then
    Engine.enable_checkpoints eng ~every:checkpoint_every;
  exec_history eng path;
  eng
