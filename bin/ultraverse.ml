(* The ultraverse command-line tool.

   Subcommands:
     transpile <app.js>                 — DSE-transpile every database-updating
                                          transaction and print the SQL procedures
     analyze <history.sql> --tau N      — dependency analysis for a retroactive
                                          target: replay set, mutated/consulted
     whatif <history.sql> --tau N ...   — run the retroactive operation and
                                          report the alternate universe
     workloads                          — list the bundled benchmarks *)

open Cmdliner
open Uv_db
open Uv_retroactive

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* transpile                                                            *)
(* ------------------------------------------------------------------ *)

let transpile_cmd =
  let run path verbose =
    let source = read_file path in
    let program = Uv_applang.Parser.parse_program source in
    let results = Uv_transpiler.Transpile.transpile_all ~program () in
    if results = [] then print_endline "no database-updating transactions found"
    else
      List.iter
        (fun (t : Uv_transpiler.Transpile.t) ->
          Printf.printf
            "-- %s: %d path(s), %d DSE run(s), %d unexplored stub(s)\n%s\n\n"
            t.Uv_transpiler.Transpile.txn_name t.Uv_transpiler.Transpile.paths
            t.Uv_transpiler.Transpile.runs t.Uv_transpiler.Transpile.unexplored
            (Uv_sql.Printer.stmt t.Uv_transpiler.Transpile.procedure);
          if verbose then
            print_endline
              (Uv_transpiler.Transpile.augmented_source program
                 t.Uv_transpiler.Transpile.txn_name))
        results;
    0
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"APP.JS"
           ~doc:"application source (MiniJS)")
  in
  let verbose =
    Arg.(value & flag & info [ "augmented" ] ~doc:"also print the augmented application code")
  in
  Cmd.v
    (Cmd.info "transpile"
       ~doc:"transpile application-level transactions into SQL procedures")
    Term.(const run $ path $ verbose)

(* ------------------------------------------------------------------ *)
(* shared: build an engine from a history script                        *)
(* ------------------------------------------------------------------ *)

let load_history path =
  let eng = Engine.create () in
  let stmts = Uv_sql.Parser.parse_script (read_file path) in
  List.iter
    (fun s ->
      try ignore (Engine.exec eng s)
      with Engine.Sql_error msg ->
        Printf.eprintf "warning: statement failed (%s): %s\n" msg
          (Uv_sql.Printer.stmt_compact s))
    stmts;
  eng

let parse_op op stmt_text =
  match (op, stmt_text) with
  | "remove", _ -> Analyzer.Remove
  | "add", Some sql -> Analyzer.Add (Uv_sql.Parser.parse_stmt sql)
  | "change", Some sql -> Analyzer.Change (Uv_sql.Parser.parse_stmt sql)
  | _ -> failwith "--op add/change requires --stmt"

(* ------------------------------------------------------------------ *)
(* analyze                                                              *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let run path tau op stmt_text dot explain =
    let eng = load_history path in
    let analyzer = Analyzer.analyze (Engine.log eng) in
    let target = { Analyzer.tau; op = parse_op op stmt_text } in
    let rs = Analyzer.replay_set analyzer target in
    Printf.printf "history:        %d statements\n" (Log.length (Engine.log eng));
    Printf.printf "replay set:     %d (column-only %d, row-only %d)\n"
      rs.Analyzer.member_count rs.Analyzer.col_only_count rs.Analyzer.row_only_count;
    Printf.printf "mutated:        %s\n" (String.concat ", " rs.Analyzer.mutated);
    Printf.printf "consulted:      %s\n" (String.concat ", " rs.Analyzer.consulted);
    print_endline "members:";
    Array.iteri
      (fun i m ->
        if m then
          Printf.printf "  Q%-5d %s\n" (i + 1)
            (Log.entry (Engine.log eng) (i + 1)).Log.sql)
      rs.Analyzer.members;
    if explain then begin
      print_endline "provenance:";
      let _, lines = Analyzer.explain_report analyzer target in
      List.iter (fun l -> print_endline ("  " ^ l)) lines
    end;
    (match dot with
    | Some out_path ->
        let oc = open_out out_path in
        output_string oc (Analyzer.to_dot analyzer ~members:rs.Analyzer.members);
        close_out oc;
        Printf.printf "conflict graph written to %s\n" out_path
    | None -> ());
    0
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"HISTORY.SQL")
  in
  let tau =
    Arg.(required & opt (some int) None & info [ "tau" ] ~doc:"target commit index")
  in
  let op =
    Arg.(value & opt string "remove" & info [ "op" ] ~doc:"remove | add | change")
  in
  let stmt_text =
    Arg.(value & opt (some string) None & info [ "stmt" ] ~doc:"statement for add/change")
  in
  let dot =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~doc:"write the replay conflict graph as Graphviz DOT")
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"print per-member provenance (which conflict pulled each \
                   statement into the replay set)")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"query dependency analysis for a retroactive target")
    Term.(const run $ path $ tau $ op $ stmt_text $ dot $ explain)

(* ------------------------------------------------------------------ *)
(* whatif                                                               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let whatif_cmd =
  let run path tau op stmt_text hash_jumper workers serial json query =
    let eng = load_history path in
    let analyzer = Analyzer.analyze (Engine.log eng) in
    let target = { Analyzer.tau; op = parse_op op stmt_text } in
    let config =
      Whatif.Config.make ~hash_jumper ~workers ~parallel_exec:(not serial) ()
    in
    let out = Whatif.run ~config ~analyzer eng target in
    if json then
      print_endline
        (Printf.sprintf
           "{\"schema\": \"uv.whatif/1\", \"history\": \"%s\", \"tau\": %d, \
            \"op\": \"%s\", \"replay_set\": %d, \"replayed\": %d, \"undone\": \
            %d, \"failed_replays\": %d, \"hash_jump_at\": %s, \"analysis_ms\": \
            %.3f, \"real_ms\": %.3f, \"serial_cost_ms\": %.3f, \
            \"simulated_parallel_ms\": %.3f, \"measured_parallel_ms\": %s, \
            \"workers\": %d, \"waves\": %d, \"changed\": %b, \
            \"final_db_hash\": \"%Lx\"}"
           (json_escape path) tau (json_escape (String.lowercase_ascii op))
           out.Whatif.replay.Analyzer.member_count out.Whatif.replayed
           out.Whatif.undone out.Whatif.failed_replays
           (match out.Whatif.hash_jump_at with
           | Some i -> string_of_int i
           | None -> "null")
           out.Whatif.analysis_ms out.Whatif.real_ms out.Whatif.serial_cost_ms
           out.Whatif.simulated_parallel_ms
           (match out.Whatif.measured_parallel_ms with
           | Some m -> Printf.sprintf "%.3f" m
           | None -> "null")
           out.Whatif.workers out.Whatif.exec_waves out.Whatif.changed
           out.Whatif.final_db_hash)
    else begin
      Printf.printf "replayed %d of %d statements (%d rolled back) in %.2f ms\n"
        out.Whatif.replayed
        (Log.length (Engine.log eng))
        out.Whatif.undone out.Whatif.real_ms;
      Printf.printf "serial cost %.2f ms, simulated parallel (%d workers) %.2f ms\n"
        out.Whatif.serial_cost_ms out.Whatif.workers
        out.Whatif.simulated_parallel_ms;
      (match out.Whatif.measured_parallel_ms with
      | Some m ->
          Printf.printf "measured parallel replay %.2f ms over %d waves\n" m
            out.Whatif.exec_waves
      | None -> print_endline "parallel replay: serial fallback");
      (match out.Whatif.hash_jump_at with
      | Some i -> Printf.printf "hash-hit at commit %d: the change is effectless\n" i
      | None -> ());
      Printf.printf "alternate universe %s the original\n"
        (if out.Whatif.changed then "DIFFERS from" else "equals")
    end;
    (match query with
    | None -> ()
    | Some q -> (
        match Uv_sql.Parser.parse_stmt q with
        | Uv_sql.Ast.Select sel ->
            let r = Whatif.query_new_universe out sel in
            print_endline (String.concat " | " r.Engine.columns);
            List.iter
              (fun row ->
                print_endline
                  (String.concat " | "
                     (Array.to_list (Array.map Uv_sql.Value.to_string row))))
              r.Engine.rows
        | _ -> prerr_endline "--query must be a SELECT"));
    0
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"HISTORY.SQL")
  in
  let tau =
    Arg.(required & opt (some int) None & info [ "tau" ] ~doc:"target commit index")
  in
  let op =
    Arg.(value & opt string "remove" & info [ "op" ] ~doc:"remove | add | change")
  in
  let stmt_text =
    Arg.(value & opt (some string) None & info [ "stmt" ] ~doc:"statement for add/change")
  in
  let hash_jumper =
    Arg.(value & flag & info [ "hash-jumper" ] ~doc:"enable early termination")
  in
  let workers =
    (* default to the host's available parallelism: extra domains beyond
       the core count only add GC-barrier overhead *)
    Arg.(value & opt int (Domain.recommended_domain_count ())
         & info [ "workers" ]
             ~doc:
               "parallel replay worker (domain) count (default: host \
                parallelism)")
  in
  let serial =
    Arg.(value & flag
         & info [ "serial" ]
             ~doc:"disable the parallel wave executor; replay serially")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the outcome as JSON")
  in
  let query =
    Arg.(value & opt (some string) None
         & info [ "query" ] ~doc:"SELECT to run against the alternate universe")
  in
  Cmd.v
    (Cmd.info "whatif" ~doc:"run a retroactive operation on a history")
    Term.(const run $ path $ tau $ op $ stmt_text $ hash_jumper $ workers
          $ serial $ json $ query)

(* ------------------------------------------------------------------ *)
(* lint                                                                 *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let run path json pass_names tau op stmt_text =
    let passes =
      match pass_names with
      | [] -> Ok Uv_analysis.Lint.all_passes
      | names ->
          List.fold_left
            (fun acc n ->
              match (acc, Uv_analysis.Lint.pass_of_string n) with
              | Error e, _ -> Error e
              | Ok ps, Some p -> Ok (ps @ [ p ])
              | Ok _, None -> Error n)
            (Ok []) names
    in
    match passes with
    | Error bad ->
        Printf.eprintf
          "unknown pass %S (available: nondet soundness cluster dead-write \
           coverage)\n"
          bad;
        2
    | Ok passes -> (
        match
          match tau with
          | None -> Ok None
          | Some tau -> (
              try Ok (Some { Analyzer.tau; op = parse_op op stmt_text })
              with Failure msg -> Error msg)
        with
        | Error msg ->
            prerr_endline msg;
            2
        | Ok target ->
        let eng = load_history path in
        let log = Engine.log eng in
        let history_diags = Uv_analysis.Lint.lint_log ~passes log in
        let target_diags =
          match target with
          | None -> []
          | Some t -> Uv_analysis.Lint.lint_target log t
        in
        let diags = history_diags @ target_diags in
        if json then print_endline (Uv_analysis.Diagnostic.json_report diags)
        else Format.printf "%a" Uv_analysis.Diagnostic.pp_report diags;
        if Uv_analysis.Diagnostic.errors diags = [] then 0 else 1)
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"HISTORY.SQL")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the report as JSON")
  in
  let pass_names =
    Arg.(value & opt_all string []
         & info [ "pass" ]
             ~doc:"run only the named pass (repeatable): nondet, soundness, \
                   cluster, dead-write, coverage")
  in
  let tau =
    Arg.(value & opt (some int) None
         & info [ "tau" ] ~doc:"also validate a retroactive target at this \
                                commit index")
  in
  let op =
    Arg.(value & opt string "remove" & info [ "op" ] ~doc:"remove | add | change")
  in
  let stmt_text =
    Arg.(value & opt (some string) None & info [ "stmt" ] ~doc:"statement for add/change")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"static soundness & eligibility checks over a history (exit 1 \
             if any error-level diagnostic fires)")
    Term.(const run $ path $ json $ pass_names $ tau $ op $ stmt_text)

(* ------------------------------------------------------------------ *)
(* workloads                                                            *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* log: durable statement-log tooling                                   *)
(* ------------------------------------------------------------------ *)

let log_save_cmd =
  let run history out =
    let eng = load_history history in
    Log_io.save (Engine.log eng) ~path:out;
    Printf.printf "%d records -> %s\n" (Log.length (Engine.log eng)) out;
    0
  in
  let history =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"HISTORY.SQL")
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ] ~doc:"destination ULOGv1 file")
  in
  Cmd.v
    (Cmd.info "save" ~doc:"execute a history and persist its durable log")
    Term.(const run $ history $ out)

let log_replay_cmd =
  let run path query =
    let records = Log_io.load ~path in
    let eng = Engine.create () in
    Log_io.replay eng records;
    Printf.printf "replayed %d records; db hash %Lx\n" (List.length records)
      (Engine.db_hash eng);
    (match query with
    | None -> ()
    | Some q ->
        let r = Engine.query_sql eng q in
        print_endline (String.concat " | " r.Engine.columns);
        List.iter
          (fun row ->
            print_endline
              (String.concat " | "
                 (Array.to_list (Array.map Uv_sql.Value.to_string row))))
          r.Engine.rows);
    0
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"LOG.ULOG")
  in
  let query =
    Arg.(value & opt (some string) None
         & info [ "query" ] ~doc:"SELECT to run against the rebuilt database")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"rebuild a database from a persisted log")
    Term.(const run $ path $ query)

let dump_cmd =
  let run history out =
    let eng = load_history history in
    Dump.save (Engine.catalog eng) ~path:out;
    Printf.printf "dumped %d tables -> %s
"
      (List.length (Catalog.tables (Engine.catalog eng)))
      out;
    0
  in
  let history =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"HISTORY.SQL")
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ] ~doc:"destination SQL dump file")
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"execute a history and write a logical dump (checkpoint)")
    Term.(const run $ history $ out)

let log_cmd =
  Cmd.group
    (Cmd.info "log" ~doc:"durable statement-log tooling (ULOGv1)")
    [ log_save_cmd; log_replay_cmd ]

let workloads_cmd =
  let run () =
    List.iter
      (fun (w : Uv_workloads.Workload.t) ->
        Printf.printf "%-10s mahif-comparable: %b\n" w.Uv_workloads.Workload.name
          w.Uv_workloads.Workload.mahif_capable)
      (Uv_workloads.Workload.all ());
    0
  in
  Cmd.v (Cmd.info "workloads" ~doc:"list bundled benchmarks") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "ultraverse" ~version:"1.0.0"
      ~doc:"what-if analysis for database-backed applications"
  in
  exit (Cmd.eval' (Cmd.group info [ transpile_cmd; analyze_cmd; whatif_cmd; lint_cmd; log_cmd; dump_cmd; workloads_cmd ]))
