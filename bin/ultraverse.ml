(* The ultraverse command-line tool.

   Subcommands:
     transpile <app.js>                 — DSE-transpile every database-updating
                                          transaction and print the SQL procedures
     analyze <history.sql> --tau N      — dependency analysis for a retroactive
                                          target: replay set, mutated/consulted
     whatif <history.sql> --tau N ...   — run the retroactive operation and
                                          report the alternate universe
     serve <history.sql> --socket S     — long-running multi-client what-if
                                          service (uv.serve/1 framed protocol)
     client ACTION --socket S           — talk to a running serve daemon
     workloads                          — list the bundled benchmarks

   Shared flags (--json, --workers, --deadline, --tau/--op/--stmt, …)
   live in Cli_args; subcommands compose those terms instead of
   re-declaring them. *)

open Cmdliner
open Uv_db
open Uv_retroactive

let read_file = Cli_args.read_file

(* ------------------------------------------------------------------ *)
(* transpile                                                            *)
(* ------------------------------------------------------------------ *)

let transpile_cmd =
  let run path verbose =
    let source = read_file path in
    let program = Uv_applang.Parser.parse_program source in
    let results = Uv_transpiler.Transpile.transpile_all ~program () in
    if results = [] then print_endline "no database-updating transactions found"
    else
      List.iter
        (fun (t : Uv_transpiler.Transpile.t) ->
          Printf.printf
            "-- %s: %d path(s), %d DSE run(s), %d unexplored stub(s)\n%s\n\n"
            t.Uv_transpiler.Transpile.txn_name t.Uv_transpiler.Transpile.paths
            t.Uv_transpiler.Transpile.runs t.Uv_transpiler.Transpile.unexplored
            (Uv_sql.Printer.stmt t.Uv_transpiler.Transpile.procedure);
          if verbose then
            print_endline
              (Uv_transpiler.Transpile.augmented_source program
                 t.Uv_transpiler.Transpile.txn_name))
        results;
    0
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"APP.JS"
           ~doc:"application source (MiniJS)")
  in
  let verbose =
    Arg.(value & flag & info [ "augmented" ] ~doc:"also print the augmented application code")
  in
  Cmd.v
    (Cmd.info "transpile"
       ~doc:"transpile application-level transactions into SQL procedures")
    Term.(const run $ path $ verbose)

(* ------------------------------------------------------------------ *)
(* shared: build an engine from a history script                        *)
(* ------------------------------------------------------------------ *)

let load_history = Cli_args.load_history
let parse_op = Cli_args.parse_op

(* ------------------------------------------------------------------ *)
(* analyze                                                              *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let run path tau op stmt_text dot explain =
    let eng = load_history path in
    let analyzer = Analyzer.analyze (Engine.log eng) in
    let target = { Analyzer.tau; op = parse_op op stmt_text } in
    let rs = Analyzer.replay_set analyzer target in
    Printf.printf "history:        %d statements\n" (Log.length (Engine.log eng));
    Printf.printf "replay set:     %d (column-only %d, row-only %d)\n"
      rs.Analyzer.member_count rs.Analyzer.col_only_count rs.Analyzer.row_only_count;
    Printf.printf "mutated:        %s\n" (String.concat ", " rs.Analyzer.mutated);
    Printf.printf "consulted:      %s\n" (String.concat ", " rs.Analyzer.consulted);
    print_endline "members:";
    Array.iteri
      (fun i m ->
        if m then
          Printf.printf "  Q%-5d %s\n" (i + 1)
            (Log.entry (Engine.log eng) (i + 1)).Log.sql)
      rs.Analyzer.members;
    if explain then begin
      print_endline "provenance:";
      let _, lines = Analyzer.explain_report analyzer target in
      List.iter (fun l -> print_endline ("  " ^ l)) lines
    end;
    (match dot with
    | Some out_path ->
        let oc = open_out out_path in
        output_string oc (Analyzer.to_dot analyzer ~members:rs.Analyzer.members);
        close_out oc;
        Printf.printf "conflict graph written to %s\n" out_path
    | None -> ());
    0
  in
  let dot =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~doc:"write the replay conflict graph as Graphviz DOT")
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"print per-member provenance (which conflict pulled each \
                   statement into the replay set)")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"query dependency analysis for a retroactive target")
    Term.(const run $ Cli_args.history_pos $ Cli_args.tau $ Cli_args.op
          $ Cli_args.stmt_text $ dot $ explain)

(* ------------------------------------------------------------------ *)
(* whatif                                                               *)
(* ------------------------------------------------------------------ *)

let cache_json (s : Whatif.Session.stats) =
  let module J = Uv_obs.Json in
  J.Obj
    [
      ("runs", J.Int s.Whatif.Session.runs);
      ("analyzer_builds", J.Int s.Whatif.Session.analyzer_builds);
      ("analyzer_extends", J.Int s.Whatif.Session.analyzer_extends);
      ("analyzed_entries", J.Int s.Whatif.Session.analyzed_entries);
      ("plan_cache_size", J.Int s.Whatif.Session.plan_cache_size);
      ("plans_compiled", J.Int s.Whatif.Session.plans_compiled);
      ("plan_cache_hits", J.Int s.Whatif.Session.plan_cache_hits);
      ("checkpoint_rungs", J.Int s.Whatif.Session.checkpoint_rungs);
      ("checkpoint_every", J.Int s.Whatif.Session.checkpoint_every);
    ]

let whatif_payload ~path ~tau ~op ~cache (out : Whatif.outcome) =
  let module J = Uv_obs.Json in
  J.Obj
    [
      ("history", J.Str path);
      ("tau", J.Int tau);
      ("op", J.Str (String.lowercase_ascii op));
      ("replay_set", J.Int out.Whatif.replay.Analyzer.member_count);
      ("replayed", J.Int out.Whatif.replayed);
      ("undone", J.Int out.Whatif.undone);
      ("failed_replays", J.Int out.Whatif.failed_replays);
      ( "hash_jump_at",
        match out.Whatif.hash_jump_at with Some i -> J.Int i | None -> J.Null );
      ("analysis_ms", J.Float out.Whatif.analysis_ms);
      ("real_ms", J.Float out.Whatif.real_ms);
      ("serial_cost_ms", J.Float out.Whatif.serial_cost_ms);
      ("simulated_parallel_ms", J.Float out.Whatif.simulated_parallel_ms);
      ( "measured_parallel_ms",
        match out.Whatif.measured_parallel_ms with
        | Some m -> J.Float m
        | None -> J.Null );
      ("workers", J.Int out.Whatif.workers);
      ("waves", J.Int out.Whatif.exec_waves);
      ("changed", J.Bool out.Whatif.changed);
      ("degraded", J.Bool out.Whatif.degraded);
      ("retries", J.Int out.Whatif.retries);
      ("rollback_strategy", J.Str out.Whatif.rollback_strategy);
      ("plans_used", J.Int out.Whatif.plans_used);
      ("cache", cache);
      ("aborted", J.Null);
      ("final_db_hash", J.Str (Printf.sprintf "%Lx" out.Whatif.final_db_hash));
      ( "phases",
        J.Obj (List.map (fun (n, ms) -> (n, J.Float ms)) out.Whatif.phases) );
    ]

(* the failure shape of uv.whatif/1: same envelope, [aborted] object
   instead of outcome fields *)
let whatif_abort_payload ~path ~tau ~op (e : Whatif.Error.t) =
  let module J = Uv_obs.Json in
  J.Obj
    [
      ("history", J.Str path);
      ("tau", J.Int tau);
      ("op", J.Str (String.lowercase_ascii op));
      ( "aborted",
        J.Obj
          [
            ("code", J.Str (Whatif.Error.code_name e.Whatif.Error.code));
            ("phase", J.Str e.Whatif.Error.phase);
            ("message", J.Str e.Whatif.Error.message);
          ] );
    ]

let whatif_cmd =
  let run path tau op stmt_text hash_jumper workers serial deadline json query
      trace metrics checkpoint_every repeat no_plans =
    let obs =
      if trace <> None || metrics then Uv_obs.Trace.create ()
      else Uv_obs.Trace.disabled
    in
    let eng = load_history ~checkpoint_every path in
    let target = { Analyzer.tau; op = parse_op op stmt_text } in
    let config =
      Whatif.Config.make ~hash_jumper ~workers ~parallel_exec:(not serial)
        ?deadline_ms:deadline ~obs ~checkpoint_every ~plans:(not no_plans) ()
    in
    (* a session so the analyzer, plan cache and checkpoint ladder amortize
       across --repeat runs of the same question *)
    let session = Whatif.Service.open_session @@ Whatif.Service.create ~config eng in
    let repeat = max 1 repeat in
    let result = ref (Whatif.Session.run session target) in
    for k = 2 to repeat do
      (match !result with
      | Ok out ->
          if not json then
            Printf.printf "run %d/%d: %.2f ms (rollback: %s, plans: %d)\n"
              (k - 1) repeat out.Whatif.real_ms out.Whatif.rollback_strategy
              out.Whatif.plans_used
      | Error _ -> ());
      result := Whatif.Session.run session target
    done;
    let result = !result in
    (match trace with
    | Some trace_path ->
        let oc = open_out trace_path in
        output_string oc (Uv_obs.Trace.chrome_string obs);
        output_char oc '\n';
        close_out oc;
        Printf.eprintf "trace written to %s\n" trace_path
    | None -> ());
    match result with
    | Error e ->
        if json then
          print_endline
            (Uv_obs.Report.to_string ~schema:"uv.whatif/1"
               (whatif_abort_payload ~path ~tau ~op e))
        else prerr_endline (Whatif.Error.to_string e);
        1
    | Ok out ->
    if json then
      print_endline
        (Uv_obs.Report.to_string ~schema:"uv.whatif/1"
           (whatif_payload ~path ~tau ~op
              ~cache:(cache_json (Whatif.Session.stats session))
              out))
    else begin
      Printf.printf "replayed %d of %d statements (%d rolled back) in %.2f ms\n"
        out.Whatif.replayed
        (Log.length (Engine.log eng))
        out.Whatif.undone out.Whatif.real_ms;
      Printf.printf "rollback strategy %s; %d member(s) ran a compiled plan\n"
        out.Whatif.rollback_strategy out.Whatif.plans_used;
      (let st = Whatif.Session.stats session in
       if st.Whatif.Session.checkpoint_rungs > 0 then
         Printf.printf "checkpoint ladder: %d rung(s), stride %d\n"
           st.Whatif.Session.checkpoint_rungs
           st.Whatif.Session.checkpoint_every);
      Printf.printf "serial cost %.2f ms, simulated parallel (%d workers) %.2f ms\n"
        out.Whatif.serial_cost_ms out.Whatif.workers
        out.Whatif.simulated_parallel_ms;
      (match out.Whatif.measured_parallel_ms with
      | Some m ->
          Printf.printf "measured parallel replay %.2f ms over %d waves\n" m
            out.Whatif.exec_waves
      | None -> print_endline "parallel replay: serial fallback");
      if out.Whatif.retries > 0 || out.Whatif.degraded then
        Printf.printf "fault recovery: %d retries%s\n" out.Whatif.retries
          (if out.Whatif.degraded then ", degraded to the caller lane" else "");
      (match out.Whatif.hash_jump_at with
      | Some i -> Printf.printf "hash-hit at commit %d: the change is effectless\n" i
      | None -> ());
      Printf.printf "alternate universe %s the original\n"
        (if out.Whatif.changed then "DIFFERS from" else "equals")
    end;
    if metrics then
      print_endline
        (Uv_obs.Report.to_string ~schema:"uv.metrics/1"
           (Uv_obs.Trace.metrics_payload obs));
    (match query with
    | None -> ()
    | Some q -> (
        match Uv_sql.Parser.parse_stmt q with
        | Uv_sql.Ast.Select sel ->
            let r = Whatif.query_new_universe out sel in
            print_endline (String.concat " | " r.Engine.columns);
            List.iter
              (fun row ->
                print_endline
                  (String.concat " | "
                     (Array.to_list (Array.map Uv_sql.Value.to_string row))))
              r.Engine.rows
        | _ -> prerr_endline "--query must be a SELECT"));
    0
  in
  let hash_jumper =
    Arg.(value & flag & info [ "hash-jumper" ] ~doc:"enable early termination")
  in
  let serial =
    Arg.(value & flag
         & info [ "serial" ]
             ~doc:"disable the parallel wave executor; replay serially")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"OUT.JSON"
             ~doc:"write a Chrome trace-event file of the run (open in \
                   chrome://tracing or Perfetto, or pretty-print with \
                   $(b,ultraverse trace))")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"print the run's counters and histograms as a uv.metrics/1 \
                   report")
  in
  let repeat =
    Arg.(value & opt int 1
         & info [ "repeat" ] ~docv:"N"
             ~doc:"ask the same what-if question N times through one cached \
                   session; later runs reuse the analyzer and compiled \
                   statement plans (cache statistics land in the JSON \
                   report)")
  in
  Cmd.v
    (Cmd.info "whatif" ~doc:"run a retroactive operation on a history")
    Term.(const run $ Cli_args.history_pos $ Cli_args.tau $ Cli_args.op
          $ Cli_args.stmt_text $ hash_jumper $ Cli_args.workers $ serial
          $ Cli_args.deadline $ Cli_args.json $ Cli_args.query $ trace
          $ metrics $ Cli_args.checkpoint_every $ repeat $ Cli_args.no_plans)

(* ------------------------------------------------------------------ *)
(* lint                                                                 *)
(* ------------------------------------------------------------------ *)

(* Template artifacts of a workload: extraction, matrix, fast-path match
   against an analyzed history. Shared by lint --workload and templates. *)
let template_artifacts (w : Uv_workloads.Workload.t) =
  let set =
    Uv_analysis.Template_extract.extract ~schema:w.Uv_workloads.Workload.schema_sql
      ~source:w.Uv_workloads.Workload.app_source ()
  in
  let matrix =
    Uv_analysis.Template_matrix.build ~config:w.Uv_workloads.Workload.ri_config
      set
  in
  (set, matrix)

(* Run a reproducible workload history for linting: raw mode so the log
   carries the application's SQL statements themselves. *)
let workload_history ?(seed = 7) ?(n = 120) (w : Uv_workloads.Workload.t) =
  let module W = Uv_workloads.Workload in
  let mode = Uv_transpiler.Runtime.Raw in
  let eng, rt = W.setup ~seed ~mode w in
  let prng = Uv_util.Prng.create seed in
  let calls = w.W.generate prng ~scale:1 ~n ~dep_rate:0.2 in
  ignore (W.run_history rt ~mode calls);
  eng

let print_lint_report ~format diags =
  match format with
  | "json" ->
      (* uv_analysis stays dependency-free: re-parse its hand-rolled
         report and wrap it in the versioned envelope *)
      let payload =
        match Uv_obs.Json.parse (Uv_analysis.Diagnostic.json_report diags) with
        | Ok j -> j
        | Error e -> failwith ("internal: lint report is not JSON: " ^ e)
      in
      print_endline (Uv_obs.Report.to_string ~schema:"uv.lint/1" payload)
  | "sarif" ->
      print_endline
        (Uv_analysis.Sarif.report ~tool_version:Uv_obs.Report.version diags)
  | _ -> Format.printf "%a" Uv_analysis.Diagnostic.pp_report diags

let lint_cmd =
  let run path workload n json format pass_names tau op stmt_text =
    let format = if json && format = "text" then "json" else format in
    if not (List.mem format [ "text"; "json"; "sarif" ]) then begin
      Printf.eprintf "unknown --format %S (text | json | sarif)\n" format;
      2
    end
    else
    let passes =
      match pass_names with
      | [] ->
          Ok
            (Uv_analysis.Lint.all_passes
            @ if workload <> None then Uv_analysis.Lint.template_passes else [])
      | names ->
          List.fold_left
            (fun acc nm ->
              match (acc, Uv_analysis.Lint.pass_of_string nm) with
              | Error e, _ -> Error e
              | Ok ps, Some p -> Ok (ps @ [ p ])
              | Ok _, None -> Error nm)
            (Ok []) names
    in
    match passes with
    | Error bad ->
        Printf.eprintf
          "unknown pass %S (available: nondet soundness cluster dead-write \
           coverage template-coverage matrix-soundness dynamic-sql \
           param-flow)\n"
          bad;
        2
    | Ok passes -> (
        match
          match tau with
          | None -> Ok None
          | Some tau -> (
              try Ok (Some { Analyzer.tau; op = parse_op op stmt_text })
              with Failure msg -> Error msg)
        with
        | Error msg ->
            prerr_endline msg;
            2
        | Ok target -> (
        let wanted_template =
          List.filter
            (fun p -> List.mem p Uv_analysis.Lint.template_passes)
            passes
        in
        match (path, workload) with
        | None, None | Some _, Some _ ->
            prerr_endline "lint needs a HISTORY.SQL or --workload (not both)";
            2
        | Some path, None ->
            if wanted_template <> [] && pass_names <> [] then
              prerr_endline
                "warning: template passes need --workload (application \
                 sources); skipped";
            let eng = load_history path in
            let log = Engine.log eng in
            let history_diags = Uv_analysis.Lint.lint_log ~passes log in
            let target_diags =
              match target with
              | None -> []
              | Some t -> Uv_analysis.Lint.lint_target log t
            in
            let diags = history_diags @ target_diags in
            print_lint_report ~format diags;
            if Uv_analysis.Diagnostic.errors diags = [] then 0 else 1
        | None, Some wname ->
            let w = Uv_workloads.Workload.by_name wname in
            let eng = workload_history ~n w in
            let log = Engine.log eng in
            let base = Engine.catalog eng in
            let history_diags = Uv_analysis.Lint.lint_log ~base ~passes log in
            let template_diags =
              if wanted_template = [] then []
              else begin
                let anl =
                  Analyzer.analyze
                    ~config:w.Uv_workloads.Workload.ri_config ~base log
                in
                let set, matrix = template_artifacts w in
                let fast =
                  Uv_analysis.Template_fastpath.prepare ~log ~set ~matrix anl
                in
                let ctx =
                  {
                    Uv_analysis.Lint.tset = set;
                    tmatrix = matrix;
                    tfast = fast;
                    tsource = Some w.Uv_workloads.Workload.app_source;
                  }
                in
                Uv_analysis.Lint.lint_templates ~passes:wanted_template ~ctx
                  anl
              end
            in
            let target_diags =
              match target with
              | None -> []
              | Some t -> Uv_analysis.Lint.lint_target ~base log t
            in
            let diags = history_diags @ template_diags @ target_diags in
            print_lint_report ~format diags;
            if Uv_analysis.Diagnostic.errors diags = [] then 0 else 1))
  in
  let workload =
    Arg.(value & opt (some string) None
         & info [ "workload" ] ~docv:"NAME"
             ~doc:"lint a generated history of the named bundled benchmark \
                   instead of a history file; enables the template passes \
                   (UVA014–UVA017)")
  in
  let n =
    Arg.(value & opt int 120
         & info [ "n" ] ~doc:"transaction count for $(b,--workload) histories")
  in
  let format =
    Arg.(value & opt string "text"
         & info [ "format" ] ~docv:"FMT" ~doc:"text | json | sarif")
  in
  let pass_names =
    Arg.(value & opt_all string []
         & info [ "pass" ]
             ~doc:"run only the named pass (repeatable): nondet, soundness, \
                   cluster, dead-write, coverage, template-coverage, \
                   matrix-soundness, dynamic-sql, param-flow")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"static soundness & eligibility checks over a history (exit 1 \
             if any error-level diagnostic fires)")
    Term.(const run $ Cli_args.history_pos_opt $ workload $ n $ Cli_args.json
          $ format $ pass_names $ Cli_args.tau_opt $ Cli_args.op
          $ Cli_args.stmt_text)

(* ------------------------------------------------------------------ *)
(* templates                                                            *)
(* ------------------------------------------------------------------ *)

let templates_cmd =
  let module T = Uv_analysis.Template_extract in
  let module M = Uv_analysis.Template_matrix in
  let module J = Uv_obs.Json in
  let run workload app schema json =
    match
      match (workload, app, schema) with
      | Some wname, None, None ->
          let w = Uv_workloads.Workload.by_name wname in
          Ok
            ( w.Uv_workloads.Workload.name,
              w.Uv_workloads.Workload.schema_sql,
              w.Uv_workloads.Workload.app_source,
              w.Uv_workloads.Workload.ri_config )
      | None, Some app_path, Some schema_path ->
          Ok
            ( Filename.basename app_path,
              read_file schema_path,
              read_file app_path,
              Rowset.default_config )
      | _ -> Error "templates needs --workload NAME, or --app and --schema"
    with
    | Error msg ->
        prerr_endline msg;
        2
    | Ok (name, schema_sql, source, config) ->
        let set = T.extract ~schema:schema_sql ~source () in
        let matrix = M.build ~config set in
        let pairs = M.all_pairs matrix in
        let kind_label = function T.Kstmt -> "stmt" | T.Kcall -> "call" in
        if json then begin
          let template_json (tpl : T.template) =
            J.Obj
              [
                ("id", J.Int tpl.T.id);
                ("txn", J.Str tpl.T.txn);
                ("kind", J.Str (kind_label tpl.T.kind));
                ("sql", J.Str (Uv_sql.Printer.stmt_compact tpl.T.stmt));
                ( "slots",
                  J.List
                    (List.map
                       (fun (slot, src) ->
                         J.Obj
                           [
                             ("name", J.Str slot);
                             ("source", J.Str (T.source_label src));
                           ])
                       tpl.T.slots) );
                ( "guards",
                  J.List
                    (List.map
                       (fun (table, (g : M.guard)) ->
                         J.Obj
                           [
                             ("table", J.Str table);
                             ("column", J.Str g.M.gcol);
                             ("source", J.Str (M.gsource_label g.M.gsrc));
                           ])
                       (M.guards matrix tpl.T.id)) );
              ]
          in
          let pair_json ((a, b), (p : M.pair)) =
            J.Obj
              [
                ("a", J.Int a);
                ("b", J.Int b);
                ("ww", J.List (List.map (fun c -> J.Str c) p.M.ww));
                ("wr", J.List (List.map (fun c -> J.Str c) p.M.wr));
                ("rw", J.List (List.map (fun c -> J.Str c) p.M.rw));
                ("prunable", J.Bool p.M.prunable);
              ]
          in
          let payload =
            J.Obj
              [
                ("source", J.Str name);
                ( "txns",
                  J.List
                    (List.map
                       (fun (txn, unexplored) ->
                         J.Obj
                           [
                             ("name", J.Str txn);
                             ("unexplored", J.Int unexplored);
                           ])
                       (T.txns set)) );
                ("templates", J.List (List.map template_json (T.templates set)));
                ("matrix", J.List (List.map pair_json pairs));
                ( "stats",
                  J.Obj
                    [
                      ("templates", J.Int (List.length (T.templates set)));
                      ("pairs", J.Int (List.length pairs));
                      ( "prunable_pairs",
                        J.Int
                          (List.length
                             (List.filter
                                (fun (_, (p : M.pair)) -> p.M.prunable)
                                pairs)) );
                    ] );
              ]
          in
          print_endline
            (Uv_obs.Report.to_string ~schema:"uv.templates/1" payload)
        end
        else begin
          Printf.printf "%s: %d transaction(s), %d template(s)\n" name
            (List.length (T.txns set))
            (List.length (T.templates set));
          List.iter
            (fun (tpl : T.template) ->
              Printf.printf "T%-3d %-5s [%s] %s\n" tpl.T.id
                (kind_label tpl.T.kind) tpl.T.txn
                (Uv_sql.Printer.stmt_compact tpl.T.stmt);
              List.iter
                (fun (table, (g : M.guard)) ->
                  Printf.printf "       guard %s.%s %s\n" table g.M.gcol
                    (M.gsource_label g.M.gsrc))
                (M.guards matrix tpl.T.id))
            (T.templates set);
          Printf.printf "matrix: %d conflicting pair(s), %d prunable\n"
            (List.length pairs)
            (List.length
               (List.filter (fun (_, (p : M.pair)) -> p.M.prunable) pairs));
          List.iter
            (fun ((a, b), (p : M.pair)) ->
              Printf.printf "  T%d-T%d%s ww{%s} wr{%s} rw{%s}\n" a b
                (if p.M.prunable then " [prunable]" else "")
                (String.concat " " p.M.ww)
                (String.concat " " p.M.wr)
                (String.concat " " p.M.rw))
            pairs
        end;
        0
  in
  let workload =
    Arg.(value & opt (some string) None
         & info [ "workload" ] ~docv:"NAME" ~doc:"a bundled benchmark")
  in
  let app_arg =
    Arg.(value & opt (some file) None
         & info [ "app" ] ~docv:"APP.JS" ~doc:"application source (MiniJS)")
  in
  let schema_arg =
    Arg.(value & opt (some file) None
         & info [ "schema" ] ~docv:"SCHEMA.SQL" ~doc:"schema DDL script")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"emit a uv.templates/1 report envelope")
  in
  Cmd.v
    (Cmd.info "templates"
       ~doc:"extract the closed query-template set of an application and \
             print the column-wise template-pair dependency matrix")
    Term.(const run $ workload $ app_arg $ schema_arg $ json)

(* ------------------------------------------------------------------ *)
(* serve / client                                                       *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let run path socket host port store_dir sync_every sync_ms pool_workers
      replay_workers queue_capacity max_clients deadline checkpoint_every
      no_plans json =
    match Cli_args.addr_of ~socket ~host ~port with
    | Error msg ->
        prerr_endline msg;
        2
    | Ok _ when path = None && store_dir = None ->
        prerr_endline "serve: a HISTORY.SQL argument or --store DIR is required";
        2
    | Ok addr ->
        let obs = Uv_obs.Trace.create () in
        let eng = Uv_db.Engine.create () in
        if checkpoint_every > 0 then
          Uv_db.Engine.enable_checkpoints eng ~every:checkpoint_every;
        (* with --store, the store is the source of truth: the engine is
           rebuilt from the salvaged acknowledged prefix, and HISTORY.SQL
           only seeds a store that is still empty *)
        let durable =
          match store_dir with
          | None ->
              Option.iter (fun p -> Cli_args.exec_history eng p) path;
              None
          | Some dir ->
              let dcfg =
                {
                  Uv_retroactive.Durable.default_config with
                  Uv_retroactive.Durable.sync_every;
                  sync_ms;
                }
              in
              let dur, recovery =
                Uv_retroactive.Durable.attach ~config:dcfg ~dir eng
              in
              let module D = Uv_retroactive.Durable in
              (match (recovery.D.rec_records, path) with
              | 0, Some p ->
                  Cli_args.exec_history eng p;
                  D.seed dur
              | n, Some p when n > 0 ->
                  Printf.eprintf
                    "warning: store %s already holds %d records; %s ignored\n"
                    dir n p
              | _ -> ());
              if not json then begin
                Printf.printf
                  "recovered %d records from %s (%d truncated as \
                   unacknowledged, %d idempotency keys%s)\n"
                  recovery.D.rec_records dir recovery.D.rec_truncated
                  recovery.D.rec_keys
                  (if recovery.D.rec_salvaged then "; store needed salvage"
                   else "");
                flush stdout
              end;
              Some dur
        in
        let config =
          Whatif.Config.make ~workers:replay_workers ~obs ~checkpoint_every
            ~plans:(not no_plans) ()
        in
        let service = Whatif.Service.create ~config eng in
        (* analyze the loaded history up front so the first client
           request pays O(Δ), not O(history) *)
        Whatif.Service.publish service;
        let scfg =
          {
            Serve.default_config with
            Serve.workers = pool_workers;
            queue_capacity;
            max_clients;
            default_deadline_ms = deadline;
          }
        in
        let srv = Serve.start ~config:scfg ~obs ?durable service addr in
        let endpoint =
          match addr with
          | Serve.Unix_sock p -> "unix:" ^ p
          | Serve.Tcp (h, _) ->
              Printf.sprintf "tcp:%s:%d" h
                (Option.value (Serve.port srv) ~default:0)
        in
        let module J = Uv_obs.Json in
        if json then
          print_endline
            (Uv_obs.Report.to_string ~schema:"uv.serve/1"
               (J.Obj
                  [
                    ("type", J.Str "listening");
                    ("endpoint", J.Str endpoint);
                    ("history_len", J.Int (Whatif.Service.history_len service));
                    ("workers", J.Int pool_workers);
                    ("queue_capacity", J.Int queue_capacity);
                    ("max_clients", J.Int max_clients);
                  ]))
        else
          Printf.printf
            "serving %d statements on %s (%d what-if workers, queue %d, up \
             to %d clients)\n"
            (Whatif.Service.history_len service)
            endpoint pool_workers queue_capacity max_clients;
        flush stdout;
        let on_signal _ = Serve.request_stop srv in
        Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
        Serve.wait srv;
        Serve.stop srv;
        if not json then print_endline "stopped";
        0
  in
  let pool_workers =
    Arg.(
      value & opt int Serve.default_config.Serve.workers
      & info [ "workers" ]
          ~doc:"concurrent what-if worker domains draining the request queue")
  in
  let replay_workers =
    Arg.(
      value & opt int 2
      & info [ "replay-workers" ]
          ~doc:
            "parallel replay domains per what-if run (total transient \
             domains ≈ workers × replay-workers; outcomes are identical at \
             any value)")
  in
  let queue_capacity =
    Arg.(
      value & opt int Serve.default_config.Serve.queue_capacity
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:
            "queued what-ifs admitted before requests are rejected with a \
             typed saturated error carrying retry_after_ms")
  in
  let max_clients =
    Arg.(
      value & opt int Serve.default_config.Serve.max_clients
      & info [ "max-clients" ] ~doc:"concurrent client connections")
  in
  let store_dir =
    Arg.(
      value & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "durable history store: ingest acknowledgments are withheld \
             until the batch is fsynced here, and on startup the daemon \
             recovers the acknowledged history from it (HISTORY.SQL then \
             only seeds an empty store)")
  in
  let sync_every =
    Arg.(
      value & opt int 1
      & info [ "sync-every" ] ~docv:"N"
          ~doc:
            "group-commit width: flush as soon as N ingest batches are \
             pending (1 = sync every batch)")
  in
  let sync_ms =
    Arg.(
      value & opt float 0.
      & info [ "sync-ms" ] ~docv:"MS"
          ~doc:
            "group-commit window: a batch waits at most MS milliseconds \
             for companions before the flush runs (0 = no window)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "serve what-if questions to concurrent clients over a framed \
          uv.serve/1 socket protocol while ingesting new transactions \
          (stop with SIGINT or a client shutdown request)")
    Term.(const run $ Cli_args.history_pos_opt $ Cli_args.socket
          $ Cli_args.tcp_host $ Cli_args.tcp_port $ store_dir $ sync_every
          $ sync_ms $ pool_workers $ replay_workers $ queue_capacity
          $ max_clients $ Cli_args.deadline $ Cli_args.checkpoint_every
          $ Cli_args.no_plans $ Cli_args.json)

let client_cmd =
  let module J = Uv_obs.Json in
  let run action socket host port tau op stmt_text deadline sql idem_key
      retries json =
    match Cli_args.addr_of ~socket ~host ~port with
    | Error msg ->
        prerr_endline msg;
        2
    | Ok addr -> (
        (* every action reduces to one request payload; the transport —
           single connection or bounded retry with reconnect — is chosen
           by --retries *)
        let payload =
          match action with
          | "ping" | "stats" | "metrics" | "health" | "shutdown" ->
              Ok (J.Obj [ ("type", J.Str action) ])
          | "ingest" -> (
              match sql with
              | Some sql ->
                  Ok (Serve.Client.ingest_payload ?idem_key sql)
              | None -> Error "ingest needs --sql")
          | "whatif" -> (
              match tau with
              | Some tau ->
                  Ok
                    (Serve.Client.whatif_payload ?deadline_ms:deadline ~tau
                       ~op ?stmt:stmt_text ())
              | None -> Error "whatif needs --tau")
          | a -> Error (Printf.sprintf "unknown action %S" a)
        in
        let result, attempts =
          match payload with
          | Error e -> (Error e, 0)
          | Ok payload ->
              if retries > 0 then
                let r, attempts =
                  Serve.Client.call_retry ~retries addr payload
                in
                (Result.map_error Serve.Client.error_to_string r, attempts)
              else
                ( (match
                     let c = Serve.Client.connect addr in
                     Fun.protect
                       ~finally:(fun () -> Serve.Client.close c)
                       (fun () -> Serve.Client.call c payload)
                   with
                  | r -> r
                  | exception Unix.Unix_error (e, _, _) ->
                      Error (Unix.error_message e)),
                  1 )
        in
        let note_attempts () =
          if retries > 0 && not json then
            Printf.printf "(%d attempt%s)\n" attempts
              (if attempts = 1 then "" else "s")
        in
        match result with
        | Error e ->
            prerr_endline ("client: " ^ e);
            if retries > 0 then
              Printf.eprintf "(%d attempt%s)\n" attempts
                (if attempts = 1 then "" else "s");
            2
        | Ok (Serve.Client.Refused { code; message; retry_after_ms; phase }) ->
            if json then
              print_endline
                (Uv_obs.Report.to_string ~schema:"uv.serve/1"
                   (J.Obj
                      ([
                         ("ok", J.Bool false);
                         ("type", J.Str action);
                         ("code", J.Str code);
                         ("message", J.Str message);
                       ]
                      @ (match retry_after_ms with
                        | Some ms -> [ ("retry_after_ms", J.Float ms) ]
                        | None -> [])
                      @ (match phase with
                        | Some p -> [ ("phase", J.Str p) ]
                        | None -> [])
                      @
                      if retries > 0 then [ ("attempts", J.Int attempts) ]
                      else [])))
            else begin
              Printf.eprintf "refused [%s]%s: %s%s\n" code
                (match phase with Some p -> " in " ^ p | None -> "")
                message
                (match retry_after_ms with
                | Some ms -> Printf.sprintf " (retry after %.0f ms)" ms
                | None -> "");
              note_attempts ()
            end;
            1
        | Ok (Serve.Client.Result payload) ->
            (* metrics answers with a uv.metrics/1 payload; re-envelope
               it under its own schema so scrapers see the registry *)
            let schema =
              if action = "metrics" then "uv.metrics/1" else "uv.serve/1"
            in
            let payload =
              match payload with
              | J.Obj fields when json && retries > 0 && action <> "metrics" ->
                  J.Obj (fields @ [ ("attempts", J.Int attempts) ])
              | p -> p
            in
            if json then
              print_endline (Uv_obs.Report.to_string ~schema payload)
            else begin
              print_endline (J.pretty payload);
              note_attempts ()
            end;
            0)
  in
  let action =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ACTION"
          ~doc:"ping | stats | metrics | health | whatif | ingest | shutdown")
  in
  let sql =
    Arg.(
      value
      & opt (some string) None
      & info [ "sql" ] ~doc:"SQL script to ingest (for $(b,ingest))")
  in
  let idem_key =
    Arg.(
      value
      & opt (some string) None
      & info [ "idem-key" ] ~docv:"KEY"
          ~doc:
            "idempotency key for $(b,ingest): the server deduplicates \
             re-sends under the same key, making retries after a lost \
             acknowledgment safe")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "retry the request up to N times on connection resets and \
             saturated refusals (exponential backoff with jitter; \
             deadline refusals are never retried); the attempt count is \
             reported in the output")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"one-shot client for a running $(b,ultraverse serve) daemon")
    Term.(const run $ action $ Cli_args.socket $ Cli_args.tcp_host
          $ Cli_args.tcp_port $ Cli_args.tau_opt $ Cli_args.op
          $ Cli_args.stmt_text $ Cli_args.deadline $ sql $ idem_key
          $ retries $ Cli_args.json)

(* ------------------------------------------------------------------ *)
(* workloads                                                            *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* log: durable statement-log tooling                                   *)
(* ------------------------------------------------------------------ *)

let log_save_cmd =
  let run history out segment_cap =
    let eng = load_history history in
    let as_store =
      segment_cap <> None || (Sys.file_exists out && Sys.is_directory out)
    in
    if as_store then begin
      let store = Log_store.open_ ?segment_cap out in
      Log_store.append_log store (Engine.log eng);
      Log_store.close store;
      Printf.printf "%d records -> %s (segmented store, cap %d)\n"
        (Log.length (Engine.log eng))
        out
        (Log_store.segment_cap store)
    end
    else begin
      Log_store.save_log_file (Engine.log eng) ~path:out;
      Printf.printf "%d records -> %s\n" (Log.length (Engine.log eng)) out
    end;
    0
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ]
             ~doc:"destination ULOGv2 file, or store directory with \
                   $(b,--segment-cap)")
  in
  Cmd.v
    (Cmd.info "save" ~doc:"execute a history and persist its durable log")
    Term.(const run $ Cli_args.history_pos $ out $ Cli_args.segment_cap)

let log_replay_cmd =
  let run path query =
    let eng = Engine.create () in
    let replayed, skipped =
      if Log_store.is_store path then begin
        let store = Log_store.open_ path in
        let skipped = Log_store.replay store eng in
        let n = Log_store.length store in
        Log_store.close store;
        (n, skipped)
      end
      else
        let records = Log_store.load_log_file ~path in
        (List.length records, Log_io.replay eng records)
    in
    Printf.printf "replayed %d records; db hash %Lx\n" replayed
      (Engine.db_hash eng);
    if skipped <> [] then
      Printf.printf "skipped %d record(s): %s\n" (List.length skipped)
        (String.concat ", " (List.map string_of_int skipped));
    (match query with
    | None -> ()
    | Some q ->
        let r = Engine.query_sql eng q in
        print_endline (String.concat " | " r.Engine.columns);
        List.iter
          (fun row ->
            print_endline
              (String.concat " | "
                 (Array.to_list (Array.map Uv_sql.Value.to_string row))))
          r.Engine.rows);
    0
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"LOG.ULOG")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"rebuild a database from a persisted log")
    Term.(const run $ path $ Cli_args.query)

let dump_cmd =
  let run history out checkpoints checkpoint_every =
    let checkpoint_every =
      if checkpoints <> None && checkpoint_every <= 0 then 64
      else checkpoint_every
    in
    let eng = load_history ~checkpoint_every history in
    Log_store.save_dump_file (Engine.catalog eng) ~path:out;
    Printf.printf "dumped %d tables -> %s\n"
      (List.length (Catalog.tables (Engine.catalog eng)))
      out;
    (match (checkpoints, Engine.checkpoints eng) with
    | Some cp_path, Some ladder ->
        Log_store.save_checkpoints_file ladder ~path:cp_path;
        Printf.printf "checkpoint ladder (%d rungs) -> %s\n"
          (Checkpoint.count ladder) cp_path
    | Some cp_path, None ->
        Printf.printf "checkpoint ladder empty; %s not written\n" cp_path
    | None, _ -> ());
    0
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ] ~doc:"destination SQL dump file")
  in
  let checkpoints =
    Arg.(value & opt (some string) None
         & info [ "checkpoints" ] ~docv:"OUT.UCKP"
             ~doc:"also write the periodic checkpoint ladder recorded while \
                   executing the history (UCKPv1)")
  in
  let checkpoint_every =
    Arg.(value & opt int 0
         & info [ "checkpoint-every" ] ~docv:"K"
             ~doc:"rung stride for $(b,--checkpoints) (default 64)")
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"execute a history and write a logical dump (checkpoint)")
    Term.(const run $ Cli_args.history_pos $ out $ checkpoints $ checkpoint_every)

let log_cmd =
  Cmd.group
    (Cmd.info "log" ~doc:"durable statement-log tooling (ULOGv2)")
    [ log_save_cmd; log_replay_cmd ]

(* ------------------------------------------------------------------ *)
(* fsck / recover: crash-consistency tooling                            *)
(* ------------------------------------------------------------------ *)

let is_uckp path =
  if Sys.is_directory path then false
  else
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try really_input_string ic 6 = "UCKPv1" with End_of_file -> false)

let fsck_cmd =
  let module D = Uv_analysis.Diagnostic in
  (* checkpoint-ladder files get their own validation: framing, per-rung
     CRC, and a restore dry-run of every rung *)
  let run_uckp path json =
    let diags =
      match Log_store.load_checkpoints_file ~path with
      | rungs ->
          Printf.ksprintf
            (fun s -> if not json then print_endline s)
            "%s: UCKPv1, %d rung(s)%s" path (List.length rungs)
            (match rungs with
            | [] -> ""
            | _ ->
                Printf.sprintf " (commits %s)"
                  (String.concat ", "
                     (List.map (fun (at, _) -> string_of_int at) rungs)));
          []
      | exception Log_store.Error err ->
          let msg =
            match err with
            | Log_store.Store_error.Corrupt_checkpoints { reason; _ } -> reason
            | e -> Log_store.Store_error.to_string e
          in
          [
            D.make ~index:1 ~obj:path ~code:"UVA013" ~severity:D.Error
              ~pass:"fsck"
              (Printf.sprintf "checkpoint ladder damaged: %s" msg);
          ]
    in
    if json then begin
      let payload =
        match Uv_obs.Json.parse (D.json_report diags) with
        | Ok j -> j
        | Error e -> failwith ("internal: fsck report is not JSON: " ^ e)
      in
      print_endline (Uv_obs.Report.to_string ~schema:"uv.lint/1" payload)
    end
    else Format.printf "%a" D.pp_report diags;
    if D.errors diags = [] then 0 else 1
  in
  let emit path json diags summary =
    if json then begin
      let payload =
        match Uv_obs.Json.parse (D.json_report diags) with
        | Ok j -> j
        | Error e -> failwith ("internal: fsck report is not JSON: " ^ e)
      in
      print_endline (Uv_obs.Report.to_string ~schema:"uv.lint/1" payload)
    end
    else begin
      (match summary with Some s -> print_endline (path ^ ": " ^ s) | None -> ());
      Format.printf "%a" D.pp_report diags
    end;
    if D.errors diags = [] then 0 else 1
  in
  let replay_diags path replay =
    (* replay check: the salvaged prefix must rebuild from an empty
       database — records that fail indicate a non-self-contained log
       (e.g. the tail of a checkpointed history) *)
    List.map
      (fun i ->
        D.make ~index:i ~obj:path ~code:"UVA012" ~severity:D.Warning
          ~pass:"fsck"
          (Printf.sprintf "record %d does not replay on a fresh database" i))
      (replay (Engine.create ()))
  in
  (* a segmented store: every diagnostic byte offset is relative to the
     chunk file it names, and --segment scopes the check to one chunk *)
  let run_store path segment json =
    match Log_store.open_ path with
    | exception Log_store.Error err ->
        let offset, reason =
          match err with
          | Log_store.Store_error.Corrupt_manifest { offset; reason; _ } ->
              (offset, reason)
          | e -> (0, Log_store.Store_error.to_string e)
        in
        emit path json
          [
            D.make ~index:1 ~obj:path ~code:"UVA011" ~severity:D.Error
              ~pass:"fsck"
              (Printf.sprintf "store manifest damaged at byte %d (%s)" offset
                 reason);
          ]
          None
    | store ->
        let checks = Log_store.verify ?segment store in
        let structural =
          List.filter_map
            (fun (c : Log_store.check) ->
              Option.map
                (fun (d : Log_io.diagnosis) ->
                  D.make ~index:c.Log_store.chk_segment
                    ~obj:(Filename.concat path c.Log_store.chk_file)
                    ~code:"UVA011" ~severity:D.Error ~pass:"fsck"
                    (Printf.sprintf
                       "segment %d damaged at byte %d of %d (%s); %d valid \
                        record(s) precede the cut"
                       c.Log_store.chk_segment
                       (Option.value d.Log_io.cut_at ~default:0)
                       d.Log_io.total_bytes
                       (Option.value d.Log_io.reason ~default:"unknown damage")
                       c.Log_store.chk_records))
                c.Log_store.chk_diag)
            checks
        in
        let ladder_diags =
          if segment <> None then []
          else
            match Log_store.read_checkpoints store with
            | _ -> []
            | exception Log_store.Error err ->
                [
                  D.make ~index:1 ~obj:path ~code:"UVA013" ~severity:D.Error
                    ~pass:"fsck"
                    (Printf.sprintf "checkpoint ladder damaged: %s"
                       (Log_store.Store_error.to_string err));
                ]
        in
        let replay =
          (* the replay dry-run streams the salvaged prefix; skipped when
             the check is scoped to one segment (a mid-history chunk is
             not self-contained by construction) *)
          if segment <> None then []
          else if structural = [] then
            replay_diags path (fun eng -> Log_store.replay store eng)
          else
            let salvaged, _ = Log_store.open_salvage path in
            replay_diags path (fun eng -> Log_store.replay salvaged eng)
        in
        let diags = structural @ ladder_diags @ replay in
        let summary =
          Printf.sprintf "ULSTv1, %d segment(s), %d record(s)%s"
            (List.length (Log_store.segments store))
            (Log_store.length store)
            (if structural = [] then ", clean"
             else
               Printf.sprintf ", %d damaged segment(s)"
                 (List.length structural))
        in
        Log_store.close store;
        emit path json diags (Some summary)
  in
  let run path segment json =
    if Log_store.is_store path then run_store path segment json
    else if is_uckp path then run_uckp path json
    else
      let records, diag = Log_store.salvage_log_file ~path in
      let structural =
        match diag.Log_io.cut_at with
        | None -> []
        | Some off ->
            [
              D.make ~index:(diag.Log_io.valid_records + 1) ~obj:path
                ~code:"UVA011" ~severity:D.Error ~pass:"fsck"
                (Printf.sprintf
                   "log damaged at byte %d of %d (%s); %d valid record(s) \
                    precede the cut"
                   off diag.Log_io.total_bytes
                   (Option.value diag.Log_io.reason ~default:"unknown damage")
                   diag.Log_io.valid_records);
            ]
      in
      let diags = structural @ replay_diags path (fun eng -> Log_io.replay eng records) in
      emit path json diags
        (Some
           (Printf.sprintf "ULOGv%d, %d bytes, %d valid record(s)%s"
              diag.Log_io.version diag.Log_io.total_bytes
              diag.Log_io.valid_records
              (match diag.Log_io.cut_at with
              | None -> ", clean"
              | Some off -> Printf.sprintf ", damaged at byte %d" off)))
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"LOG.ULOG")
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"check a persisted statement log (single ULOGv2 file or \
             segmented store directory): framing, per-record and \
             per-segment checksums, and a replay dry-run (exit 1 if the \
             log is damaged); $(b,--segment) scopes a store check to one \
             chunk file")
    Term.(const run $ path $ Cli_args.segment_scope $ Cli_args.json)

let recover_cmd =
  let run path checkpoint out segment_cap query =
    let eng = Engine.create () in
    (* the checkpoint (a logical dump) replays first; its statements land
       in the engine's log too, so a log written with --out is a complete,
       self-contained history *)
    (match checkpoint with
    | Some cp when is_uckp cp -> (
        (* a checkpoint ladder: restore the newest rung as the base state *)
        match List.rev (Log_store.load_checkpoints_file ~path:cp) with
        | (at, cat) :: _ ->
            Dump.restore eng (Dump.to_sql cat);
            Printf.printf "restored checkpoint rung at commit %d\n" at
        | [] -> ())
    | Some cp -> Log_store.load_dump_file eng ~path:cp
    | None -> ());
    let total, skipped, cut =
      if Log_store.is_store path then begin
        let store, report = Log_store.open_salvage path in
        let skipped = Log_store.replay store eng in
        let n = Log_store.length store in
        let cut =
          match (report.Log_store.sr_cut_segment, report.Log_store.sr_cut_at)
          with
          | Some seg, Some off ->
              Some
                (Printf.sprintf "segment %d cut at byte %d: %s" seg off
                   (Option.value report.Log_store.sr_reason
                      ~default:"unknown damage"))
          | _ ->
              if report.Log_store.sr_manifest_rebuilt then
                Some "manifest rebuilt from segment files"
              else None
        in
        (n, skipped, cut)
      end
      else begin
        let records, diag = Log_store.salvage_log_file ~path in
        let skipped = Log_io.replay eng records in
        let cut =
          Option.map
            (fun off ->
              Printf.sprintf "tail cut at byte %d: %s" off
                (Option.value diag.Log_io.reason ~default:"unknown damage"))
            diag.Log_io.cut_at
        in
        (List.length records, skipped, cut)
      end
    in
    Printf.printf "recovered %d of %d record(s)%s; db hash %Lx\n"
      (total - List.length skipped)
      total
      (match cut with None -> "" | Some c -> Printf.sprintf " (%s)" c)
      (Engine.db_hash eng);
    if skipped <> [] then
      Printf.printf "skipped %d record(s): %s\n" (List.length skipped)
        (String.concat ", " (List.map string_of_int skipped));
    (match out with
    | Some out_path ->
        let as_store =
          segment_cap <> None
          || (Sys.file_exists out_path && Sys.is_directory out_path)
        in
        if as_store then begin
          let store = Log_store.open_ ?segment_cap out_path in
          Log_store.append_log store (Engine.log eng);
          Log_store.close store
        end
        else Log_store.save_log_file (Engine.log eng) ~path:out_path;
        Printf.printf "clean log (%d records) -> %s\n"
          (Log.length (Engine.log eng))
          out_path
    | None -> ());
    (match query with
    | None -> ()
    | Some q ->
        let r = Engine.query_sql eng q in
        print_endline (String.concat " | " r.Engine.columns);
        List.iter
          (fun row ->
            print_endline
              (String.concat " | "
                 (Array.to_list (Array.map Uv_sql.Value.to_string row))))
          r.Engine.rows);
    0
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"LOG.ULOG")
  in
  let checkpoint =
    Arg.(value & opt (some file) None
         & info [ "checkpoint" ] ~docv:"DUMP.SQL"
             ~doc:"logical dump — or UCKPv1 checkpoint ladder, of which the \
                   newest rung is used — to restore before replaying the \
                   log tail")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ]
             ~doc:"write the recovered history as a clean ULOGv2 file, or \
                   store directory with $(b,--segment-cap)")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"rebuild a database from a (possibly damaged) statement log \
             or segmented store, salvaging the valid record prefix, \
             optionally on top of a checkpoint dump")
    Term.(const run $ path $ checkpoint $ out $ Cli_args.segment_cap
          $ Cli_args.query)

(* ------------------------------------------------------------------ *)
(* trace: pretty-print a Chrome trace-event file                        *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let module J = Uv_obs.Json in
  let run path =
    match J.parse (read_file path) with
    | Error e ->
        Printf.eprintf "error: %s is not a trace file: %s\n" path e;
        2
    | Ok doc ->
        let events =
          match J.member "traceEvents" doc with
          | Some (J.List l) -> l
          | _ -> []
        in
        let str k e =
          match J.member k e with Some (J.Str s) -> Some s | _ -> None
        in
        let num k e = Option.bind (J.member k e) J.to_float in
        (* (tid, ts µs, dur µs, marker?, name, cat) per drawable event *)
        let rows =
          List.filter_map
            (fun e ->
              match (str "ph" e, str "name" e, num "tid" e, num "ts" e) with
              | Some "X", Some name, Some tid, Some ts ->
                  Some
                    ( int_of_float tid, ts,
                      Option.value (num "dur" e) ~default:0.0, false, name,
                      Option.value (str "cat" e) ~default:"" )
              | Some "i", Some name, Some tid, Some ts ->
                  Some (int_of_float tid, ts, 0.0, true, name, "")
              | _ -> None)
            events
        in
        if rows = [] then begin
          print_endline "no span events";
          0
        end
        else begin
          let tids =
            List.sort_uniq compare (List.map (fun (t, _, _, _, _, _) -> t) rows)
          in
          List.iter
            (fun tid ->
              Printf.printf "domain-%d\n" tid;
              let lane =
                List.filter (fun (t, _, _, _, _, _) -> t = tid) rows
                |> List.sort (fun (_, ts1, d1, _, _, _) (_, ts2, d2, _, _, _) ->
                       (* parents (longer spans) before children at equal start *)
                       compare (ts1, -.d1) (ts2, -.d2))
              in
              (* nesting is recovered from time containment: a stack of
                 enclosing spans' end timestamps *)
              let stack = ref [] in
              List.iter
                (fun (_, ts, dur, marker, name, cat) ->
                  stack := List.filter (fun e -> ts < e -. 0.001) !stack;
                  let indent = String.make (2 * List.length !stack) ' ' in
                  if marker then
                    Printf.printf "  %s* %-22s @ %10.3f ms\n" indent name
                      (ts /. 1000.0)
                  else begin
                    Printf.printf "  %s%-24s %10.3f ms%s\n" indent name
                      (dur /. 1000.0)
                      (if cat = "" then "" else "  [" ^ cat ^ "]");
                    stack := (ts +. dur) :: !stack
                  end)
                lane)
            tids;
          Printf.printf "%d events, %d lanes\n" (List.length rows)
            (List.length tids);
          0
        end
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.JSON")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"pretty-print a Chrome trace-event file produced by $(b,whatif \
             --trace): one lane per domain, spans nested by containment")
    Term.(const run $ path)

let workloads_cmd =
  let run () =
    List.iter
      (fun (w : Uv_workloads.Workload.t) ->
        Printf.printf "%-10s mahif-comparable: %b\n" w.Uv_workloads.Workload.name
          w.Uv_workloads.Workload.mahif_capable)
      (Uv_workloads.Workload.all ());
    0
  in
  Cmd.v (Cmd.info "workloads" ~doc:"list bundled benchmarks") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "ultraverse" ~version:Uv_obs.Report.version
      ~doc:"what-if analysis for database-backed applications"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ transpile_cmd; analyze_cmd; whatif_cmd; serve_cmd; client_cmd;
            lint_cmd; templates_cmd; trace_cmd; log_cmd; dump_cmd; fsck_cmd;
            recover_cmd; workloads_cmd ]))
