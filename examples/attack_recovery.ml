(* Attack recovery: retroactively removing a compromised admin's actions.

   The paper positions Ultraverse against attack-recovery systems like
   Warp and Rail (§7): when a malicious request is discovered long after
   the fact, the database must be repaired as if the request never
   happened — without replaying the entire service through a heavyweight
   browser farm, and without clobbering the legitimate activity that
   followed.

   Scenario: an attacker compromises an admin account and issues a price
   drop on one product, then hundreds of legitimate transactions follow
   (orders for that product at the wrong price, and plenty of unrelated
   traffic). We retroactively remove the malicious price change and let
   dependency analysis figure out the minimal repair.

   Run with: dune exec examples/attack_recovery.exe *)

open Uv_db
open Uv_retroactive
module Runtime = Uv_transpiler.Runtime
module W = Uv_workloads.Workload

let () =
  let astore = W.by_name "astore" in
  let eng, rt = W.setup ~mode:Runtime.Transpiled astore in
  let base = Engine.snapshot eng in
  let prng = Uv_util.Prng.create 2024 in

  (* the attack: product 1's price zeroed out by the compromised admin *)
  let attack =
    { W.txn = "UpdateProductPrice"; args = [ Uv_sql.Value.Int 1; Uv_sql.Value.Float 0.01 ] }
  in
  (* followed by legitimate traffic, some of it ordering product 1 (drop
     any generated re-pricing of product 1: nobody legitimately touched
     the attacked price before the forensics) *)
  let traffic =
    astore.W.generate prng ~scale:1 ~n:300 ~dep_rate:0.15
    |> List.filter (fun c ->
           not
             (String.equal c.W.txn "UpdateProductPrice"
             && List.nth_opt c.W.args 0 = Some (Uv_sql.Value.Int 1)))
  in
  ignore (W.run_history rt ~mode:Runtime.Transpiled (attack :: traffic));

  let revenue e =
    let r = Engine.query_sql e "SELECT SUM(Total) FROM Orders" in
    match r.Engine.rows with
    | row :: _ -> Uv_sql.Value.to_float row.(0)
    | [] -> 0.0
  in
  Printf.printf "history: %d statements; revenue with the attack: %.2f\n%!"
    (Log.length (Engine.log eng))
    (revenue eng);

  (* forensics: remove the malicious statement *)
  let analyzer =
    Analyzer.analyze ~config:astore.W.ri_config ~base (Engine.log eng)
  in
  let out = Whatif.run_exn ~analyzer eng { Analyzer.tau = 1; op = Analyzer.Remove } in
  Printf.printf
    "repair: %d of %d statements needed replay (%.1f%%), %d rolled back, %.1f ms\n"
    out.Whatif.replay.Analyzer.member_count
    (Log.length (Engine.log eng))
    (100.0
    *. float_of_int out.Whatif.replay.Analyzer.member_count
    /. float_of_int (Log.length (Engine.log eng)))
    out.Whatif.undone out.Whatif.real_ms;
  Printf.printf "tables repaired: %s; consulted: %s\n"
    (String.concat ", " out.Whatif.replay.Analyzer.mutated)
    (String.concat ", " out.Whatif.replay.Analyzer.consulted);

  (* apply the repair to the live database (the database-update step) *)
  Whatif.commit eng out;
  Printf.printf "revenue after repair: %.2f\n" (revenue eng);
  Printf.printf
    "every order of product 1 now carries its real price; unrelated orders,\n\
     messages and subscriptions were never touched.\n"
