(* Post-incident forensics with the durable log and replay-set provenance.

   The scenario (paper §1's "recovery from attack transactions" use case,
   with the §6 tooling): a payroll service keeps its ULOGv1 statement log
   on disk. After the fact, an auditor

     1. loads the persisted log and rebuilds the database bit-for-bit,
     2. locates the attacker's raise,
     3. asks the dependency analyzer to EXPLAIN its blast radius —
        which later statements were tainted, and through which
        column/row conflicts,
     4. retroactively removes it and reports the repaired payroll.

   Run with: dune exec examples/audit_forensics.exe *)

open Uv_db
open Uv_retroactive

let section title = Printf.printf "\n=== %s ===\n%!" title

let show_table e title sql =
  Printf.printf "%s\n" title;
  let r = Engine.query_sql e sql in
  List.iter
    (fun row ->
      Printf.printf "  %s\n"
        (String.concat "  "
           (Array.to_list (Array.map Uv_sql.Value.to_string row))))
    r.Engine.rows

(* ------------------------------------------------------------------ *)
(* 1. The production history (what actually happened)                   *)
(* ------------------------------------------------------------------ *)

let production_history =
  [
    "CREATE TABLE staff (id INT PRIMARY KEY, name VARCHAR(16), salary INT)";
    "CREATE TABLE payouts (month INT, staff_id INT, amount INT)";
    "CREATE TABLE totals (month INT PRIMARY KEY, paid INT)";
    "INSERT INTO staff VALUES (1, 'mallory', 3000), (2, 'alice', 4200), (3, 'bob', 3900)";
    (* month 1 payroll: per-person payouts + ledger total *)
    "INSERT INTO payouts SELECT 1, id, salary FROM staff";
    "INSERT INTO totals VALUES (1, (SELECT SUM(amount) FROM payouts WHERE month = 1))";
    (* the attack: mallory edits her own salary *)
    "UPDATE staff SET salary = 9000 WHERE id = 1";
    (* legitimate change, later: alice gets a raise *)
    "UPDATE staff SET salary = 4500 WHERE id = 2";
    (* month 2 payroll runs on the tainted data *)
    "INSERT INTO payouts SELECT 2, id, salary FROM staff";
    "INSERT INTO totals VALUES (2, (SELECT SUM(amount) FROM payouts WHERE month = 2))";
  ]

let () =
  (* production executes and persists its log *)
  let prod = Engine.create () in
  List.iter (fun sql -> ignore (Engine.exec_sql prod sql)) production_history;
  let log_path = Filename.temp_file "payroll" ".ulog" in
  Log_store.save_log_file (Engine.log prod) ~path:log_path;
  section "production";
  Printf.printf "history persisted: %d statements -> %s\n"
    (Log.length (Engine.log prod)) log_path;

  (* ---------------------------------------------------------------- *)
  (* 2. The audit starts from the durable log alone                     *)
  (* ---------------------------------------------------------------- *)
  section "audit: rebuild from the log";
  let audit = Engine.create () in
  ignore (Log_io.replay audit (Log_store.load_log_file ~path:log_path) : int list);
  Sys.remove log_path;
  Printf.printf "rebuilt database %s production\n"
    (if Int64.equal (Engine.db_hash audit) (Engine.db_hash prod) then
       "matches"
     else "DIVERGES from");
  show_table audit "month-2 payouts as recorded:"
    "SELECT staff_id, amount FROM payouts WHERE month = 2 ORDER BY staff_id";

  (* ---------------------------------------------------------------- *)
  (* 3. Blast radius of the malicious statement                         *)
  (* ---------------------------------------------------------------- *)
  section "audit: blast radius of statement 7 (the salary edit)";
  let analyzer = Analyzer.analyze (Engine.log audit) in
  let target = { Analyzer.tau = 7; op = Analyzer.Remove } in
  let rs, lines = Analyzer.explain_report analyzer target in
  Printf.printf "%d of %d later statements are tainted:\n"
    rs.Analyzer.member_count
    (Log.length (Engine.log audit) - 7);
  List.iter (fun l -> Printf.printf "  %s\n" l) lines;

  (* ---------------------------------------------------------------- *)
  (* 4. Retroactively remove it                                         *)
  (* ---------------------------------------------------------------- *)
  section "what-if: the attack never happened";
  let out = Whatif.run_exn ~analyzer audit target in
  Printf.printf "replayed %d statements; universe %s\n" out.Whatif.replayed
    (if out.Whatif.changed then "changed" else "unchanged");
  (match
     (Whatif.query_new_universe out
        (match
           Uv_sql.Parser.parse_stmt
             "SELECT staff_id, amount FROM payouts WHERE month = 2 ORDER BY staff_id"
         with
        | Uv_sql.Ast.Select s -> s
        | _ -> assert false))
       .Engine.rows
   with
  | rows ->
      print_endline "month-2 payouts with the attack removed:";
      List.iter
        (fun row ->
          Printf.printf "  %s  %s\n"
            (Uv_sql.Value.to_string row.(0))
            (Uv_sql.Value.to_string row.(1)))
        rows);
  (* alice's legitimate raise must survive; mallory reverts to 3000 *)
  let q sel =
    match Uv_sql.Parser.parse_stmt sel with
    | Uv_sql.Ast.Select s ->
        Uv_sql.Value.to_string
          (List.hd (Whatif.query_new_universe out s).Engine.rows).(0)
    | _ -> assert false
  in
  Printf.printf "mallory's month-2 payout: %s (expected 3000)\n"
    (q "SELECT amount FROM payouts WHERE month = 2 AND staff_id = 1");
  Printf.printf "alice's month-2 payout:   %s (raise preserved, expected 4500)\n"
    (q "SELECT amount FROM payouts WHERE month = 2 AND staff_id = 2");
  Printf.printf "repaired month-2 total:   %s\n"
    (q "SELECT paid FROM totals WHERE month = 2")
