(* Hash-jumper demo: the paper's Figure 7 membership scenario.

   Alice's membership is initialised 'gold' (Q16) and later overwritten to
   'diamond' (Q99) by her purchase activity. A what-if analysis that
   changes the initialisation is *effectless*: once the overwrite
   replays, the table state provably re-joins the original timeline, and
   the Hash-jumper terminates the replay early instead of grinding
   through the remaining history.

   Run with: dune exec examples/hashjump_membership.exe *)

open Uv_db
open Uv_retroactive

let () =
  let eng = Engine.create () in
  ignore
    (Engine.exec_sql eng
       "CREATE TABLE Membership (uid INT PRIMARY KEY, level VARCHAR(10))");
  ignore
    (Engine.exec_sql eng
       "CREATE PROCEDURE UpdateMembership(IN u INT, IN lvl VARCHAR(10)) BEGIN \
        UPDATE Membership SET level = lvl WHERE uid = u; END");
  Engine.reset_log eng;
  let base = Engine.snapshot eng in

  (* Q1: Alice initialised as gold *)
  ignore (Engine.exec_sql eng "INSERT INTO Membership VALUES (1, 'gold')");
  (* many other members come and go *)
  for u = 2 to 400 do
    ignore
      (Engine.exec_sql eng
         (Printf.sprintf "INSERT INTO Membership VALUES (%d, 'silver')" u))
  done;
  (* Alice's activity upgrades her to diamond — overwriting the init *)
  ignore (Engine.exec_sql eng "CALL UpdateMembership(1, 'diamond')");
  (* a long tail of unrelated updates *)
  for u = 2 to 400 do
    if u mod 3 = 0 then
      ignore (Engine.exec_sql eng (Printf.sprintf "CALL UpdateMembership(%d, 'gold')" u))
  done;

  let n = Log.length (Engine.log eng) in
  Printf.printf "history: %d statements\n" n;

  let analyzer = Analyzer.analyze ~base (Engine.log eng) in
  let target =
    {
      Analyzer.tau = 1;
      op =
        Analyzer.Change
          (Uv_sql.Parser.parse_stmt "INSERT INTO Membership VALUES (1, 'bronze')");
    }
  in

  let run jumper =
    let config = Whatif.Config.make ~hash_jumper:jumper () in
    Whatif.run_exn ~config ~analyzer eng target
  in
  let without = run false in
  let with_hj = run true in
  Printf.printf
    "what if Alice had started as 'bronze' instead of 'gold'?\n\
    \  without Hash-jumper: replayed %d statements (%.2f ms)\n\
    \  with Hash-jumper:    replayed %d, hash-hit at commit %s, declared %s\n"
    without.Whatif.replayed without.Whatif.real_ms with_hj.Whatif.replayed
    (match with_hj.Whatif.hash_jump_at with
    | Some i -> string_of_int i
    | None -> "-")
    (if with_hj.Whatif.changed then "CHANGED" else "EFFECTLESS");
  Printf.printf
    "the 'diamond' overwrite makes the initial level unobservable, so the\n\
     original tables are simply retained (§4.5).\n"
