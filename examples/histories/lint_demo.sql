-- A small history exercising most of the lint passes: trigger fan-out
-- (UVA004), DDL after DML began (UVA003), a never-read column (UVA005)
-- and a procedure carrying an unexplored DSE branch stub (UVA006).
-- Feed it to `ultraverse lint examples/histories/lint_demo.sql`.
CREATE TABLE accounts (id INT PRIMARY KEY AUTO_INCREMENT, owner VARCHAR(32), balance INT, opened VARCHAR(32));
CREATE TABLE audit (acct INT, note VARCHAR(64));
CREATE TRIGGER audit_update AFTER UPDATE ON accounts FOR EACH ROW BEGIN INSERT INTO audit VALUES (NEW.id, 'balance changed'); END;
INSERT INTO accounts (owner, balance, opened) VALUES ('alice', 100, NOW());
INSERT INTO accounts (owner, balance, opened) VALUES ('bob', 80, NOW());
UPDATE accounts SET balance = balance + 20 WHERE owner = 'alice';
CREATE TABLE promo (code VARCHAR(16), pct INT);
INSERT INTO promo VALUES ('WELCOME', 10);
CREATE PROCEDURE pay(acct INT, amt INT) BEGIN IF amt > 0 THEN UPDATE accounts SET balance = balance - amt WHERE id = acct; ELSE SIGNAL SQLSTATE '45000'; END IF; END;
CALL pay(1, 30);
SELECT owner, balance FROM accounts;
SELECT acct, note FROM audit;
