(* A gallery of every UVA diagnostic code: for each check, a clean
   history (or target) and a seeded-bad twin, linted side by side. Run
   with [dune exec examples/lint_gallery.exe]. *)

open Uv_db
open Uv_retroactive
open Uv_analysis

let exec_history stmts =
  let eng = Engine.create () in
  List.iter (fun s -> ignore (Engine.exec eng (Uv_sql.Parser.parse_stmt s))) stmts;
  eng

let show title diags =
  Printf.printf "== %s ==\n%s\n" title
    (Format.asprintf "%a" Diagnostic.pp_report diags)

let base_history =
  [
    "CREATE TABLE accounts (id INT PRIMARY KEY AUTO_INCREMENT, owner \
     VARCHAR(32), balance INT, opened VARCHAR(32))";
    "INSERT INTO accounts (owner, balance, opened) VALUES ('alice', 100, \
     NOW())";
    "INSERT INTO accounts (owner, balance, opened) VALUES ('bob', 80, NOW())";
    "SELECT id, owner, balance, opened FROM accounts";
  ]

let () =
  (* UVA001 — the engine records every draw, so the history is clean;
     stripping the recorded values re-creates the divergence the pass
     exists to catch. *)
  let eng = exec_history base_history in
  show "UVA001 clean: recorded draws match the draw sites"
    (Lint.lint_log ~passes:[ Lint.Nondet ] (Engine.log eng));
  let stripped =
    Log.map (fun e -> { e with Log.nondet = [] }) (Engine.log eng)
  in
  show "UVA001 bad: same history with its recorded draws stripped"
    (Lint.lint_log ~passes:[ Lint.Nondet ] stripped);

  (* UVA002 — log surgery: replace a committed statement with a write
     into a table no DDL ever created. The precise analysis resolves the
     unknown table to an empty column set; the coarse structural walk
     still sees the write. *)
  let doctored =
    Log.map
      (fun e ->
        if e.Log.index <> 3 then e
        else
          {
            e with
            Log.stmt = Uv_sql.Parser.parse_stmt "INSERT INTO ghost VALUES (1)";
            sql = "INSERT INTO ghost VALUES (1)";
            nondet = [];
          })
      (Engine.log eng)
  in
  show "UVA002 clean: precise sets cover the coarse sets"
    (Lint.lint_log ~passes:[ Lint.Soundness ] (Engine.log eng));
  show "UVA002 bad: write into a table the schema never defined"
    (Lint.lint_log ~passes:[ Lint.Soundness ] doctored);

  (* UVA003/UVA004 — clustering eligibility: DDL once DML has begun, and
     trigger fan-out writing two tables from one statement. *)
  let eng =
    exec_history
      [
        "CREATE TABLE t (a INT, b INT)";
        "CREATE TABLE audit (a INT)";
        "CREATE TRIGGER tg AFTER UPDATE ON t FOR EACH ROW BEGIN INSERT INTO \
         audit VALUES (NEW.a); END";
        "INSERT INTO t VALUES (1, 2)";
        "UPDATE t SET b = 3 WHERE a = 1";
        "CREATE TABLE late (x INT)";
        "SELECT a FROM audit";
        "SELECT a, b FROM t";
        "SELECT x FROM late";
      ]
  in
  show "UVA003/UVA004 bad: mid-history DDL + trigger fan-out"
    (Lint.lint_log ~passes:[ Lint.Cluster ] (Engine.log eng));

  (* UVA005 — a column written and never read afterwards. *)
  let eng =
    exec_history
      [
        "CREATE TABLE t (a INT, b INT)";
        "INSERT INTO t VALUES (1, 2)";
        "SELECT a FROM t";
      ]
  in
  show "UVA005 bad: t.b is written and never read"
    (Lint.lint_log ~passes:[ Lint.Dead_write ] (Engine.log eng));

  (* UVA006 — a transpiled procedure still carrying an unexplored DSE
     branch stub. *)
  let eng =
    exec_history
      [
        "CREATE TABLE t (a INT)";
        "CREATE PROCEDURE bump(x INT) BEGIN IF x > 0 THEN UPDATE t SET a = a \
         + x; ELSE SIGNAL SQLSTATE '45000'; END IF; END";
        "INSERT INTO t VALUES (1)";
        "CALL bump(2)";
        "SELECT a FROM t";
      ]
  in
  show "UVA006 bad: procedure with an unexplored branch stub"
    (Lint.lint_log ~passes:[ Lint.Coverage ] (Engine.log eng));

  (* UVA007–UVA010 — retroactive-target validation against the schema
     view as of tau. *)
  let eng =
    exec_history
      [
        "CREATE TABLE parent (id INT PRIMARY KEY)";
        "CREATE TABLE child (id INT, pid INT REFERENCES parent(id))";
        "INSERT INTO parent VALUES (1)";
        "INSERT INTO child VALUES (10, 1)";
        "DROP TABLE parent";
      ]
  in
  let log = Engine.log eng in
  let target tau op = { Analyzer.tau; op } in
  let add sql = Analyzer.Add (Uv_sql.Parser.parse_stmt sql) in
  show "UVA007 clean: target tables exist as of tau"
    (Lint.lint_target log (target 4 (add "INSERT INTO child VALUES (11, 1)")));
  show "UVA007 bad: target reads a table unknown as of tau"
    (Lint.lint_target log
       (target 2 (add "INSERT INTO child SELECT id, id FROM orders")));
  show "UVA008 bad: unknown column and INSERT arity mismatch"
    (Lint.lint_target log
       (target 4 (add "INSERT INTO child (id, parent_id) VALUES (11, 1, 9)")));
  show "UVA009 bad: tau outside the history"
    (Lint.lint_target log (target 99 Analyzer.Remove));
  show "UVA010 bad: FK unresolvable as of tau (parent already dropped)"
    (Lint.lint_target log
       (target 6 (add "INSERT INTO child VALUES (12, 1)")))
