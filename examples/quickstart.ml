(* Quickstart: the paper's Figure 1 scenario, end to end.

   A web shop's NewOrder handler only places an order when the user has a
   registered shipping address. We:
     1. load the JavaScript-like application over a fresh engine,
     2. transpile its transactions to SQL procedures (Figure 4),
     3. run some traffic,
     4. ask "what if Alice had never registered her address?" and
     5. query the alternate universe.

   Run with: dune exec examples/quickstart.exe *)

open Uv_db
open Uv_retroactive
module Runtime = Uv_transpiler.Runtime

let app_source =
  {|
function NewOrder(orderer_uid, order_id) {
  var result_rows = SQL_exec(`SELECT COUNT(*) FROM Address WHERE owner_uid = '${orderer_uid}'`);
  if (result_rows[0]['COUNT(*)'] != 0) {
    SQL_exec(`INSERT INTO Orders VALUES ('${order_id}', '${orderer_uid}')`);
  } else {
    return 'Error: User ' + orderer_uid + ' has no address';
  }
}

function RegisterAddress(uid, city) {
  SQL_exec(`INSERT INTO Address VALUES ('${uid}', '${city}')`);
}
|}

let section title =
  Printf.printf "\n--- %s ---\n%!" title

let () =
  (* 1. engine + schema *)
  let eng = Engine.create () in
  ignore
    (Engine.exec_script eng
       "CREATE TABLE Address (owner_uid VARCHAR(16) PRIMARY KEY, city VARCHAR(32));\n\
        CREATE TABLE Orders (oid VARCHAR(8) PRIMARY KEY, ord_uid VARCHAR(16))");

  (* 2. load + transpile the application *)
  let rt = Runtime.create eng ~source:app_source in
  let transpiled = Runtime.transpile_install rt in
  section "Transpiled SQL procedures (Figure 4)";
  List.iter
    (fun (t : Uv_transpiler.Transpile.t) ->
      Printf.printf "%s  (paths explored: %d)\n%s\n"
        t.Uv_transpiler.Transpile.txn_name t.Uv_transpiler.Transpile.paths
        (Uv_sql.Printer.stmt t.Uv_transpiler.Transpile.procedure))
    transpiled;

  (* history starts after setup *)
  Engine.reset_log eng;
  let base = Engine.snapshot eng in

  (* 3. regular traffic: Alice registers an address and orders; Bob tries
     to order without one *)
  let invoke name args =
    match Runtime.invoke rt ~mode:Runtime.Transpiled name args with
    | Ok _ -> ()
    | Error m -> Printf.printf "  (app refused: %s)\n" m
  in
  invoke "RegisterAddress" [ Uv_sql.Value.Text "alice"; Uv_sql.Value.Text "Osaka" ];
  invoke "NewOrder" [ Uv_sql.Value.Text "alice"; Uv_sql.Value.Text "ord-1" ];
  invoke "NewOrder" [ Uv_sql.Value.Text "bob"; Uv_sql.Value.Text "ord-2" ];
  section "Orders after regular operation";
  let show e =
    let r = Engine.query_sql e "SELECT oid, ord_uid FROM Orders" in
    if r.Engine.rows = [] then print_endline "  (none)"
    else
      List.iter
        (fun row ->
          Printf.printf "  %s by %s\n"
            (Uv_sql.Value.to_string row.(0))
            (Uv_sql.Value.to_string row.(1)))
        r.Engine.rows
  in
  show eng;

  (* 4. what-if: retroactively remove Alice's address registration *)
  section "What if Alice had never registered her address?";
  let analyzer = Analyzer.analyze ~base (Engine.log eng) in
  let out = Whatif.run_exn ~analyzer eng { Analyzer.tau = 1; op = Analyzer.Remove } in
  Printf.printf
    "  history: %d statements; replay set: %d (column-wise alone: %d)\n"
    (Log.length (Engine.log eng))
    out.Whatif.replay.Analyzer.member_count
    out.Whatif.replay.Analyzer.col_only_count;
  Printf.printf "  rolled back %d, replayed %d, %.2f ms\n" out.Whatif.undone
    out.Whatif.replayed out.Whatif.real_ms;

  (* 5. query the alternate universe *)
  section "Orders in the alternate universe";
  let orders_query =
    match Uv_sql.Parser.parse_stmt "SELECT oid, ord_uid FROM Orders" with
    | Uv_sql.Ast.Select s -> s
    | _ -> assert false
  in
  let alt = Whatif.query_new_universe out orders_query in
  if alt.Engine.rows = [] then
    print_endline "  (none — without an address, NewOrder takes the error branch)"
  else
    List.iter
      (fun row ->
        Printf.printf "  %s by %s\n"
          (Uv_sql.Value.to_string row.(0))
          (Uv_sql.Value.to_string row.(1)))
      alt.Engine.rows;
  section "Original database (untouched by the analysis)";
  show eng
