(* Business what-if: "what if that trade had been twice as large?"

   The paper's discussion section (§6) sketches what-if analysis over a
   stock-trading service. Here a trading desk records fills against a
   positions book through an application-level transaction; the analyst
   retroactively *changes* one past trade and reads the alternate P&L —
   while the live book keeps serving.

   This example also shows the dynamic-dispatch dynamism (§C.2): the
   handler routes "buy"/"sell" through a function table, which the DSE
   discovers and compiles into the procedure's IF chain.

   Run with: dune exec examples/stock_whatif.exe *)

open Uv_db
open Uv_retroactive
module Runtime = Uv_transpiler.Runtime

let app_source =
  {|
function buy(account, symbol, qty, price) {
  SQL_exec(`UPDATE Positions SET shares = shares + ${qty}, cash = cash - ${qty} * ${price} WHERE account = '${account}' AND symbol = '${symbol}'`);
  SQL_exec(`INSERT INTO Trades (account, symbol, side, qty, price) VALUES ('${account}', '${symbol}', 'buy', ${qty}, ${price})`);
}

function sell(account, symbol, qty, price) {
  SQL_exec(`UPDATE Positions SET shares = shares - ${qty}, cash = cash + ${qty} * ${price} WHERE account = '${account}' AND symbol = '${symbol}'`);
  SQL_exec(`INSERT INTO Trades (account, symbol, side, qty, price) VALUES ('${account}', '${symbol}', 'sell', ${qty}, ${price})`);
}

function Trade(side, account, symbol, qty, price) {
  var book = { buy: buy, sell: sell };
  if (side == 'buy') {
    book[side](account, symbol, qty, price);
  } else {
    if (side == 'sell') {
      book[side](account, symbol, qty, price);
    } else {
      return 'unknown side';
    }
  }
}
|}

let () =
  let eng = Engine.create () in
  ignore
    (Engine.exec_script eng
       "CREATE TABLE Positions (account VARCHAR(8), symbol VARCHAR(8), shares \
        INT, cash DOUBLE);\n\
        CREATE TABLE Trades (tid INT PRIMARY KEY AUTO_INCREMENT, account \
        VARCHAR(8), symbol VARCHAR(8), side VARCHAR(4), qty INT, price DOUBLE)");
  ignore
    (Engine.exec_sql eng
       "INSERT INTO Positions VALUES ('alice', 'ACME', 0, 10000), ('bob', \
        'ACME', 0, 10000), ('alice', 'GLOBEX', 0, 0), ('bob', 'GLOBEX', 0, 0)");
  let rt = Runtime.create eng ~source:app_source in
  ignore (Runtime.transpile_install rt);
  Engine.reset_log eng;
  let base = Engine.snapshot eng in

  let trade side account symbol qty price =
    ignore
      (Runtime.invoke rt ~mode:Runtime.Transpiled "Trade"
         [
           Uv_sql.Value.Text side;
           Uv_sql.Value.Text account;
           Uv_sql.Value.Text symbol;
           Uv_sql.Value.Int qty;
           Uv_sql.Value.Float price;
         ])
  in
  (* the trading day *)
  trade "buy" "alice" "ACME" 100 50.0; (* <- the trade in question: commit 1 *)
  trade "buy" "bob" "ACME" 50 51.0;
  trade "sell" "alice" "ACME" 40 55.0;
  trade "buy" "bob" "GLOBEX" 10 12.0;
  trade "sell" "alice" "ACME" 60 58.0;
  trade "sell" "bob" "ACME" 50 60.0;

  let cash e who =
    let r =
      Engine.query_sql e
        (Printf.sprintf
           "SELECT cash FROM Positions WHERE account = '%s' AND symbol = 'ACME'" who)
    in
    match r.Engine.rows with
    | row :: _ -> Uv_sql.Value.to_float row.(0)
    | [] -> 0.0
  in
  Printf.printf "end of day    : alice cash %.0f, bob cash %.0f\n" (cash eng "alice")
    (cash eng "bob");

  (* what if Alice's opening buy had been 200 shares? *)
  let analyzer = Analyzer.analyze ~base (Engine.log eng) in
  let bigger =
    Uv_sql.Parser.parse_stmt "CALL uv_Trade('buy', 'alice', 'ACME', 200, 50)"
  in
  let out =
    Whatif.run_exn ~analyzer eng { Analyzer.tau = 1; op = Analyzer.Change bigger }
  in
  Printf.printf
    "what-if replayed %d of %d statements (bob's GLOBEX trade was independent)\n"
    out.Whatif.replay.Analyzer.member_count
    (Log.length (Engine.log eng));
  let alt = Engine.of_catalog out.Whatif.temp_catalog in
  Printf.printf "alternate day : alice cash %.0f (position doubled at the open)\n"
    (cash alt "alice");
  Printf.printf "live book untouched: alice cash still %.0f\n" (cash eng "alice");

  (* scenario tree (§6): keep several universes side by side and branch a
     branch — in the doubled-open world, what if the second sale never
     happened? *)
  let root = Scenario.root ~name:"reality" ~base eng in
  let doubled, _ =
    Scenario.branch ~name:"doubled-open" root
      { Analyzer.tau = 1; op = Analyzer.Change bigger }
  in
  let no_second_sale, _ =
    Scenario.branch ~name:"kept-the-shares" doubled
      { Analyzer.tau = 5; op = Analyzer.Remove }
  in
  print_newline ();
  Format.printf "%a" Scenario.pp_tree root;
  let pos scn =
    match
      (Scenario.query_sql scn
         "SELECT shares FROM Positions WHERE account = 'alice' AND symbol = 'ACME'")
        .Engine.rows
    with
    | row :: _ -> Uv_sql.Value.to_int row.(0)
    | [] -> 0
  in
  Printf.printf
    "alice's ACME shares — reality: %d, doubled-open: %d, kept-the-shares: %d\n"
    (pos root) (pos doubled) (pos no_second_sale)
