open Uv_sql
open Ast
module Schema_view = Uv_retroactive.Schema_view
module Names = Set.Make (String)

type t = { cr : Names.t; cw : Names.t }

let empty = { cr = Names.empty; cw = Names.empty }

let union a b = { cr = Names.union a.cr b.cr; cw = Names.union a.cw b.cw }

let reads names = { cr = Names.of_list names; cw = Names.empty }

let writes names = { cr = Names.empty; cw = Names.of_list names }

let both name = { cr = Names.singleton name; cw = Names.singleton name }

(* ------------------------------------------------------------------ *)
(* Structural source collection                                         *)
(* ------------------------------------------------------------------ *)

(* Source names come from structural positions only — FROM/JOIN clauses
   and DML targets — never from column qualifiers (those are aliases the
   precise analysis resolves; resolving them here would share its
   logic). *)
let rec select_sources_acc acc (s : select) =
  let acc =
    match s.sel_from with Some (t, _) -> Names.add t acc | None -> acc
  in
  let acc =
    List.fold_left (fun acc j -> Names.add j.join_table acc) acc s.sel_joins
  in
  List.fold_left expr_sources_acc acc (Visit.select_exprs s)

and expr_sources_acc acc e =
  let acc = List.fold_left select_sources_acc acc (Visit.expr_selects e) in
  List.fold_left expr_sources_acc acc (Visit.expr_children e)

let select_sources s = Names.elements (select_sources_acc Names.empty s)

let exprs_sources es =
  Names.elements (List.fold_left expr_sources_acc Names.empty es)

let top_level_sources (s : select) =
  (match s.sel_from with Some (t, _) -> [ t ] | None -> [])
  @ List.map (fun j -> j.join_table) s.sel_joins

(* ------------------------------------------------------------------ *)
(* Statement walk                                                       *)
(* ------------------------------------------------------------------ *)

let rec real_target sv name =
  match Schema_view.view sv name with
  | Some q -> (
      match q.sel_from with
      | Some (parent, _) -> real_target sv parent
      | None -> name)
  | None -> name

let rec trigger_coarse sv table event =
  List.fold_left
    (fun acc (trig : Uv_db.Catalog.trigger) ->
      let acc = union acc (reads [ trig.Uv_db.Catalog.trig_name ]) in
      union acc (pstmts_coarse sv trig.Uv_db.Catalog.trig_body))
    empty
    (Schema_view.triggers_for sv table event)

and write_stmt sv table event inner_reads =
  let base = union (writes [ table ]) (reads inner_reads) in
  union base (trigger_coarse sv (real_target sv table) event)

and of_stmt sv (s : stmt) : t =
  match s with
  | Create_table { name; columns; _ } ->
      let fk =
        List.filter_map
          (fun (c : Schema.column) -> Option.map fst c.Schema.references)
          columns
      in
      union (both name) (reads fk)
  | Drop_table { name; _ } | Truncate_table name -> both name
  | Alter_table (name, action) ->
      let extra_r =
        match action with
        | Add_column { Schema.references = Some (t, _); _ } -> [ t ]
        | Rename_table n2 -> [ n2 ]
        | _ -> []
      in
      let extra_w =
        match action with Rename_table n2 -> [ n2 ] | _ -> []
      in
      union (both name) (union (reads extra_r) (writes extra_w))
  | Create_view { name; query; _ } ->
      (* the definition depends on its immediate sources (Table A) *)
      union (both name) (reads (top_level_sources query))
  | Drop_view name -> both name
  | Create_index { table; _ } | Drop_index { table; _ } -> both table
  | Create_procedure { name; _ } | Drop_procedure name -> both name
  | Create_trigger { name; table; _ } ->
      union (both name) (reads [ table ])
  | Drop_trigger name -> both name
  | Select sel -> reads (select_sources sel)
  | Insert { table; values; _ } ->
      write_stmt sv table Ev_insert (exprs_sources (List.concat values))
  | Insert_select { table; query; _ } ->
      (* the copied-from sources are reads; a view source additionally
         reads the real table behind it, which the precise analysis
         expands to — demand the same of the coarse cross-check *)
      let srcs = select_sources query in
      let srcs =
        srcs
        @ List.filter_map
            (fun s ->
              let r = real_target sv s in
              if r <> s then Some r else None)
            srcs
      in
      write_stmt sv table Ev_insert srcs
  | Update { table; assigns; where } ->
      let inner =
        exprs_sources (List.map snd assigns @ Option.to_list where)
      in
      write_stmt sv table Ev_update inner
  | Delete { table; where } ->
      write_stmt sv table Ev_delete (exprs_sources (Option.to_list where))
  | Call (name, args) ->
      let body =
        match Schema_view.procedure sv name with
        | Some proc -> pstmts_coarse sv proc.Uv_db.Catalog.proc_body
        | None -> empty
      in
      union (reads (name :: exprs_sources args)) body
  | Transaction stmts ->
      List.fold_left (fun acc s -> union acc (of_stmt sv s)) empty stmts

and pstmts_coarse sv body =
  List.fold_left (fun acc p -> union acc (pstmt_coarse sv p)) empty body

and pstmt_coarse sv (p : pstmt) : t =
  match p with
  | P_stmt s -> of_stmt sv s
  | P_select_into (s, _) -> reads (select_sources s)
  | P_if (branches, else_body) ->
      let arms =
        List.fold_left
          (fun acc (cond, body) ->
            union acc
              (union (reads (exprs_sources [ cond ])) (pstmts_coarse sv body)))
          empty branches
      in
      union arms (pstmts_coarse sv else_body)
  | P_while (cond, body) ->
      union (reads (exprs_sources [ cond ])) (pstmts_coarse sv body)
  | P_declare _ | P_set _ ->
      reads (exprs_sources (Visit.pstmt_exprs p))
  | P_leave _ | P_signal _ -> empty

(* ------------------------------------------------------------------ *)
(* Coverage check                                                       *)
(* ------------------------------------------------------------------ *)

(* [name] is mentioned in a precise column set if the set holds its
   schema key [_S.name] or any qualified column [name.col]. *)
let mentioned set name =
  Uv_retroactive.Rwset.Colset.mem (Schema.schema_column name) set
  || Uv_retroactive.Rwset.Colset.exists
       (fun key ->
         let prefix = name ^ "." in
         let lp = String.length prefix in
         String.length key > lp && String.sub key 0 lp = prefix)
       set

let uncovered (rw : Uv_retroactive.Rwset.rw) coarse =
  let missing side set names =
    Names.fold
      (fun name acc ->
        if mentioned set name then acc else (name, side) :: acc)
      names []
  in
  missing `Read rw.Uv_retroactive.Rwset.r coarse.cr
  @ missing `Write rw.Uv_retroactive.Rwset.w coarse.cw
