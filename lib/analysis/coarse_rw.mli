(** A deliberately coarse, independent read/write computation.

    Where {!Uv_retroactive.Rwset} derives column-wise sets (Appendix
    Table A), this module derives *object-level* sets: the names of
    tables, views, procedures and triggers a statement structurally
    reads or writes. It shares no code with [Rwset]'s set derivation —
    only the schema view, which both need to resolve views, procedure
    bodies and triggers — so diffing the two surfaces
    under-approximation bugs in the precise analysis: every object the
    coarse walk finds must be *mentioned* (as a [t.col] key or the
    [_S.t] schema key) on the same side of the precise sets, or a
    dependency can silently be missed and a replay produce a wrong
    universe.

    Granularity notes mirroring Table A (so the cross-check is exact,
    not merely heuristic):
    - write targets appear only in the write set — [Rwset] tracks the
      target's schema key on the write side for views ([_S.view]) and
      its columns for tables;
    - [CREATE VIEW]/[CREATE PROCEDURE] register dependence on their
      immediate sources / name only (their bodies contribute when
      used, not when defined);
    - writes fire the triggers of the resolved real target, and CALL
      expands the procedure body, exactly as the precise analysis
      does;
    - [INSERT ... SELECT] reads every source of its query, and a view
      source additionally reads the real table behind the view (the
      precise analysis expands view reads to parent columns, so the
      cross-check must demand the parent too). *)

open Uv_sql

module Names : Set.S with type elt = string

type t = { cr : Names.t; cw : Names.t }

val of_stmt : Uv_retroactive.Schema_view.t -> Ast.stmt -> t

val select_sources : Ast.select -> string list
(** All source tables/views referenced by a query block, descending
    into nested subselects in any clause (deduplicated). *)

val real_target : Uv_retroactive.Schema_view.t -> string -> string
(** Resolve a DML target through updatable-view chains to the real
    table it writes. *)

val uncovered :
  Uv_retroactive.Rwset.rw -> t -> (string * [ `Read | `Write ]) list
(** Objects of the coarse sets that the precise sets fail to mention on
    the corresponding side — each one is a soundness violation. *)
