type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  pass : string;
  index : int option;
  obj : string option;
  message : string;
}

let make ?index ?obj ~code ~severity ~pass message =
  { code; severity; pass; index; obj; message }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let is_error d = d.severity = Error

let errors ds = List.filter is_error ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let compare a b =
  let loc = function Some i -> (0, i) | None -> (1, 0) in
  match Stdlib.compare (loc a.index) (loc b.index) with
  | 0 -> (
      match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity)
      with
      | 0 -> Stdlib.compare a.code b.code
      | c -> c)
  | c -> c

let pp fmt d =
  let idx = match d.index with Some i -> Printf.sprintf "#%d" i | None -> "-" in
  Format.fprintf fmt "%-5s %-7s %s [%s]%s %s" idx
    (severity_label d.severity)
    d.code d.pass
    (match d.obj with Some o -> " " ^ o ^ ":" | None -> "")
    d.message

let to_string d = Format.asprintf "%a" pp d

(* ------------------------------------------------------------------ *)
(* JSON (hand-rolled; the toolchain carries no JSON library)            *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of d =
  let fields =
    [
      Some (Printf.sprintf "\"code\": \"%s\"" (json_escape d.code));
      Some
        (Printf.sprintf "\"severity\": \"%s\"" (severity_label d.severity));
      Some (Printf.sprintf "\"pass\": \"%s\"" (json_escape d.pass));
      Option.map (Printf.sprintf "\"index\": %d") d.index;
      Option.map
        (fun o -> Printf.sprintf "\"object\": \"%s\"" (json_escape o))
        d.obj;
      Some (Printf.sprintf "\"message\": \"%s\"" (json_escape d.message));
    ]
  in
  "{" ^ String.concat ", " (List.filter_map Fun.id fields) ^ "}"

let json_report ds =
  let ds = List.sort compare ds in
  Printf.sprintf
    "{\"summary\": {\"errors\": %d, \"warnings\": %d, \"infos\": %d, \
     \"total\": %d},\n\
     \"diagnostics\": [\n%s\n]}"
    (count Error ds) (count Warning ds) (count Info ds) (List.length ds)
    (String.concat ",\n" (List.map (fun d -> "  " ^ json_of d) ds))

let pp_report fmt ds =
  let ds = List.sort compare ds in
  List.iter (fun d -> Format.fprintf fmt "%a@." pp d) ds;
  Format.fprintf fmt "%d error(s), %d warning(s), %d info(s)@."
    (count Error ds) (count Warning ds) (count Info ds)
