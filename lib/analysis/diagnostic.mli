(** Structured findings of the static lint & soundness passes.

    Every finding carries a stable code ([UVA001]…) so tooling and tests
    can match on it, a severity, the pass that produced it, and an
    optional location: the 1-based commit index of the offending log
    entry and/or the database object (table, column, procedure) the
    finding is about.

    Code registry (each code belongs to exactly one pass):
    - [UVA001] (error/warning, nondet) — a statement with
      non-deterministic draw sites whose log entry records fewer values
      than the statement must have drawn: replay diverges.
    - [UVA002] (error, soundness) — the independent coarse table-level
      read/write computation found an object the precise [Rwset] sets
      miss: the dependency analyzer under-approximates.
    - [UVA003] (warning, cluster) — DDL committed mid-history, after DML
      began: schema changes serialize replay and defeat Hash-jumper
      clustering.
    - [UVA004] (info, cluster) — a single statement writes several real
      tables (trigger fan-out, FK write inheritance, view expansion),
      merging otherwise independent replay clusters.
    - [UVA005] (info, dead-write) — a column is written and never read
      by any later statement: a replay-set pruning candidate.
    - [UVA006] (warning, coverage) — a procedure carries unexplored
      branch stubs ([SIGNAL SQLSTATE '45000']); a retroactive replay
      entering one aborts.
    - [UVA007] (error, target) — the retroactive target references an
      unknown table, view, or procedure as of τ.
    - [UVA008] (error, target) — the retroactive target references an
      unknown column (or has the wrong INSERT arity) as of τ.
    - [UVA009] (error, target) — the retroactive target's commit index τ
      is out of range for the history.
    - [UVA010] (error, target) — a FOREIGN KEY the target would exercise
      is unresolvable as of τ.
    - [UVA011] (error, fsck) — a persisted statement log is damaged:
      the valid record prefix ends before the end of the file (torn
      tail, checksum mismatch, or malformed framing). Emitted by
      [ultraverse fsck] with the byte offset of the cut.
    - [UVA012] (warning, fsck) — a persisted log record fails to replay
      on a fresh database ([ultraverse fsck]'s replay check): the log
      is not self-contained (e.g. it post-dates a checkpoint).
    - [UVA013] (warning, fsck) — a persisted log replays but its
      recorded row hashes diverge from the fresh replay.
    - [UVA014] (warning, template-coverage) — a log entry matches no
      extracted query template (DDL excepted): it silently falls back
      to the per-statement dependency path.
    - [UVA015] (error, matrix-soundness) — the static template-pair
      matrix fails to over-approximate the dynamic dependencies of a
      workload log: a template's column sets miss a matched entry's
      dynamic columns, or a real cell-level dependency is refuted by a
      missing pair / missing conflict column / the predicate-
      disjointness refinement.
    - [UVA016] (warning, dynamic-sql) — an [SQL_exec] call site in the
      MiniJS sources takes a computed argument instead of a string or
      template literal: the statement escapes template extraction.
    - [UVA017] (info, param-flow) — a template slot's value flows from a
      blackbox native call: unrecorded nondeterminism behind the
      recorded literal. *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable diagnostic code, ["UVA001"]… *)
  severity : severity;
  pass : string;  (** producing pass: ["nondet"], ["soundness"], … *)
  index : int option;  (** 1-based commit index of the log entry *)
  obj : string option;  (** database object the finding is about *)
  message : string;
}

val make :
  ?index:int ->
  ?obj:string ->
  code:string ->
  severity:severity ->
  pass:string ->
  string ->
  t

val severity_label : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val is_error : t -> bool

val errors : t list -> t list

val count : severity -> t list -> int

val compare : t -> t -> int
(** Order by commit index (located findings first), then severity
    (errors first), then code. *)

val pp : Format.formatter -> t -> unit
(** One line: [#12 error   UVA001 [nondet] message] — or [-] in place of
    the index for history-wide findings. *)

val to_string : t -> string

val json_escape : string -> string
(** JSON string-body escaping (shared with the SARIF exporter). *)

val json_of : t -> string
(** One finding as a JSON object. *)

val json_report : t list -> string
(** The full report as JSON:
    [{"summary":{"errors":…,"warnings":…,"infos":…,"total":…},
      "diagnostics":[…]}] — diagnostics in {!compare} order. *)

val pp_report : Format.formatter -> t list -> unit
(** Sorted one-line findings followed by a summary line. *)
