module Schema_view = Uv_retroactive.Schema_view
module Rwset = Uv_retroactive.Rwset
module Analyzer = Uv_retroactive.Analyzer
module Log = Uv_db.Log
module Catalog = Uv_db.Catalog
module D = Diagnostic

type pass =
  | Nondet
  | Soundness
  | Cluster
  | Dead_write
  | Coverage
  | Template_coverage
  | Matrix_soundness
  | Dynamic_sql
  | Param_flow

let all_passes = [ Nondet; Soundness; Cluster; Dead_write; Coverage ]

let template_passes =
  [ Template_coverage; Matrix_soundness; Dynamic_sql; Param_flow ]

let pass_name = function
  | Nondet -> "nondet"
  | Soundness -> "soundness"
  | Cluster -> "cluster"
  | Dead_write -> "dead-write"
  | Coverage -> "coverage"
  | Template_coverage -> "template-coverage"
  | Matrix_soundness -> "matrix-soundness"
  | Dynamic_sql -> "dynamic-sql"
  | Param_flow -> "param-flow"

let pass_of_string s =
  match String.lowercase_ascii s with
  | "nondet" -> Some Nondet
  | "soundness" -> Some Soundness
  | "cluster" -> Some Cluster
  | "dead-write" | "dead_write" | "dead" -> Some Dead_write
  | "coverage" -> Some Coverage
  | "template-coverage" | "template_coverage" -> Some Template_coverage
  | "matrix-soundness" | "matrix_soundness" -> Some Matrix_soundness
  | "dynamic-sql" | "dynamic_sql" -> Some Dynamic_sql
  | "param-flow" | "param_flow" -> Some Param_flow
  | _ -> None

let lint_log ?base ?(passes = all_passes) log =
  let on p = List.mem p passes in
  let sv =
    match base with
    | Some cat -> Schema_view.of_catalog cat
    | None -> Schema_view.create ()
  in
  let dead = Passes.dead_create () in
  let seen_dml = ref false in
  let diags = ref [] in
  let emit ds = diags := List.rev_append ds !diags in
  (* procedures that predate the log still run during replay *)
  (if on Coverage then
     match base with
     | None -> ()
     | Some cat ->
         List.iter
           (fun name ->
             match Catalog.procedure cat name with
             | Some p ->
                 emit
                   (Passes.coverage_procedure ~name
                      p.Uv_db.Catalog.proc_body)
             | None -> ())
           (Catalog.procedure_names cat));
  let i = ref 0 in
  Log.iter log (fun entry ->
      incr i;
      let rw = Rwset.of_stmt sv entry.Log.stmt in
      let ctx = { Passes.index = !i; entry; sv; rw } in
      if on Nondet then emit (Passes.nondet ctx);
      if on Soundness then emit (Passes.soundness ctx);
      if on Cluster then emit (Passes.cluster ~seen_dml:!seen_dml ctx);
      if on Coverage then emit (Passes.coverage ctx);
      if on Dead_write then Passes.dead_record dead ctx;
      if Passes.contains_dml entry.Log.stmt then seen_dml := true;
      Schema_view.apply sv entry.Log.stmt);
  if on Dead_write then emit (Passes.dead_finish dead);
  List.sort D.compare !diags

let lint_target ?base log (t : Analyzer.target) =
  let n = Log.length log in
  let hi = match t.Analyzer.op with Analyzer.Add _ -> n + 1 | _ -> n in
  if t.Analyzer.tau < 1 || t.Analyzer.tau > hi then
    [
      D.make ~code:"UVA009" ~severity:D.Error ~pass:"target"
        (Printf.sprintf
           "target index tau=%d out of range [1, %d] for a history of %d \
            statement(s)"
           t.Analyzer.tau hi n);
    ]
  else
    let sv = Schema_view.of_log ?base log ~upto:t.Analyzer.tau in
    match t.Analyzer.op with
    | Analyzer.Remove -> []
    | Analyzer.Add s | Analyzer.Change s ->
        List.sort D.compare (Passes.target_stmt sv s)

let lint_procedure ?index ~name body =
  Passes.coverage_procedure ?index ~name body

type template_ctx = {
  tset : Template_extract.set;
  tmatrix : Template_matrix.t;
  tfast : Template_fastpath.t;
  tsource : string option;
}

let lint_templates ?(passes = template_passes) ~ctx anl =
  let on p = List.mem p passes in
  let diags = ref [] in
  let emit ds = diags := List.rev_append ds !diags in
  if on Template_coverage then
    emit (Template_lint.template_coverage ~fast:ctx.tfast anl);
  if on Matrix_soundness then
    emit
      (Template_lint.matrix_soundness ~set:ctx.tset ~matrix:ctx.tmatrix
         ~fast:ctx.tfast anl);
  (if on Dynamic_sql then
     match ctx.tsource with
     | Some source -> emit (Template_lint.dynamic_sql ~source)
     | None -> ());
  if on Param_flow then emit (Template_lint.param_flow ~set:ctx.tset);
  List.sort D.compare !diags
