(** The lint driver: one commit-order walk over a history dispatching to
    the enabled passes, plus standalone entry points for retroactive
    targets and transpiled procedure bodies.

    Everything here is static — no statement is ever executed, no data
    page is read; the only inputs are the committed-statement log (text
    plus recorded metadata), the evolving schema view, and the statically
    derived read/write sets. *)

type pass =
  | Nondet
  | Soundness
  | Cluster
  | Dead_write
  | Coverage
  | Template_coverage
  | Matrix_soundness
  | Dynamic_sql
  | Param_flow

val all_passes : pass list
(** The log-walk passes ([Nondet] … [Coverage]) — what {!lint_log} runs
    by default. The template passes need extraction artifacts and run
    through {!lint_templates}. *)

val template_passes : pass list
(** [Template_coverage; Matrix_soundness; Dynamic_sql; Param_flow]. *)

val pass_name : pass -> string

val pass_of_string : string -> pass option

val lint_log :
  ?base:Uv_db.Catalog.t ->
  ?passes:pass list ->
  Uv_db.Log.t ->
  Diagnostic.t list
(** Walk the history once in commit order, threading the schema view
    (seeded from [base] when the log grows from a checkpoint), and run
    the enabled passes ([all_passes] by default) over every entry.
    Checkpoint-catalog procedures are coverage-checked too. The result
    is sorted with {!Diagnostic.compare}. *)

val lint_target :
  ?base:Uv_db.Catalog.t ->
  Uv_db.Log.t ->
  Uv_retroactive.Analyzer.target ->
  Diagnostic.t list
(** Validate a retroactive target before any analysis runs: τ range
    (UVA009), then — for [Add]/[Change] — type-check the statement
    against the schema view as of τ (UVA007/UVA008/UVA010). *)

val lint_procedure :
  ?index:int -> name:string -> Uv_sql.Ast.pstmt list -> Diagnostic.t list
(** Coverage-check one transpiled procedure body (UVA006). *)

type template_ctx = {
  tset : Template_extract.set;
  tmatrix : Template_matrix.t;
  tfast : Template_fastpath.t;
  tsource : string option;  (** MiniJS sources, for [Dynamic_sql] *)
}

val lint_templates :
  ?passes:pass list ->
  ctx:template_ctx ->
  Uv_retroactive.Analyzer.t ->
  Diagnostic.t list
(** Run the template passes ([template_passes] by default) against an
    analyzed history and its extraction artifacts: UVA014 coverage,
    UVA015 matrix soundness, UVA016 dynamic SQL (skipped when [tsource]
    is [None]), UVA017 parameter provenance. Sorted with
    {!Diagnostic.compare}. *)
