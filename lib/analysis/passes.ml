open Uv_sql
open Ast
module Schema_view = Uv_retroactive.Schema_view
module Rwset = Uv_retroactive.Rwset
module Log = Uv_db.Log
module D = Diagnostic

type entry_ctx = {
  index : int;
  entry : Log.entry;
  sv : Schema_view.t;
  rw : Rwset.rw;
}

(* ------------------------------------------------------------------ *)
(* UVA001 — unrecorded non-determinism                                  *)
(* ------------------------------------------------------------------ *)

let is_nondet_fun name =
  match String.uppercase_ascii name with
  | "RAND" | "NOW" | "CURTIME" | "CURRENT_TIMESTAMP" | "UNIX_TIMESTAMP" ->
      true
  | _ -> false

let count_site n e =
  match e with Fun_call (f, []) when is_nondet_fun f -> n + 1 | _ -> n

(* Draw sites evaluated exactly once per committed row: skip nested query
   blocks, whose per-row evaluation count is data-dependent. *)
let rec shallow_sites n e =
  let n = count_site n e in
  List.fold_left shallow_sites n (Visit.expr_children e)

let deep_expr_sites n e = Visit.fold_expr count_site n e
let deep_select_sites n s = Visit.fold_select count_site n s

let index_of x l =
  let rec go i = function
    | [] -> None
    | y :: _ when String.equal x y -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 l

(* (definite, possible) AUTO_INCREMENT draws of an INSERT's rows: a row
   that omits the AI column (or supplies a literal NULL) draws exactly
   once; a non-literal value may or may not be NULL at runtime. *)
let insert_ai_rows sv table columns rows =
  let real = Coarse_rw.real_target sv table in
  match Schema_view.auto_increment_column sv real with
  | None -> (0, 0)
  | Some ac ->
      if Schema_view.is_view sv table then (0, List.length rows)
      else
        let pos =
          match columns with
          | Some cols -> index_of ac cols
          | None ->
              Option.bind (Schema_view.table_columns sv real) (index_of ac)
        in
        let classify row =
          match pos with
          | None -> (
              (* AI column absent from an explicit column list: filled *)
              match columns with Some _ -> (1, 0) | None -> (0, 0))
          | Some i -> (
              match List.nth_opt row i with
              | Some (Lit Value.Null) -> (1, 0)
              | Some (Lit _) -> (0, 0)
              | Some _ -> (0, 1)
              | None -> (0, 0) (* arity error: never commits *))
        in
        List.fold_left
          (fun (d, p) row ->
            let d', p' = classify row in
            (d + d', p + p'))
          (0, 0) rows

let rec definite_draws sv (s : stmt) =
  match s with
  | Insert { table; columns; values } ->
      let funs = List.fold_left shallow_sites 0 (List.concat values) in
      let ai, _ = insert_ai_rows sv table columns values in
      funs + ai
  | Transaction stmts ->
      List.fold_left (fun n x -> n + definite_draws sv x) 0 stmts
  | _ -> 0

(* Execution-reachable draw sites, branch- and data-dependent ones
   included: nested query blocks, CALL-expanded procedure bodies, fired
   trigger bodies. Bodies merely being *defined* do not execute. *)
let rec potential_draws sv (s : stmt) =
  let base = List.fold_left deep_expr_sites 0 (Visit.stmt_exprs s) in
  let base = List.fold_left deep_select_sites base (Visit.stmt_selects s) in
  let base =
    match s with
    | Insert { table; columns; values } ->
        let d, p = insert_ai_rows sv table columns values in
        base + d + p
    | Insert_select { table; _ } -> (
        match
          Schema_view.auto_increment_column sv (Coarse_rw.real_target sv table)
        with
        | Some _ -> base + 1
        | None -> base)
    | Call (name, _) -> (
        match Schema_view.procedure sv name with
        | Some proc -> base + pstmts_potential sv proc.Uv_db.Catalog.proc_body
        | None -> base)
    | Transaction stmts ->
        List.fold_left (fun n x -> n + potential_draws sv x) base stmts
    | _ -> base
  in
  match s with
  | Insert { table; _ } | Insert_select { table; _ } ->
      base + triggers_potential sv table Ev_insert
  | Update { table; _ } -> base + triggers_potential sv table Ev_update
  | Delete { table; _ } -> base + triggers_potential sv table Ev_delete
  | _ -> base

and pstmts_potential sv body =
  Visit.fold_pstmts
    (fun n p ->
      let n = List.fold_left deep_expr_sites n (Visit.pstmt_exprs p) in
      let n = List.fold_left deep_select_sites n (Visit.pstmt_selects p) in
      List.fold_left (fun n s -> n + potential_draws sv s) n (Visit.pstmt_stmts p))
    0 body

and triggers_potential sv table event =
  List.fold_left
    (fun n (tr : Uv_db.Catalog.trigger) ->
      n + pstmts_potential sv tr.Uv_db.Catalog.trig_body)
    0
    (Schema_view.triggers_for sv (Coarse_rw.real_target sv table) event)

let nondet ctx =
  let stmt = ctx.entry.Log.stmt in
  if Ast.is_read_only stmt then []
  else
    let recorded = Log.nondet_count ctx.entry in
    let definite = definite_draws ctx.sv stmt in
    if recorded < definite then
      [
        D.make ~index:ctx.index ~code:"UVA001" ~severity:D.Error ~pass:"nondet"
          (Printf.sprintf
             "statement draws at least %d nondeterministic value(s) \
              (RAND/NOW/AUTO_INCREMENT) but the log records %d; replaying \
              it diverges from the original history"
             definite recorded);
      ]
    else if
      recorded = 0
      && ctx.entry.Log.rows_written > 0
      && potential_draws ctx.sv stmt > 0
    then
      [
        D.make ~index:ctx.index ~code:"UVA001" ~severity:D.Info ~pass:"nondet"
          "statement has branch-dependent nondeterministic draw sites and \
           no recorded values; the static analysis cannot confirm the \
           executed path drew none";
      ]
    else []

(* ------------------------------------------------------------------ *)
(* UVA002 — Rwset soundness cross-check                                 *)
(* ------------------------------------------------------------------ *)

let soundness ctx =
  let coarse = Coarse_rw.of_stmt ctx.sv ctx.entry.Log.stmt in
  List.map
    (fun (name, side) ->
      let side_str = match side with `Read -> "read" | `Write -> "write" in
      D.make ~index:ctx.index ~obj:name ~code:"UVA002" ~severity:D.Error
        ~pass:"soundness"
        (Printf.sprintf
           "the coarse %s-set reaches this object but the precise \
            column-wise sets never mention it on the %s side; the \
            dependency analysis under-approximates here and a replay set \
            may silently be too small"
           side_str side_str))
    (Coarse_rw.uncovered ctx.rw coarse)

(* ------------------------------------------------------------------ *)
(* UVA003/UVA004 — Hash-jumper & commutativity eligibility              *)
(* ------------------------------------------------------------------ *)

let rec contains_ddl = function
  | Transaction stmts -> List.exists contains_ddl stmts
  | s -> Ast.is_ddl s

let rec contains_dml = function
  | Transaction stmts -> List.exists contains_dml stmts
  | Insert _ | Insert_select _ | Update _ | Delete _ | Call _ -> true
  | _ -> false

let is_schema_key k = String.length k > 3 && String.sub k 0 3 = "_S."

let write_tables (rw : Rwset.rw) =
  Rwset.Colset.fold
    (fun key acc ->
      if is_schema_key key then acc
      else
        match String.index_opt key '.' with
        | Some i -> String.sub key 0 i :: acc
        | None -> acc)
    rw.Rwset.w []
  |> List.sort_uniq compare

let cluster ~seen_dml ctx =
  let stmt = ctx.entry.Log.stmt in
  let ddl =
    if contains_ddl stmt && seen_dml then
      [
        D.make ~index:ctx.index ~code:"UVA003" ~severity:D.Warning
          ~pass:"cluster"
          (Printf.sprintf
             "%s committed after DML began; mid-history schema changes \
              conflict with every statement of the touched objects, \
              serializing replay and defeating Hash-jumper clustering"
             (Ast.stmt_kind stmt));
      ]
    else []
  in
  let wt = write_tables ctx.rw in
  let multi =
    if List.length wt >= 2 then
      [
        D.make ~index:ctx.index ~code:"UVA004" ~severity:D.Info ~pass:"cluster"
          (Printf.sprintf
             "single statement writes %d tables (%s) — trigger fan-out, \
              FK write inheritance or transaction grouping; cross-cluster \
              writes merge otherwise independent replay clusters"
             (List.length wt)
             (String.concat ", " wt));
      ]
    else []
  in
  let viewy =
    match stmt with
    | Insert { table; _ }
    | Insert_select { table; _ }
    | Update { table; _ }
    | Delete { table; _ }
      when Schema_view.is_view ctx.sv table ->
        [
          D.make ~index:ctx.index ~obj:table ~code:"UVA004" ~severity:D.Info
            ~pass:"cluster"
            (Printf.sprintf
               "write through view %s expands to its parent table; view \
                indirection couples the view's readers to the parent's \
                replay cluster"
               table);
        ]
    | _ -> []
  in
  ddl @ multi @ viewy

(* ------------------------------------------------------------------ *)
(* UVA006 — unexplored-branch coverage                                  *)
(* ------------------------------------------------------------------ *)

let coverage_procedure ?index ~name body =
  let stubs = Uv_transpiler.Transpile.signal_stubs body in
  if stubs > 0 then
    [
      D.make ?index ~obj:name ~code:"UVA006" ~severity:D.Warning
        ~pass:"coverage"
        (Printf.sprintf
           "%d unexplored branch stub(s) (SIGNAL SQLSTATE '45000'); a \
            retroactive replay taking one aborts the transaction — \
            re-transpile with more DSE runs to close them"
           stubs);
    ]
  else []

let rec coverage_stmt ~index = function
  | Create_procedure { name; body; _ } -> coverage_procedure ~index ~name body
  | Transaction stmts -> List.concat_map (coverage_stmt ~index) stmts
  | _ -> []

let coverage ctx = coverage_stmt ~index:ctx.index ctx.entry.Log.stmt

(* ------------------------------------------------------------------ *)
(* UVA005 — dead writes                                                 *)
(* ------------------------------------------------------------------ *)

type dead_state = {
  lw : (string, int) Hashtbl.t;  (* column -> last writing index *)
  lr : (string, int) Hashtbl.t;  (* column -> last reading index *)
}

let dead_create () = { lw = Hashtbl.create 128; lr = Hashtbl.create 128 }

let is_real_col k = (not (is_schema_key k)) && String.contains k '.'

let dead_record st ctx =
  Rwset.Colset.iter
    (fun k -> if is_real_col k then Hashtbl.replace st.lr k ctx.index)
    ctx.rw.Rwset.r;
  Rwset.Colset.iter
    (fun k -> if is_real_col k then Hashtbl.replace st.lw k ctx.index)
    ctx.rw.Rwset.w

let dead_finish st =
  Hashtbl.fold
    (fun col wi acc ->
      let read_after =
        match Hashtbl.find_opt st.lr col with
        | Some ri -> ri > wi
        | None -> false
      in
      if read_after then acc
      else
        D.make ~index:wi ~obj:col ~code:"UVA005" ~severity:D.Info
          ~pass:"dead-write"
          "column written here is never read by any later statement; a \
           retroactive member writing only dead columns is a replay-set \
           pruning candidate"
        :: acc)
    st.lw []

(* ------------------------------------------------------------------ *)
(* UVA007/UVA008/UVA010 — retroactive-target validation                 *)
(* ------------------------------------------------------------------ *)

let known_object sv name =
  Schema_view.is_table sv name
  || Schema_view.is_view sv name
  || Schema_view.procedure sv name <> None

(* Column references at the statement's own scope (subselects have their
   own sources and are skipped). *)
let shallow_cols e =
  let rec go acc e =
    let acc = match e with Col (q, c) -> (q, c) :: acc | _ -> acc in
    List.fold_left go acc (Visit.expr_children e)
  in
  go [] e

let unknown_col ~table ~col =
  D.make ~obj:(Schema.qualified table col) ~code:"UVA008" ~severity:D.Error
    ~pass:"target"
    (Printf.sprintf "unknown column %s.%s as of the target index" table col)

let check_scope_cols sv table exprs =
  match Schema_view.table_columns sv table with
  | None -> []
  | Some cols ->
      List.concat_map
        (fun e ->
          List.filter_map
            (fun (qual, c) ->
              if String.equal c "*" then None
              else
                match qual with
                | Some ("NEW" | "OLD") -> None
                | Some q when String.equal q table ->
                    if List.mem c cols then None
                    else Some (unknown_col ~table ~col:c)
                | Some q -> (
                    match Schema_view.table_columns sv q with
                    | Some qcols when not (List.mem c qcols) ->
                        Some (unknown_col ~table:q ~col:c)
                    | _ -> None)
                | None ->
                    if List.mem c cols then None
                    else Some (unknown_col ~table ~col:c))
            (shallow_cols e))
        exprs

let fk_checks sv real ~assigned =
  match Schema_view.table_schema sv real with
  | None -> []
  | Some _ ->
      List.concat_map
        (fun (local, ftbl, fcol) ->
          let relevant =
            match assigned with
            | None -> true
            | Some cols -> List.mem local cols
          in
          if not relevant then []
          else
            match Schema_view.table_columns sv ftbl with
            | None ->
                [
                  D.make ~obj:(Schema.qualified real local) ~code:"UVA010"
                    ~severity:D.Error ~pass:"target"
                    (Printf.sprintf
                       "FOREIGN KEY %s.%s references table %s, which does \
                        not exist as of the target index"
                       real local ftbl);
                ]
            | Some fcols ->
                if List.mem fcol fcols then []
                else
                  [
                    D.make ~obj:(Schema.qualified real local) ~code:"UVA010"
                      ~severity:D.Error ~pass:"target"
                      (Printf.sprintf
                         "FOREIGN KEY %s.%s references missing column %s.%s"
                         real local ftbl fcol);
                  ])
        (Schema_view.foreign_keys sv real)

let fk_def_checks sv ~self ~self_columns columns =
  List.concat_map
    (fun (c : Schema.column) ->
      match c.Schema.references with
      | None -> []
      | Some (ftbl, fcol) ->
          let fcols =
            if String.equal ftbl self then Some self_columns
            else Schema_view.table_columns sv ftbl
          in
          (match fcols with
          | None ->
              [
                D.make ~obj:(Schema.qualified self c.Schema.col_name)
                  ~code:"UVA010" ~severity:D.Error ~pass:"target"
                  (Printf.sprintf
                     "FOREIGN KEY %s.%s references table %s, which does \
                      not exist as of the target index"
                     self c.Schema.col_name ftbl);
              ]
          | Some fcols ->
              if List.mem fcol fcols then []
              else
                [
                  D.make ~obj:(Schema.qualified self c.Schema.col_name)
                    ~code:"UVA010" ~severity:D.Error ~pass:"target"
                    (Printf.sprintf
                       "FOREIGN KEY %s.%s references missing column %s.%s"
                       self c.Schema.col_name ftbl fcol);
                ]))
    columns

let rec target_stmt sv (s : stmt) =
  match s with
  | Transaction stmts ->
      let sv = Schema_view.copy sv in
      List.concat_map
        (fun m ->
          let ds = target_stmt sv m in
          Schema_view.apply sv m;
          ds)
        stmts
  | Create_table { name; columns; _ } ->
      fk_def_checks sv ~self:name
        ~self_columns:(List.map (fun c -> c.Schema.col_name) columns)
        columns
  | Alter_table (name, Add_column c) ->
      fk_def_checks sv ~self:name ~self_columns:[ c.Schema.col_name ] [ c ]
  | Create_view { query; _ } ->
      List.filter_map
        (fun src ->
          if known_object sv src then None
          else
            Some
              (D.make ~obj:src ~code:"UVA007" ~severity:D.Error ~pass:"target"
                 (Printf.sprintf
                    "view definition reads unknown table or view %s as of \
                     the target index"
                    src)))
        (Coarse_rw.select_sources query)
  | s when Ast.is_ddl s -> []
  | s ->
      let coarse = Coarse_rw.of_stmt sv s in
      let unknown =
        Coarse_rw.Names.fold
          (fun name acc ->
            if known_object sv name then acc
            else
              D.make ~obj:name ~code:"UVA007" ~severity:D.Error ~pass:"target"
                (Printf.sprintf
                   "unknown table, view or procedure %s as of the target \
                    index"
                   name)
              :: acc)
          (Coarse_rw.Names.union coarse.Coarse_rw.cr coarse.Coarse_rw.cw)
          []
      in
      let shape =
        match s with
        | Insert { table; columns; values }
          when Schema_view.is_table sv table -> (
            let arity_error expected got =
              D.make ~obj:table ~code:"UVA008" ~severity:D.Error ~pass:"target"
                (Printf.sprintf
                   "INSERT arity mismatch: %d value(s) for %d column(s)" got
                   expected)
            in
            match columns with
            | Some cs ->
                let cols =
                  Option.value ~default:[] (Schema_view.table_columns sv table)
                in
                List.filter_map
                  (fun c ->
                    if List.mem c cols then None
                    else Some (unknown_col ~table ~col:c))
                  cs
                @ List.filter_map
                    (fun row ->
                      if List.length row = List.length cs then None
                      else Some (arity_error (List.length cs) (List.length row)))
                    values
            | None ->
                let ncols =
                  match Schema_view.table_columns sv table with
                  | Some cols -> List.length cols
                  | None -> 0
                in
                List.filter_map
                  (fun row ->
                    if List.length row = ncols then None
                    else Some (arity_error ncols (List.length row)))
                  values)
        | Update { table; assigns; where }
          when Schema_view.is_table sv table ->
            let cols =
              Option.value ~default:[] (Schema_view.table_columns sv table)
            in
            List.filter_map
              (fun (c, _) ->
                if List.mem c cols then None
                else Some (unknown_col ~table ~col:c))
              assigns
            @ check_scope_cols sv table
                (List.map snd assigns @ Option.to_list where)
        | Delete { table; where } when Schema_view.is_table sv table ->
            check_scope_cols sv table (Option.to_list where)
        | _ -> []
      in
      let fk =
        match s with
        | Insert { table; _ } | Insert_select { table; _ } ->
            fk_checks sv (Coarse_rw.real_target sv table) ~assigned:None
        | Update { table; assigns; _ } ->
            fk_checks sv
              (Coarse_rw.real_target sv table)
              ~assigned:(Some (List.map fst assigns))
        | _ -> []
      in
      unknown @ shape @ fk
