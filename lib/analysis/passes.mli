(** The individual static-analysis passes.

    Each pass is a pure function from a prepared per-entry context (the
    log entry, the schema view as of the entry, and its precise
    column-wise sets) — or from whole-history accumulations — to
    diagnostics. The {!Lint} driver walks a history once, threads the
    schema view, and dispatches to the enabled passes. *)

open Uv_sql

type entry_ctx = {
  index : int;  (** 1-based commit index *)
  entry : Uv_db.Log.entry;
  sv : Uv_retroactive.Schema_view.t;  (** schema state before the entry *)
  rw : Uv_retroactive.Rwset.rw;  (** precise column-wise sets *)
}

val nondet : entry_ctx -> Diagnostic.t list
(** [UVA001]. Statically counts the entry's non-deterministic draw sites
    (RAND/NOW-family calls, AUTO_INCREMENT fills) and compares with the
    recorded draws. Fewer recorded values than *guaranteed* sites is an
    error (replay diverges); a writing entry with zero recorded values
    but branch-dependent sites (procedure bodies, trigger chains) is an
    info — staleness the static analysis cannot rule out. *)

val soundness : entry_ctx -> Diagnostic.t list
(** [UVA002]. Diffs {!Coarse_rw.of_stmt} against the precise sets: any
    object the coarse walk reaches that the precise sets do not mention
    on the same side is an under-approximated dependency. *)

val cluster : seen_dml:bool -> entry_ctx -> Diagnostic.t list
(** [UVA003]/[UVA004]. Hash-jumper & commutativity eligibility: DDL
    after DML began (warning), and single statements whose write set
    spans several real tables or goes through a view (info) — both
    merge or serialize replay clusters. *)

val contains_dml : Ast.stmt -> bool
(** A statement that (possibly nested in a transaction) performs DML. *)

val contains_ddl : Ast.stmt -> bool

val coverage : entry_ctx -> Diagnostic.t list
(** [UVA006]. CREATE PROCEDURE entries whose bodies carry unexplored
    branch stubs (SIGNAL '45000'). *)

val coverage_procedure :
  ?index:int -> name:string -> Ast.pstmt list -> Diagnostic.t list
(** The same check over one procedure body — used for checkpoint-catalog
    procedures that predate the log. *)

type dead_state

val dead_create : unit -> dead_state

val dead_record : dead_state -> entry_ctx -> unit
(** Accumulate the entry's reads and writes. *)

val dead_finish : dead_state -> Diagnostic.t list
(** [UVA005]. Columns whose last write is never followed by a read. *)

val target_stmt :
  Uv_retroactive.Schema_view.t -> Ast.stmt -> Diagnostic.t list
(** [UVA007]/[UVA008]/[UVA010]. Type-check a retroactive Add/Change
    statement against the schema view as of τ: unknown objects, unknown
    columns / INSERT arity, unresolvable FOREIGN KEYs. *)
