module D = Diagnostic

let esc = D.json_escape

let level_of = function
  | D.Error -> "error"
  | D.Warning -> "warning"
  | D.Info -> "note"

(* Rule descriptions come from the registry in diagnostic.mli; keep the
   short texts here in sync with it. *)
let rule_text code =
  match code with
  | "UVA001" -> "Nondeterministic draw sites under-recorded in the log"
  | "UVA002" -> "Precise read/write sets miss an object the coarse pass finds"
  | "UVA003" -> "DDL committed mid-history after DML began"
  | "UVA004" -> "One statement writes several real tables"
  | "UVA005" -> "Column written but never read afterwards"
  | "UVA006" -> "Procedure carries unexplored branch stubs"
  | "UVA007" -> "Target references an unknown table, view, or procedure"
  | "UVA008" -> "Target references an unknown column or has wrong arity"
  | "UVA009" -> "Target commit index out of range"
  | "UVA010" -> "Target exercises an unresolvable FOREIGN KEY"
  | "UVA011" -> "Persisted statement log is damaged"
  | "UVA012" -> "Persisted log record fails to replay"
  | "UVA013" -> "Replayed row hashes diverge from the record"
  | "UVA014" -> "Statement matches no extracted query template"
  | "UVA015" -> "Static template matrix fails to over-approximate"
  | "UVA016" -> "SQL_exec argument escapes template extraction"
  | "UVA017" -> "Template slot flows from a blackbox native call"
  | _ -> "Ultraverse diagnostic"

let result_of (d : D.t) =
  let props =
    List.filter_map Fun.id
      [
        Option.map (Printf.sprintf "\"index\": %d") d.D.index;
        Some (Printf.sprintf "\"pass\": \"%s\"" (esc d.D.pass));
      ]
  in
  let logical =
    match d.D.obj with
    | None -> ""
    | Some o ->
        Printf.sprintf ", \"locations\": [{\"logicalLocations\": [{\"name\": \"%s\"}]}]"
          (esc o)
  in
  Printf.sprintf
    "      {\"ruleId\": \"%s\", \"level\": \"%s\", \"message\": {\"text\": \
     \"%s\"}%s, \"properties\": {%s}}"
    (esc d.D.code) (level_of d.D.severity)
    (esc d.D.message)
    logical
    (String.concat ", " props)

let rule_of code =
  Printf.sprintf
    "        {\"id\": \"%s\", \"shortDescription\": {\"text\": \"%s\"}}" code
    (rule_text code)

let report ?(tool_version = "0.1") ds =
  let ds = List.sort D.compare ds in
  let codes =
    List.sort_uniq compare (List.map (fun (d : D.t) -> d.D.code) ds)
  in
  String.concat "\n"
    [
      "{";
      "  \"$schema\": \
       \"https://json.schemastore.org/sarif-2.1.0.json\",";
      "  \"version\": \"2.1.0\",";
      "  \"runs\": [{";
      "    \"tool\": {\"driver\": {";
      "      \"name\": \"ultraverse\",";
      Printf.sprintf "      \"version\": \"%s\"," (esc tool_version);
      "      \"informationUri\": \
       \"https://github.com/ultraverse/ultraverse\",";
      "      \"rules\": [";
      String.concat ",\n" (List.map rule_of codes);
      "      ]";
      "    }},";
      "    \"results\": [";
      String.concat ",\n" (List.map result_of ds);
      "    ]";
      "  }]";
      "}";
    ]
