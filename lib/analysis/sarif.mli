(** Minimal SARIF 2.1.0 export of lint findings ([ultraverse lint
    --format sarif]).

    Mapping: one run, tool driver ["ultraverse"], one
    [reportingDescriptor] per distinct diagnostic code; each finding
    becomes a [result] with [ruleId] = code, [level] = severity
    (error→error, warning→warning, info→note), [message.text], the
    database object (if any) as a logical location, and the 1-based
    commit index plus producing pass under [properties]. There are no
    physical file locations — findings are about log entries, not source
    files. *)

val report : ?tool_version:string -> Diagnostic.t list -> string
(** Serialize findings (sorted with {!Diagnostic.compare}) as a SARIF
    2.1.0 JSON document. *)
