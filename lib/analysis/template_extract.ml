open Uv_sql
module Sym = Uv_symexec.Sym
module Trace = Uv_transpiler.Trace
module Concolic = Uv_transpiler.Concolic
module Transpile = Uv_transpiler.Transpile
module Schema_view = Uv_retroactive.Schema_view
module Rwset = Uv_retroactive.Rwset

type source = Sparam of string | Sdb | Sblackbox | Sconst | Smixed

type kind = Kstmt | Kcall

type template = {
  id : int;
  txn : string;
  kind : kind;
  stmt : Ast.stmt;
  slots : (string * source) list;
  rw : Rwset.rw;
}

type set = {
  templates : template list;
  txns : (string * int) list;
  by_shape : (string, template list) Hashtbl.t;
  base_sv : Schema_view.t;
}

let templates s = s.templates
let txns s = s.txns
let base_sv s = s.base_sv

(* ------------------------------------------------------------------ *)
(* AST mapping (slot renaming)                                          *)
(* ------------------------------------------------------------------ *)

(* [f] may rewrite any expression node wholesale; [None] recurses. The
   traversal order is the canonical slot-numbering order, so it must stay
   deterministic: left-to-right, clause order as declared in [Ast]. *)
let rec map_expr f (e : Ast.expr) : Ast.expr =
  match f e with
  | Some e' -> e'
  | None -> (
      match e with
      | Ast.Lit _ | Ast.Col _ | Ast.Var _ -> e
      | Ast.Binop (op, a, b) -> Ast.Binop (op, map_expr f a, map_expr f b)
      | Ast.Unop (op, a) -> Ast.Unop (op, map_expr f a)
      | Ast.Fun_call (n, args) -> Ast.Fun_call (n, List.map (map_expr f) args)
      | Ast.Subselect s -> Ast.Subselect (map_select f s)
      | Ast.Exists s -> Ast.Exists (map_select f s)
      | Ast.In_list (e0, es) ->
          Ast.In_list (map_expr f e0, List.map (map_expr f) es)
      | Ast.Between (a, b, c) ->
          Ast.Between (map_expr f a, map_expr f b, map_expr f c)
      | Ast.Is_null (a, neg) -> Ast.Is_null (map_expr f a, neg))

and map_select f (s : Ast.select) : Ast.select =
  {
    s with
    Ast.sel_items =
      List.map
        (function
          | Ast.Star -> Ast.Star
          | Ast.Item (e, a) -> Ast.Item (map_expr f e, a))
        s.Ast.sel_items;
    sel_joins =
      List.map
        (fun j -> { j with Ast.join_on = map_expr f j.Ast.join_on })
        s.Ast.sel_joins;
    sel_where = Option.map (map_expr f) s.Ast.sel_where;
    sel_group_by = List.map (map_expr f) s.Ast.sel_group_by;
    sel_having = Option.map (map_expr f) s.Ast.sel_having;
    sel_order_by = List.map (fun (e, d) -> (map_expr f e, d)) s.Ast.sel_order_by;
  }

let map_stmt f (s : Ast.stmt) : Ast.stmt =
  match s with
  | Ast.Select sel -> Ast.Select (map_select f sel)
  | Ast.Insert { table; columns; values } ->
      Ast.Insert
        { table; columns; values = List.map (List.map (map_expr f)) values }
  | Ast.Insert_select { table; columns; query } ->
      Ast.Insert_select { table; columns; query = map_select f query }
  | Ast.Update { table; assigns; where } ->
      Ast.Update
        {
          table;
          assigns = List.map (fun (c, e) -> (c, map_expr f e)) assigns;
          where = Option.map (map_expr f) where;
        }
  | Ast.Delete { table; where } ->
      Ast.Delete { table; where = Option.map (map_expr f) where }
  | Ast.Call (n, args) -> Ast.Call (n, List.map (map_expr f) args)
  | other -> other

(* ------------------------------------------------------------------ *)
(* Slot source classification                                           *)
(* ------------------------------------------------------------------ *)

let classify_sym sym =
  let rec root = function
    | Sym.Field (s, _) | Sym.Item (s, _) -> root s
    | s -> s
  in
  let kinds =
    List.map
      (fun l ->
        match root l with
        | Sym.Input p -> `In p
        | Sym.Db_result _ -> `Db
        | Sym.Blackbox _ -> `Bb
        | _ -> `Const)
      (Sym.base_symbols sym)
  in
  if kinds = [] then Sconst
  else if List.mem `Bb kinds then Sblackbox
  else if List.for_all (function `In _ -> true | _ -> false) kinds then
    match (sym, kinds) with
    | Sym.Input p, _ -> Sparam p
    | _, [ `In p ] -> Sparam p
    | _ -> Smixed
  else if List.mem `Db kinds then Sdb
  else Sconst

let source_label = function
  | Sparam p -> "param:" ^ p
  | Sdb -> "db"
  | Sblackbox -> "blackbox"
  | Sconst -> "const"
  | Smixed -> "mixed"

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                     *)
(* ------------------------------------------------------------------ *)

(* Rename the DSE's [__h<n>] holes to stable [p0, p1, ...] slots in
   traversal order, so the same statement shape reached on different
   paths (or by different transactions) canonicalizes identically. *)
let canonicalize (r : Trace.sql_record) =
  let ren = Hashtbl.create 8 in
  let order = ref [] in
  let counter = ref 0 in
  let f = function
    | Ast.Var v ->
        let nv =
          match Hashtbl.find_opt ren v with
          | Some nv -> nv
          | None ->
              let nv = Printf.sprintf "p%d" !counter in
              incr counter;
              Hashtbl.replace ren v nv;
              order := (v, nv) :: !order;
              nv
        in
        Some (Ast.Var nv)
    | _ -> None
  in
  let stmt = map_stmt f r.Trace.stmt in
  let slots =
    List.rev_map
      (fun (old, nv) ->
        let src =
          match List.assoc_opt old r.Trace.holes with
          | Some sym -> classify_sym sym
          | None -> Smixed
        in
        (nv, src))
      !order
  in
  (stmt, slots)

(* ------------------------------------------------------------------ *)
(* Shape index                                                          *)
(* ------------------------------------------------------------------ *)

let shape_key (s : Ast.stmt) =
  match s with
  | Ast.Insert { table; _ } | Ast.Insert_select { table; _ } -> "I|" ^ table
  | Ast.Update { table; _ } -> "U|" ^ table
  | Ast.Delete { table; _ } -> "D|" ^ table
  | Ast.Select sel -> (
      "S|" ^ match sel.Ast.sel_from with Some (t, _) -> t | None -> "")
  | Ast.Call (name, _) -> "C|" ^ name
  | other -> "X|" ^ Ast.stmt_kind other

(* ------------------------------------------------------------------ *)
(* Extraction                                                           *)
(* ------------------------------------------------------------------ *)

let rec collect_records acc = function
  | Trace.Leaf -> acc
  | Trace.Sql (r, k) -> collect_records (r :: acc) k
  | Trace.Blackbox (_, _, k) -> collect_records acc k
  | Trace.Branch (_, a, b) ->
      let acc = match a with Some t -> collect_records acc t | None -> acc in
      (match b with Some t -> collect_records acc t | None -> acc)

let extract ?max_runs ~schema ~source () =
  let program = Uv_applang.Parser.parse_program source in
  let sv = Schema_view.create () in
  List.iter (Schema_view.apply sv) (Parser.parse_script schema);
  let names = List.sort compare (Transpile.sql_functions program) in
  let explored =
    List.map
      (fun name ->
        let ex = Concolic.explore ?max_runs ~program ~name () in
        (name, ex, Transpile.transpile_tree ~name ~exploration:ex))
      names
  in
  (* install the transpiled procedures first: CALL-granularity templates
     need their bodies in the schema view for set expansion *)
  List.iter
    (fun (_, _, tp) -> Schema_view.apply sv tp.Transpile.procedure)
    explored;
  let seen = Hashtbl.create 64 in
  let templates = ref [] in
  let next_id = ref 0 in
  let add txn kind stmt slots =
    let key = Printer.stmt_compact stmt in
    if not (Hashtbl.mem seen key) then begin
      let t =
        { id = !next_id; txn; kind; stmt; slots; rw = Rwset.of_stmt sv stmt }
      in
      incr next_id;
      Hashtbl.replace seen key t;
      templates := t :: !templates
    end
  in
  List.iter
    (fun (name, (ex : Concolic.exploration), (tp : Transpile.t)) ->
      (* statement-granularity: every SQL node of the execution path
         tree, canonicalized (pre-order, so numbering is deterministic) *)
      List.iter
        (fun r ->
          let stmt, slots = canonicalize r in
          add name Kstmt stmt slots)
        (List.rev (collect_records [] ex.Concolic.tree));
      (* call-granularity: the transpiled procedure invocation *)
      let app = List.map (fun p -> (p, Sparam p)) tp.Transpile.app_params in
      let bb =
        List.map
          (fun (p, _, _) -> (p, Sblackbox))
          tp.Transpile.blackbox_params
      in
      let slots = app @ bb in
      let stmt =
        Ast.Call
          (tp.Transpile.proc_name, List.map (fun (p, _) -> Ast.Var p) slots)
      in
      add name Kcall stmt slots)
    explored;
  let templates = List.rev !templates in
  let by_shape = Hashtbl.create 64 in
  List.iter
    (fun t ->
      let key = shape_key t.stmt in
      let prev = Option.value (Hashtbl.find_opt by_shape key) ~default:[] in
      Hashtbl.replace by_shape key (prev @ [ t ]))
    templates;
  {
    templates;
    txns =
      List.map (fun (name, _, tp) -> (name, tp.Transpile.unexplored)) explored;
    by_shape;
    base_sv = sv;
  }

(* ------------------------------------------------------------------ *)
(* Matching                                                             *)
(* ------------------------------------------------------------------ *)

exception No_match

let neg_value = function
  | Value.Int n -> Some (Value.Int (-n))
  | Value.Float x -> Some (Value.Float (-.x))
  | _ -> None

let rec m_expr bind (pat : Ast.expr) (e : Ast.expr) =
  match (pat, e) with
  | Ast.Var s, Ast.Lit v -> bind s v
  | Ast.Var s, Ast.Unop (Ast.Neg, Ast.Lit v) -> (
      match neg_value v with Some v -> bind s v | None -> raise No_match)
  | Ast.Var _, _ -> raise No_match
  | Ast.Lit a, Ast.Lit b -> if not (Value.equal a b) then raise No_match
  | Ast.Col (qa, ca), Ast.Col (qb, cb) ->
      if qa <> qb || ca <> cb then raise No_match
  | Ast.Binop (o1, a1, b1), Ast.Binop (o2, a2, b2) ->
      if o1 <> o2 then raise No_match;
      m_expr bind a1 a2;
      m_expr bind b1 b2
  | Ast.Unop (o1, a1), Ast.Unop (o2, a2) ->
      if o1 <> o2 then raise No_match;
      m_expr bind a1 a2
  | Ast.Fun_call (n1, a1), Ast.Fun_call (n2, a2) ->
      if n1 <> n2 || List.length a1 <> List.length a2 then raise No_match;
      List.iter2 (m_expr bind) a1 a2
  | Ast.Subselect s1, Ast.Subselect s2 | Ast.Exists s1, Ast.Exists s2 ->
      m_select bind s1 s2
  | Ast.In_list (e1, l1), Ast.In_list (e2, l2) ->
      if List.length l1 <> List.length l2 then raise No_match;
      m_expr bind e1 e2;
      List.iter2 (m_expr bind) l1 l2
  | Ast.Between (a1, b1, c1), Ast.Between (a2, b2, c2) ->
      m_expr bind a1 a2;
      m_expr bind b1 b2;
      m_expr bind c1 c2
  | Ast.Is_null (e1, n1), Ast.Is_null (e2, n2) ->
      if n1 <> n2 then raise No_match;
      m_expr bind e1 e2
  | _ -> raise No_match

and m_opt bind p e =
  match (p, e) with
  | None, None -> ()
  | Some p, Some e -> m_expr bind p e
  | _ -> raise No_match

and m_select bind (p : Ast.select) (s : Ast.select) =
  if
    p.Ast.sel_distinct <> s.Ast.sel_distinct
    || p.Ast.sel_from <> s.Ast.sel_from
    || p.Ast.sel_limit <> s.Ast.sel_limit
    || p.Ast.sel_offset <> s.Ast.sel_offset
    || List.length p.Ast.sel_items <> List.length s.Ast.sel_items
    || List.length p.Ast.sel_joins <> List.length s.Ast.sel_joins
    || List.length p.Ast.sel_group_by <> List.length s.Ast.sel_group_by
    || List.length p.Ast.sel_order_by <> List.length s.Ast.sel_order_by
  then raise No_match;
  List.iter2
    (fun a b ->
      match (a, b) with
      | Ast.Star, Ast.Star -> ()
      | Ast.Item (e1, al1), Ast.Item (e2, al2) ->
          if al1 <> al2 then raise No_match;
          m_expr bind e1 e2
      | _ -> raise No_match)
    p.Ast.sel_items s.Ast.sel_items;
  List.iter2
    (fun (j1 : Ast.join) (j2 : Ast.join) ->
      if j1.Ast.join_table <> j2.Ast.join_table
         || j1.Ast.join_alias <> j2.Ast.join_alias
      then raise No_match;
      m_expr bind j1.Ast.join_on j2.Ast.join_on)
    p.Ast.sel_joins s.Ast.sel_joins;
  m_opt bind p.Ast.sel_where s.Ast.sel_where;
  List.iter2 (m_expr bind) p.Ast.sel_group_by s.Ast.sel_group_by;
  m_opt bind p.Ast.sel_having s.Ast.sel_having;
  List.iter2
    (fun (e1, d1) (e2, d2) ->
      if d1 <> d2 then raise No_match;
      m_expr bind e1 e2)
    p.Ast.sel_order_by s.Ast.sel_order_by

let m_stmt bind (p : Ast.stmt) (s : Ast.stmt) =
  match (p, s) with
  | Ast.Select p1, Ast.Select s1 -> m_select bind p1 s1
  | Ast.Insert i1, Ast.Insert i2 ->
      if i1.table <> i2.table || i1.columns <> i2.columns then raise No_match;
      if List.length i1.values <> List.length i2.values then raise No_match;
      List.iter2
        (fun r1 r2 ->
          if List.length r1 <> List.length r2 then raise No_match;
          List.iter2 (m_expr bind) r1 r2)
        i1.values i2.values
  | Ast.Insert_select i1, Ast.Insert_select i2 ->
      if i1.table <> i2.table || i1.columns <> i2.columns then raise No_match;
      m_select bind i1.query i2.query
  | Ast.Update u1, Ast.Update u2 ->
      if u1.table <> u2.table then raise No_match;
      if List.map fst u1.assigns <> List.map fst u2.assigns then
        raise No_match;
      List.iter2 (fun (_, e1) (_, e2) -> m_expr bind e1 e2) u1.assigns
        u2.assigns;
      m_opt bind u1.where u2.where
  | Ast.Delete d1, Ast.Delete d2 ->
      if d1.table <> d2.table then raise No_match;
      m_opt bind d1.where d2.where
  | Ast.Call (n1, a1), Ast.Call (n2, a2) ->
      if n1 <> n2 || List.length a1 <> List.length a2 then raise No_match;
      List.iter2 (m_expr bind) a1 a2
  | _ -> raise No_match

let match_template tpl stmt =
  let binding = Hashtbl.create 8 in
  let bind s v =
    match Hashtbl.find_opt binding s with
    | Some v0 -> if not (Value.equal v0 v) then raise No_match
    | None -> Hashtbl.replace binding s v
  in
  match m_stmt bind tpl.stmt stmt with
  | () ->
      Some
        (List.map
           (fun (s, _) ->
             ( s,
               match Hashtbl.find_opt binding s with
               | Some v -> v
               | None -> Value.Null ))
           tpl.slots)
  | exception No_match -> None

let match_entry set stmt =
  match Hashtbl.find_opt set.by_shape (shape_key stmt) with
  | None -> None
  | Some tpls ->
      List.find_map
        (fun tpl ->
          match match_template tpl stmt with
          | Some b -> Some (tpl, b)
          | None -> None)
        tpls

let find set id = List.find_opt (fun t -> t.id = id) set.templates
