(** Static extraction of parameterized SQL templates from MiniJS
    application transactions (the template half of the paper's "analyze
    query templates, not queries" claim, §2/§4).

    Each application-level transaction is explored with the existing
    concolic DSE driver; every SQL statement on every explored path is
    parsed with its symbolic holes and canonicalized — holes renamed to
    stable positional slots [p0, p1, ...] in traversal order, identical
    shapes deduplicated across paths and transactions — yielding a
    *closed template set* for the workload. Two granularities coexist:

    - [Kstmt]: one template per distinct statement shape, matching the
      raw-SQL entries a non-transpiled application logs;
    - [Kcall]: one template per transaction, [CALL uv_txn(p0, ...)],
      matching the entries a transpiled application logs.

    Each template carries the column-wise read/write sets computed
    *statically* against the workload schema (slots contribute nothing,
    exactly like literals, so a template's sets equal the dynamic sets of
    every entry matching it while the schema is unchanged — the property
    lint pass UVA015 verifies on real logs). *)

open Uv_sql

type source =
  | Sparam of string  (** transaction input parameter (recorded) *)
  | Sdb  (** database-result flow (deterministic under replay) *)
  | Sblackbox  (** blackbox native API — unrecorded nondeterminism *)
  | Sconst  (** concretized constant *)
  | Smixed  (** mixture of input parameters *)

type kind = Kstmt | Kcall

type template = {
  id : int;  (** dense, 0-based, deterministic for a given workload *)
  txn : string;  (** transaction that first produced the shape *)
  kind : kind;
  stmt : Ast.stmt;  (** canonical statement; slots are [Var "p<i>"] *)
  slots : (string * source) list;  (** slot name -> value source *)
  rw : Uv_retroactive.Rwset.rw;  (** static column-wise sets *)
}

type set

val extract :
  ?max_runs:int -> schema:string -> source:string -> unit -> set
(** Explore every SQL-executing function of the MiniJS [source] (sorted
    by name, fixed DSE seed — extraction is deterministic) against the
    [schema] DDL script. The returned set's schema view additionally has
    every transpiled procedure installed, so [Kcall] template sets expand
    procedure bodies. *)

val templates : set -> template list
(** In id order. *)

val txns : set -> (string * int) list
(** Explored transactions with their unexplored-branch stub counts. *)

val base_sv : set -> Uv_retroactive.Schema_view.t
(** Schema view the template sets were computed against (schema DDL plus
    transpiled procedures). *)

val match_entry :
  set -> Ast.stmt -> (template * (string * Value.t) list) option
(** Structurally match a concrete logged statement against the template
    set: a slot matches any literal (binding it), every other node must
    be equal; a slot bound twice must bind equal values. Returns the
    template and the full slot binding, or [None] — dynamic SQL, DDL and
    ad-hoc statements fall back to the per-statement path. *)

val match_template :
  template -> Ast.stmt -> (string * Value.t) list option
(** Match against one specific template. *)

val find : set -> int -> template option

val source_label : source -> string
(** ["param:<name>"], ["db"], ["blackbox"], ["const"], ["mixed"]. *)

val shape_key : Ast.stmt -> string
(** Coarse index key (statement class + target object) grouping the
    templates a statement could possibly match. *)
