open Uv_sql
module Analyzer = Uv_retroactive.Analyzer
module Rwset = Uv_retroactive.Rwset
module Log = Uv_db.Log
module T = Template_extract
module M = Template_matrix

type assigned = {
  tid : int;
  binding : (string * Value.t) list;
  mutable gvals : (string * string) list;
      (* table -> canonical guard value; recomputed when the analyzer's
         RI merge generation moves *)
}

type t = {
  set : T.set;
  matrix : M.t;
  assign : assigned option array;
  by_tid : (int, int list) Hashtbl.t;  (* ascending entry indexes *)
  mutable by_gval : (string, int list) Hashtbl.t;
      (* "tid|table|canonical value" -> ascending entry indexes *)
  unmatched : int list;  (* ascending *)
  n : int;
  mutable generation : int;
}

let unmatched fp = fp.unmatched

let assignment fp i =
  if i < 1 || i > fp.n then None
  else
    Option.map (fun a -> (a.tid, a.binding)) fp.assign.(i - 1)

let matched_count fp = fp.n - List.length fp.unmatched

let guard_values fp i =
  if i < 1 || i > fp.n then []
  else match fp.assign.(i - 1) with None -> [] | Some a -> a.gvals

let gkey tid table cv = string_of_int tid ^ "|" ^ table ^ "|" ^ cv

let canonical_gval anl matrix ~tid ~table v =
  if M.guard_on_dim0 matrix ~id:tid ~table then
    Analyzer.canonical_row_value anl ~table v
  else Value.serialize v

let compute_gvals anl matrix ~tid binding =
  List.filter_map
    (fun (table, _) ->
      match M.guard_value matrix ~id:tid ~table binding with
      | None -> None
      | Some (_gcol, v) ->
          Some (table, canonical_gval anl matrix ~tid ~table v))
    (M.guards matrix tid)

let push tbl key i =
  let prev = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
  Hashtbl.replace tbl key (i :: prev)

let rebuild_gvals fp anl =
  let by_gval = Hashtbl.create 256 in
  Array.iteri
    (fun j a ->
      match a with
      | None -> ()
      | Some a ->
          a.gvals <- compute_gvals anl fp.matrix ~tid:a.tid a.binding;
          List.iter
            (fun (table, cv) -> push by_gval (gkey a.tid table cv) (j + 1))
            a.gvals)
    fp.assign;
  Hashtbl.iter
    (fun k l -> Hashtbl.replace by_gval k (List.rev l))
    (Hashtbl.copy by_gval);
  fp.by_gval <- by_gval;
  fp.generation <- Analyzer.row_merge_generation anl

let refresh fp anl =
  if Analyzer.row_merge_generation anl <> fp.generation then
    rebuild_gvals fp anl

let prepare ?log ~set ~matrix anl =
  let n = Analyzer.length anl in
  (* DDL anywhere in the history invalidates the statically computed
     template sets for entries after it; degrade the whole history to
     the dynamic path (sound, and workload histories carry no DDL) *)
  let has_ddl = ref false in
  for i = 1 to n do
    if Passes.contains_ddl (Analyzer.info anl i).Analyzer.stmt then
      has_ddl := true
  done;
  let assign = Array.make n None in
  let by_tid = Hashtbl.create 64 in
  let unmatched = ref [] in
  for i = n downto 1 do
    let inf = Analyzer.info anl i in
    match
      if !has_ddl then None else T.match_entry set inf.Analyzer.stmt
    with
    | Some (tpl, binding) ->
        assign.(i - 1) <- Some { tid = tpl.T.id; binding; gvals = [] };
        push by_tid tpl.T.id i;
        (match log with
        | Some l when i <= Log.length l ->
            Log.set_template_id (Log.entry l i) (Some tpl.T.id)
        | _ -> ())
    | None -> unmatched := i :: !unmatched
  done;
  let fp =
    {
      set;
      matrix;
      assign;
      by_tid;
      by_gval = Hashtbl.create 256;
      unmatched = !unmatched;
      n;
      generation = min_int;
    }
  in
  rebuild_gvals fp anl;
  fp

(* ------------------------------------------------------------------ *)
(* Column-closure candidate generator                                   *)
(* ------------------------------------------------------------------ *)

let overlap a b = not (Rwset.Colset.is_empty (Rwset.Colset.inter a b))

let dyn_conflict (a : Rwset.rw) (b : Rwset.rw) =
  overlap a.Rwset.w b.Rwset.r
  || overlap a.Rwset.r b.Rwset.w
  || overlap a.Rwset.w b.Rwset.w

(* The asking side of one candidate request: a matched template instance
   (seed or member), or nothing — then candidates come from a dynamic
   scan over the per-statement sets. *)
let make_col_joins fp anl ~refined ~(seed : assigned list option) ~live =
  let cache : (string, int list) Hashtbl.t = Hashtbl.create 64 in
  let scan ~min_idx ~offer key fetch =
    let entries =
      match Hashtbl.find_opt cache key with Some l -> l | None -> fetch ()
    in
    let kept =
      List.filter
        (fun i ->
          if live i then begin
            if i > min_idx then offer i;
            true
          end
          else false)
        entries
    in
    Hashtbl.replace cache key kept
  in
  let bucket tbl key = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
  let first = ref true in
  fun ~min_idx (rw : Rwset.rw) (_rows : Uv_retroactive.Rowset.entry_rows) ->
    let acc = ref [] in
    let offer i = acc := i :: !acc in
    let reads_live = not (Rwset.Colset.is_empty rw.Rwset.r) in
    let writes_live = not (Rwset.Colset.is_empty rw.Rwset.w) in
    let offer_matched (a : assigned) =
      List.iter
        (fun (bid, (p : M.pair)) ->
          let dir_ok =
            (writes_live && (p.M.ww <> [] || p.M.wr <> []))
            || (reads_live && p.M.rw <> [])
          in
          if dir_ok then
            if refined && p.M.prunable then
              List.iter
                (fun tbl ->
                  match List.assoc_opt tbl a.gvals with
                  | Some cv ->
                      scan ~min_idx ~offer (gkey bid tbl cv) (fun () ->
                          bucket fp.by_gval (gkey bid tbl cv))
                  | None ->
                      scan ~min_idx ~offer ("t|" ^ string_of_int bid)
                        (fun () -> bucket fp.by_tid bid))
                p.M.guard_tables
            else
              scan ~min_idx ~offer ("t|" ^ string_of_int bid) (fun () ->
                  bucket fp.by_tid bid))
        (M.pairs_for fp.matrix a.tid)
    in
    let offer_dynamic () =
      for j = 1 to fp.n do
        if
          live j && j > min_idx
          && dyn_conflict rw (Analyzer.info anl j).Analyzer.rw
        then offer j
      done
    in
    let offer_unmatched () =
      List.iter
        (fun j ->
          if
            live j && j > min_idx
            && dyn_conflict rw (Analyzer.info anl j).Analyzer.rw
          then offer j)
        fp.unmatched
    in
    let asking =
      if !first then begin
        first := false;
        match seed with Some s -> `Matched s | None -> `Dynamic
      end
      else
        match fp.assign.(min_idx - 1) with
        | Some a -> `Matched [ a ]
        | None -> `Dynamic
    in
    (match asking with
    | `Matched instances ->
        List.iter offer_matched instances;
        offer_unmatched ()
    | `Dynamic -> offer_dynamic ());
    !acc

(* Seed template instances for a target: [Remove]/[Change] use the
   stamped assignment of the entry at τ; [Add]/[Change] match the new
   statement on the fly. [None] — any unmatched component — degrades the
   whole seed to the dynamic scan. *)
let seed_spec fp anl (target : Analyzer.target) =
  let of_entry tau =
    if tau >= 1 && tau <= fp.n then fp.assign.(tau - 1) else None
  in
  let of_stmt stmt =
    match T.match_entry fp.set stmt with
    | None -> None
    | Some (tpl, binding) ->
        Some
          {
            tid = tpl.T.id;
            binding;
            gvals = compute_gvals anl fp.matrix ~tid:tpl.T.id binding;
          }
  in
  match target.Analyzer.op with
  | Analyzer.Remove ->
      Option.map (fun a -> [ a ]) (of_entry target.Analyzer.tau)
  | Analyzer.Add stmt -> Option.map (fun a -> [ a ]) (of_stmt stmt)
  | Analyzer.Change stmt -> (
      match (of_entry target.Analyzer.tau, of_stmt stmt) with
      | Some a, Some b -> Some [ a; b ]
      | _ -> None)

let replay_set ?obs ?(refined = true) ?mode fp anl target =
  refresh fp anl;
  (* the disjointness refinement reasons about rows: pruning a
     column-wise candidate is only covered by Theorem E.20's
     intersection when the row closure runs too *)
  let refined =
    refined && match mode with None | Some Analyzer.Cell -> true | Some _ -> false
  in
  let seed = seed_spec fp anl target in
  Analyzer.replay_set_via ?obs ?mode anl
    ~col_joins:(make_col_joins fp anl ~refined ~seed)
    target

(* ------------------------------------------------------------------ *)
(* Conflict-DAG edge construction                                       *)
(* ------------------------------------------------------------------ *)

let scan_limit = 64

(* Matrix-backed ordering edges over 𝕀: each member scans the most
   recent members of every conflicting template (per guard-value bucket
   when the pair is prunable), newest first, edge per scanned
   predecessor; at the cap one conservative edge to the next predecessor
   closes the chain, mirroring the oracle's bucket cap. Unmatched
   members order dynamically against recent members on both sides. The
   row-level write-write table edges of the oracle are unioned in — two
   templates can write disjoint columns of one row. *)
let exec_dependency_edges ?(refined = true) fp anl ~members =
  refresh fp anl;
  let recent_tid : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let recent_gval : (string, int list) Hashtbl.t = Hashtbl.create 256 in
  let recent_all = ref [] in
  let recent_unmatched = ref [] in
  let edges = ref [] in
  let scan_recent i lst =
    let rec go k = function
      | [] -> ()
      | j :: rest ->
          if k >= scan_limit then edges := (i, j) :: !edges
          else begin
            edges := (i, j) :: !edges;
            go (k + 1) rest
          end
    in
    go 0 lst
  in
  for i = 1 to fp.n do
    if i <= Array.length members && members.(i - 1) then begin
      (match fp.assign.(i - 1) with
      | Some a ->
          List.iter
            (fun (bid, (p : M.pair)) ->
              if refined && p.M.prunable then
                List.iter
                  (fun tbl ->
                    match List.assoc_opt tbl a.gvals with
                    | Some cv ->
                        scan_recent i
                          (Option.value
                             (Hashtbl.find_opt recent_gval (gkey bid tbl cv))
                             ~default:[])
                    | None ->
                        scan_recent i
                          (Option.value
                             (Hashtbl.find_opt recent_tid bid)
                             ~default:[]))
                  p.M.guard_tables
              else
                scan_recent i
                  (Option.value (Hashtbl.find_opt recent_tid bid) ~default:[]))
            (M.pairs_for fp.matrix a.tid);
          (* matched vs unmatched predecessors: dynamic check *)
          let my_rw = (Analyzer.info anl i).Analyzer.rw in
          scan_recent i
            (List.filter
               (fun j ->
                 dyn_conflict my_rw (Analyzer.info anl j).Analyzer.rw)
               !recent_unmatched);
          List.iter
            (fun (tbl, cv) -> push recent_gval (gkey a.tid tbl cv) i)
            a.gvals;
          push recent_tid a.tid i
      | None ->
          let my_rw = (Analyzer.info anl i).Analyzer.rw in
          scan_recent i
            (List.filter
               (fun j ->
                 dyn_conflict my_rw (Analyzer.info anl j).Analyzer.rw)
               !recent_all);
          recent_unmatched := i :: !recent_unmatched);
      recent_all := i :: !recent_all
    end
  done;
  let ww = Analyzer.write_write_table_edges anl ~members in
  List.sort_uniq compare (List.rev_append !edges ww)
