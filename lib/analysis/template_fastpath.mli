(** The template-matrix fast-path for replay-set closure and conflict-DAG
    construction.

    [prepare] matches every log entry against the extracted template set
    once, stamps the matched template ids onto the log entries, and
    builds two bucket families over the history:

    - per template id: every entry matching that template;
    - per (template id, guarded table, canonical guard value): the
      entries whose equality predicate pins that value.

    [replay_set] then runs the analyzer's closure with a column-wise
    candidate generator that consults the precomputed matrix instead of
    per-column scans over the whole history: a member matching template
    [a] offers, for each template [b] with a nonempty matrix pair, the
    [b]-bucket — narrowed to its own guard value's bucket when the pair
    is prunable and [refined] is on (predicate disjointness: equality
    predicates on distinct parameters refute the dependency). Entries
    that match no template (dynamic SQL; any history containing DDL
    degrades wholesale) are kept sound by dynamic per-statement
    fallback on both sides: unmatched candidates are offered after an
    explicit set intersection, and an unmatched member (or a seed that
    matches no template) scans the whole history the oracle way. The
    row-wise closure is untouched, so [`Cell] results intersect with the
    oracle row closure.

    With [refined:false] the candidate sets equal the oracle's per-column
    candidate sets (template sets over-approximate — UVA015 — and here
    coincide with the dynamic sets), so the closure is identical to
    {!Uv_retroactive.Analyzer.replay_set}; [refined:true] additionally
    prunes parameter-disjoint same-table conflicts, which the row-wise
    intersection makes observationally equivalent on the tested
    workloads (the equality property test is the arbiter). *)

type t

val prepare :
  ?log:Uv_db.Log.t ->
  set:Template_extract.set ->
  matrix:Template_matrix.t ->
  Uv_retroactive.Analyzer.t ->
  t
(** Match every analyzed entry, stamp [log] entries' [template_id] when
    the log is supplied, and build the buckets. Guard values are
    canonicalized through the analyzer's RI merge state; the buckets
    refresh automatically if the merge generation moves. *)

val replay_set :
  ?obs:Uv_obs.Trace.t ->
  ?refined:bool ->
  ?mode:Uv_retroactive.Analyzer.mode ->
  t ->
  Uv_retroactive.Analyzer.t ->
  Uv_retroactive.Analyzer.target ->
  Uv_retroactive.Analyzer.replay_set
(** Matrix-backed replay set. [refined] defaults to [true]. *)

val exec_dependency_edges :
  ?refined:bool ->
  t ->
  Uv_retroactive.Analyzer.t ->
  members:bool array ->
  (int * int) list
(** Matrix-backed ordering edges over 𝕀 for the replay scheduler: each
    member scans the most recent members of every conflicting template
    (per guard-value bucket when prunable), newest first, with the same
    bucket cap and conservative chain-closing edge as the oracle;
    unmatched members order dynamically. The oracle's row-level
    write-write table edges are unioned in. The result is a valid
    superset ordering: every oracle edge's endpoints stay reachable. *)

val unmatched : t -> int list
(** Entries (ascending) no template matched — the UVA014 feed. *)

val assignment : t -> int -> (int * (string * Uv_sql.Value.t) list) option
(** The matched (template id, slot binding) of entry [i], if any. *)

val guard_values : t -> int -> (string * string) list
(** Canonical guard values of entry [i] on each guarded table of its
    matched template — the values the refined buckets key on. Refresh
    them with a closure run before relying on canonicality. *)

val matched_count : t -> int
