module A = Uv_applang.Ast
module Analyzer = Uv_retroactive.Analyzer
module Rwset = Uv_retroactive.Rwset
module D = Diagnostic
module T = Template_extract
module M = Template_matrix
module F = Template_fastpath

let coverage_cap = 10

let pairwise_cap = 25

(* UVA014: log entries no extracted template covers. DDL is expected to
   be uncovered (templates are application statements); everything else
   falls back to the slower per-statement path and is worth surfacing. *)
let template_coverage ~fast anl =
  let uncovered =
    List.filter
      (fun i -> not (Passes.contains_ddl (Analyzer.info anl i).Analyzer.stmt))
      (F.unmatched fast)
  in
  let shown = List.filteri (fun k _ -> k < coverage_cap) uncovered in
  let per_entry =
    List.map
      (fun i ->
        D.make ~index:i ~code:"UVA014" ~severity:D.Warning
          ~pass:"template-coverage"
          (Printf.sprintf "statement matches no extracted template: %s"
             (Uv_sql.Printer.stmt_compact (Analyzer.info anl i).Analyzer.stmt)))
      shown
  in
  let total = List.length uncovered in
  if total > List.length shown then
    per_entry
    @ [
        D.make ~code:"UVA014" ~severity:D.Warning ~pass:"template-coverage"
          (Printf.sprintf
             "%d further statement(s) match no extracted template (first %d \
              shown)"
             (total - List.length shown)
             (List.length shown));
      ]
  else per_entry

(* UVA015: the static matrix must over-approximate the dynamic
   dependencies on this history. Two obligations:
   - per entry: the matched template's static column sets contain the
     entry's dynamically derived sets;
   - per pair of matched entries: a dynamic cell-level dependency
     (shared conflict columns AND overlapping rows) is never refuted by
     the matrix — the pair exists, covers the dynamic conflict columns,
     and the disjointness refinement does not prune it in either
     direction. *)
let matrix_soundness ~set ~matrix ~fast anl =
  let n = Analyzer.length anl in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let matched = ref [] in
  for i = n downto 1 do
    match F.assignment fast i with
    | Some (tid, _) -> matched := (i, tid) :: !matched
    | None -> ()
  done;
  (* entry sets contained in the template's static sets *)
  List.iter
    (fun (i, tid) ->
      match T.find set tid with
      | None ->
          emit
            (D.make ~index:i ~code:"UVA015" ~severity:D.Error
               ~pass:"matrix-soundness"
               (Printf.sprintf "entry matched unknown template id %d" tid))
      | Some tpl ->
          let dyn = (Analyzer.info anl i).Analyzer.rw in
          let miss =
            Rwset.Colset.union
              (Rwset.Colset.diff dyn.Rwset.r tpl.T.rw.Rwset.r)
              (Rwset.Colset.diff dyn.Rwset.w tpl.T.rw.Rwset.w)
          in
          if not (Rwset.Colset.is_empty miss) then
            emit
              (D.make ~index:i ~code:"UVA015" ~severity:D.Error
                 ~pass:"matrix-soundness"
                 (Printf.sprintf
                    "template %d static sets miss dynamic column(s) %s of \
                     this entry"
                    tid
                    (String.concat ", " (Rwset.Colset.elements miss)))))
    !matched;
  (* pairwise: the fast path prunes candidate j for asking entry i only
     when every conflict table's guard-value bucket excludes j — mirror
     that predicate exactly and demand it never fires across a real
     cell-level dependency, in either asking direction *)
  let prunes (p : M.pair) gi gj =
    p.M.prunable && p.M.guard_tables <> []
    && List.for_all
         (fun tbl ->
           match List.assoc_opt tbl gi with
           | None -> false (* whole-template fallback bucket: offered *)
           | Some cv -> (
               match List.assoc_opt tbl gj with
               | Some cv' -> cv <> cv'
               | None -> true))
         p.M.guard_tables
  in
  let errors = ref 0 in
  (try
     List.iter
       (fun (i, tid_i) ->
         List.iter
           (fun (j, tid_j) ->
             if i < j then begin
               let cols = Analyzer.conflict_columns anl i j in
               if cols <> [] && Analyzer.conflict_tables anl i j <> [] then begin
                 let fail msg =
                   emit
                     (D.make ~index:i ~code:"UVA015" ~severity:D.Error
                        ~pass:"matrix-soundness" msg);
                   incr errors;
                   if !errors >= pairwise_cap then raise Exit
                 in
                 match M.pair matrix tid_i tid_j with
                 | None ->
                     fail
                       (Printf.sprintf
                          "entries %d and %d conflict dynamically on %s but \
                           the matrix has no pair (%d, %d)"
                          i j (String.concat ", " cols) tid_i tid_j)
                 | Some p ->
                     let pcols = p.M.ww @ p.M.wr @ p.M.rw in
                     let missing =
                       List.filter (fun c -> not (List.mem c pcols)) cols
                     in
                     if missing <> [] then
                       fail
                         (Printf.sprintf
                            "matrix pair (%d, %d) misses dynamic conflict \
                             column(s) %s of entries %d and %d"
                            tid_i tid_j
                            (String.concat ", " missing)
                            i j)
                     else begin
                       let gi = F.guard_values fast i
                       and gj = F.guard_values fast j in
                       let back = M.pair matrix tid_j tid_i in
                       if
                         prunes p gi gj
                         || (match back with
                            | Some p' -> prunes p' gj gi
                            | None -> false)
                       then
                         fail
                           (Printf.sprintf
                              "disjointness refinement of pair (%d, %d) \
                               prunes the real dependency between entries \
                               %d and %d"
                              tid_i tid_j i j)
                     end
               end
             end)
           !matched)
       !matched
   with Exit ->
     emit
       (D.make ~code:"UVA015" ~severity:D.Error ~pass:"matrix-soundness"
          (Printf.sprintf "further pairwise violations suppressed after %d"
             pairwise_cap)));
  List.rev !diags

(* UVA016: SQL_exec receiving anything but a string or template literal
   in the MiniJS sources — dynamic SQL the extractor cannot close over,
   so matching entries fall back to the per-statement path (UVA014 shows
   the dynamic side of the same gap). *)
let dynamic_sql ~source =
  let program = Uv_applang.Parser.parse_program source in
  let diags = ref [] in
  let hit fn (arg : A.expr option) =
    let detail =
      match arg with
      | None -> "no argument"
      | Some (A.Ident v) -> Printf.sprintf "variable '%s'" v
      | Some (A.Binop ("+", _, _)) -> "string concatenation"
      | Some (A.Call _) -> "call result"
      | Some _ -> "computed expression"
    in
    diags :=
      D.make ~obj:fn ~code:"UVA016" ~severity:D.Warning ~pass:"dynamic-sql"
        (Printf.sprintf
           "SQL_exec argument is %s, not a string or template literal: the \
            statement escapes template extraction"
           detail)
      :: !diags
  in
  let rec expr fn (e : A.expr) =
    (match e with
    | A.Call (A.Ident "SQL_exec", args) -> (
        match args with
        | [ (A.Template _ | A.Str _) ] -> ()
        | [ a ] -> hit fn (Some a)
        | _ -> hit fn None)
    | _ -> ());
    match e with
    | A.Num _ | A.Str _ | A.Bool _ | A.Null | A.Undefined | A.Ident _ -> ()
    | A.Template parts ->
        List.iter
          (function A.Ptext _ -> () | A.Phole e -> expr fn e)
          parts
    | A.Binop (_, a, b) -> expr fn a; expr fn b
    | A.Unop (_, a) -> expr fn a
    | A.Cond (a, b, c) -> expr fn a; expr fn b; expr fn c
    | A.Call (f, args) -> expr fn f; List.iter (expr fn) args
    | A.Member (o, _) -> expr fn o
    | A.Index (o, i) -> expr fn o; expr fn i
    | A.Object_lit fields -> List.iter (fun (_, e) -> expr fn e) fields
    | A.Array_lit es -> List.iter (expr fn) es
    | A.Fun_expr (_, body) -> List.iter (stmt fn) body
  and lvalue fn (l : A.lvalue) =
    match l with
    | A.L_ident _ -> ()
    | A.L_member (o, _) -> expr fn o
    | A.L_index (o, i) -> expr fn o; expr fn i
  and stmt fn (s : A.stmt) =
    match s with
    | A.Expr_stmt e -> expr fn e
    | A.Let (_, e) -> Option.iter (expr fn) e
    | A.Assign (l, e) -> lvalue fn l; expr fn e
    | A.If (c, t, e) ->
        expr fn c;
        List.iter (stmt fn) t;
        List.iter (stmt fn) e
    | A.While (c, body) -> expr fn c; List.iter (stmt fn) body
    | A.For (init, cond, step, body) ->
        Option.iter (stmt fn) init;
        Option.iter (expr fn) cond;
        Option.iter (stmt fn) step;
        List.iter (stmt fn) body
    | A.Return e -> Option.iter (expr fn) e
    | A.Break | A.Continue -> ()
    | A.Fun_decl (name, _, body) ->
        let fn = if fn = "<toplevel>" then name else fn in
        List.iter (stmt fn) body
  in
  List.iter (stmt "<toplevel>") program;
  List.rev !diags

(* UVA017: template slots whose values flow from blackbox native APIs —
   unrecorded nondeterminism. The logged literal still replays
   faithfully, but a what-if change upstream of the blackbox cannot be
   reflected in the parameter; flag the provenance. *)
let param_flow ~set =
  List.filter_map
    (fun (tpl : T.template) ->
      let bad =
        List.filter_map
          (fun (slot, src) ->
            match src with T.Sblackbox -> Some slot | _ -> None)
          tpl.T.slots
      in
      if bad = [] then None
      else
        Some
          (D.make ~obj:tpl.T.txn ~code:"UVA017" ~severity:D.Info
             ~pass:"param-flow"
             (Printf.sprintf
                "template %d: slot(s) %s flow from blackbox native calls \
                 (unrecorded nondeterminism)"
                tpl.T.id (String.concat ", " bad))))
    (T.templates set)
