(** The template-analysis lint passes (UVA014–UVA017).

    These passes close the loop on the static template machinery: the
    template set and matrix are computed without ever executing a
    statement, so each real workload log doubles as a test oracle — the
    dynamic per-statement sets and the recorded statements either
    confirm the static model or expose where it leaks.

    Driven through {!Lint.lint_templates}; exposed individually for
    targeted tests. *)

val template_coverage :
  fast:Template_fastpath.t -> Uv_retroactive.Analyzer.t -> Diagnostic.t list
(** UVA014 (warning): log entries matching no extracted template (DDL
    excepted) — they silently fall back to the per-statement path.
    Capped per entry with a summary tail. *)

val matrix_soundness :
  set:Template_extract.set ->
  matrix:Template_matrix.t ->
  fast:Template_fastpath.t ->
  Uv_retroactive.Analyzer.t ->
  Diagnostic.t list
(** UVA015 (error): the static matrix must over-approximate the dynamic
    dependencies of this history — template column sets contain every
    matched entry's dynamic sets, and no dynamic cell-level dependency
    between matched entries is refuted by a missing pair, a missing
    conflict column, or the predicate-disjointness refinement. *)

val dynamic_sql : source:string -> Diagnostic.t list
(** UVA016 (warning): [SQL_exec] call sites in the MiniJS sources whose
    argument is not a string or template literal — dynamic SQL escapes
    template extraction entirely. *)

val param_flow : set:Template_extract.set -> Diagnostic.t list
(** UVA017 (info): template slots whose values flow from blackbox native
    calls — unrecorded nondeterminism behind a recorded literal. *)
