open Uv_sql
module Rwset = Uv_retroactive.Rwset
module Rowset = Uv_retroactive.Rowset
module Schema_view = Uv_retroactive.Schema_view
module T = Template_extract

type gsource = Gslot of string | Gconst of Value.t

type guard = { gcol : string; gsrc : gsource }

type pair = {
  ww : string list;
  wr : string list;
  rw : string list;
  prunable : bool;
  guard_tables : string list;
}

type t = {
  config : Rowset.config;
  guards : (int, (string * guard) list) Hashtbl.t;
  pairs : (int * int, pair) Hashtbl.t;
  by_a : (int, (int * pair) list) Hashtbl.t;
  ids : int list;
}

let gsource_label = function
  | Gslot s -> "$" ^ s
  | Gconst v -> "=" ^ Value.serialize v

(* ------------------------------------------------------------------ *)
(* Guard detection                                                      *)
(* ------------------------------------------------------------------ *)

(* Guard columns usable for a table: its first RI dimension, plus any
   declared alias columns targeting that dimension. Tables without an RI
   configuration are never guarded (conservative). *)
let gcols_of (config : Rowset.config) table =
  match List.assoc_opt table config.Rowset.ri_columns with
  | Some (dim0 :: _) ->
      dim0
      :: List.filter_map
           (fun (t, acol, rcol) ->
             if t = table && rcol = dim0 then Some acol else None)
           config.Rowset.ri_aliases
  | _ -> []

let rec conjuncts e =
  match e with
  | Ast.Binop (Ast.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* A guard source: a template slot or a constant. Locals declared inside
   a procedure body are not slots — equality against them never prunes. *)
let rhs_source ~locals e =
  match e with
  | Ast.Var s when not (List.mem s locals) -> Some (Gslot s)
  | Ast.Lit v -> Some (Gconst v)
  | Ast.Unop (Ast.Neg, Ast.Lit (Value.Int n)) -> Some (Gconst (Value.Int (-n)))
  | Ast.Unop (Ast.Neg, Ast.Lit (Value.Float x)) ->
      Some (Gconst (Value.Float (-.x)))
  | _ -> None

let where_guard ~locals ~table ~alias ~gcols where =
  match (where, gcols) with
  | None, _ | _, [] -> None
  | Some w, _ ->
      let cs = conjuncts w in
      let qual_ok q =
        q = None || q = Some table || (alias <> None && q = alias)
      in
      let find_on col =
        List.find_map
          (fun c ->
            match c with
            | Ast.Binop (Ast.Eq, Ast.Col (q, cc), rhs)
              when cc = col && qual_ok q ->
                rhs_source ~locals rhs
            | Ast.Binop (Ast.Eq, rhs, Ast.Col (q, cc))
              when cc = col && qual_ok q ->
                rhs_source ~locals rhs
            | _ -> None)
          cs
      in
      List.find_map
        (fun col -> Option.map (fun g -> { gcol = col; gsrc = g }) (find_on col))
        gcols

let insert_guard ~sv ~config ~locals ~table ~columns ~values =
  match values with
  | [ row ] -> (
      let cols =
        match columns with
        | Some cs -> Some cs
        | None -> Schema_view.table_columns sv table
      in
      match cols with
      | None -> None
      | Some cs ->
          List.find_map
            (fun gcol ->
              let rec pos i = function
                | [] -> None
                | c :: _ when c = gcol -> Some i
                | _ :: rest -> pos (i + 1) rest
              in
              match pos 0 cs with
              | None -> None
              | Some i -> (
                  match List.nth_opt row i with
                  | None -> None
                  | Some e ->
                      Option.map
                        (fun g -> { gcol; gsrc = g })
                        (rhs_source ~locals e)))
            (gcols_of config table))
  | _ -> None

(* Collect every (table, guard option) access of a template statement:
   DML targets, every query-block source (a block guards its single
   source through an equality conjunct; joined blocks guard nothing),
   and — for CALL templates — the embedded statements of the transpiled
   procedure body, whose parameter names are the call's slot names. *)
let rec select_accesses ~sv ~config ~locals acc (s : Ast.select) =
  let sources =
    (match s.Ast.sel_from with Some (t, a) -> [ (t, a) ] | None -> [])
    @ List.map (fun (j : Ast.join) -> (j.Ast.join_table, j.Ast.join_alias))
        s.Ast.sel_joins
  in
  let acc =
    match sources with
    | [ (t, alias) ] ->
        let g =
          where_guard ~locals ~table:t ~alias ~gcols:(gcols_of config t)
            s.Ast.sel_where
        in
        (t, g) :: acc
    | _ -> List.fold_left (fun acc (t, _) -> (t, None) :: acc) acc sources
  in
  List.fold_left
    (fun acc e -> expr_accesses ~sv ~config ~locals acc e)
    acc (Visit.select_exprs s)

and expr_accesses ~sv ~config ~locals acc e =
  let acc =
    List.fold_left
      (select_accesses ~sv ~config ~locals)
      acc (Visit.expr_selects e)
  in
  List.fold_left (expr_accesses ~sv ~config ~locals) acc (Visit.expr_children e)

let rec stmt_accesses ~sv ~config ~locals acc (s : Ast.stmt) =
  match s with
  | Ast.Select sel -> select_accesses ~sv ~config ~locals acc sel
  | Ast.Insert { table; columns; values } ->
      let g = insert_guard ~sv ~config ~locals ~table ~columns ~values in
      List.fold_left
        (expr_accesses ~sv ~config ~locals)
        ((table, g) :: acc)
        (List.concat values)
  | Ast.Insert_select { table; query; _ } ->
      select_accesses ~sv ~config ~locals ((table, None) :: acc) query
  | Ast.Update { table; assigns; where } ->
      let g =
        where_guard ~locals ~table ~alias:None ~gcols:(gcols_of config table)
          where
      in
      List.fold_left
        (expr_accesses ~sv ~config ~locals)
        ((table, g) :: acc)
        (List.map snd assigns @ Option.to_list where)
  | Ast.Delete { table; where } ->
      let g =
        where_guard ~locals ~table ~alias:None ~gcols:(gcols_of config table)
          where
      in
      List.fold_left
        (expr_accesses ~sv ~config ~locals)
        ((table, g) :: acc)
        (Option.to_list where)
  | Ast.Call (name, _) -> (
      match Schema_view.procedure sv name with
      | Some proc ->
          let body = proc.Uv_db.Catalog.proc_body in
          let locals = declared_locals body @ locals in
          pstmts_accesses ~sv ~config ~locals acc body
      | None -> acc)
  | Ast.Transaction ss ->
      List.fold_left (stmt_accesses ~sv ~config ~locals) acc ss
  | _ -> acc

and declared_locals body =
  let rec go acc ps =
    List.fold_left
      (fun acc p ->
        let acc =
          match p with
          | Ast.P_declare (n, _, _) -> n :: acc
          | Ast.P_select_into (_, ns) -> ns @ acc
          | _ -> acc
        in
        go acc (Visit.pstmt_children p))
      acc ps
  in
  go [] body

and pstmts_accesses ~sv ~config ~locals acc ps =
  List.fold_left
    (fun acc p ->
      let acc =
        List.fold_left
          (stmt_accesses ~sv ~config ~locals)
          acc (Visit.pstmt_stmts p)
      in
      let acc =
        match p with
        | Ast.P_select_into (s, _) -> select_accesses ~sv ~config ~locals acc s
        | _ -> acc
      in
      pstmts_accesses ~sv ~config ~locals acc (Visit.pstmt_children p))
    acc ps

(* A table is guarded iff every one of its accesses in the template is
   constrained by the same (column, source) equality. *)
let template_guards ~sv ~config (tpl : T.template) =
  let accesses = stmt_accesses ~sv ~config ~locals:[] [] tpl.T.stmt in
  let tables = List.sort_uniq compare (List.map fst accesses) in
  List.filter_map
    (fun table ->
      let gs = List.filter_map (fun (t, g) -> if t = table then Some g else None) accesses in
      match gs with
      | Some g0 :: rest
        when List.for_all (function Some g -> g = g0 | None -> false) rest ->
          Some (table, g0)
      | _ -> None)
    tables

(* ------------------------------------------------------------------ *)
(* Matrix build                                                         *)
(* ------------------------------------------------------------------ *)

let is_schema_key c =
  String.length c > 3 && String.sub c 0 3 = "_S."

let table_of_col c =
  match String.index_opt c '.' with
  | Some i -> Some (String.sub c 0 i)
  | None -> None

let build ~config set =
  let sv = T.base_sv set in
  let templates = T.templates set in
  let guards = Hashtbl.create 64 in
  List.iter
    (fun (tpl : T.template) ->
      Hashtbl.replace guards tpl.T.id (template_guards ~sv ~config tpl))
    templates;
  let pairs = Hashtbl.create 256 in
  let by_a = Hashtbl.create 64 in
  let inter x y = Rwset.Colset.elements (Rwset.Colset.inter x y) in
  List.iter
    (fun (a : T.template) ->
      let acc = ref [] in
      List.iter
        (fun (b : T.template) ->
          let ww = inter a.T.rw.Rwset.w b.T.rw.Rwset.w in
          let wr = inter a.T.rw.Rwset.w b.T.rw.Rwset.r in
          let rw = inter a.T.rw.Rwset.r b.T.rw.Rwset.w in
          if ww <> [] || wr <> [] || rw <> [] then begin
            let cols = List.sort_uniq compare (ww @ wr @ rw) in
            let ga = Hashtbl.find guards a.T.id
            and gb = Hashtbl.find guards b.T.id in
            let col_guarded c =
              (not (is_schema_key c))
              &&
              match table_of_col c with
              | None -> false
              | Some t -> (
                  match (List.assoc_opt t ga, List.assoc_opt t gb) with
                  | Some x, Some y -> x.gcol = y.gcol
                  | _ -> false)
            in
            let prunable = List.for_all col_guarded cols in
            let guard_tables =
              List.sort_uniq compare (List.filter_map table_of_col cols)
            in
            let p = { ww; wr; rw; prunable; guard_tables } in
            Hashtbl.replace pairs (a.T.id, b.T.id) p;
            acc := (b.T.id, p) :: !acc
          end)
        templates;
      Hashtbl.replace by_a a.T.id (List.rev !acc))
    templates;
  {
    config;
    guards;
    pairs;
    by_a;
    ids = List.map (fun (t : T.template) -> t.T.id) templates;
  }

let guards t id = Option.value (Hashtbl.find_opt t.guards id) ~default:[]

let pair t a b = Hashtbl.find_opt t.pairs (a, b)

let pairs_for t a = Option.value (Hashtbl.find_opt t.by_a a) ~default:[]

let all_pairs t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.pairs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let ids t = t.ids

let config t = t.config

(* Resolve a matched entry's guard value on one table: the slot binding
   (or the constant), serialized the way the row index serializes. *)
let guard_value t ~id ~table binding =
  match List.assoc_opt table (guards t id) with
  | None -> None
  | Some { gsrc = Gconst v; gcol } -> Some (gcol, v)
  | Some { gsrc = Gslot s; gcol } ->
      Option.map (fun v -> (gcol, v)) (List.assoc_opt s binding)

(* Is the (table, first-RI-dimension) pair the one the analyzer's merge
   map canonicalises? Alias-column guards live in their own raw value
   space. *)
let guard_on_dim0 t ~id ~table =
  match List.assoc_opt table (guards t id) with
  | None -> false
  | Some { gcol; _ } -> (
      match List.assoc_opt table t.config.Rowset.ri_columns with
      | Some (d :: _) -> d = gcol
      | _ -> false)
