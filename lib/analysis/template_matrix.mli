(** The precomputed column-wise template-pair dependency matrix (the
    static half of Ultraverse's "query-template dependency analysis").

    For every ordered template pair (a, b) the matrix records the shared
    columns in each conflict direction — WW (both write), WR (a writes,
    b reads), RW (a reads, b writes) — computed once, statically, from
    the templates' column sets. An empty intersection in all three
    directions means statements matching a and b can never column-wise
    conflict, whatever their parameters; the pair is absent.

    Predicate-disjointness refinement: a template *guards* a table when
    every access of that table is constrained by one consistent equality
    on the table's first RI dimension (or a declared alias column) —
    [WHERE s_id = $p], a single-row INSERT with a slot in the RI
    position, etc. A pair whose conflict columns all belong to tables
    guarded on the same column by both templates is [prunable]: two
    matching statements conflict only if their guard values coincide,
    so equality predicates on distinct parameters refute the dependency
    (§4.3's row-identifier reasoning lifted to template granularity). *)

open Uv_sql

type gsource =
  | Gslot of string  (** guarded by a template slot's value *)
  | Gconst of Value.t  (** guarded by a constant *)

type guard = { gcol : string; gsrc : gsource }

type pair = {
  ww : string list;  (** a.w ∩ b.w *)
  wr : string list;  (** a.w ∩ b.r *)
  rw : string list;  (** a.r ∩ b.w *)
  prunable : bool;
  guard_tables : string list;  (** tables of all conflict columns *)
}

type t

val build : config:Uv_retroactive.Rowset.config -> Template_extract.set -> t

val guards : t -> int -> (string * guard) list
(** Guarded tables of one template. *)

val pair : t -> int -> int -> pair option
(** [pair t a b] — [None] when templates [a] and [b] can never
    column-wise conflict. *)

val pairs_for : t -> int -> (int * pair) list
(** All templates conflicting with [a] in any direction, with the pair
    entry. *)

val all_pairs : t -> ((int * int) * pair) list
(** Every nonempty pair, ordered — the CLI dump. *)

val ids : t -> int list

val config : t -> Uv_retroactive.Rowset.config

val guard_value :
  t -> id:int -> table:string -> (string * Value.t) list -> (string * Value.t) option
(** Resolve a matched entry's guard on [table] from its slot binding:
    [(guard column, value)]. [None] when the template does not guard the
    table (or the binding lacks the slot). *)

val guard_on_dim0 : t -> id:int -> table:string -> bool
(** Whether the guard column is the table's first RI dimension — only
    those values live in the analyzer's canonical (merge-mapped) value
    space; alias-column guards compare raw. *)

val gsource_label : gsource -> string
(** ["$slot"] or ["=value"] — report rendering. *)
