open Uv_sql

type procedure = {
  proc_name : string;
  proc_params : (string * Value.ty) list;
  proc_label : string option;
  proc_body : Ast.pstmt list;
}

type trigger = {
  trig_name : string;
  trig_timing : Ast.trigger_timing;
  trig_event : Ast.trigger_event;
  trig_table : string;
  trig_body : Ast.pstmt list;
}

type t = {
  tbls : (string, Storage.t) Hashtbl.t;
  views : (string, Ast.select) Hashtbl.t;
  procs : (string, procedure) Hashtbl.t;
  trigs : (string, trigger) Hashtbl.t;
  idxs : (string, string * string list) Hashtbl.t;
  (* bumped whenever the object namespace changes (table/view/proc/
     trigger/index added, removed or renamed) — a cheap staleness check
     for caches keyed on schema shape, e.g. compiled statement plans *)
  mutable epoch : int;
}

let create () =
  {
    tbls = Hashtbl.create 16;
    views = Hashtbl.create 8;
    procs = Hashtbl.create 8;
    trigs = Hashtbl.create 8;
    idxs = Hashtbl.create 8;
    epoch = 0;
  }

let epoch t = t.epoch

let tables t =
  Hashtbl.fold (fun name tbl acc -> (name, tbl) :: acc) t.tbls []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let table t name = Hashtbl.find_opt t.tbls name
let view t name = Hashtbl.find_opt t.views name
let procedure t name = Hashtbl.find_opt t.procs name

let triggers_for t table event =
  Hashtbl.fold
    (fun _ trig acc ->
      if String.equal trig.trig_table table && trig.trig_event = event then
        trig :: acc
      else acc)
    t.trigs []
  |> List.sort (fun a b -> compare a.trig_name b.trig_name)

let has_object t name =
  Hashtbl.mem t.tbls name || Hashtbl.mem t.views name || Hashtbl.mem t.procs name
  || Hashtbl.mem t.trigs name || Hashtbl.mem t.idxs name

let bump t = t.epoch <- t.epoch + 1

let add_table t tbl =
  bump t;
  Hashtbl.replace t.tbls (Storage.name tbl) tbl

let remove_table t name =
  bump t;
  Hashtbl.remove t.tbls name

let add_view t name sel =
  bump t;
  Hashtbl.replace t.views name sel

let remove_view t name =
  bump t;
  Hashtbl.remove t.views name

let add_procedure t p =
  bump t;
  Hashtbl.replace t.procs p.proc_name p

let remove_procedure t name =
  bump t;
  Hashtbl.remove t.procs name

let add_trigger t trig =
  bump t;
  Hashtbl.replace t.trigs trig.trig_name trig

let remove_trigger t name =
  bump t;
  Hashtbl.remove t.trigs name

let add_index t name target =
  bump t;
  Hashtbl.replace t.idxs name target

let indexes t = Hashtbl.fold (fun name target acc -> (name, target) :: acc) t.idxs []

let remove_index t name =
  bump t;
  Hashtbl.remove t.idxs name

let rename_table t old_name new_name =
  match Hashtbl.find_opt t.tbls old_name with
  | None -> ()
  | Some tbl ->
      bump t;
      Hashtbl.remove t.tbls old_name;
      let sch = Storage.schema tbl in
      Storage.set_schema tbl { sch with Schema.tbl_name = new_name } (fun r -> r);
      Hashtbl.replace t.tbls new_name tbl

let view_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.views [] |> List.sort compare

let procedure_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.procs [] |> List.sort compare

let rec select_reads_table (sel : Ast.select) tbl =
  let from_hit =
    match sel.Ast.sel_from with Some (t, _) -> String.equal t tbl | None -> false
  in
  from_hit
  || List.exists (fun j -> String.equal j.Ast.join_table tbl) sel.Ast.sel_joins
  || Option.fold ~none:false ~some:(fun e -> expr_reads_table e tbl) sel.Ast.sel_where

and expr_reads_table (e : Ast.expr) tbl =
  match e with
  | Ast.Subselect s | Ast.Exists s -> select_reads_table s tbl
  | Ast.Binop (_, a, b) -> expr_reads_table a tbl || expr_reads_table b tbl
  | Ast.Unop (_, a) -> expr_reads_table a tbl
  | Ast.Fun_call (_, args) -> List.exists (fun a -> expr_reads_table a tbl) args
  | Ast.In_list (a, items) -> List.exists (fun x -> expr_reads_table x tbl) (a :: items)
  | Ast.Between (a, b, c) -> List.exists (fun x -> expr_reads_table x tbl) [ a; b; c ]
  | Ast.Is_null (a, _) -> expr_reads_table a tbl
  | Ast.Lit _ | Ast.Col _ | Ast.Var _ -> false

let views_reading_table t tbl =
  Hashtbl.fold
    (fun name sel acc -> if select_reads_table sel tbl then name :: acc else acc)
    t.views []
  |> List.sort compare

let snapshot t =
  let copy = create () in
  Hashtbl.iter (fun name tbl -> Hashtbl.replace copy.tbls name (Storage.copy tbl)) t.tbls;
  Hashtbl.iter (Hashtbl.replace copy.views) t.views;
  Hashtbl.iter (Hashtbl.replace copy.procs) t.procs;
  Hashtbl.iter (Hashtbl.replace copy.trigs) t.trigs;
  Hashtbl.iter (Hashtbl.replace copy.idxs) t.idxs;
  copy.epoch <- t.epoch;
  copy

let snapshot_tables t names =
  let copy = create () in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tbls name with
      | Some tbl -> Hashtbl.replace copy.tbls name (Storage.copy tbl)
      | None -> ())
    names;
  Hashtbl.iter (Hashtbl.replace copy.views) t.views;
  Hashtbl.iter (Hashtbl.replace copy.procs) t.procs;
  Hashtbl.iter (Hashtbl.replace copy.trigs) t.trigs;
  Hashtbl.iter (Hashtbl.replace copy.idxs) t.idxs;
  copy.epoch <- t.epoch;
  copy

let copy_objects_into t ~into =
  let sync src dst =
    Hashtbl.reset dst;
    Hashtbl.iter (Hashtbl.replace dst) src
  in
  sync t.views into.views;
  sync t.procs into.procs;
  sync t.trigs into.trigs;
  sync t.idxs into.idxs

let objects_signature t =
  let sorted_keys tbl = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) tbl []) in
  let buf = Buffer.create 256 in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.views name with
      | Some q ->
          Buffer.add_string buf ("V:" ^ name ^ "=" ^ Printer.select q ^ "\n")
      | None -> ())
    (sorted_keys t.views);
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.procs name with
      | Some p ->
          Buffer.add_string buf
            ("P:" ^ name ^ "="
            ^ Printer.stmt
                (Ast.Create_procedure
                   {
                     name = p.proc_name;
                     params = p.proc_params;
                     label = p.proc_label;
                     body = p.proc_body;
                   })
            ^ "\n")
      | None -> ())
    (sorted_keys t.procs);
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.trigs name with
      | Some tr ->
          Buffer.add_string buf
            ("T:" ^ name ^ "="
            ^ Printer.stmt
                (Ast.Create_trigger
                   {
                     name = tr.trig_name;
                     timing = tr.trig_timing;
                     event = tr.trig_event;
                     table = tr.trig_table;
                     body = tr.trig_body;
                   })
            ^ "\n")
      | None -> ())
    (sorted_keys t.trigs);
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.idxs name with
      | Some (tbl, cols) ->
          Buffer.add_string buf
            ("I:" ^ name ^ "=" ^ tbl ^ "(" ^ String.concat "," cols ^ ")\n")
      | None -> ())
    (sorted_keys t.idxs);
  Buffer.contents buf

let copy_tables_into t ~into names =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tbls name with
      | Some tbl -> Hashtbl.replace into.tbls name (Storage.copy tbl)
      | None -> Hashtbl.remove into.tbls name)
    names

let restore t ~from =
  let fresh = snapshot from in
  Hashtbl.reset t.tbls;
  Hashtbl.reset t.views;
  Hashtbl.reset t.procs;
  Hashtbl.reset t.trigs;
  Hashtbl.reset t.idxs;
  Hashtbl.iter (Hashtbl.replace t.tbls) fresh.tbls;
  Hashtbl.iter (Hashtbl.replace t.views) fresh.views;
  Hashtbl.iter (Hashtbl.replace t.procs) fresh.procs;
  Hashtbl.iter (Hashtbl.replace t.trigs) fresh.trigs;
  Hashtbl.iter (Hashtbl.replace t.idxs) fresh.idxs;
  bump t

let db_hash t =
  tables t |> List.map (fun (_, tbl) -> Storage.hash tbl) |> Uv_util.Table_hash.combine

let memory_bytes t =
  List.fold_left (fun acc (_, tbl) -> acc + Storage.memory_bytes tbl) 1024 (tables t)
