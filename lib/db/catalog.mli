(** Database catalog: tables, views, stored procedures, triggers, indexes.

    Also the snapshot facility the retroactive engine uses as its rollback
    mechanism (§4.4; the paper's evaluation uses check-pointed backups). *)

open Uv_sql

type procedure = {
  proc_name : string;
  proc_params : (string * Value.ty) list;
  proc_label : string option;
  proc_body : Ast.pstmt list;
}

type trigger = {
  trig_name : string;
  trig_timing : Ast.trigger_timing;
  trig_event : Ast.trigger_event;
  trig_table : string;
  trig_body : Ast.pstmt list;
}

type t

val create : unit -> t

val epoch : t -> int
(** Monotone counter bumped on every object-namespace change (table,
    view, procedure, trigger or index added, removed or renamed) and on
    [restore]. Snapshots inherit the source's epoch. Caches keyed on
    schema shape — the what-if session's compiled statement plans and
    memoized analyzer — compare epochs to detect staleness cheaply. *)

val tables : t -> (string * Storage.t) list
(** Name-sorted. *)

val table : t -> string -> Storage.t option
val view : t -> string -> Ast.select option
val procedure : t -> string -> procedure option
val triggers_for : t -> string -> Ast.trigger_event -> trigger list
val has_object : t -> string -> bool

val add_table : t -> Storage.t -> unit
val remove_table : t -> string -> unit
val add_view : t -> string -> Ast.select -> unit
val remove_view : t -> string -> unit
val add_procedure : t -> procedure -> unit
val remove_procedure : t -> string -> unit
val add_trigger : t -> trigger -> unit
val remove_trigger : t -> string -> unit
val add_index : t -> string -> string * string list -> unit
val remove_index : t -> string -> unit
val rename_table : t -> string -> string -> unit

val indexes : t -> (string * (string * string list)) list
(** All CREATE INDEX definitions: (index name, (table, columns)). *)

val view_names : t -> string list
val procedure_names : t -> string list

val views_reading_table : t -> string -> string list
(** Views whose defining query reads the given table (directly). *)

val snapshot : t -> t
(** Deep copy of the whole catalog including every table's rows. *)

val snapshot_tables : t -> string list -> t
(** Temporary-database copy (§4.4 rollback phase): deep-copies only the
    listed tables (the mutated and consulted ones) plus every view,
    procedure, trigger and index definition. Tables not listed are absent
    from the copy — replaying a query that touches one is an analysis
    bug and raises inside the engine. *)

val copy_tables_into : t -> into:t -> string list -> unit
(** Database-update step (§4.4): overwrite the listed tables in [into]
    with deep copies from the source catalog. *)

val copy_objects_into : t -> into:t -> unit
(** Replace [into]'s views, procedures, triggers and CREATE INDEX
    definitions with [t]'s (table data is untouched). Used by
    [Whatif.commit] so retroactive DDL on schema objects lands in the
    live catalog. *)

val objects_signature : t -> string
(** Canonical rendering of every view/procedure/trigger/index definition,
    in name order — equal strings iff the schema objects are equal. *)

val restore : t -> from:t -> unit
(** Overwrite [t]'s contents with a deep copy of [from]. *)

val db_hash : t -> int64
(** Combined hash over all tables in name order. *)

val memory_bytes : t -> int
