(* Checkpoint ladder: periodic catalog snapshots taken every [every]
   committed statements. Rollback to a target commit index jumps to the
   nearest rung at-or-below it and redoes the short non-member tail from
   journal images, instead of walking the whole undo chain backwards.

   Rungs are kept newest-first. The ladder is capped: when it would
   exceed [max_rungs], every other rung (the odd positions, counting
   from the newest) is dropped and the stride doubles, so the ladder
   covers an arbitrarily long history with bounded memory — a classic
   exponential-thinning schedule. Snapshots share row arrays with the
   live tables (rows are replaced, never mutated in place), so a rung
   costs one hashtable copy per table, not a deep copy of every row. *)

type rung = { at : int; cat : Catalog.t }

type t = {
  mutable every : int;
  mutable rungs : rung list; (* descending by [at] *)
  mutable taken : int; (* rungs ever recorded (thinned ones included) *)
  mutable skipped : int; (* rungs skipped by fault injection *)
  bounds : (int, unit) Hashtbl.t;
      (* segment boundaries a rung must land on, beyond the stride:
         aligning rungs with Log_store segment seals means a rollback
         re-reads at most one segment tail *)
}

let max_rungs = 64

let create ~every =
  if every <= 0 then invalid_arg "Checkpoint.create: every must be positive";
  { every; rungs = []; taken = 0; skipped = 0; bounds = Hashtbl.create 16 }

let every t = t.every

let count t = List.length t.rungs

let taken t = t.taken

let skipped t = t.skipped

let note_skipped t = t.skipped <- t.skipped + 1

let set_boundaries t idxs =
  Hashtbl.reset t.bounds;
  List.iter (fun i -> if i > 0 then Hashtbl.replace t.bounds i ()) idxs

let boundaries t =
  List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) t.bounds [])

let due t n =
  n > 0
  && (n mod t.every = 0 || Hashtbl.mem t.bounds n)
  && (match t.rungs with r :: _ -> r.at < n | [] -> true)

let thin t =
  (* keep even positions (newest = position 0), double the stride *)
  let kept, _ =
    List.fold_left
      (fun (acc, pos) r -> ((if pos mod 2 = 0 then r :: acc else acc), pos + 1))
      ([], 0) t.rungs
  in
  t.rungs <- List.rev kept;
  t.every <- 2 * t.every

let record t cat n =
  t.rungs <- { at = n; cat = Catalog.snapshot cat } :: t.rungs;
  t.taken <- t.taken + 1;
  if List.length t.rungs > max_rungs then thin t

let nearest t n =
  let rec find = function
    | [] -> None
    | r :: rest -> if r.at <= n then Some (r.at, r.cat) else find rest
  in
  find t.rungs

let invalidate_from t n = t.rungs <- List.filter (fun r -> r.at < n) t.rungs

let rungs t = List.map (fun r -> (r.at, r.cat)) t.rungs
