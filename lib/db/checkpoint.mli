(** Checkpoint ladder: periodic catalog snapshots for fast rollback.

    The what-if rollback phase normally walks the undo journal backwards
    from the log head. With a ladder attached, rolling back to commit
    index τ instead restores the nearest rung at-or-below τ and redoes
    the short tail of retained statements forward from their journal
    images — O(K + tail) instead of O(history). Snapshots share row
    arrays with live tables (rows are replaced on update, never mutated
    in place), so a rung is a per-table hashtable copy, not a deep copy
    of every row. *)

type t

val max_rungs : int
(** Ladder size cap. When exceeded, every other rung is dropped and the
    stride doubles (exponential thinning), bounding memory over
    arbitrarily long histories. *)

val create : every:int -> t
(** A ladder recording a rung every [every] committed statements.
    @raise Invalid_argument if [every <= 0]. *)

val every : t -> int
(** Current stride — the configured value, doubled at each thinning. *)

val set_boundaries : t -> int list -> unit
(** Declare extra commit indexes where a rung is always due, beyond the
    stride — used to align the ladder with {!Log_store} segment seals so
    rollback to any sealed-segment prefix re-reads at most one segment
    tail. Replaces any previous boundary set; non-positive indexes are
    ignored. *)

val boundaries : t -> int list
(** The current boundary set, ascending. *)

val due : t -> int -> bool
(** [due t n]: should a rung be recorded after commit [n]? True when [n]
    is a stride multiple or a declared boundary, and newer than the
    newest rung. *)

val record : t -> Catalog.t -> int -> unit
(** Snapshot the catalog as the rung for commit index [n], thinning the
    ladder if it exceeds {!max_rungs}. *)

val nearest : t -> int -> (int * Catalog.t) option
(** The highest rung at-or-below the given commit index. *)

val invalidate_from : t -> int -> unit
(** Drop every rung at index ≥ [n] — called when the log is truncated so
    stale future state can never be restored. *)

val rungs : t -> (int * Catalog.t) list
(** All rungs, newest first. *)

val count : t -> int
(** Live rung count. *)

val taken : t -> int
(** Rungs ever recorded, including ones later thinned away. *)

val skipped : t -> int

val note_skipped : t -> unit
(** Count a rung abandoned because fault injection fired at the
    [engine.checkpoint] site. *)
