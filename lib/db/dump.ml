open Uv_sql

(* Multi-row INSERTs are chunked so no single statement grows unbounded. *)
let rows_per_insert = 100

let create_table_stmt tbl =
  let sch = Storage.schema tbl in
  Ast.Create_table
    { name = sch.Schema.tbl_name; columns = sch.Schema.tbl_columns; if_not_exists = false }

let insert_stmts tbl =
  let sch = Storage.schema tbl in
  let name = sch.Schema.tbl_name in
  let rows =
    List.sort (fun (a, _) (b, _) -> compare a b) (Storage.to_rows tbl)
  in
  let rec chunk acc current k = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | (_, row) :: rest ->
        let r = List.map (fun v -> Ast.Lit v) (Array.to_list row) in
        if k + 1 >= rows_per_insert then
          chunk (List.rev (r :: current) :: acc) [] 0 rest
        else chunk acc (r :: current) (k + 1) rest
  in
  List.map
    (fun values -> Ast.Insert { table = name; columns = None; values })
    (chunk [] [] 0 rows)

let to_sql cat =
  let buf = Buffer.create 4096 in
  let emit stmt =
    Buffer.add_string buf (Printer.stmt stmt);
    Buffer.add_string buf ";\n"
  in
  let by_name cmp_of = List.sort (fun a b -> compare (cmp_of a) (cmp_of b)) in
  Buffer.add_string buf "-- ultraverse dump\n";
  (* tables, then their rows *)
  let tables = by_name fst (Catalog.tables cat) in
  List.iter (fun (_, tbl) -> emit (create_table_stmt tbl)) tables;
  List.iter (fun (_, tbl) -> List.iter emit (insert_stmts tbl)) tables;
  (* pin AUTO_INCREMENT counters: re-deriving them from the rows is wrong
     when the row holding the highest key was deleted before the dump *)
  List.iter
    (fun (name, tbl) ->
      match Schema.auto_increment_column (Storage.schema tbl) with
      | Some _ ->
          emit
            (Ast.Alter_table
               (name, Ast.Set_auto_increment (Storage.next_auto_value tbl)))
      | None -> ())
    tables;
  (* secondary indexes *)
  List.iter
    (fun (name, (table, columns)) ->
      emit (Ast.Create_index { name; table; columns }))
    (by_name fst (Catalog.indexes cat));
  (* views *)
  List.iter
    (fun name ->
      match Catalog.view cat name with
      | Some query -> emit (Ast.Create_view { name; query; or_replace = false })
      | None -> ())
    (List.sort compare (Catalog.view_names cat));
  (* procedures *)
  List.iter
    (fun name ->
      match Catalog.procedure cat name with
      | Some (p : Catalog.procedure) ->
          emit
            (Ast.Create_procedure
               {
                 name = p.Catalog.proc_name;
                 params = p.Catalog.proc_params;
                 label = p.Catalog.proc_label;
                 body = p.Catalog.proc_body;
               })
      | None -> ())
    (List.sort compare (Catalog.procedure_names cat));
  (* triggers: enumerate per table and event, dedup by name *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (tname, _) ->
      List.iter
        (fun ev ->
          List.iter
            (fun (tr : Catalog.trigger) ->
              if not (Hashtbl.mem seen tr.Catalog.trig_name) then begin
                Hashtbl.replace seen tr.Catalog.trig_name ();
                emit
                  (Ast.Create_trigger
                     {
                       name = tr.Catalog.trig_name;
                       timing = tr.Catalog.trig_timing;
                       event = tr.Catalog.trig_event;
                       table = tr.Catalog.trig_table;
                       body = tr.Catalog.trig_body;
                     })
              end)
            (Catalog.triggers_for cat tname ev))
        [ Ast.Ev_insert; Ast.Ev_update; Ast.Ev_delete ])
    tables;
  Buffer.contents buf

let save ?(fault = Uv_fault.Fault.disabled) ?fsync cat ~path =
  let data = to_sql cat in
  match
    Uv_fault.Fault.check fault Uv_fault.Fault.Site.dump_save
      [ Uv_fault.Fault.Torn_write ]
  with
  | Some inj ->
      let keep =
        int_of_float (float_of_int (String.length data) *. inj.Uv_fault.Fault.arg)
      in
      Uv_util.Safe_io.write_file (path ^ ".tmp") (String.sub data 0 keep);
      raise (Uv_fault.Fault.Injected inj)
  | None -> Uv_util.Safe_io.atomic_write ?fsync ~path data

let restore eng script =
  List.iter
    (fun stmt -> ignore (Engine.exec eng stmt))
    (Parser.parse_script script)

let load eng ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> restore eng (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Checkpoint-ladder persistence (UCKPv1)                               *)
(* ------------------------------------------------------------------ *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* UCKPv1 <rung count>
   R <commit index> <payload bytes> <crc32 hex>
   <payload: the rung catalog rendered by to_sql, length-delimited>
   ... ascending by commit index. Payloads are length-delimited raw
   bytes, so no escaping is needed; the CRC line makes a torn or
   bit-flipped rung detectable before it is restored. *)
let print_checkpoints ladder =
  let buf = Buffer.create 4096 in
  let rungs =
    List.sort (fun (a, _) (b, _) -> compare a b) (Checkpoint.rungs ladder)
  in
  Buffer.add_string buf (Printf.sprintf "UCKPv1 %d\n" (List.length rungs));
  List.iter
    (fun (at, cat) ->
      let payload = to_sql cat in
      let crc = Uv_util.Crc32.(to_hex (digest payload)) in
      Buffer.add_string buf
        (Printf.sprintf "R %d %d %s\n" at (String.length payload) crc);
      Buffer.add_string buf payload;
      Buffer.add_char buf '\n')
    rungs;
  Buffer.contents buf

let save_checkpoints ?(fault = Uv_fault.Fault.disabled) ?fsync ladder ~path =
  let data = print_checkpoints ladder in
  match
    Uv_fault.Fault.check fault Uv_fault.Fault.Site.checkpoint_save
      [ Uv_fault.Fault.Torn_write ]
  with
  | Some inj ->
      let keep =
        int_of_float (float_of_int (String.length data) *. inj.Uv_fault.Fault.arg)
      in
      Uv_util.Safe_io.write_file (path ^ ".tmp") (String.sub data 0 keep);
      raise (Uv_fault.Fault.Injected inj)
  | None -> Uv_util.Safe_io.atomic_write ?fsync ~path data

let parse_checkpoints data =
  let len = String.length data in
  let line_end pos =
    match String.index_from_opt data pos '\n' with
    | Some e -> e
    | None -> corrupt "unterminated line at byte %d" pos
  in
  let pos = ref 0 in
  let next_line () =
    if !pos >= len then corrupt "unexpected end of file";
    let e = line_end !pos in
    let l = String.sub data !pos (e - !pos) in
    pos := e + 1;
    l
  in
  let header = next_line () in
  let count =
    match String.split_on_char ' ' header with
    | [ "UCKPv1"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> n
        | _ -> corrupt "bad rung count %S" n)
    | _ -> corrupt "bad header %S" header
  in
  let rungs = ref [] in
  for _ = 1 to count do
    let hdr = next_line () in
    let at, bytes, crc =
      match String.split_on_char ' ' hdr with
      | [ "R"; at; bytes; crc ] -> (
          match (int_of_string_opt at, int_of_string_opt bytes) with
          | Some a, Some b when a > 0 && b >= 0 -> (a, b, crc)
          | _ -> corrupt "bad rung header %S" hdr)
      | _ -> corrupt "bad rung header %S" hdr
    in
    if !pos + bytes + 1 > len then corrupt "rung at %d truncated" at;
    let payload = String.sub data !pos bytes in
    pos := !pos + bytes + 1;
    (match Uv_util.Crc32.of_hex crc with
    | Some expect when expect = Uv_util.Crc32.digest payload -> ()
    | _ -> corrupt "rung at %d fails its checksum" at);
    let eng = Engine.create () in
    (try restore eng payload
     with Engine.Sql_error msg -> corrupt "rung at %d: %s" at msg);
    rungs := (at, Engine.catalog eng) :: !rungs
  done;
  List.rev !rungs

let load_checkpoints ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      parse_checkpoints (really_input_string ic (in_channel_length ic)))
