(** Logical database dump (the mysqldump equivalent).

    Renders the entire catalog — table schemas, rows, views, stored
    procedures, triggers and CREATE INDEX definitions — as a SQL script
    that rebuilds a bit-identical database when executed on a fresh
    engine. Together with {!Log_io} this completes the recovery story:
    a dump is the checkpoint, the persisted statement log is the tail.

    Determinism: tables and catalog objects are emitted in name order,
    rows in rowid (insertion) order, so dumping the same database twice
    yields the same script.

    AUTO_INCREMENT counters are persisted explicitly: after a table's
    rows, the script pins the counter with
    [ALTER TABLE t AUTO_INCREMENT = n], so the restored database hands
    out the same fresh keys as the source even when the row holding the
    highest key had been deleted before the dump. *)

val to_sql : Catalog.t -> string
(** Render the catalog as an executable SQL script. *)

val save : ?fault:Uv_fault.Fault.t -> ?fsync:bool -> Catalog.t -> path:string -> unit
(** [save cat ~path] writes {!to_sql} to a file atomically (temp file +
    fsync + rename; [fsync] defaults to [true]), so an interrupted save
    never destroys the previous checkpoint. [fault] probes
    {!Uv_fault.Fault.Site.dump_save} with [Torn_write], mirroring
    {!Log_io.save}. *)

val restore : Engine.t -> string -> unit
(** Execute a dump script against an engine (normally a fresh one).
    @raise Engine.Sql_error if a statement fails. *)

val load : Engine.t -> path:string -> unit
(** Read a file written by {!save} and {!restore} it. *)
