(** Logical database dump (the mysqldump equivalent).

    Renders the entire catalog — table schemas, rows, views, stored
    procedures, triggers and CREATE INDEX definitions — as a SQL script
    that rebuilds a bit-identical database when executed on a fresh
    engine. Together with {!Log_io} this completes the recovery story:
    a dump is the checkpoint, the persisted statement log is the tail.

    Determinism: tables and catalog objects are emitted in name order,
    rows in rowid (insertion) order, so dumping the same database twice
    yields the same script.

    AUTO_INCREMENT counters are persisted explicitly: after a table's
    rows, the script pins the counter with
    [ALTER TABLE t AUTO_INCREMENT = n], so the restored database hands
    out the same fresh keys as the source even when the row holding the
    highest key had been deleted before the dump. *)

val to_sql : Catalog.t -> string
(** Render the catalog as an executable SQL script. *)

val save : ?fault:Uv_fault.Fault.t -> ?fsync:bool -> Catalog.t -> path:string -> unit
[@@ocaml.alert deprecated "use Log_store.save_dump_file (or Log_store.write_dump)"]
(** [save cat ~path] writes {!to_sql} to a file atomically (temp file +
    fsync + rename; [fsync] defaults to [true]), so an interrupted save
    never destroys the previous checkpoint. [fault] probes
    {!Uv_fault.Fault.Site.dump_save} with [Torn_write], mirroring
    the log-save contract.
    @deprecated the file-granular persistence entry points moved to the
    unified [Log_store] surface; this shim will be removed. *)

val restore : Engine.t -> string -> unit
(** Execute a dump script against an engine (normally a fresh one).
    @raise Engine.Sql_error if a statement fails. *)

val load : Engine.t -> path:string -> unit
[@@ocaml.alert deprecated "use Log_store.load_dump_file (or Log_store.read_dump)"]
(** Read a file written by {!save} and {!restore} it.
    @deprecated use [Log_store.load_dump_file] (typed [Store_error]). *)

(** {2 Checkpoint-ladder persistence}

    The UCKPv1 format stores each rung as a length-delimited {!to_sql}
    script guarded by a CRC-32, so a torn write is detected before any
    rung is restored:
    {v
    UCKPv1 <rung count>
    R <commit index> <payload bytes> <crc32 hex>
    <payload>
    ...
    v} *)

exception Corrupt of string
(** Raised by {!load_checkpoints} on a malformed, truncated or
    checksum-failing file. *)

val print_checkpoints : Checkpoint.t -> string
(** Render a ladder in the UCKPv1 format, rungs ascending. *)

val save_checkpoints :
  ?fault:Uv_fault.Fault.t -> ?fsync:bool -> Checkpoint.t -> path:string -> unit
[@@ocaml.alert
  deprecated "use Log_store.save_checkpoints_file (or Log_store.write_checkpoints)"]
(** Atomic write (temp + fsync + rename) of {!print_checkpoints}.
    [fault] probes {!Uv_fault.Fault.Site.checkpoint_save} with
    [Torn_write], mirroring {!save}: the tear leaves only a temp-file
    prefix and any previous file at [path] intact.
    @deprecated use [Log_store.save_checkpoints_file]. *)

val parse_checkpoints : string -> (int * Catalog.t) list
(** Decode a UCKPv1 document as (commit index, catalog) rungs,
    ascending. Each rung's payload is checksum-verified and then
    executed on a fresh engine. @raise Corrupt on bad input. *)

val load_checkpoints : path:string -> (int * Catalog.t) list
[@@ocaml.alert
  deprecated "use Log_store.load_checkpoints_file (or Log_store.read_checkpoints)"]
(** Read a UCKPv1 file back via {!parse_checkpoints}.
    @raise Corrupt on bad input.
    @deprecated use [Log_store.load_checkpoints_file] (typed
    [Store_error]). *)
