open Uv_sql
open Ast

exception Sql_error of string
exception Signal_raised of string

let sql_error fmt = Printf.ksprintf (fun s -> raise (Sql_error s)) fmt

type result = {
  columns : string list;
  rows : Value.t array list;
  rows_written : int;
}

let empty_result = { columns = []; rows = []; rows_written = 0 }

type t = {
  cat : Catalog.t;
  log : Log.t;
  clock : Uv_util.Clock.t;
  mutable prng : Uv_util.Prng.t;
      (* mutable so rollback can restore the pre-statement stream: a
         retried statement must draw the same fresh values *)
  enforce_fk : bool;
  obs : Uv_obs.Trace.t;
  fault : Uv_fault.Fault.t;
  mutable sim_time : int;
  mutable last_insert_id : Value.t;
  (* per-statement execution state *)
  mutable journal : Log.undo list;
  mutable nondet_in : Value.t list;
  mutable nondet_out : Value.t list; (* reversed *)
  mutable written : string list; (* table names, most recent first *)
  mutable rows_written : int;
  mutable trigger_depth : int;
  (* parallel replay pins each statement's inserts to a private rowid
     range: base + k for the k-th inserted row, identical at every
     worker count *)
  mutable rowid_alloc : (int * int ref) option;
  (* periodic catalog snapshots for checkpoint-jumping rollback *)
  mutable checkpoints : Checkpoint.t option;
}

let of_catalog ?(seed = 42) ?(rtt_ms = 1.0) ?(enforce_fk = false)
    ?(obs = Uv_obs.Trace.disabled) ?(fault = Uv_fault.Fault.disabled)
    ?(log = Log.create ()) cat =
  {
    cat;
    log;
    clock = Uv_util.Clock.create ~rtt_ms ();
    prng = Uv_util.Prng.create seed;
    enforce_fk;
    obs;
    fault;
    sim_time = 1_700_000_000;
    last_insert_id = Value.Null;
    journal = [];
    nondet_in = [];
    nondet_out = [];
    written = [];
    rows_written = 0;
    trigger_depth = 0;
    rowid_alloc = None;
    checkpoints = None;
  }

let create ?(seed = 42) ?(rtt_ms = 1.0) ?(enforce_fk = false)
    ?(obs = Uv_obs.Trace.disabled) ?(fault = Uv_fault.Fault.disabled) () =
  {
    cat = Catalog.create ();
    log = Log.create ();
    clock = Uv_util.Clock.create ~rtt_ms ();
    prng = Uv_util.Prng.create seed;
    enforce_fk;
    obs;
    fault;
    sim_time = 1_700_000_000;
    last_insert_id = Value.Null;
    journal = [];
    nondet_in = [];
    nondet_out = [];
    written = [];
    rows_written = 0;
    trigger_depth = 0;
    rowid_alloc = None;
    checkpoints = None;
  }

let catalog t = t.cat
let log t = t.log
let clock t = t.clock

let set_sim_time t s = t.sim_time <- s

let find_table t name =
  match Catalog.table t.cat name with
  | Some tbl -> tbl
  | None -> sql_error "unknown table %s" name

let table_hash t name = Storage.hash (find_table t name)

let db_hash t = Catalog.db_hash t.cat

let snapshot t = Catalog.snapshot t.cat

let restore t snap = Catalog.restore t.cat ~from:snap

let reset_log t =
  Log.truncate t.log 0;
  Option.iter (fun l -> Checkpoint.invalidate_from l 1) t.checkpoints

let enable_checkpoints t ~every =
  t.checkpoints <- (if every > 0 then Some (Checkpoint.create ~every) else None)

let checkpoints t = t.checkpoints

let memory_bytes t = Catalog.memory_bytes t.cat

(* ------------------------------------------------------------------ *)
(* Journalled storage mutations                                         *)
(* ------------------------------------------------------------------ *)

let mark_written t name =
  match t.written with
  | hd :: _ when String.equal hd name -> ()
  | _ -> if not (List.mem name t.written) then t.written <- name :: t.written

let j_insert t tbl row =
  let id =
    match t.rowid_alloc with
    | Some (base, k) ->
        let id = base + !k in
        incr k;
        Storage.insert_at tbl id row
    | None -> Storage.insert tbl row
  in
  t.journal <- Log.U_row_insert (Storage.name tbl, id, Array.copy row) :: t.journal;
  mark_written t (Storage.name tbl);
  t.rows_written <- t.rows_written + 1;
  id

let j_delete t tbl id =
  let row = Storage.delete tbl id in
  t.journal <- Log.U_row_delete (Storage.name tbl, id, row) :: t.journal;
  mark_written t (Storage.name tbl);
  t.rows_written <- t.rows_written + 1;
  row

let j_update t tbl id row =
  let before = Storage.update tbl id row in
  t.journal <- Log.U_row_update (Storage.name tbl, id, before, Array.copy row) :: t.journal;
  mark_written t (Storage.name tbl);
  t.rows_written <- t.rows_written + 1;
  before

let undo_journal t =
  Log.apply_undo t.cat t.journal;
  t.journal <- []

(* Object-definition captures pushed before DDL mutations so the entry's
   undo list can restore the prior schema state. *)
let capture_table t name =
  t.journal <-
    Log.U_table_def (name, Option.map Storage.copy (Catalog.table t.cat name))
    :: t.journal

let capture_view t name =
  t.journal <- Log.U_view_def (name, Catalog.view t.cat name) :: t.journal

let capture_proc t name =
  t.journal <- Log.U_proc_def (name, Catalog.procedure t.cat name) :: t.journal

let capture_trigger t name =
  let prior =
    (* catalog stores triggers by name across all tables *)
    List.find_opt
      (fun (tr : Catalog.trigger) -> String.equal tr.Catalog.trig_name name)
      (List.concat_map
         (fun ev ->
           List.concat_map
             (fun (tname, _) -> Catalog.triggers_for t.cat tname ev)
             (Catalog.tables t.cat))
         [ Ast.Ev_insert; Ast.Ev_update; Ast.Ev_delete ])
  in
  t.journal <- Log.U_trigger_def (name, prior) :: t.journal

let capture_index t name existing =
  t.journal <- Log.U_index_def (name, existing) :: t.journal

(* ------------------------------------------------------------------ *)
(* Non-determinism                                                      *)
(* ------------------------------------------------------------------ *)

(* Forced replay values are consumed in draw order; fresh draws are used
   once the recorded list runs out (retroactively added statements). *)
let draw t fresh =
  let v =
    match t.nondet_in with
    | v :: rest ->
        t.nondet_in <- rest;
        v
    | [] -> fresh ()
  in
  t.nondet_out <- v :: t.nondet_out;
  v

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                                *)
(* ------------------------------------------------------------------ *)

type env = {
  vars : (string, Value.t) Hashtbl.t;
  bindings : (string * Value.t) list; (* current row: qualified + plain *)
}

let empty_env () = { vars = Hashtbl.create 4; bindings = [] }

let with_bindings env bindings = { env with bindings }

let lookup_binding env key = List.assoc_opt key env.bindings

let cmp_value a b pred =
  if Value.is_null a || Value.is_null b then Value.Null
  else Value.Bool (pred (Value.compare_sql a b))

(* Precompiled row-binding builders: qualified names are concatenated
   once per scan instead of once per row (the old [bindings_of] rebuilt
   ["prefix.col"] strings for every row of every scan). Both orders are
   kept so each call site binds exactly the list the interpreter built
   before. *)
let mk_binder ~qualified_first prefix cols =
  let cols_a = Array.of_list cols in
  let quals_a = Array.map (fun c -> prefix ^ "." ^ c) cols_a in
  let n = Array.length cols_a in
  fun (row : Value.t array) ->
    let rec one (names : string array) i tail =
      if i < 0 then tail
      else one names (i - 1) ((Array.unsafe_get names i, row.(i)) :: tail)
    in
    if qualified_first then one quals_a (n - 1) (one cols_a (n - 1) [])
    else one cols_a (n - 1) (one quals_a (n - 1) [])

(* ------------------------------------------------------------------ *)
(* Cursor-compiled predicates                                           *)
(* ------------------------------------------------------------------ *)

(* The scan hot path evaluated directly on the typed columns
   ([Storage.Col]), mirroring [eval] over the same compilable subset as
   [compile_expr] below — no per-row bindings, no boxing of cells the
   predicate never reads, and unboxed cell-vs-literal comparisons.
   [Var]s are frozen to their current values (a variable cannot change
   while one statement filters rows). Anything effectful or out of scope
   — function calls, subselects, EXISTS, other-table columns — refuses
   compilation and the caller falls back to the interpreter, which is
   always sound. Each case mirrors [eval] exactly; divergence here would
   break bitwise replay identity. *)
type cur_expr = Storage.Col.cur -> Value.t

exception Not_compilable

let compile_cur ~vars (sch : Schema.table) tname (e : expr) : cur_expr =
  let offset name =
    let rec find i = function
      | [] -> raise Not_compilable
      | (c : Schema.column) :: rest ->
          if String.equal c.Schema.col_name name then i else find (i + 1) rest
    in
    find 0 sch.Schema.tbl_columns
  in
  let own_col = function
    | Col (qual, name) when qual = None || qual = Some tname ->
        Some (offset name)
    | _ -> None
  in
  let cmp_pred = function
    | Eq -> Some (fun c -> c = 0)
    | Neq -> Some (fun c -> c <> 0)
    | Lt -> Some (fun c -> c < 0)
    | Le -> Some (fun c -> c <= 0)
    | Gt -> Some (fun c -> c > 0)
    | Ge -> Some (fun c -> c >= 0)
    | _ -> None
  in
  let rec go e : cur_expr =
    match e with
    | Lit v -> fun _ -> v
    | Var name -> (
        match Hashtbl.find_opt vars name with
        | Some v -> fun _ -> v
        | None -> raise Not_compilable)
    | Binop (And, a, b) ->
        let ca = go a and cb = go b in
        fun cur ->
          if not (Value.to_bool (ca cur)) then Value.Bool false
          else Value.Bool (Value.to_bool (cb cur))
    | Binop (Or, a, b) ->
        let ca = go a and cb = go b in
        fun cur ->
          if Value.to_bool (ca cur) then Value.Bool true
          else Value.Bool (Value.to_bool (cb cur))
    | Binop (Eq, l, Lit v) when own_col l <> None && not (Value.is_null v) ->
        let i = Option.get (own_col l) in
        fun cur ->
          if Storage.Col.is_null cur i then Value.Null
          else Value.Bool (Storage.Col.equal_lit cur i v)
    | Binop (Eq, Lit v, r) when own_col r <> None && not (Value.is_null v) ->
        let i = Option.get (own_col r) in
        fun cur ->
          if Storage.Col.is_null cur i then Value.Null
          else Value.Bool (Storage.Col.equal_lit cur i v)
    | Binop (op, l, Lit v)
      when cmp_pred op <> None && own_col l <> None && not (Value.is_null v) ->
        let i = Option.get (own_col l) in
        let p = Option.get (cmp_pred op) in
        fun cur ->
          if Storage.Col.is_null cur i then Value.Null
          else Value.Bool (p (Storage.Col.cmp_lit cur i v))
    | Binop (op, Lit v, r)
      when cmp_pred op <> None && own_col r <> None && not (Value.is_null v) ->
        (* compare_sql is antisymmetric, so lit-vs-cell is -1 * cell-vs-lit *)
        let i = Option.get (own_col r) in
        let p = Option.get (cmp_pred op) in
        fun cur ->
          if Storage.Col.is_null cur i then Value.Null
          else Value.Bool (p (-Storage.Col.cmp_lit cur i v))
    | Col (qual, name) when qual = None || qual = Some tname ->
        let i = offset name in
        fun cur -> Storage.Col.value cur i
    | Binop (op, a, b) ->
        let ca = go a and cb = go b in
        let f =
          match op with
          | Add -> Value.add
          | Sub -> Value.sub
          | Mul -> Value.mul
          | Div -> Value.div
          | Mod -> Value.modulo
          | Eq -> fun x y -> cmp_value x y (fun c -> c = 0)
          | Neq -> fun x y -> cmp_value x y (fun c -> c <> 0)
          | Lt -> fun x y -> cmp_value x y (fun c -> c < 0)
          | Le -> fun x y -> cmp_value x y (fun c -> c <= 0)
          | Gt -> fun x y -> cmp_value x y (fun c -> c > 0)
          | Ge -> fun x y -> cmp_value x y (fun c -> c >= 0)
          | And | Or -> assert false
        in
        fun cur -> f (ca cur) (cb cur)
    | Unop (Not, a) ->
        let ca = go a in
        fun cur -> Value.Bool (not (Value.to_bool (ca cur)))
    | Unop (Neg, a) ->
        let ca = go a in
        fun cur -> Value.sub (Value.Int 0) (ca cur)
    | Is_null (a, positive) -> (
        match own_col a with
        | Some i -> fun cur -> Value.Bool (Storage.Col.is_null cur i = positive)
        | None ->
            let ca = go a in
            fun cur -> Value.Bool (Value.is_null (ca cur) = positive))
    | Between (a, lo, hi) ->
        let ca = go a and cl = go lo and ch = go hi in
        fun cur ->
          let v = ca cur in
          let l = cl cur and h = ch cur in
          if Value.is_null v || Value.is_null l || Value.is_null h then
            Value.Null
          else
            Value.Bool (Value.compare_sql v l >= 0 && Value.compare_sql v h <= 0)
    | In_list (a, items) ->
        let ca = go a in
        let citems = List.map go items in
        fun cur ->
          let v = ca cur in
          Value.Bool (List.exists (fun ci -> Value.equal_sql v (ci cur)) citems)
    | Col _ | Fun_call _ | Subselect _ | Exists _ -> raise Not_compilable
  in
  go e

let compile_cur_opt vars sch tname w =
  match compile_cur ~vars sch tname w with
  | ce -> Some ce
  | exception Not_compilable -> None

(* Syntactic gate for batched mutation: an expression that cannot read
   any table (no subselects, however nested) evaluates identically
   against the pre-statement state and the mid-statement state, so the
   storage writes it feeds may be applied as one batch. *)
let rec expr_reads_tables = function
  | Subselect _ | Exists _ -> true
  | Fun_call (_, args) -> List.exists expr_reads_tables args
  | Binop (_, a, b) -> expr_reads_tables a || expr_reads_tables b
  | Unop (_, a) -> expr_reads_tables a
  | In_list (a, items) -> List.exists expr_reads_tables (a :: items)
  | Between (a, b, c) -> List.exists expr_reads_tables [ a; b; c ]
  | Is_null (a, _) -> expr_reads_tables a
  | Lit _ | Col _ | Var _ -> false

let is_aggregate_name = function
  | "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" -> true
  | "COUNT.D" | "SUM.D" | "AVG.D" | "MIN.D" | "MAX.D" -> true
  | _ -> false

let rec expr_has_aggregate = function
  | Fun_call (name, args) ->
      is_aggregate_name name || List.exists expr_has_aggregate args
  | Binop (_, a, b) -> expr_has_aggregate a || expr_has_aggregate b
  | Unop (_, a) -> expr_has_aggregate a
  | In_list (a, items) -> List.exists expr_has_aggregate (a :: items)
  | Between (a, b, c) -> List.exists expr_has_aggregate [ a; b; c ]
  | Is_null (a, _) -> expr_has_aggregate a
  | Lit _ | Col _ | Var _ | Subselect _ | Exists _ -> false

let like_match pattern s =
  (* SQL LIKE: % = any run, _ = any single char. *)
  let np = String.length pattern and ns = String.length s in
  let rec go p i =
    if p >= np then i >= ns
    else
      match pattern.[p] with
      | '%' ->
          let rec try_from j = if go (p + 1) j then true else j < ns && try_from (j + 1) in
          try_from i
      | '_' -> i < ns && go (p + 1) (i + 1)
      | c -> i < ns && s.[i] = c && go (p + 1) (i + 1)
  in
  go 0 0

let rec eval t env e : Value.t =
  match e with
  | Lit v -> v
  | Var name -> (
      match Hashtbl.find_opt env.vars name with
      | Some v -> v
      | None -> sql_error "unknown variable %s" name)
  | Col (qual, name) -> (
      let key = match qual with Some q -> q ^ "." ^ name | None -> name in
      match lookup_binding env key with
      | Some v -> v
      | None -> (
          (* An unqualified name may also be a procedure variable. *)
          match (qual, Hashtbl.find_opt env.vars name) with
          | None, Some v -> v
          | _ -> sql_error "unknown column %s" key))
  | Binop (op, a, b) -> eval_binop t env op a b
  | Unop (Not, a) -> Value.Bool (not (Value.to_bool (eval t env a)))
  | Unop (Neg, a) -> Value.sub (Value.Int 0) (eval t env a)
  | Fun_call ("ROWCOUNT", [ Subselect s ]) ->
      (* dialect extension: the number of rows a query returns, usable
         where MySQL would need a COUNT over a derived table. The
         transpiler emits it for rows.length over grouped queries. *)
      Value.Int (List.length (run_select t env s).rows)
  | Fun_call (name, args) -> eval_fun t env name args
  | Subselect s -> (
      let r = run_select t env s in
      match r.rows with
      | [] -> Value.Null
      | row :: _ -> if Array.length row = 0 then Value.Null else row.(0))
  | Exists s ->
      let r = run_select t env { s with sel_limit = Some 1 } in
      Value.Bool (r.rows <> [])
  | In_list (e, items) ->
      let v = eval t env e in
      (* a subselect item contributes every row of its result, not just a
         scalar: x IN (SELECT ...) *)
      Value.Bool
        (List.exists
           (function
             | Subselect s ->
                 let r = run_select t env s in
                 List.exists
                   (fun row -> Array.length row > 0 && Value.equal_sql v row.(0))
                   r.rows
             | it -> Value.equal_sql v (eval t env it))
           items)
  | Between (e, lo, hi) ->
      let v = eval t env e in
      let l = eval t env lo and h = eval t env hi in
      if Value.is_null v || Value.is_null l || Value.is_null h then Value.Null
      else Value.Bool (Value.compare_sql v l >= 0 && Value.compare_sql v h <= 0)
  | Is_null (e, positive) ->
      let v = eval t env e in
      Value.Bool (Value.is_null v = positive)

and eval_binop t env op a b =
  match op with
  | And ->
      (* short-circuit *)
      if not (Value.to_bool (eval t env a)) then Value.Bool false
      else Value.Bool (Value.to_bool (eval t env b))
  | Or ->
      if Value.to_bool (eval t env a) then Value.Bool true
      else Value.Bool (Value.to_bool (eval t env b))
  | _ -> (
      let va = eval t env a and vb = eval t env b in
      match op with
      | Add -> Value.add va vb
      | Sub -> Value.sub va vb
      | Mul -> Value.mul va vb
      | Div -> Value.div va vb
      | Mod -> Value.modulo va vb
      | Eq -> cmp_value va vb (fun c -> c = 0)
      | Neq -> cmp_value va vb (fun c -> c <> 0)
      | Lt -> cmp_value va vb (fun c -> c < 0)
      | Le -> cmp_value va vb (fun c -> c <= 0)
      | Gt -> cmp_value va vb (fun c -> c > 0)
      | Ge -> cmp_value va vb (fun c -> c >= 0)
      | And | Or -> assert false)

and eval_fun t env name args =
  let v i = eval t env (List.nth args i) in
  match (name, List.length args) with
  | "CONCAT", _ ->
      Value.Text
        (String.concat ""
           (List.map (fun a -> Value.to_string (eval t env a)) args))
  | "UPPER", 1 -> Value.Text (String.uppercase_ascii (Value.to_string (v 0)))
  | "LOWER", 1 -> Value.Text (String.lowercase_ascii (Value.to_string (v 0)))
  | "LENGTH", 1 -> Value.Int (String.length (Value.to_string (v 0)))
  | "ABS", 1 -> (
      match v 0 with
      | Value.Int i -> Value.Int (abs i)
      | x -> Value.Float (Float.abs (Value.to_float x)))
  | "ROUND", 1 -> Value.Int (int_of_float (Float.round (Value.to_float (v 0))))
  | "FLOOR", 1 -> Value.Int (int_of_float (Float.floor (Value.to_float (v 0))))
  | "CEIL", 1 | "CEILING", 1 -> Value.Int (int_of_float (Float.ceil (Value.to_float (v 0))))
  | "MOD", 2 -> Value.modulo (v 0) (v 1)
  | "IF", 3 -> if Value.to_bool (v 0) then v 1 else v 2
  | "IFNULL", 2 -> ( match v 0 with Value.Null -> v 1 | x -> x)
  | "COALESCE", _ ->
      let rec first = function
        | [] -> Value.Null
        | a :: rest -> ( match eval t env a with Value.Null -> first rest | x -> x)
      in
      first args
  | "NULLIF", 2 -> if Value.equal_sql (v 0) (v 1) then Value.Null else v 0
  | "SUBSTR", 3 | "SUBSTRING", 3 ->
      let s = Value.to_string (v 0) in
      let start = max 0 (Value.to_int (v 1) - 1) in
      let len = Value.to_int (v 2) in
      let len = max 0 (min len (String.length s - start)) in
      if start >= String.length s then Value.Text ""
      else Value.Text (String.sub s start len)
  | "LIKE", 2 ->
      let s = v 0 and p = v 1 in
      if Value.is_null s || Value.is_null p then Value.Null
      else Value.Bool (like_match (Value.to_string p) (Value.to_string s))
  | "RAND", 0 -> draw t (fun () -> Value.Float (Uv_util.Prng.float t.prng 1.0))
  | ("NOW" | "CURTIME" | "CURRENT_TIMESTAMP" | "UNIX_TIMESTAMP"), 0 ->
      draw t (fun () -> Value.Int t.sim_time)
  | "LAST_INSERT_ID", 0 -> t.last_insert_id
  | ( ( "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "COUNT.D" | "SUM.D"
      | "AVG.D" | "MIN.D" | "MAX.D" ),
      _ ) ->
      sql_error "aggregate %s used outside a SELECT projection" name
  | _ -> sql_error "unknown function %s/%d" name (List.length args)

(* ------------------------------------------------------------------ *)
(* SELECT                                                               *)
(* ------------------------------------------------------------------ *)

(* A row source: a prefix for qualified names, ordered column names, and
   the rows themselves. *)
and source_rows t env (table_name : string) :
    string list * Value.t array list =
  match Catalog.table t.cat table_name with
  | Some tbl ->
      let cols = Schema.column_names (Storage.schema tbl) in
      let rows = List.map snd (Storage.to_rows tbl) in
      (cols, rows)
  | None -> (
      match Catalog.view t.cat table_name with
      | Some view_sel ->
          let r = run_select t env view_sel in
          (r.columns, r.rows)
      | None -> sql_error "unknown table or view %s" table_name)

and run_select t env (s : select) : result =
  (* 1. build the joined row set; [where_done] marks that the WHERE was
     already applied on the typed columns during the scan *)
  let sources, joined, where_done =
    match s.sel_from with
    | None -> ([], [ [] ], false)
    | Some (tbl, alias) ->
        let prefix = Option.value alias ~default:tbl in
        (* single-table scan of a base table with a cursor-compilable
           WHERE: filter on the typed columns and materialize (and bind)
           only the matching rows *)
        let fast =
          match (s.sel_joins, s.sel_where, Catalog.table t.cat tbl) with
          | [], Some w, Some storage -> (
              match
                compile_cur_opt env.vars (Storage.schema storage) prefix w
              with
              | None -> None
              | Some ce ->
                  let pred cur = Value.to_bool (ce cur) in
                  let matches =
                    match index_probe t env storage w with
                    | Some ids ->
                        Storage.Col.select_ids storage
                          (List.sort compare ids) pred
                    | None -> Storage.Col.select storage pred
                  in
                  Some
                    ( Schema.column_names (Storage.schema storage),
                      List.map snd matches ))
          | _ -> None
        in
        let (cols, rows), where_done =
          match fast with
          | Some cr -> (cr, true)
          | None ->
              let cr =
                (* equality on an indexed column: fetch candidates
                   through the index *)
                match (s.sel_joins, s.sel_where, Catalog.table t.cat tbl) with
                | [], Some w, Some storage -> (
                    match index_probe t env storage w with
                    | Some ids ->
                        ( Schema.column_names (Storage.schema storage),
                          List.filter_map (fun id -> Storage.get storage id)
                            (List.sort compare ids) )
                    | None -> source_rows t env tbl)
                | _ -> source_rows t env tbl
              in
              (cr, false)
        in
        let bind = mk_binder ~qualified_first:true prefix cols in
        let base = List.map bind rows in
        let sources = ref [ (prefix, cols) ] in
        let acc = ref base in
        List.iter
          (fun j ->
            let jprefix = Option.value j.join_alias ~default:j.join_table in
            let jcols, jrows = source_rows t env j.join_table in
            let jbind = mk_binder ~qualified_first:true jprefix jcols in
            let jbound = List.map jbind jrows in
            sources := (jprefix, jcols) :: !sources;
            let next = ref [] in
            List.iter
              (fun left ->
                List.iter
                  (fun jb ->
                    let row_bindings = left @ jb in
                    let jenv = with_bindings env (row_bindings @ env.bindings) in
                    if Value.to_bool (eval t jenv j.join_on) then
                      next := row_bindings :: !next)
                  jbound)
              !acc;
            acc := List.rev !next)
          s.sel_joins;
        (List.rev !sources, !acc, where_done)
  in
  (* 2. WHERE *)
  let filtered =
    match s.sel_where with
    | _ when where_done -> joined
    | None -> joined
    | Some w ->
        List.filter
          (fun b ->
            let renv = with_bindings env (b @ env.bindings) in
            Value.to_bool (eval t renv w))
          joined
  in
  select_project t env s sources filtered

and select_project t env (s : select) sources rows : result =
  let row_env b = with_bindings env (b @ env.bindings) in
  (* expand items *)
  let star_columns () =
    List.concat_map (fun (p, cols) -> List.map (fun c -> (p, c)) cols) sources
  in
  let items =
    List.concat_map
      (function
        | Star ->
            List.map (fun (p, c) -> (Col (Some p, c), Some c)) (star_columns ())
        | Item (e, alias) -> [ (e, alias) ])
      s.sel_items
  in
  let item_name (e, alias) =
    match alias with
    | Some a -> a
    | None -> Printer.expr e
  in
  let columns = List.map item_name items in
  let has_agg = List.exists (fun (e, _) -> expr_has_aggregate e) items in
  let grouped = s.sel_group_by <> [] || has_agg || s.sel_having <> None in
  let output_rows =
    if not grouped then
      List.map
        (fun b ->
          Array.of_list (List.map (fun (e, _) -> eval t (row_env b) e) items))
        rows
    else begin
      (* group rows *)
      let groups : (string, Value.t list * (string * Value.t) list list) Hashtbl.t =
        Hashtbl.create 16
      in
      let order = ref [] in
      List.iter
        (fun b ->
          let keyvals = List.map (eval t (row_env b)) s.sel_group_by in
          let key = String.concat "\x00" (List.map Value.serialize keyvals) in
          (match Hashtbl.find_opt groups key with
          | Some (kv, members) -> Hashtbl.replace groups key (kv, b :: members)
          | None ->
              order := key :: !order;
              Hashtbl.replace groups key (keyvals, [ b ])))
        rows;
      let keys = List.rev !order in
      let keys =
        if keys = [] && s.sel_group_by = [] then [ "" ] (* aggregate over empty set *)
        else keys
      in
      List.filter_map
        (fun key ->
          let _, members =
            match Hashtbl.find_opt groups key with
            | Some (kv, ms) -> (kv, List.rev ms)
            | None -> ([], [])
          in
          let rep = match members with b :: _ -> b | [] -> [] in
          let keep =
            match s.sel_having with
            | None -> true
            | Some h -> Value.to_bool (eval_agg t env members rep h)
          in
          if keep then
            Some
              (Array.of_list
                 (List.map
                    (fun (e, _) -> eval_agg t env members rep e)
                    items))
          else None)
        keys
    end
  in
  (* DISTINCT: deduplicate projected rows, preserving first occurrence *)
  let output_rows, rows =
    if s.sel_distinct then begin
      let seen = Hashtbl.create 16 in
      let keep = ref [] and kept_src = ref [] in
      List.iter2
        (fun out src ->
          let key =
            String.concat "\x00"
              (Array.to_list (Array.map Value.serialize out))
          in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            keep := out :: !keep;
            kept_src := src :: !kept_src
          end)
        output_rows
        (if grouped then List.map (fun _ -> []) output_rows else rows);
      (List.rev !keep, List.rev !kept_src)
    end
    else (output_rows, if grouped then List.map (fun _ -> []) output_rows else rows)
  in
  (* ORDER BY *)
  let output_rows =
    match s.sel_order_by with
    | [] -> output_rows
    | obs ->
        (* order keys must be computed against source rows for ungrouped
           selects; for simplicity we sort on projected values when the
           expression matches an output column, else on source order keys *)
        if not grouped then begin
          let keyed =
            List.map2
              (fun b out ->
                let keys = List.map (fun (e, _) -> eval t (row_env b) e) obs in
                (keys, out))
              rows output_rows
          in
          sort_keyed obs keyed
        end
        else begin
          (* grouped: evaluate order expressions over the projected row via
             column-name bindings *)
          let keyed =
            List.map
              (fun out ->
                let b = List.map2 (fun c v -> (c, v)) columns (Array.to_list out) in
                let keys =
                  List.map (fun (e, _) -> eval t (with_bindings env b) e) obs
                in
                (keys, out))
              output_rows
          in
          sort_keyed obs keyed
        end
  in
  let output_rows =
    match s.sel_offset with
    | None -> output_rows
    | Some off -> List.filteri (fun i _ -> i >= off) output_rows
  in
  let output_rows =
    match s.sel_limit with
    | None -> output_rows
    | Some n -> List.filteri (fun i _ -> i < n) output_rows
  in
  { columns; rows = output_rows; rows_written = 0 }

and sort_keyed obs keyed =
  let dirs = List.map snd obs in
  let cmp (ka, _) (kb, _) =
    let rec go ks1 ks2 ds =
      match (ks1, ks2, ds) with
      | [], [], _ -> 0
      | a :: r1, b :: r2, d :: rd ->
          let c = Value.compare_sql a b in
          let c = match d with Asc -> c | Desc -> -c in
          if c <> 0 then c else go r1 r2 rd
      | _ -> 0
    in
    go ka kb dirs
  in
  List.map snd (List.stable_sort cmp keyed)

(* Aggregate-aware evaluation over one group. [members] are the group's
   source-row bindings; [rep] is the representative row for non-aggregate
   subexpressions. *)
and eval_agg t env members rep e : Value.t =
  match e with
  | Fun_call (name, args) when is_aggregate_name name ->
      let member_env b = with_bindings env (b @ env.bindings) in
      let values arg = List.map (fun b -> eval t (member_env b) arg) members in
      (* NAME.D — the DISTINCT form: deduplicate the argument values *)
      let distinct_values arg =
        let seen = Hashtbl.create 16 in
        List.filter
          (fun v ->
            let k = Storage.index_key v in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.replace seen k ();
              true
            end)
          (values arg)
      in
      let name, values =
        if String.length name > 2 && String.sub name (String.length name - 2) 2 = ".D"
        then (String.sub name 0 (String.length name - 2), distinct_values)
        else (name, values)
      in
      (match (name, args) with
      | "COUNT", ([] | [ Col (_, "*") ]) -> Value.Int (List.length members)
      | "COUNT", [ arg ] ->
          Value.Int
            (List.length (List.filter (fun v -> not (Value.is_null v)) (values arg)))
      | "SUM", [ arg ] ->
          let vs = List.filter (fun v -> not (Value.is_null v)) (values arg) in
          if vs = [] then Value.Null
          else List.fold_left Value.add (Value.Int 0) vs
      | "AVG", [ arg ] ->
          let vs = List.filter (fun v -> not (Value.is_null v)) (values arg) in
          if vs = [] then Value.Null
          else
            Value.div
              (List.fold_left Value.add (Value.Int 0) vs)
              (Value.Int (List.length vs))
      | "MIN", [ arg ] ->
          let vs = List.filter (fun v -> not (Value.is_null v)) (values arg) in
          (match vs with
          | [] -> Value.Null
          | hd :: tl ->
              List.fold_left (fun a v -> if Value.compare_sql v a < 0 then v else a) hd tl)
      | "MAX", [ arg ] ->
          let vs = List.filter (fun v -> not (Value.is_null v)) (values arg) in
          (match vs with
          | [] -> Value.Null
          | hd :: tl ->
              List.fold_left (fun a v -> if Value.compare_sql v a > 0 then v else a) hd tl)
      | _ -> sql_error "malformed aggregate %s" name)
  | Binop (op, a, b) ->
      let env' = with_bindings env (rep @ env.bindings) in
      let va = eval_agg t env members rep a and vb = eval_agg t env members rep b in
      ignore env';
      (match op with
      | Add -> Value.add va vb
      | Sub -> Value.sub va vb
      | Mul -> Value.mul va vb
      | Div -> Value.div va vb
      | Mod -> Value.modulo va vb
      | Eq -> cmp_value va vb (fun c -> c = 0)
      | Neq -> cmp_value va vb (fun c -> c <> 0)
      | Lt -> cmp_value va vb (fun c -> c < 0)
      | Le -> cmp_value va vb (fun c -> c <= 0)
      | Gt -> cmp_value va vb (fun c -> c > 0)
      | Ge -> cmp_value va vb (fun c -> c >= 0)
      | And -> Value.Bool (Value.to_bool va && Value.to_bool vb)
      | Or -> Value.Bool (Value.to_bool va || Value.to_bool vb))
  | Unop (Not, a) -> Value.Bool (not (Value.to_bool (eval_agg t env members rep a)))
  | Unop (Neg, a) -> Value.sub (Value.Int 0) (eval_agg t env members rep a)
  | _ -> eval t (with_bindings env (rep @ env.bindings)) e

(* ------------------------------------------------------------------ *)
(* DML                                                                  *)
(* ------------------------------------------------------------------ *)

and check_foreign_keys t tbl row =
  if t.enforce_fk then
    let sch = Storage.schema tbl in
    List.iter
      (fun (local, ftbl, fcol) ->
        match Storage.column_index tbl local with
        | None -> ()
        | Some i ->
            let v = row.(i) in
            if not (Value.is_null v) then begin
              let target = find_table t ftbl in
              match Storage.column_index target fcol with
              | None -> ()
              | Some fi ->
                  let exists =
                    Storage.fold target ~init:false ~f:(fun acc _ trow ->
                        acc || Value.equal_sql trow.(fi) v)
                  in
                  if not exists then
                    sql_error "foreign key violation: %s.%s = %s not in %s.%s"
                      (Storage.name tbl) local (Value.to_string v) ftbl fcol
            end)
      (Schema.foreign_keys sch)

and run_triggers t timing event table_name ~old_row ~new_row =
  if t.trigger_depth > 8 then sql_error "trigger recursion limit exceeded";
  let trigs = Catalog.triggers_for t.cat table_name event in
  let relevant = List.filter (fun tr -> tr.Catalog.trig_timing = timing) trigs in
  if relevant <> [] then begin
    let tbl = find_table t table_name in
    let cols = Schema.column_names (Storage.schema tbl) in
    let bind prefix row =
      match row with
      | None -> []
      | Some r -> List.mapi (fun i c -> (prefix ^ "." ^ c, r.(i))) cols
    in
    let bindings = bind "NEW" new_row @ bind "OLD" old_row in
    t.trigger_depth <- t.trigger_depth + 1;
    Fun.protect
      ~finally:(fun () -> t.trigger_depth <- t.trigger_depth - 1)
      (fun () ->
        List.iter
          (fun trig ->
            let env = { vars = Hashtbl.create 4; bindings } in
            ignore (run_pstmts t env ~label:None trig.Catalog.trig_body))
          relevant)
  end

(* NOT NULL and PRIMARY KEY uniqueness, checked on every insert and on
   every updated row image ([skip_rowid] = the row being rewritten). PK
   columns holding NULL are not compared (MySQL treats an unfilled key as
   an error elsewhere; here NULL never equals anything). *)
and check_row_constraints t tbl (skip_rowid : int option) (row : Value.t array)
    : unit =
  ignore t;
  let sch = Storage.schema tbl in
  List.iteri
    (fun i (col : Schema.column) ->
      if
        col.Schema.not_null && Value.is_null row.(i)
        && not col.Schema.auto_increment
      then
        sql_error "column %s.%s cannot be NULL" (Storage.name tbl)
          col.Schema.col_name)
    sch.Schema.tbl_columns;
  (* single-column UNIQUE constraints *)
  List.iter
    (fun uname ->
      match Storage.column_index tbl uname with
      | None -> ()
      | Some ui ->
          if not (Value.is_null row.(ui)) then
            let candidates =
              match Storage.indexed_lookup tbl uname row.(ui) with
              | Some ids -> ids
              | None -> Storage.fold tbl ~init:[] ~f:(fun acc id _ -> id :: acc)
            in
            List.iter
              (fun id ->
                if Some id <> skip_rowid then
                  match Storage.get tbl id with
                  | Some other ->
                      if Value.equal_sql other.(ui) row.(ui) then
                        sql_error "duplicate entry for UNIQUE column %s.%s"
                          (Storage.name tbl) uname
                  | None -> ())
              candidates)
    (Schema.unique_columns sch);
  match Schema.primary_key_columns sch with
  | [] -> ()
  | pks -> (
      let idx_of name =
        match Storage.column_index tbl name with
        | Some i -> i
        | None -> sql_error "unknown PRIMARY KEY column %s" name
      in
      let pk_idxs = List.map idx_of pks in
      if not (List.exists (fun i -> Value.is_null row.(i)) pk_idxs) then
        let first_idx = List.hd pk_idxs in
        let candidates =
          match Storage.indexed_lookup tbl (List.hd pks) row.(first_idx) with
          | Some ids -> ids
          | None -> Storage.fold tbl ~init:[] ~f:(fun acc id _ -> id :: acc)
        in
        List.iter
          (fun id ->
            if Some id <> skip_rowid then
              match Storage.get tbl id with
              | Some other ->
                  if
                    List.for_all
                      (fun i -> Value.equal_sql other.(i) row.(i))
                      pk_idxs
                  then
                    sql_error "duplicate entry for PRIMARY KEY in %s"
                      (Storage.name tbl)
              | None -> ())
          candidates)

and insert_row t table_name (columns : string list option) (values : Value.t list)
    : unit =
  (* Updatable view: route to the parent table (§4.2 "Updatable VIEWs"). *)
  match Catalog.table t.cat table_name with
  | None -> (
      match Catalog.view t.cat table_name with
      | Some vsel -> (
          match vsel.sel_from with
          | Some (parent, _) -> insert_row t parent columns values
          | None -> sql_error "view %s is not insertable" table_name)
      | None -> sql_error "unknown table %s" table_name)
  | Some tbl ->
      let sch = Storage.schema tbl in
      let cols_a = Array.of_list sch.Schema.tbl_columns in
      let ncols = Array.length cols_a in
      let row = Array.make ncols Value.Null in
      let set_col name v =
        match Storage.column_index tbl name with
        | Some i -> row.(i) <- Value.coerce cols_a.(i).Schema.col_ty v
        | None -> sql_error "unknown column %s.%s" table_name name
      in
      (match columns with
      | Some cols ->
          if List.length cols <> List.length values then
            sql_error "INSERT into %s: %d columns but %d values" table_name
              (List.length cols) (List.length values);
          List.iter2 set_col cols values
      | None ->
          if List.length values <> ncols then
            sql_error "INSERT into %s: expected %d values, got %d" table_name ncols
              (List.length values);
          List.iteri
            (fun i v -> row.(i) <- Value.coerce cols_a.(i).Schema.col_ty v)
            values);
      (* AUTO_INCREMENT: fill a missing value, or bump past an explicit one.
         The assigned value is a recorded draw so replay reuses it (§4.4). *)
      (match Schema.auto_increment_column sch with
      | Some ac -> (
          match Storage.column_index tbl ac with
          | Some i ->
              (* counter restored on rollback so a retried statement
                 draws the same fresh keys *)
              t.journal <-
                Log.U_auto_value (table_name, Storage.next_auto_value tbl)
                :: t.journal;
              if Value.is_null row.(i) then begin
                let v =
                  draw t (fun () -> Value.Int (Storage.take_auto_value tbl))
                in
                Storage.bump_auto_value tbl (Value.to_int v);
                row.(i) <- Value.coerce Value.Tint v;
                t.last_insert_id <- row.(i)
              end
              else Storage.bump_auto_value tbl (Value.to_int row.(i))
          | None -> ())
      | None -> ());
      check_row_constraints t tbl None row;
      check_foreign_keys t tbl row;
      run_triggers t Before Ev_insert table_name ~old_row:None ~new_row:(Some row);
      ignore (j_insert t tbl row);
      run_triggers t After Ev_insert table_name ~old_row:None ~new_row:(Some row)

(* Find an AND-reachable equality conjunct [col = value] on an indexed
   column whose value is computable without row bindings; the index rows
   are then a sound superset of the matches. *)
and index_probe t env tbl (w : expr) : Storage.rowid list option =
  let tbl_name = Storage.name tbl in
  let try_eq col e =
    match Storage.column_index tbl col with
    | None -> None
    | Some _ -> (
        match eval t env e with
        | Value.Null -> Some [] (* col = NULL matches no row *)
        | v -> Storage.indexed_lookup tbl col v
        | exception Sql_error _ -> None)
  in
  match w with
  | Binop (And, a, b) -> (
      match index_probe t env tbl a with
      | Some _ as r -> r
      | None -> index_probe t env tbl b)
  | Binop (Eq, Col (qual, col), e) when qual = None || qual = Some tbl_name ->
      try_eq col e
  | Binop (Eq, e, Col (qual, col)) when qual = None || qual = Some tbl_name ->
      try_eq col e
  | _ -> None

and matching_rows t env tbl where =
  match where with
  | None -> Storage.to_rows tbl
  | Some w -> (
      let name = Storage.name tbl in
      match compile_cur_opt env.vars (Storage.schema tbl) name w with
      | Some ce -> (
          (* victims filtered on the typed columns; only matches box *)
          let pred cur = Value.to_bool (ce cur) in
          match index_probe t env tbl w with
          | Some ids -> Storage.Col.select_ids tbl (List.sort compare ids) pred
          | None -> Storage.Col.select tbl pred)
      | None ->
          let candidates =
            match index_probe t env tbl w with
            | Some ids ->
                List.filter_map
                  (fun id ->
                    Option.map (fun row -> (id, row)) (Storage.get tbl id))
                  (List.sort compare ids)
            | None -> Storage.to_rows tbl
          in
          let cols = Schema.column_names (Storage.schema tbl) in
          let bind = mk_binder ~qualified_first:false name cols in
          List.filter
            (fun (_, row) ->
              Value.to_bool
                (eval t (with_bindings env (bind row @ env.bindings)) w))
            candidates)

and resolve_write_target t table_name where =
  (* For UPDATE/DELETE on an updatable view, push the view predicate into
     the WHERE clause and target the parent table. *)
  match Catalog.table t.cat table_name with
  | Some tbl -> (tbl, where)
  | None -> (
      match Catalog.view t.cat table_name with
      | Some vsel -> (
          match vsel.sel_from with
          | Some (parent, _) ->
              let tbl = find_table t parent in
              let where' =
                match (vsel.sel_where, where) with
                | None, w -> w
                | Some vw, None -> Some vw
                | Some vw, Some w -> Some (Binop (And, vw, w))
              in
              (tbl, where')
          | None -> sql_error "view %s is not updatable" table_name)
      | None -> sql_error "unknown table %s" table_name)

and update_rows t env table_name assigns where : int =
  let tbl, where = resolve_write_target t table_name where in
  let sch = Storage.schema tbl in
  let name = Storage.name tbl in
  let victims = matching_rows t env tbl where in
  (match victims with
  | [] -> ()
  | _ ->
      let cols = Schema.column_names sch in
      let bind = mk_binder ~qualified_first:false name cols in
      let cols_a = Array.of_list sch.Schema.tbl_columns in
      (* assign targets resolve lazily at first use and cache — the
         resolution/evaluation interleaving of the first victim must
         reproduce the per-victim interpreter exactly (an unknown-column
         error may interrupt a half-evaluated assign list) *)
      let resolved = Array.make (List.length assigns) None in
      let fresh_of row renv =
        let fresh = Array.copy row in
        List.iteri
          (fun k (cname, e) ->
            let i, ty =
              match resolved.(k) with
              | Some p -> p
              | None ->
                  let p =
                    match Storage.column_index tbl cname with
                    | Some i -> (i, cols_a.(i).Schema.col_ty)
                    | None -> sql_error "unknown column %s.%s" name cname
                  in
                  resolved.(k) <- Some p;
                  p
            in
            fresh.(i) <- Value.coerce ty (eval t renv e))
          assigns;
        fresh
      in
      (* One storage batch per statement when sequential semantics are
         provably preserved: no UPDATE triggers, no assign reads any
         table (so row images evaluated against the pre-statement state
         equal the sequential ones), and no PRIMARY KEY / UNIQUE column
         is assigned (so the per-victim constraint checks are
         independent of the other victims' writes). *)
      let keyed = Schema.primary_key_columns sch @ Schema.unique_columns sch in
      let batchable =
        Catalog.triggers_for t.cat name Ev_update = []
        && List.for_all
             (fun (cname, e) ->
               (not (List.exists (String.equal cname) keyed))
               && not (expr_reads_tables e))
             assigns
      in
      if batchable then begin
        let updates =
          List.map
            (fun (rid, row) ->
              let renv = with_bindings env (bind row @ env.bindings) in
              let fresh = fresh_of row renv in
              check_row_constraints t tbl (Some rid) fresh;
              (rid, fresh))
            victims
        in
        let before = Storage.update_many tbl updates in
        List.iter2
          (fun (rid, fresh) (_, old) ->
            t.journal <-
              Log.U_row_update (name, rid, old, Array.copy fresh) :: t.journal;
            t.rows_written <- t.rows_written + 1)
          updates before;
        mark_written t name
      end
      else
        List.iter
          (fun (rid, row) ->
            let renv = with_bindings env (bind row @ env.bindings) in
            let fresh = fresh_of row renv in
            check_row_constraints t tbl (Some rid) fresh;
            run_triggers t Before Ev_update name ~old_row:(Some row)
              ~new_row:(Some fresh);
            ignore (j_update t tbl rid fresh);
            run_triggers t After Ev_update name ~old_row:(Some row)
              ~new_row:(Some fresh))
          victims);
  List.length victims

and delete_rows t env table_name where : int =
  let tbl, where = resolve_write_target t table_name where in
  let name = Storage.name tbl in
  let victims = matching_rows t env tbl where in
  (match victims with
  | [] -> ()
  | _ ->
      if Catalog.triggers_for t.cat name Ev_delete = [] then begin
        (* one storage batch and one hash-chain update per statement *)
        let removed = Storage.delete_many tbl (List.map fst victims) in
        List.iter
          (fun (rid, row) ->
            t.journal <- Log.U_row_delete (name, rid, row) :: t.journal;
            t.rows_written <- t.rows_written + 1)
          removed;
        mark_written t name
      end
      else
        List.iter
          (fun (rid, row) ->
            run_triggers t Before Ev_delete name ~old_row:(Some row)
              ~new_row:None;
            ignore (j_delete t tbl rid);
            run_triggers t After Ev_delete name ~old_row:(Some row)
              ~new_row:None)
          victims);
  List.length victims

(* ------------------------------------------------------------------ *)
(* Procedure bodies                                                     *)
(* ------------------------------------------------------------------ *)

and run_pstmts t env ~label body : result =
  let exception Leave_block in
  let last = ref empty_result in
  (try
     List.iter
       (fun p ->
         match run_pstmt t env ~label p with
         | `Result r -> last := r
         | `Leave l -> (
             match label with
             | Some lbl when String.equal l lbl -> raise Leave_block
             | _ -> raise Leave_block (* leaving any enclosing label ends us *)))
       body
   with Leave_block -> ());
  !last

and run_pstmt t env ~label p : [ `Result of result | `Leave of string ] =
  match p with
  | P_stmt s -> `Result (exec_stmt t env s)
  | P_declare (v, ty, init) ->
      let value =
        match init with
        | None -> Value.Null
        | Some e -> Value.coerce ty (eval t env e)
      in
      Hashtbl.replace env.vars v value;
      `Result empty_result
  | P_set (v, e) ->
      Hashtbl.replace env.vars v (eval t env e);
      `Result empty_result
  | P_select_into (s, vars) ->
      let r = run_select t env s in
      (match r.rows with
      | [] -> List.iter (fun v -> Hashtbl.replace env.vars v Value.Null) vars
      | row :: _ ->
          List.iteri
            (fun i v ->
              let value = if i < Array.length row then row.(i) else Value.Null in
              Hashtbl.replace env.vars v value)
            vars);
      `Result empty_result
  | P_if (branches, else_body) ->
      let rec pick = function
        | [] -> else_body
        | (cond, body) :: rest ->
            if Value.to_bool (eval t env cond) then body else pick rest
      in
      run_block t env ~label (pick branches)
  | P_while (cond, body) ->
      let guard = ref 0 in
      let out = ref (`Result empty_result) in
      let continue = ref true in
      while !continue && Value.to_bool (eval t env cond) do
        incr guard;
        if !guard > 1_000_000 then sql_error "WHILE iteration limit exceeded";
        match run_block t env ~label body with
        | `Leave _ as l ->
            out := l;
            continue := false
        | `Result _ as r -> out := r
      done;
      !out
  | P_leave l -> `Leave l
  | P_signal state -> raise (Signal_raised state)

and run_block t env ~label body :
    [ `Result of result | `Leave of string ] =
  let rec go last = function
    | [] -> `Result last
    | p :: rest -> (
        match run_pstmt t env ~label p with
        | `Result r -> go r rest
        | `Leave l -> (
            match label with
            | Some lbl when String.equal l lbl -> `Leave l
            | _ -> `Leave l))
  in
  go empty_result body

and call_procedure t name args : result =
  match Catalog.procedure t.cat name with
  | None -> sql_error "unknown procedure %s" name
  | Some proc ->
      if List.length args <> List.length proc.Catalog.proc_params then
        sql_error "procedure %s expects %d arguments, got %d" name
          (List.length proc.Catalog.proc_params)
          (List.length args);
      let env = empty_env () in
      List.iter2
        (fun (pname, ty) v -> Hashtbl.replace env.vars pname (Value.coerce ty v))
        proc.Catalog.proc_params args;
      run_pstmts t env ~label:proc.Catalog.proc_label proc.Catalog.proc_body

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

and exec_stmt t env (s : stmt) : result =
  match s with
  | Select sel -> run_select t env sel
  | Insert { table; columns; values } ->
      List.iter
        (fun row_exprs ->
          let vs = List.map (eval t env) row_exprs in
          insert_row t table columns vs)
        values;
      { empty_result with rows_written = List.length values }
  | Insert_select { table; columns; query } ->
      (* materialise the source rows first: INSERT INTO t SELECT ... FROM t
         must not observe its own insertions *)
      let r = run_select t env query in
      List.iter (fun row -> insert_row t table columns (Array.to_list row)) r.rows;
      { empty_result with rows_written = List.length r.rows }
  | Update { table; assigns; where } ->
      let n = update_rows t env table assigns where in
      { empty_result with rows_written = n }
  | Delete { table; where } ->
      let n = delete_rows t env table where in
      { empty_result with rows_written = n }
  | Call (name, args) ->
      let vs = List.map (eval t env) args in
      call_procedure t name vs
  | Transaction stmts ->
      let last = ref empty_result in
      List.iter (fun s -> last := exec_stmt t env s) stmts;
      !last
  | Create_table { name; columns; if_not_exists } ->
      if Catalog.table t.cat name <> None then begin
        if not if_not_exists then sql_error "table %s already exists" name
      end
      else begin
        capture_table t name;
        Catalog.add_table t.cat (Storage.create (Schema.table name columns))
      end;
      empty_result
  | Drop_table { name; if_exists } ->
      if Catalog.table t.cat name = None then begin
        if not if_exists then sql_error "unknown table %s" name
      end
      else begin
        capture_table t name;
        Catalog.remove_table t.cat name
      end;
      empty_result
  | Truncate_table name ->
      let tbl = find_table t name in
      let ids = List.map fst (Storage.to_rows tbl) in
      List.iter (fun id -> ignore (j_delete t tbl id)) ids;
      empty_result
  | Alter_table (name, action) ->
      let tbl = find_table t name in
      (match action with
      | Set_auto_increment _ ->
          (* a counter pin needs no table capture; journal just the
             counter *)
          t.journal <-
            Log.U_auto_value (name, Storage.next_auto_value tbl) :: t.journal
      | _ -> capture_table t name);
      (match action with
      | Rename_table n2 -> capture_table t n2
      | _ -> ());
      let sch = Storage.schema tbl in
      (match action with
      | Set_auto_increment v -> Storage.set_auto_value tbl v
      | Add_column c ->
          let fresh =
            { sch with Schema.tbl_columns = sch.Schema.tbl_columns @ [ c ] }
          in
          Storage.set_schema tbl fresh (fun row ->
              Array.append row [| Value.Null |])
      | Drop_column cname ->
          let idx =
            match Storage.column_index tbl cname with
            | Some i -> i
            | None -> sql_error "unknown column %s.%s" name cname
          in
          let fresh =
            {
              sch with
              Schema.tbl_columns =
                List.filteri (fun i _ -> i <> idx) sch.Schema.tbl_columns;
            }
          in
          Storage.set_schema tbl fresh (fun row ->
              Array.of_list
                (List.filteri (fun i _ -> i <> idx) (Array.to_list row)))
      | Rename_table n2 -> Catalog.rename_table t.cat name n2);
      empty_result
  | Create_view { name; query; or_replace } ->
      if (not or_replace) && Catalog.view t.cat name <> None then
        sql_error "view %s already exists" name;
      capture_view t name;
      Catalog.add_view t.cat name query;
      empty_result
  | Drop_view name ->
      capture_view t name;
      Catalog.remove_view t.cat name;
      empty_result
  | Create_index { name; table; columns } ->
      capture_index t name None;
      Catalog.add_index t.cat name (table, columns);
      (match (Catalog.table t.cat table, columns) with
      | Some tbl, col :: _ -> Storage.create_value_index tbl col
      | _ -> ());
      empty_result
  | Drop_index { name; _ } ->
      capture_index t name None;
      Catalog.remove_index t.cat name;
      empty_result
  | Create_procedure { name; params; label; body } ->
      capture_proc t name;
      Catalog.add_procedure t.cat
        {
          Catalog.proc_name = name;
          proc_params = params;
          proc_label = label;
          proc_body = body;
        };
      empty_result
  | Drop_procedure name ->
      capture_proc t name;
      Catalog.remove_procedure t.cat name;
      empty_result
  | Create_trigger { name; timing; event; table; body } ->
      capture_trigger t name;
      Catalog.add_trigger t.cat
        {
          Catalog.trig_name = name;
          trig_timing = timing;
          trig_event = event;
          trig_table = table;
          trig_body = body;
        };
      empty_result
  | Drop_trigger name ->
      capture_trigger t name;
      Catalog.remove_trigger t.cat name;
      empty_result

(* ------------------------------------------------------------------ *)
(* Compiled statement plans                                             *)
(* ------------------------------------------------------------------ *)

(* A plan freezes the name-resolution and AST-walking work of a
   trigger-free UPDATE/DELETE on a base table: column offsets are
   resolved once, the WHERE predicate and SET list become closures over
   the row array, and an equality on an indexed column is noted for an
   index probe. Plans hold no [Storage.t] handle — what-if replay runs
   against fresh temporary catalogs, so the plan re-binds its table by
   name at execution and validates with a physical-equality check on the
   schema record ([Storage.copy] shares it; DDL replaces it). An invalid
   bind falls back to the interpreter, which is always sound. Plans are
   immutable after [prepare], so they are shared read-only across replay
   domains. *)

type compiled_expr = Value.t array -> Value.t

type plan_action =
  | P_update of (int * Value.ty * compiled_expr) list
  | P_delete

type plan = {
  plan_table : string;
  plan_schema : Schema.table; (* the physical record captured at prepare *)
  plan_where : compiled_expr option;
  plan_cur_where : cur_expr option;
      (* the same predicate compiled against a column cursor: victims are
         filtered on the typed columns and only matches materialize *)
  plan_probe : (string * Value.t) option; (* [col = literal] conjunct *)
  plan_batchable : bool;
      (* true when the assigns touch no PRIMARY KEY or UNIQUE column, so
         the per-victim constraint checks are state-independent and the
         row writes can go through one [Storage.update_many] batch *)
  plan_action : plan_action;
}

(* The compilable expression subset: column refs, literals, arithmetic,
   comparisons and short-circuit AND/OR, plus the other pure forms
   (NOT/negate, IS NULL, BETWEEN, IN over pure items). Anything that can
   draw non-determinism, read other tables or touch procedure variables
   (function calls, subselects, EXISTS, Var) refuses compilation — the
   closures must be pure functions of the row. Each case mirrors [eval]
   exactly; divergence here would break bitwise replay identity. *)
let compile_expr (sch : Schema.table) tname (e : expr) : compiled_expr =
  let offset name =
    let rec find i = function
      | [] -> raise Not_compilable
      | (c : Schema.column) :: rest ->
          if String.equal c.Schema.col_name name then i else find (i + 1) rest
    in
    find 0 sch.Schema.tbl_columns
  in
  let rec go e : compiled_expr =
    match e with
    | Lit v -> fun _ -> v
    | Col (qual, name) when qual = None || qual = Some tname ->
        let i = offset name in
        fun row -> row.(i)
    | Binop (And, a, b) ->
        let ca = go a and cb = go b in
        fun row ->
          if not (Value.to_bool (ca row)) then Value.Bool false
          else Value.Bool (Value.to_bool (cb row))
    | Binop (Or, a, b) ->
        let ca = go a and cb = go b in
        fun row ->
          if Value.to_bool (ca row) then Value.Bool true
          else Value.Bool (Value.to_bool (cb row))
    | Binop (op, a, b) ->
        let ca = go a and cb = go b in
        let f =
          match op with
          | Add -> Value.add
          | Sub -> Value.sub
          | Mul -> Value.mul
          | Div -> Value.div
          | Mod -> Value.modulo
          | Eq -> fun x y -> cmp_value x y (fun c -> c = 0)
          | Neq -> fun x y -> cmp_value x y (fun c -> c <> 0)
          | Lt -> fun x y -> cmp_value x y (fun c -> c < 0)
          | Le -> fun x y -> cmp_value x y (fun c -> c <= 0)
          | Gt -> fun x y -> cmp_value x y (fun c -> c > 0)
          | Ge -> fun x y -> cmp_value x y (fun c -> c >= 0)
          | And | Or -> assert false
        in
        fun row -> f (ca row) (cb row)
    | Unop (Not, a) ->
        let ca = go a in
        fun row -> Value.Bool (not (Value.to_bool (ca row)))
    | Unop (Neg, a) ->
        let ca = go a in
        fun row -> Value.sub (Value.Int 0) (ca row)
    | Is_null (a, positive) ->
        let ca = go a in
        fun row -> Value.Bool (Value.is_null (ca row) = positive)
    | Between (a, lo, hi) ->
        let ca = go a and cl = go lo and ch = go hi in
        fun row ->
          let v = ca row in
          let l = cl row and h = ch row in
          if Value.is_null v || Value.is_null l || Value.is_null h then
            Value.Null
          else
            Value.Bool (Value.compare_sql v l >= 0 && Value.compare_sql v h <= 0)
    | In_list (a, items) ->
        let ca = go a in
        let citems = List.map go items in
        fun row ->
          let v = ca row in
          Value.Bool (List.exists (fun ci -> Value.equal_sql v (ci row)) citems)
    | Col _ | Var _ | Fun_call _ | Subselect _ | Exists _ ->
        raise Not_compilable
  in
  go e

(* The [index_probe] restriction that stays valid without an engine: an
   AND-reachable [col = literal] conjunct. *)
let rec probe_of tname (w : expr) =
  match w with
  | Binop (And, a, b) -> (
      match probe_of tname a with
      | Some _ as r -> r
      | None -> probe_of tname b)
  | Binop (Eq, Col (qual, col), Lit v) when qual = None || qual = Some tname ->
      Some (col, v)
  | Binop (Eq, Lit v, Col (qual, col)) when qual = None || qual = Some tname ->
      Some (col, v)
  | _ -> None

let prepare cat (stmt : Ast.stmt) : plan option =
  let no_vars : (string, Value.t) Hashtbl.t = Hashtbl.create 1 in
  let build table where ~batchable
      (mk : Storage.t -> Schema.table -> plan_action) event =
    match Catalog.table cat table with
    | None -> None (* view or unknown target: interpreter handles it *)
    | Some st ->
        if Catalog.triggers_for cat table event <> [] then None
        else
          let sch = Storage.schema st in
          try
            Some
              {
                plan_table = table;
                plan_schema = sch;
                plan_where = Option.map (compile_expr sch table) where;
                plan_cur_where =
                  Option.map (compile_cur ~vars:no_vars sch table) where;
                plan_probe = Option.bind where (probe_of table);
                plan_batchable = batchable sch;
                plan_action = mk st sch;
              }
          with Not_compilable -> None
  in
  match stmt with
  | Update { table; assigns; where } ->
      (* batchable when no PRIMARY KEY / UNIQUE column is assigned: the
         constraint checks are then independent of the other victims'
         writes, and compiled assigns are pure row functions already *)
      build table where
        ~batchable:(fun sch ->
          let keyed =
            Schema.primary_key_columns sch @ Schema.unique_columns sch
          in
          List.for_all
            (fun (cname, _) -> not (List.exists (String.equal cname) keyed))
            assigns)
        (fun st sch ->
          P_update
            (List.map
               (fun (cname, e) ->
                 match Storage.column_index st cname with
                 | Some i ->
                     let col = List.nth sch.Schema.tbl_columns i in
                     (i, col.Schema.col_ty, compile_expr sch table e)
                 | None -> raise Not_compilable)
               assigns))
        Ev_update
  | Delete { table; where } ->
      build table where ~batchable:(fun _ -> true) (fun _ _ -> P_delete)
        Ev_delete
  | _ -> None

(* Run a plan, or decline ([None]) when it no longer binds: table gone,
   schema record replaced by DDL, or a trigger appeared since [prepare].
   Victim collection and mutation order reproduce the interpreter's
   exactly (ascending rowid), and all journalling goes through the same
   [j_update]/[j_delete], so the log entry and undo images are
   indistinguishable from an interpreted run. *)
let try_plan t (p : plan) : result option =
  match Catalog.table t.cat p.plan_table with
  | None -> None
  | Some st ->
      let event =
        match p.plan_action with P_update _ -> Ev_update | P_delete -> Ev_delete
      in
      if
        Storage.schema st != p.plan_schema
        || Catalog.triggers_for t.cat p.plan_table event <> []
      then None
      else begin
        let victims =
          match p.plan_cur_where with
          | Some cw -> (
              (* filter on the typed columns; only matches materialize *)
              let pred cur = Value.to_bool (cw cur) in
              match p.plan_probe with
              | Some (_, Value.Null) -> [] (* col = NULL matches no row *)
              | Some (col, v) -> (
                  match Storage.indexed_lookup st col v with
                  | Some ids ->
                      Storage.Col.select_ids st (List.sort compare ids) pred
                  | None -> Storage.Col.select st pred)
              | None -> Storage.Col.select st pred)
          | None -> Storage.to_rows st (* no WHERE: every row is a victim *)
        in
        (match (p.plan_action, victims) with
        | _, [] -> ()
        | P_update assigns, _ when p.plan_batchable ->
            (* per-statement batch: one lock acquisition, one hash-chain
               update; constraint checks against the pre-statement state
               are equivalent because no keyed column is assigned *)
            let updates =
              List.map
                (fun (rid, row) ->
                  let fresh = Array.copy row in
                  List.iter
                    (fun (i, ty, ce) -> fresh.(i) <- Value.coerce ty (ce row))
                    assigns;
                  check_row_constraints t st (Some rid) fresh;
                  (rid, fresh))
                victims
            in
            let before = Storage.update_many st updates in
            let name = Storage.name st in
            List.iter2
              (fun (rid, fresh) (_, old) ->
                t.journal <-
                  Log.U_row_update (name, rid, old, Array.copy fresh)
                  :: t.journal;
                t.rows_written <- t.rows_written + 1)
              updates before;
            mark_written t name
        | P_update assigns, _ ->
            List.iter
              (fun (rid, row) ->
                let fresh = Array.copy row in
                List.iter
                  (fun (i, ty, ce) -> fresh.(i) <- Value.coerce ty (ce row))
                  assigns;
                check_row_constraints t st (Some rid) fresh;
                ignore (j_update t st rid fresh))
              victims
        | P_delete, _ ->
            let removed = Storage.delete_many st (List.map fst victims) in
            let name = Storage.name st in
            List.iter
              (fun (rid, row) ->
                t.journal <- Log.U_row_delete (name, rid, row) :: t.journal;
                t.rows_written <- t.rows_written + 1)
              removed;
            mark_written t name);
        Some { empty_result with rows_written = List.length victims }
      end

(* ------------------------------------------------------------------ *)
(* Top-level entry points                                               *)
(* ------------------------------------------------------------------ *)

let begin_statement ?rowid_base t nondet =
  t.journal <- [];
  t.nondet_in <- nondet;
  t.nondet_out <- [];
  t.written <- [];
  t.rows_written <- 0;
  t.rowid_alloc <- Option.map (fun b -> (b, ref 0)) rowid_base

(* Statement text attached to Sql_error so chaos-run failures are
   diagnosable from the message alone; long statements are clipped. *)
let error_context t stmt =
  let sql = Printer.stmt_compact stmt in
  let sql =
    if String.length sql > 160 then String.sub sql 0 157 ^ "..." else sql
  in
  Printf.sprintf " [at log index %d: %s]" (Log.length t.log + 1) sql

let exec ?app_txn ?(nondet = []) ?rowid_base ?plan t stmt =
  begin_statement ?rowid_base t nondet;
  Uv_util.Clock.charge_rtt t.clock ();
  (* pre-statement state: an injected (infrastructure) fault restores all
     of it so a retried statement reenacts exactly — an application-level
     error keeps the historical behaviour (clock and PRNG advance) *)
  let sim0 = t.sim_time in
  let li0 = t.last_insert_id in
  let prng0 = Uv_util.Prng.copy t.prng in
  t.sim_time <- t.sim_time + 1;
  let traced = Uv_obs.Trace.enabled t.obs in
  let t0 = if traced then Uv_util.Clock.now_ms () else 0.0 in
  let run () =
    Uv_fault.Fault.fire ~key:t.sim_time t.fault Uv_fault.Fault.Site.engine_exec
      [ Uv_fault.Fault.Stmt_fail ];
    let r =
      try
        match Option.bind plan (try_plan t) with
        | Some r ->
            if traced then Uv_obs.Trace.incr t.obs "db.plan_hits";
            r
        | None ->
            if Option.is_some plan && traced then
              Uv_obs.Trace.incr t.obs "db.plan_binds_failed";
            exec_stmt t (empty_env ()) stmt
      with Failure msg -> sql_error "%s" msg
    in
    (* the statement executed; a fault here models a crash before its log
       entry commits, forcing the full journal rollback below *)
    Uv_fault.Fault.fire ~key:t.sim_time t.fault
      Uv_fault.Fault.Site.engine_commit
      [ Uv_fault.Fault.Stmt_fail ];
    r
  in
  match run () with
  | r ->
      if traced then begin
        Uv_obs.Trace.observe t.obs "db.exec_ms" (Uv_util.Clock.now_ms () -. t0);
        Uv_obs.Trace.incr t.obs "db.log_appends"
      end;
      let written_hashes =
        List.rev_map (fun name -> (name, table_hash t name)) t.written
      in
      let entry =
        {
          Log.index = Log.length t.log + 1;
          stmt;
          sql = Printer.stmt_compact stmt;
          nondet = List.rev t.nondet_out;
          rows_written = t.rows_written;
          written_hashes;
          undo = t.journal;
          app_txn;
          template_id = None;
        }
      in
      Log.append t.log entry;
      (match t.checkpoints with
      | Some ladder when Checkpoint.due ladder entry.Log.index -> (
          (* a fault here abandons this rung only: the ladder stays
             consistent and the next stride multiple tries again *)
          match
            Uv_fault.Fault.check ~key:entry.Log.index t.fault
              Uv_fault.Fault.Site.checkpoint
              [ Uv_fault.Fault.Stmt_fail ]
          with
          | Some _ -> Checkpoint.note_skipped ladder
          | None ->
              Checkpoint.record ladder t.cat entry.Log.index;
              if traced then Uv_obs.Trace.incr t.obs "db.checkpoints")
      | _ -> ());
      { r with rows_written = t.rows_written }
  | exception exn ->
      (* statement atomicity on *every* failure path: roll the journal
         back whatever escaped, not just SQL-level errors *)
      let r0 = if traced then Uv_util.Clock.now_ms () else 0.0 in
      undo_journal t;
      (match exn with
      | Uv_fault.Fault.Injected _ ->
          t.prng <- prng0;
          t.sim_time <- sim0;
          t.last_insert_id <- li0
      | _ -> ());
      if traced then begin
        Uv_obs.Trace.observe t.obs "db.rollback_ms" (Uv_util.Clock.now_ms () -. r0);
        Uv_obs.Trace.incr t.obs "db.rollbacks"
      end;
      (match exn with
      | Sql_error msg -> raise (Sql_error (msg ^ error_context t stmt))
      | _ -> raise exn)

let exec_sql ?app_txn ?nondet t sql = exec ?app_txn ?nondet t (Parser.parse_stmt sql)

let exec_script t sql = List.map (fun s -> exec t s) (Parser.parse_script sql)

let query t sel =
  begin_statement t [];
  run_select t (empty_env ()) sel

let query_sql t sql =
  match Parser.parse_stmt sql with
  | Select sel -> query t sel
  | _ -> sql_error "query_sql expects a SELECT"
