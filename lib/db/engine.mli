(** The SQL execution engine.

    A self-contained, in-memory relational engine covering the SQL surface
    of Table A: DDL, DML, views (including updatable views), stored
    procedures with control flow, triggers, transactions, and built-in
    functions — plus the bookkeeping Ultraverse's retroactive plugin needs:
    a committed-statement log with recorded non-determinism, per-table
    incremental hashes, and a round-trip cost clock.

    Concurrency model: statements execute atomically in commit order (the
    paper's replay likewise serializes commits; parallelism is modelled by
    the scheduler in [Uv_retroactive]). A failed statement (SIGNAL or
    runtime error) is rolled back completely and not logged.

    Constraints: PRIMARY KEY uniqueness and NOT NULL are always enforced;
    single-column UNIQUE constraints likewise; FOREIGN KEYs only when the
    engine is created with [~enforce_fk:true] (the workloads rely on
    MySQL's default of application-managed integrity).

    Dialect extensions beyond MySQL's surface: [ROWCOUNT((SELECT ...))]
    evaluates the subquery and returns its row count — the transpiler
    emits it where MySQL would need a COUNT over a derived table. *)

open Uv_sql

exception Sql_error of string
(** Runtime error (unknown table, type error, ...). The offending
    statement's effects are rolled back before this escapes [exec],
    and the message carries the statement text and prospective log
    index ([... [at log index N: <sql>]]) for diagnosis. *)

exception Signal_raised of string
(** A procedure executed [SIGNAL SQLSTATE 's']. Effects rolled back. *)

type result = {
  columns : string list;
  rows : Value.t array list;
  rows_written : int;
}

val empty_result : result

type t

val create :
  ?seed:int ->
  ?rtt_ms:float ->
  ?enforce_fk:bool ->
  ?obs:Uv_obs.Trace.t ->
  ?fault:Uv_fault.Fault.t ->
  unit ->
  t
(** Fresh engine with an empty database. [seed] fixes the RAND() stream;
    [rtt_ms] the simulated client-server round trip; [enforce_fk]
    (default false) enables FOREIGN KEY existence checks on insert.
    [obs] (default disabled) collects per-statement execute/rollback
    timings ([db.exec_ms]/[db.rollback_ms]) and log-append/rollback
    counts. [fault] (default disabled) threads the deterministic fault
    injector through [exec]'s probe sites (see {!Uv_fault.Fault.Site}):
    an injected statement failure escapes as [Uv_fault.Fault.Injected]
    after a complete rollback that also restores the PRNG stream, the
    logical clock and [LAST_INSERT_ID], so a retry reenacts exactly. *)

val of_catalog :
  ?seed:int ->
  ?rtt_ms:float ->
  ?enforce_fk:bool ->
  ?obs:Uv_obs.Trace.t ->
  ?fault:Uv_fault.Fault.t ->
  ?log:Log.t ->
  Catalog.t ->
  t
(** Engine over an existing catalog *by reference* (the what-if engine's
    temporary database). Mutations are visible through the catalog.
    [log] seeds the committed history (scenario universes carry their
    merged logs); new commits append to it. *)

val catalog : t -> Catalog.t
val log : t -> Log.t
val clock : t -> Uv_util.Clock.t

type plan
(** A compiled statement plan: column offsets resolved, WHERE predicate
    and SET list compiled to closures over the row array, index-probe
    opportunity noted. Immutable after {!prepare}, so safe to share
    read-only across replay domains. A plan holds no table handle — it
    re-binds by name at execution and self-validates (physical equality
    of the schema record, absence of triggers), falling back to the
    interpreter when stale, so executing with a plan is always
    observationally identical to executing without one. *)

val prepare : Catalog.t -> Ast.stmt -> plan option
(** Compile a trigger-free UPDATE or DELETE on a base table whose WHERE
    and SET expressions stay within the pure subset (columns, literals,
    arithmetic, comparisons, AND/OR, NOT, IS NULL, BETWEEN, IN over pure
    items). [None] for everything else — other statement forms, view
    targets, triggered tables, or expressions that could draw
    non-determinism or read other tables. *)

val exec :
  ?app_txn:string ->
  ?nondet:Value.t list ->
  ?rowid_base:int ->
  ?plan:plan ->
  t ->
  Ast.stmt ->
  result
(** Execute one top-level client statement: charges one round trip,
    appends a log entry on success. [~nondet] forces recorded values for
    RAND()/NOW()/AUTO_INCREMENT draws in order (retroactive replay);
    draws beyond the list fall back to fresh values (retroactively *added*
    queries, §4.4). [~app_txn] tags the entry with the application-level
    transaction that issued it. [~rowid_base] pins the statement's row
    inserts to rowids [base], [base + 1], ... — the wave executor gives
    each replayed statement a private range so physical row placement is
    deterministic at every worker count. [~plan] must be a plan
    {!prepare}d from this very statement (the what-if session caches
    plans keyed by log-entry identity); a plan that no longer binds is
    ignored in favour of the interpreter. *)

val exec_sql : ?app_txn:string -> ?nondet:Value.t list -> t -> string -> result
(** [exec] after parsing. *)

val exec_script : t -> string -> result list

val query : t -> Ast.select -> result
(** Evaluate a SELECT without logging it or charging a round trip (used
    internally and by tests to inspect state). *)

val query_sql : t -> string -> result

val table_hash : t -> string -> int64
(** Raises [Sql_error] for an unknown table. *)

val db_hash : t -> int64

val snapshot : t -> Catalog.t

val restore : t -> Catalog.t -> unit
(** Replace the live database with a deep copy of the snapshot. The log
    is left untouched (callers manage log truncation). *)

val reset_log : t -> unit
(** Truncate the log to empty and drop any checkpoint rungs. *)

val enable_checkpoints : t -> every:int -> unit
(** Attach a {!Checkpoint} ladder recording a catalog snapshot every
    [every] committed statements (at the [engine.checkpoint] fault site;
    an injected [Stmt_fail] skips that rung gracefully). [every <= 0]
    detaches the ladder. The what-if rollback phase uses the ladder to
    jump near the rollback target instead of undoing the whole tail. *)

val checkpoints : t -> Checkpoint.t option

val set_sim_time : t -> int -> unit
(** Set the logical NOW() clock (seconds). Each statement advances it by
    one second. *)

val memory_bytes : t -> int
