open Uv_sql

type undo =
  | U_row_insert of string * int * Value.t array
  | U_row_delete of string * int * Value.t array
  | U_row_update of string * int * Value.t array * Value.t array
  | U_table_def of string * Storage.t option
  | U_view_def of string * Ast.select option
  | U_proc_def of string * Catalog.procedure option
  | U_trigger_def of string * Catalog.trigger option
  | U_index_def of string * (string * string list) option
  | U_auto_value of string * int

type entry = {
  index : int;
  stmt : Ast.stmt;
  sql : string;
  nondet : Value.t list;
  rows_written : int;
  written_hashes : (string * int64) list;
  undo : undo list;
  app_txn : string option;
  mutable template_id : int option;
}

let set_template_id e tid = e.template_id <- tid

let apply_undo cat undos =
  List.iter
    (fun u ->
      match u with
      | U_row_insert (table, rowid, _) -> (
          match Catalog.table cat table with
          | Some tbl -> ( try ignore (Storage.delete tbl rowid) with Not_found -> ())
          | None -> ())
      | U_row_delete (table, rowid, row) -> (
          match Catalog.table cat table with
          | Some tbl -> Storage.insert_with_rowid tbl rowid row
          | None -> ())
      | U_row_update (table, rowid, before, after) -> (
          match Catalog.table cat table with
          | Some tbl -> (
              match Storage.get tbl rowid with
              | None -> ()
              | Some current ->
                  let n = Array.length current in
                  let fresh = Array.copy current in
                  for i = 0 to n - 1 do
                    if
                      i < Array.length before
                      && i < Array.length after
                      && not (Value.equal before.(i) after.(i))
                    then fresh.(i) <- before.(i)
                  done;
                  ignore (Storage.update tbl rowid fresh))
          | None -> ())
      | U_table_def (name, prior) -> (
          Catalog.remove_table cat name;
          match prior with
          | Some tbl -> Catalog.add_table cat (Storage.copy tbl)
          | None -> ())
      | U_view_def (name, prior) -> (
          Catalog.remove_view cat name;
          match prior with Some v -> Catalog.add_view cat name v | None -> ())
      | U_proc_def (name, prior) -> (
          Catalog.remove_procedure cat name;
          match prior with Some p -> Catalog.add_procedure cat p | None -> ())
      | U_trigger_def (name, prior) -> (
          Catalog.remove_trigger cat name;
          match prior with Some tr -> Catalog.add_trigger cat tr | None -> ())
      | U_index_def (name, prior) -> (
          Catalog.remove_index cat name;
          match prior with Some i -> Catalog.add_index cat name i | None -> ())
      | U_auto_value (table, v) -> (
          match Catalog.table cat table with
          | Some tbl -> Storage.set_auto_value tbl v
          | None -> ()))
    undos

(* Re-derive an entry's forward effect from its journal: the row images
   carried for rollback determine the redo exactly, so a statement can be
   reenacted without re-executing its SQL. The checkpoint-jumping
   rollback replays non-member entries this way from the nearest
   snapshot. AUTO_INCREMENT journal records carry only the pre-statement
   counter, so they are skipped here; the caller pins counters afterwards
   (the rollback strategies must agree bit-for-bit). Tables absent from
   the catalog are skipped like in [apply_undo]; DDL records cannot be
   redone from their before-images and raise. *)
let apply_redo cat undos =
  List.iter
    (fun u ->
      match u with
      | U_row_insert (table, rowid, row) -> (
          match Catalog.table cat table with
          | Some tbl -> Storage.insert_with_rowid tbl rowid row
          | None -> ())
      | U_row_delete (table, rowid, _) -> (
          match Catalog.table cat table with
          | Some tbl -> (
              try ignore (Storage.delete tbl rowid) with Not_found -> ())
          | None -> ())
      | U_row_update (table, rowid, before, after) -> (
          match Catalog.table cat table with
          | Some tbl -> (
              match Storage.get tbl rowid with
              | None -> ()
              | Some current ->
                  let n = Array.length current in
                  let fresh = Array.copy current in
                  for i = 0 to n - 1 do
                    if
                      i < Array.length before
                      && i < Array.length after
                      && not (Value.equal before.(i) after.(i))
                    then fresh.(i) <- after.(i)
                  done;
                  ignore (Storage.update tbl rowid fresh))
          | None -> ())
      | U_auto_value _ -> ()
      | U_table_def _ | U_view_def _ | U_proc_def _ | U_trigger_def _
      | U_index_def _ ->
          invalid_arg "Log.apply_redo: DDL entries cannot be redone")
    (List.rev undos)

type t = { mutable items : entry array; mutable len : int }

let create () = { items = [||]; len = 0 }

let append t e =
  if t.len = Array.length t.items then begin
    let cap = max 16 (2 * Array.length t.items) in
    let fresh = Array.make cap e in
    Array.blit t.items 0 fresh 0 t.len;
    t.items <- fresh
  end;
  t.items.(t.len) <- e;
  t.len <- t.len + 1

let length t = t.len

let entry t i =
  if i < 1 || i > t.len then invalid_arg "Log.entry: index out of range";
  t.items.(i - 1)

let entries t = Array.to_list (Array.sub t.items 0 t.len)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.items.(i)
  done

let to_array t = Array.sub t.items 0 t.len

let copy t = { items = Array.copy t.items; len = t.len }

let of_entries es =
  let t = create () in
  List.iter (append t) es;
  t

let map f t =
  { items = Array.map f (Array.sub t.items 0 t.len); len = t.len }

let nondet_count e = List.length e.nondet

let truncate t n = if n < t.len then t.len <- max 0 n

(* A MySQL statement-format binlog event: 19-byte common header, 13-byte
   query-event post-header, and ~40 bytes of status variables, database
   name and checksum alongside the statement text. *)
let binlog_bytes e = 19 + 13 + 40 + String.length e.sql

(* Ultraverse's own record: commit index (4), a small R/W-set digest
   (the paper reports 12-110 bytes/query), nondet values, and one 8-byte
   hash per written table. *)
let uv_log_bytes e =
  let nondet = List.fold_left (fun a v -> a + String.length (Value.serialize v)) 0 e.nondet in
  4
  + (8 * List.length e.written_hashes)
  + nondet
  + (match e.app_txn with Some s -> String.length s | None -> 0)
  + 8
