(** Committed-statement log (the engine's "binary log").

    One entry per committed top-level statement, carrying everything the
    retroactive plugin needs: the statement AST, the recorded
    non-deterministic draws (RAND/NOW/AUTO_INCREMENT — replayed verbatim,
    §4.4 "Replaying Non-determinism"), the post-commit hash of every table
    the statement wrote (consumed by the Hash-jumper), and the
    application-level transaction tag emitted by the augmented application
    code (§3, Figure 3). *)

open Uv_sql

type undo =
  | U_row_insert of string * int * Value.t array
      (** the statement inserted (table, rowid, row image): undo deletes
          it; the image lets redo re-insert without re-execution (it is
          never persisted — ULOGv2 stores only the statement) *)
  | U_row_delete of string * int * Value.t array
      (** the statement deleted this row image: undo re-inserts it *)
  | U_row_update of string * int * Value.t array * Value.t array
      (** (table, rowid, before, after) images of an updated row. Undo
          restores only the cells the statement changed (before <> after)
          so that independent later writes to *other* columns of the same
          row survive selective rollback — matching the column-granular
          dependency rules. *)
  | U_table_def of string * Storage.t option
      (** full table state before a DDL statement touched it
          ([None] = table did not exist) *)
  | U_view_def of string * Ast.select option
  | U_proc_def of string * Catalog.procedure option
  | U_trigger_def of string * Catalog.trigger option
  | U_index_def of string * (string * string list) option
  | U_auto_value of string * int
      (** restore the table's AUTO_INCREMENT counter to exactly this
          value — journalled before any statement mutates the counter, so
          rollback (and what-if's selective undo) reenacts the same fresh
          key draws on replay *)

type entry = {
  index : int;  (** commit order, 1-based *)
  stmt : Ast.stmt;
  sql : string;  (** rendered statement, as a binlog would store it *)
  nondet : Value.t list;  (** draws in evaluation order *)
  rows_written : int;
  written_hashes : (string * int64) list;
      (** post-commit hash of each written table *)
  undo : undo list;
      (** row-level inverse operations, most recent change first — the
          binlog-row-format before-images that make selective rollback
          (§4.4 rollback option (i)) possible *)
  app_txn : string option;  (** application-level transaction name *)
  mutable template_id : int option;
      (** id of the static query template this statement matched, stamped
          by the template fast-path after matching (like [undo], never
          persisted — a fresh load starts unstamped) *)
}

val set_template_id : entry -> int option -> unit
(** Stamp (or clear) the entry's matched template id. *)

val apply_undo : Catalog.t -> undo list -> unit
(** Apply one entry's inverse operations (already ordered most recent
    first) against a catalog. Entries must be undone in reverse commit
    order. *)

val apply_redo : Catalog.t -> undo list -> unit
(** Reenact one entry's forward row effect from its journal images
    (insert the inserted rows, delete the deleted ones, merge each
    update's changed cells to its after-image). Entries must be redone
    in commit order. AUTO_INCREMENT records are skipped — the caller
    pins counters afterwards. Tables absent from the catalog are
    skipped.
    @raise Invalid_argument on DDL records, which carry before-images
    only. *)

type t

val create : unit -> t

val append : t -> entry -> unit

val length : t -> int

val entry : t -> int -> entry
(** [entry log i] with [i] the 1-based commit index. *)

val entries : t -> entry list
(** In commit order. *)

val iter : t -> (entry -> unit) -> unit

val to_array : t -> entry array

val copy : t -> t

val of_entries : entry list -> t
(** Build a log from explicit entries (fixture construction, log
    surgery). Entries are taken as-is; indexes are not renumbered. *)

val map : (entry -> entry) -> t -> t
(** A fresh log with [f] applied to every entry — e.g. static-analysis
    fixtures that strip recorded non-determinism from a real history. *)

val nondet_count : entry -> int
(** Number of recorded non-deterministic draws (RAND/NOW/AUTO_INCREMENT)
    in the entry — the replay-divergence metadata the static lint passes
    check against each statement's syntactic draw sites. *)

val truncate : t -> int -> unit
(** [truncate log n] keeps the first [n] entries. *)

val binlog_bytes : entry -> int
(** Size this entry would occupy in a MySQL-style statement binlog
    (rendered SQL + fixed header), for Table 7(b). *)

val uv_log_bytes : entry -> int
(** Size of Ultraverse's *additional* per-query log record: the R/W-set
    digests and table hashes, not the SQL text (Table 7(b)). *)
