type record = {
  r_sql : string;
  r_nondet : Uv_sql.Value.t list;
  r_app_txn : string option;
}

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let header_v1 = "ULOGv1"
let header_v2 = "ULOGv2"

(* ------------------------------------------------------------------ *)
(* Escaping                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\\' ->
        if !i + 1 >= n then corrupt "dangling escape";
        (match s.[!i + 1] with
        | '\\' -> Buffer.add_char buf '\\'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | c -> corrupt "unknown escape \\%c" c);
        incr i
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let records_of_log log =
  List.map
    (fun (e : Log.entry) ->
      { r_sql = e.Log.sql; r_nondet = e.Log.nondet; r_app_txn = e.Log.app_txn })
    (Log.entries log)

(* A record's body: the Q/N/A lines, newlines included — exactly the
   bytes the C line's CRC-32 covers. *)
let record_body r =
  let buf = Buffer.create 128 in
  Buffer.add_string buf ("Q " ^ escape r.r_sql ^ "\n");
  List.iter
    (fun v ->
      Buffer.add_string buf ("N " ^ escape (Uv_sql.Value.serialize v) ^ "\n"))
    r.r_nondet;
  (match r.r_app_txn with
  | Some tag -> Buffer.add_string buf ("A " ^ escape tag ^ "\n")
  | None -> ());
  Buffer.contents buf

let print records =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header_v2;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      let body = record_body r in
      Buffer.add_string buf body;
      Buffer.add_string buf
        ("C " ^ Uv_util.Crc32.to_hex (Uv_util.Crc32.digest body) ^ "\n");
      Buffer.add_string buf "E\n")
    records;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing & salvage                                                    *)
(* ------------------------------------------------------------------ *)

type diagnosis = {
  version : int;
  total_bytes : int;
  valid_records : int;
  cut_at : int option;
  reason : string option;
}

(* Single forward pass with byte offsets. A record counts only once its
   whole block — Q line through E, checksum verified on v2 — parses; the
   scan stops at the first damaged record, keeping the valid prefix
   (replaying past a damaged record would silently reorder history). *)
let salvage text =
  let n = String.length text in
  let pos = ref 0 in
  (* next non-empty line and the offset it starts at; skips blank lines *)
  let rec next_line () =
    if !pos >= n then None
    else begin
      let start = !pos in
      let nl =
        match String.index_from_opt text start '\n' with
        | Some i -> i
        | None -> n
      in
      pos := (if nl < n then nl + 1 else n);
      if nl = start then next_line ()
      else Some (String.sub text start (nl - start), start)
    end
  in
  let fail_at off reason version records =
    ( List.rev records,
      {
        version;
        total_bytes = n;
        valid_records = List.length records;
        cut_at = Some off;
        reason = Some reason;
      } )
  in
  match next_line () with
  | None -> fail_at 0 "empty file" 0 []
  | Some (h, off) when h <> header_v1 && h <> header_v2 ->
      fail_at off
        (Printf.sprintf "bad header %S (want %S or %S)" h header_v1 header_v2)
        0 []
  | Some (h, _) -> (
      let version = if String.equal h header_v2 then 2 else 1 in
      let records = ref [] in
      let outcome = ref None in
      (* parse one record starting at the current position; returns
         [Ok ()] appending to [records], or [Error reason]. *)
      let parse_record first_line =
        let body = Buffer.create 128 in
        let sql = ref None and nondet = ref [] and tag = ref None in
        let crc_ok = ref (version = 1) in
        let rec step (line, _off) =
          let payload () =
            if String.length line < 2 then corrupt "short line %S" line
            else unescape (String.sub line 2 (String.length line - 2))
          in
          let raw_payload () =
            if String.length line < 2 then corrupt "short line %S" line
            else String.sub line 2 (String.length line - 2)
          in
          let continue_ () =
            match next_line () with
            | None -> corrupt "truncated final record"
            | Some l -> step l
          in
          match line.[0] with
          | 'Q' ->
              if !sql <> None then corrupt "Q line inside an open record";
              sql := Some (payload ());
              Buffer.add_string body (line ^ "\n");
              continue_ ()
          | 'N' ->
              if !sql = None then corrupt "N line outside a record";
              let v =
                try Uv_sql.Value.deserialize (payload ())
                with Failure m -> corrupt "bad value: %s" m
              in
              nondet := v :: !nondet;
              Buffer.add_string body (line ^ "\n");
              continue_ ()
          | 'A' ->
              if !sql = None then corrupt "A line outside a record";
              tag := Some (payload ());
              Buffer.add_string body (line ^ "\n");
              continue_ ()
          | 'C' ->
              if !sql = None then corrupt "C line outside a record";
              if version = 1 then corrupt "checksum line in a v1 log";
              (match Uv_util.Crc32.of_hex (raw_payload ()) with
              | None -> corrupt "malformed checksum %S" line
              | Some c ->
                  let actual = Uv_util.Crc32.digest (Buffer.contents body) in
                  if c <> actual then
                    corrupt "checksum mismatch (stored %s, computed %s)"
                      (Uv_util.Crc32.to_hex c)
                      (Uv_util.Crc32.to_hex actual);
                  crc_ok := true);
              continue_ ()
          | 'E' ->
              if !sql = None then corrupt "record end without a Q line";
              if not !crc_ok then corrupt "record without a checksum";
              records :=
                {
                  r_sql = Option.get !sql;
                  r_nondet = List.rev !nondet;
                  r_app_txn = !tag;
                }
                :: !records
          | c -> corrupt "unknown line tag %C" c
        in
        step first_line
      in
      let rec loop () =
        let rec_start = !pos in
        match next_line () with
        | None -> () (* clean end of file *)
        | Some first -> (
            match parse_record first with
            | () -> loop ()
            | exception Corrupt reason ->
                outcome := Some (rec_start, reason))
      in
      loop ();
      match !outcome with
      | None ->
          ( List.rev !records,
            {
              version;
              total_bytes = n;
              valid_records = List.length !records;
              cut_at = None;
              reason = None;
            } )
      | Some (off, reason) -> fail_at off reason version !records)

let parse text =
  let records, diag = salvage text in
  match diag.reason with
  | Some reason ->
      corrupt "%s (at byte %d)" reason
        (Option.value diag.cut_at ~default:diag.total_bytes)
  | None -> records

(* ------------------------------------------------------------------ *)
(* Files                                                                *)
(* ------------------------------------------------------------------ *)

let save ?(fault = Uv_fault.Fault.disabled) ?fsync log ~path =
  let data = print (records_of_log log) in
  match
    Uv_fault.Fault.check fault Uv_fault.Fault.Site.log_save
      [ Uv_fault.Fault.Torn_write ]
  with
  | Some inj ->
      (* the crash happens mid-write of the temp file: a prefix lands
         there, the rename never runs, the previous good file survives *)
      let keep =
        int_of_float (float_of_int (String.length data) *. inj.Uv_fault.Fault.arg)
      in
      Uv_util.Safe_io.write_file (path ^ ".tmp") (String.sub data 0 keep);
      raise (Uv_fault.Fault.Injected inj)
  | None -> Uv_util.Safe_io.atomic_write ?fsync ~path data

let load ~path = parse (Uv_util.Safe_io.read_file path)

let load_salvage ~path = salvage (Uv_util.Safe_io.read_file path)

(* ------------------------------------------------------------------ *)
(* Replay                                                               *)
(* ------------------------------------------------------------------ *)

let replay eng records =
  let skipped = ref [] in
  List.iteri
    (fun i r ->
      try
        ignore
          (Engine.exec_sql ?app_txn:r.r_app_txn ~nondet:r.r_nondet eng r.r_sql)
      with Engine.Sql_error _ | Engine.Signal_raised _ ->
        skipped := (i + 1) :: !skipped)
    records;
  List.rev !skipped
