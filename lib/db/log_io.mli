(** Durable form of the statement log.

    Ultraverse's recovery story (paper §4.1) keeps the query history —
    statement text, per-statement non-determinism and the application-
    transaction tag — on disk next to the DBMS redo log; everything else
    (row images, undo records, table hashes) is re-derivable by replay.
    This module implements that redo-log persistence: a line-oriented,
    versioned, 8-bit-clean text format with per-record checksums and a
    salvage path for torn tails.

    {2 Format (ULOGv2)}

    {v
    ULOGv2
    Q <escaped sql>
    N <escaped serialized value>     (zero or more, in draw order)
    A <escaped tag>                  (optional)
    C <crc32 of the Q/N/A lines>     (8 lowercase hex digits)
    E
    v}

    Escaping maps backslash, newline and carriage return to
    [\\], [\n], [\r] so records survive any statement text. The C line
    holds the CRC-32 of the record's body bytes (Q through A lines,
    newlines included), so a torn or bit-flipped record is detected
    before it is replayed. {!parse} still accepts the checksum-free
    ULOGv1 header for logs written by earlier versions.

    {!save} is crash-consistent: the rendered log is written to
    [path ^ ".tmp"], fsynced and renamed over [path], so an interrupted
    save can never destroy the previous good file. *)

type record = {
  r_sql : string;  (** statement text, parseable by {!Uv_sql.Parser} *)
  r_nondet : Uv_sql.Value.t list;
      (** recorded RAND / NOW / AUTO_INCREMENT draws, in order *)
  r_app_txn : string option;  (** application-transaction tag *)
}

exception Corrupt of string
(** Raised by {!parse} and {!load} on a malformed or truncated file. *)

type diagnosis = {
  version : int;  (** 1 or 2; [0] when even the header is unreadable *)
  total_bytes : int;
  valid_records : int;
  cut_at : int option;
      (** byte offset where the valid prefix ends; [None] for a clean
          file *)
  reason : string option;  (** what was wrong at [cut_at] *)
}

val records_of_log : Log.t -> record list
(** Project the durable fields out of an in-memory log. *)

val print : record list -> string
(** Render records in the ULOGv2 format. *)

val parse : string -> record list
(** Inverse of {!print}; also accepts ULOGv1 input.
    @raise Corrupt on bad input. *)

val salvage : string -> record list * diagnosis
(** Best-effort parse that never raises: returns the longest valid
    record {e prefix} (a record counts only when its whole block parses
    and, on v2, its checksum matches) plus a diagnosis of the first
    damage found. Recovery deliberately stops at the first bad record —
    replaying records past a hole would silently reorder history. *)

val save : ?fault:Uv_fault.Fault.t -> ?fsync:bool -> Log.t -> path:string -> unit
[@@ocaml.alert deprecated "use Log_store.save_log_file (or a Log_store directory)"]
(** [save log ~path] writes the log's durable projection to [path]
    atomically (temp file + fsync + rename; [fsync] defaults to [true]).
    [fault] probes {!Uv_fault.Fault.Site.log_save} with [Torn_write]:
    an injected tear writes a prefix to the temp file, skips the rename
    — leaving any previous file at [path] intact — and raises
    [Uv_fault.Fault.Injected].
    @deprecated the file-granular persistence entry points moved to the
    unified [Log_store] surface; this shim will be removed. *)

val load : path:string -> record list
[@@ocaml.alert deprecated "use Log_store.load_log_file"]
(** Read a file written by {!save}.
    @raise Corrupt on bad input.
    @deprecated use [Log_store.load_log_file] (typed [Store_error]). *)

val load_salvage : path:string -> record list * diagnosis
[@@ocaml.alert deprecated "use Log_store.salvage_log_file"]
(** {!salvage} over a file's bytes; never raises on bad content.
    @deprecated use [Log_store.salvage_log_file]. *)

val replay : Engine.t -> record list -> int list
(** Re-execute the records in order against [engine], forcing each
    statement's recorded non-determinism, rebuilding the full in-memory
    log (undo images, table hashes, row counts) as a side effect.
    Statements that fail with a SQL error are skipped, mirroring how the
    original execution logged only successful statements; the returned
    list holds the 1-based indices of the skipped records (empty on a
    faithful replay). *)

val escape : string -> string
(** Exposed for property tests. *)

val unescape : string -> string
(** Inverse of {!escape}.
    @raise Corrupt on a dangling escape. *)
