(* Segmented durable history: capped ULOGv2 chunk files under a
   CRC-guarded manifest. See log_store.mli for the format. Every read
   path decodes one segment at a time (a one-segment cache makes
   sequential access cheap), so peak resident log memory is one segment
   plus the manifest regardless of history length. *)

module Store_error = struct
  type t =
    | Io of { path : string; message : string }
    | Corrupt_manifest of { path : string; offset : int; reason : string }
    | Corrupt_segment of {
        segment : int;
        path : string;
        offset : int;
        reason : string;
      }
    | Corrupt_checkpoints of { path : string; reason : string }
    | Corrupt_dump of { path : string; reason : string }

  let to_string = function
    | Io { path; message } -> Printf.sprintf "%s: %s" path message
    | Corrupt_manifest { path; offset; reason } ->
        Printf.sprintf "%s: corrupt manifest at byte %d: %s" path offset reason
    | Corrupt_segment { segment; path; offset; reason } ->
        Printf.sprintf "%s: corrupt segment %d at byte %d: %s" path segment
          offset reason
    | Corrupt_checkpoints { path; reason } ->
        Printf.sprintf "%s: corrupt checkpoint ladder: %s" path reason
    | Corrupt_dump { path; reason } ->
        Printf.sprintf "%s: corrupt dump: %s" path reason
end

exception Error of Store_error.t

let io_error path message = raise (Error (Store_error.Io { path; message }))

let default_segment_cap = 4096

type segment = {
  seg_seq : int;
  seg_file : string;
  seg_min : int;
  seg_max : int;
  seg_nondet : int;
  seg_epoch : int;
  seg_bytes : int;
  seg_crc : string;
}

(* Internal view of a segment: the manifest row plus an optional salvage
   trim — [Some v] serves only the first [v] records (open_salvage cut
   the rest). *)
type iseg = { s : segment; mutable valid : int option }

type t = {
  t_dir : string;
  fault : Uv_fault.Fault.t;
  fsync : bool option;
  cap : int;
  mutable epoch : int;
  mutable sealed : iseg list;  (* ascending by seq; only the last row may
                                  hold fewer than [cap] records, and only
                                  while the tail buffer is empty *)
  mutable tail : Log_io.record list;  (* open tail, newest first *)
  mutable tail_count : int;
  mutable tail_min : int;  (* global index of the first tail record *)
  mutable tail_nondet : int;
  mutable cache : (int * Log_io.record array) option;  (* seq, decoded *)
  mutable resident_peak : int;
  mutable manifest_len : int;
  mutable dirty : bool;
  mutable closed : bool;
  mutable orphans : int list;
      (* sequence numbers truncated away; their files are unlinked only
         after the shrunk manifest is durable, so a crash mid-truncate
         leaves a consistent (if longer) store *)
}

let manifest_name = "MANIFEST"
let checkpoints_name = "checkpoints.uckp"
let dump_name = "base.sql"
let seg_name seq = Printf.sprintf "seg-%06d.ulog" seq
let seg_path t seq = Filename.concat t.t_dir (seg_name seq)
let manifest_path dir = Filename.concat dir manifest_name

let nondet_of_records records =
  List.fold_left (fun n (r : Log_io.record) -> n + List.length r.r_nondet) 0
    records

let read_file_or_error path =
  try Uv_util.Safe_io.read_file path
  with Sys_error m -> io_error path m

(* Torn-write-aware atomic write, the [Log_io.save] contract: an
   injected tear leaves only a prefix in the temp file, skips the
   rename (previous good file intact) and raises [Injected]. *)
let guarded_write ~fault ?fsync ~site ~key ~path data =
  match Uv_fault.Fault.check ~key fault site [ Uv_fault.Fault.Torn_write ] with
  | Some inj ->
      let keep =
        int_of_float
          (float_of_int (String.length data) *. inj.Uv_fault.Fault.arg)
      in
      Uv_util.Safe_io.write_file (path ^ ".tmp") (String.sub data 0 keep);
      raise (Uv_fault.Fault.Injected inj)
  | None -> (
      try Uv_util.Safe_io.atomic_write ?fsync ~path data
      with Sys_error m -> io_error path m)

(* ------------------------------------------------------------------ *)
(* Manifest                                                             *)
(* ------------------------------------------------------------------ *)

let manifest_header = "ULSTv1"

let manifest_text ~cap segs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %d\n" manifest_header cap);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "S %d %d %d %d %d %d %s\n" s.seg_seq s.seg_min
           s.seg_max s.seg_nondet s.seg_epoch s.seg_bytes s.seg_crc))
    segs;
  let body = Buffer.contents buf in
  body ^ Printf.sprintf "E %s\n" Uv_util.Crc32.(to_hex (digest body))

let corrupt_manifest path offset reason =
  raise (Error (Store_error.Corrupt_manifest { path; offset; reason }))

(* Parse and validate a manifest. The trailing E line checksums every
   preceding byte, so truncation anywhere is detected; S rows must be
   contiguous in both sequence number and global index, and every row
   but the last must hold exactly [cap] records. *)
let parse_manifest path text =
  let n = String.length text in
  let fail off reason = corrupt_manifest path off reason in
  let pos = ref 0 in
  let next_line () =
    if !pos >= n then None
    else
      let start = !pos in
      match String.index_from_opt text start '\n' with
      | None -> fail start "unterminated line (truncated manifest)"
      | Some nl ->
          pos := nl + 1;
          Some (String.sub text start (nl - start), start)
  in
  let cap =
    match next_line () with
    | None -> fail 0 "empty manifest"
    | Some (h, off) -> (
        match String.split_on_char ' ' h with
        | [ hdr; cap ] when String.equal hdr manifest_header -> (
            match int_of_string_opt cap with
            | Some c when c >= 1 -> c
            | _ -> fail off (Printf.sprintf "bad segment cap %S" cap))
        | _ ->
            fail off
              (Printf.sprintf "bad header %S (want %S)" h manifest_header))
  in
  let segs = ref [] in
  let finished = ref false in
  while not !finished do
    let line_start = !pos in
    match next_line () with
    | None -> fail n "missing E trailer line"
    | Some (l, off) when String.length l >= 1 && l.[0] = 'S' -> (
        match String.split_on_char ' ' l with
        | [ "S"; seq; mn; mx; nd; ep; by; crc ] -> (
            match
              ( int_of_string_opt seq,
                int_of_string_opt mn,
                int_of_string_opt mx,
                int_of_string_opt nd,
                int_of_string_opt ep,
                int_of_string_opt by,
                Uv_util.Crc32.of_hex crc )
            with
            | Some seq, Some mn, Some mx, Some nd, Some ep, Some by, Some _
              when seq >= 1 && mn >= 1 && mx >= mn && nd >= 0 && by >= 0 ->
                (match !segs with
                | prev :: _ ->
                    if seq <> prev.seg_seq + 1 then
                      fail off
                        (Printf.sprintf "segment %d follows segment %d" seq
                           prev.seg_seq);
                    if mn <> prev.seg_max + 1 then
                      fail off
                        (Printf.sprintf
                           "segment %d starts at index %d, want %d" seq mn
                           (prev.seg_max + 1));
                    if prev.seg_max - prev.seg_min + 1 <> cap then
                      fail off
                        (Printf.sprintf
                           "non-final segment %d holds %d records, cap is %d"
                           prev.seg_seq
                           (prev.seg_max - prev.seg_min + 1)
                           cap)
                | [] ->
                    if seq <> 1 then fail off "first segment is not seg 1";
                    if mn <> 1 then fail off "first segment does not start at 1");
                segs :=
                  {
                    seg_seq = seq;
                    seg_file = seg_name seq;
                    seg_min = mn;
                    seg_max = mx;
                    seg_nondet = nd;
                    seg_epoch = ep;
                    seg_bytes = by;
                    seg_crc = String.lowercase_ascii crc;
                  }
                  :: !segs
            | _ -> fail off (Printf.sprintf "bad segment line %S" l))
        | _ -> fail off (Printf.sprintf "bad segment line %S" l))
    | Some (l, off) when String.length l >= 1 && l.[0] = 'E' -> (
        match String.split_on_char ' ' l with
        | [ "E"; crc ] -> (
            match Uv_util.Crc32.of_hex crc with
            | None -> fail off (Printf.sprintf "malformed trailer %S" l)
            | Some c ->
                let actual =
                  Uv_util.Crc32.digest (String.sub text 0 line_start)
                in
                if c <> actual then
                  fail off
                    (Printf.sprintf
                       "manifest checksum mismatch (stored %s, computed %s)"
                       (Uv_util.Crc32.to_hex c)
                       (Uv_util.Crc32.to_hex actual));
                if !pos < n then fail !pos "content after the E trailer";
                finished := true)
        | _ -> fail off (Printf.sprintf "malformed trailer %S" l))
    | Some (l, off) -> fail off (Printf.sprintf "unknown line %S" l)
  done;
  (cap, List.rev !segs)

let write_manifest t ~tail_row =
  let rows = List.map (fun i -> i.s) t.sealed @ tail_row in
  let data = manifest_text ~cap:t.cap rows in
  guarded_write ~fault:t.fault ?fsync:t.fsync
    ~site:Uv_fault.Fault.Site.log_save ~key:0 ~path:(manifest_path t.t_dir)
    data;
  t.manifest_len <- String.length data

(* ------------------------------------------------------------------ *)
(* Open                                                                 *)
(* ------------------------------------------------------------------ *)

let ensure_dir path =
  if Sys.file_exists path then begin
    if not (Sys.is_directory path) then
      io_error path "not a store directory (regular file in the way)"
  end
  else
    try Sys.mkdir path 0o755 with Sys_error m -> io_error path m

let is_store path =
  Sys.file_exists path && Sys.is_directory path
  && (Sys.file_exists (manifest_path path) || Sys.readdir path = [||])

let open_ ?(fault = Uv_fault.Fault.disabled) ?fsync ?segment_cap dir =
  ensure_dir dir;
  let mpath = manifest_path dir in
  let cap, segs, mlen =
    if Sys.file_exists mpath then begin
      let text = read_file_or_error mpath in
      let cap, segs = parse_manifest mpath text in
      (cap, segs, String.length text)
    end
    else (Option.value segment_cap ~default:default_segment_cap, [], 0)
  in
  (match segment_cap with
  | Some c when c < 1 -> invalid_arg "Log_store.open_: segment_cap must be >= 1"
  | _ -> ());
  let last_max = match List.rev segs with s :: _ -> s.seg_max | [] -> 0 in
  {
    t_dir = dir;
    fault;
    fsync;
    cap;
    epoch = 0;
    sealed = List.map (fun s -> { s; valid = None }) segs;
    tail = [];
    tail_count = 0;
    tail_min = last_max + 1;
    tail_nondet = 0;
    cache = None;
    resident_peak = 0;
    manifest_len = mlen;
    dirty = false;
    closed = false;
    orphans = [];
  }

let check_open t = if t.closed then invalid_arg "Log_store: store is closed"

let dir t = t.t_dir
let segment_cap t = t.cap
let set_epoch t e = t.epoch <- e
let resident_peak_bytes t = t.resident_peak
let manifest_bytes t = t.manifest_len

let seg_count i =
  match i.valid with Some v -> v | None -> i.s.seg_max - i.s.seg_min + 1

let length t =
  if t.tail_count > 0 then t.tail_min + t.tail_count - 1
  else
    match List.rev t.sealed with
    | i :: _ -> i.s.seg_min + seg_count i - 1
    | [] -> 0

let segments t =
  List.map (fun i -> i.s) t.sealed
  @
  if t.tail_count = 0 then []
  else
    [
      {
        seg_seq = (match List.rev t.sealed with i :: _ -> i.s.seg_seq + 1 | [] -> 1);
        seg_file = seg_name (match List.rev t.sealed with i :: _ -> i.s.seg_seq + 1 | [] -> 1);
        seg_min = t.tail_min;
        seg_max = t.tail_min + t.tail_count - 1;
        seg_nondet = t.tail_nondet;
        seg_epoch = t.epoch;
        seg_bytes = 0;
        seg_crc = "";
      };
    ]

let segment_of_index t i =
  if i < 1 || i > length t then
    invalid_arg (Printf.sprintf "Log_store.segment_of_index: %d out of range" i);
  match
    List.find_opt (fun s -> s.seg_min <= i && i <= s.seg_max) (segments t)
  with
  | Some s -> s
  | None -> invalid_arg "Log_store.segment_of_index: index in a salvaged hole"

let boundaries t =
  List.filter_map
    (fun i ->
      if i.valid = None && i.s.seg_max - i.s.seg_min + 1 = t.cap then
        Some i.s.seg_max
      else None)
    t.sealed

(* ------------------------------------------------------------------ *)
(* Segment reads                                                        *)
(* ------------------------------------------------------------------ *)

let corrupt_segment ~seq ~path ~offset reason =
  raise
    (Error (Store_error.Corrupt_segment { segment = seq; path; offset; reason }))

(* Decode one segment, verifying the manifest CRC and the per-record
   checksums; updates the resident peak and the one-segment cache. *)
let seg_records t (i : iseg) =
  match t.cache with
  | Some (seq, arr) when seq = i.s.seg_seq -> arr
  | _ ->
      let path = Filename.concat t.t_dir i.s.seg_file in
      let bytes = read_file_or_error path in
      t.resident_peak <- max t.resident_peak (String.length bytes);
      let records, diag = Log_io.salvage bytes in
      let crc = Uv_util.Crc32.(to_hex (digest bytes)) in
      let expected = seg_count i in
      (match i.valid with
      | Some v ->
          if List.length records < v then
            corrupt_segment ~seq:i.s.seg_seq ~path
              ~offset:(Option.value diag.Log_io.cut_at ~default:0)
              (Printf.sprintf "salvaged prefix shrank to %d record(s), want %d"
                 (List.length records) v)
      | None -> (
          if not (String.equal crc i.s.seg_crc) then
            corrupt_segment ~seq:i.s.seg_seq ~path
              ~offset:(Option.value diag.Log_io.cut_at ~default:0)
              (Printf.sprintf "segment checksum mismatch (stored %s, computed %s)"
                 i.s.seg_crc crc);
          match diag.Log_io.cut_at with
          | Some off ->
              corrupt_segment ~seq:i.s.seg_seq ~path ~offset:off
                (Option.value diag.Log_io.reason ~default:"unknown damage")
          | None ->
              if List.length records <> expected then
                corrupt_segment ~seq:i.s.seg_seq ~path ~offset:0
                  (Printf.sprintf "segment holds %d record(s), manifest says %d"
                     (List.length records) expected)));
      let arr = Array.of_list records in
      let arr =
        if Array.length arr > expected then Array.sub arr 0 expected else arr
      in
      t.cache <- Some (i.s.seg_seq, arr);
      arr

let tail_array t = Array.of_list (List.rev t.tail)

let fold_range t ~lo ~hi ~init ~f =
  check_open t;
  let len = length t in
  let lo = max lo 1 and hi = min hi len in
  let acc = ref init in
  List.iter
    (fun i ->
      let mx = i.s.seg_min + seg_count i - 1 in
      if mx >= lo && i.s.seg_min <= hi then begin
        let arr = seg_records t i in
        let from = max lo i.s.seg_min and upto = min hi mx in
        for idx = from to upto do
          acc := f !acc idx arr.(idx - i.s.seg_min)
        done
      end)
    t.sealed;
  if t.tail_count > 0 && hi >= t.tail_min then begin
    let arr = tail_array t in
    let from = max lo t.tail_min in
    for idx = from to hi do
      acc := f !acc idx arr.(idx - t.tail_min)
    done
  end;
  !acc

let iter_range t ~lo ~hi f =
  fold_range t ~lo ~hi ~init:() ~f:(fun () i r -> f i r)

type cursor = {
  c_store : t;
  mutable c_next : int;
  c_hi : int;
  mutable c_arr : Log_io.record array;
  mutable c_base : int;  (* global index of c_arr.(0); 0 = not loaded *)
}

let cursor ?(lo = 1) ?hi t =
  check_open t;
  let hi = match hi with Some h -> min h (length t) | None -> length t in
  { c_store = t; c_next = max lo 1; c_hi = hi; c_arr = [||]; c_base = 0 }

let rec next c =
  if c.c_next > c.c_hi then None
  else if
    c.c_base > 0
    && c.c_next >= c.c_base
    && c.c_next < c.c_base + Array.length c.c_arr
  then begin
    let r = c.c_arr.(c.c_next - c.c_base) in
    let i = c.c_next in
    c.c_next <- i + 1;
    Some (i, r)
  end
  else begin
    let t = c.c_store in
    let i = c.c_next in
    (match
       List.find_opt
         (fun s -> s.s.seg_min <= i && i <= s.s.seg_min + seg_count s - 1)
         t.sealed
     with
    | Some s ->
        c.c_arr <- seg_records t s;
        c.c_base <- s.s.seg_min
    | None ->
        if t.tail_count > 0 && i >= t.tail_min then begin
          c.c_arr <- tail_array t;
          c.c_base <- t.tail_min
        end
        else begin
          (* a salvaged hole: skip forward *)
          c.c_next <- i + 1;
          c.c_base <- 0
        end);
    if c.c_base = 0 then next c
    else next c
  end

let records t =
  List.rev (fold_range t ~lo:1 ~hi:(length t) ~init:[] ~f:(fun acc _ r -> r :: acc))

(* ------------------------------------------------------------------ *)
(* Append                                                               *)
(* ------------------------------------------------------------------ *)

let next_seq t = match List.rev t.sealed with i :: _ -> i.s.seg_seq + 1 | [] -> 1

(* If the store ended in a partial segment on disk, re-open it as the
   in-memory tail so appends keep filling it (one segment resident). *)
let adopt_tail t =
  if t.tail_count = 0 then
    match List.rev t.sealed with
    | i :: _ when seg_count i < t.cap ->
        let arr = seg_records t i in
        t.tail <- List.rev (Array.to_list arr);
        t.tail_count <- Array.length arr;
        t.tail_min <- i.s.seg_min;
        t.tail_nondet <- i.s.seg_nondet;
        t.sealed <- List.filter (fun j -> j != i) t.sealed;
        t.cache <- None
    | _ -> t.tail_min <- length t + 1

let seal_tail t =
  let records = List.rev t.tail in
  let seq = next_seq t in
  let data = Log_io.print records in
  guarded_write ~fault:t.fault ?fsync:t.fsync
    ~site:Uv_fault.Fault.Site.log_save ~key:seq ~path:(seg_path t seq) data;
  let s =
    {
      seg_seq = seq;
      seg_file = seg_name seq;
      seg_min = t.tail_min;
      seg_max = t.tail_min + t.tail_count - 1;
      seg_nondet = t.tail_nondet;
      seg_epoch = t.epoch;
      seg_bytes = String.length data;
      seg_crc = Uv_util.Crc32.(to_hex (digest data));
    }
  in
  t.sealed <- t.sealed @ [ { s; valid = None } ];
  t.tail <- [];
  t.tail_min <- s.seg_max + 1;
  t.tail_count <- 0;
  t.tail_nondet <- 0;
  t.cache <- None;
  write_manifest t ~tail_row:[]

let append t (r : Log_io.record) =
  check_open t;
  adopt_tail t;
  t.tail <- r :: t.tail;
  t.tail_count <- t.tail_count + 1;
  t.tail_nondet <- t.tail_nondet + List.length r.Log_io.r_nondet;
  t.dirty <- true;
  if t.tail_count >= t.cap then begin
    seal_tail t;
    t.dirty <- false
  end

let append_log t log =
  List.iter (fun r -> append t r) (Log_io.records_of_log log)

let sync t =
  check_open t;
  if t.dirty then begin
    (if t.tail_count > 0 then begin
       let records = List.rev t.tail in
       let seq = next_seq t in
       let data = Log_io.print records in
       guarded_write ~fault:t.fault ?fsync:t.fsync
         ~site:Uv_fault.Fault.Site.log_save ~key:seq ~path:(seg_path t seq)
         data;
       let row =
         {
           seg_seq = seq;
           seg_file = seg_name seq;
           seg_min = t.tail_min;
           seg_max = t.tail_min + t.tail_count - 1;
           seg_nondet = t.tail_nondet;
           seg_epoch = t.epoch;
           seg_bytes = String.length data;
           seg_crc = Uv_util.Crc32.(to_hex (digest data));
         }
       in
       write_manifest t ~tail_row:[ row ]
     end
     else write_manifest t ~tail_row:[]);
    (* the shrunk manifest is durable; truncated chunk files can go *)
    List.iter
      (fun seq -> try Sys.remove (seg_path t seq) with Sys_error _ -> ())
      t.orphans;
    t.orphans <- [];
    t.dirty <- false
  end

let truncate t n =
  check_open t;
  if n < 0 then invalid_arg "Log_store.truncate: negative length";
  if n < length t then begin
    (if t.tail_count > 0 && n >= t.tail_min then begin
       (* the cut lies inside the open tail *)
       let keep = n - t.tail_min + 1 in
       let kept = Array.to_list (Array.sub (tail_array t) 0 keep) in
       t.tail <- List.rev kept;
       t.tail_count <- keep;
       t.tail_nondet <- nondet_of_records kept
     end
     else begin
       t.tail <- [];
       t.tail_count <- 0;
       t.tail_nondet <- 0;
       let keep, drop = List.partition (fun i -> i.s.seg_min <= n) t.sealed in
       t.sealed <- keep;
       t.orphans <-
         t.orphans @ List.map (fun i -> i.s.seg_seq) drop;
       match List.rev keep with
       | i :: _ when i.s.seg_min + seg_count i - 1 > n ->
           (* boundary segment straddles the cut: re-open it as the
              trimmed tail so appends keep filling it *)
           let arr = seg_records t i in
           let keep_n = n - i.s.seg_min + 1 in
           let kept = Array.to_list (Array.sub arr 0 keep_n) in
           t.sealed <- List.filter (fun j -> j != i) t.sealed;
           t.tail <- List.rev kept;
           t.tail_count <- keep_n;
           t.tail_min <- i.s.seg_min;
           t.tail_nondet <- nondet_of_records kept
       | _ -> t.tail_min <- n + 1
     end);
    t.cache <- None;
    t.dirty <- true
  end

let close t =
  if not t.closed then begin
    (* an empty, never-synced store still gets a manifest *)
    if t.dirty || t.manifest_len = 0 then sync t;
    t.closed <- true;
    t.cache <- None;
    t.tail <- []
  end

(* ------------------------------------------------------------------ *)
(* Entries and replay                                                   *)
(* ------------------------------------------------------------------ *)

let entry_of_record ~index (r : Log_io.record) : Log.entry =
  {
    Log.index;
    stmt = Uv_sql.Parser.parse_stmt r.Log_io.r_sql;
    sql = r.Log_io.r_sql;
    nondet = r.Log_io.r_nondet;
    rows_written = 0;
    written_hashes = [];
    undo = [];
    app_txn = r.Log_io.r_app_txn;
    template_id = None;
  }

let replay ?(align_checkpoints = true) t eng =
  check_open t;
  (if align_checkpoints then
     match Engine.checkpoints eng with
     | Some ladder -> Checkpoint.set_boundaries ladder (boundaries t)
     | None -> ());
  let skipped =
    fold_range t ~lo:1 ~hi:(length t) ~init:[] ~f:(fun acc i r ->
        try
          ignore
            (Engine.exec_sql ?app_txn:r.Log_io.r_app_txn
               ~nondet:r.Log_io.r_nondet eng r.Log_io.r_sql);
          acc
        with Engine.Sql_error _ | Engine.Signal_raised _ -> i :: acc)
  in
  List.rev skipped

(* ------------------------------------------------------------------ *)
(* Verify and salvage                                                   *)
(* ------------------------------------------------------------------ *)

type check = {
  chk_segment : int;
  chk_file : string;
  chk_records : int;
  chk_crc_ok : bool;
  chk_diag : Log_io.diagnosis option;
}

let damaged_diag reason =
  {
    Log_io.version = 0;
    total_bytes = 0;
    valid_records = 0;
    cut_at = Some 0;
    reason = Some reason;
  }

let verify ?segment t =
  check_open t;
  List.filter_map
    (fun i ->
      if segment <> None && segment <> Some i.s.seg_seq then None
      else
        let path = Filename.concat t.t_dir i.s.seg_file in
        match Uv_util.Safe_io.read_file path with
        | exception Sys_error m ->
            Some
              {
                chk_segment = i.s.seg_seq;
                chk_file = i.s.seg_file;
                chk_records = 0;
                chk_crc_ok = false;
                chk_diag = Some (damaged_diag ("cannot read segment: " ^ m));
              }
        | bytes ->
            t.resident_peak <- max t.resident_peak (String.length bytes);
            let records, diag = Log_io.salvage bytes in
            let crc_ok =
              String.equal Uv_util.Crc32.(to_hex (digest bytes)) i.s.seg_crc
            in
            let expected = seg_count i in
            let found = List.length records in
            let diag =
              if diag.Log_io.cut_at <> None then Some diag
              else if not crc_ok then
                Some
                  (damaged_diag
                     (Printf.sprintf
                        "segment checksum mismatch (manifest says %s)"
                        i.s.seg_crc))
              else if found <> expected then
                Some
                  (damaged_diag
                     (Printf.sprintf
                        "segment holds %d record(s), manifest says %d" found
                        expected))
              else None
            in
            Some
              {
                chk_segment = i.s.seg_seq;
                chk_file = i.s.seg_file;
                chk_records = found;
                chk_crc_ok = crc_ok;
                chk_diag = diag;
              })
    t.sealed

type salvage_report = {
  sr_records : int;
  sr_segments : int;
  sr_manifest_rebuilt : bool;
  sr_cut_segment : int option;
  sr_cut_at : int option;
  sr_reason : string option;
}

(* Scan the directory for seg-NNNNNN.ulog files when the manifest is
   unusable; contiguous from 1, ascending. *)
let scan_segment_files dir =
  let seqs =
    Array.to_list (try Sys.readdir dir with Sys_error _ -> [||])
    |> List.filter_map (fun name ->
           try Scanf.sscanf name "seg-%06d.ulog%!" (fun s -> Some s)
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
    |> List.sort compare
  in
  let rec contiguous expect = function
    | s :: rest when s = expect -> s :: contiguous (expect + 1) rest
    | _ -> []
  in
  contiguous 1 seqs

let open_salvage ?(fault = Uv_fault.Fault.disabled) ?fsync dir =
  let mpath = manifest_path dir in
  let manifest =
    if Sys.file_exists mpath then
      match Uv_util.Safe_io.read_file mpath with
      | text -> ( try Some (parse_manifest mpath text) with Error _ -> None)
      | exception Sys_error _ -> None
    else if is_store dir then Some (default_segment_cap, [])
    else None
  in
  let rebuilt = manifest = None in
  (* Walk segments in order, one resident at a time, cutting at the
     first damage and dropping everything after it. *)
  let cut = ref None in
  let salvage_seg ~seq ~min_idx ~expected ~crc =
    let path = Filename.concat dir (seg_name seq) in
    match Uv_util.Safe_io.read_file path with
    | exception Sys_error m ->
        cut := Some (seq, 0, "cannot read segment: " ^ m);
        None
    | bytes -> (
        let records, diag = Log_io.salvage bytes in
        let found = List.length records in
        let crc_ok =
          match crc with
          | None -> true
          | Some c -> String.equal Uv_util.Crc32.(to_hex (digest bytes)) c
        in
        match diag.Log_io.cut_at with
        | Some off when found = 0 ->
            cut :=
              Some
                (seq, off,
                 Option.value diag.Log_io.reason ~default:"unknown damage");
            None
        | Some off ->
            cut :=
              Some
                (seq, off,
                 Option.value diag.Log_io.reason ~default:"unknown damage");
            Some (found, bytes, true)
        | None ->
            if not crc_ok then begin
              (* The file parses cleanly but disagrees with the manifest
                 — the signature of a crash between a tail-segment write
                 and the manifest update (the new file is the old one
                 plus appended records). Per-record CRCs vouch for every
                 parsed record, so keep the longest valid record prefix
                 instead of dropping the segment: manifest-acknowledged
                 records must survive salvage. *)
              cut :=
                Some
                  ( seq,
                    0,
                    "segment/manifest checksum mismatch (longest valid \
                     record prefix kept)" );
              if found = 0 then None else Some (found, bytes, true)
            end
            else if expected <> None && Some found <> expected then begin
              cut :=
                Some
                  (seq, 0,
                   Printf.sprintf
                     "segment holds %d record(s), manifest says %d" found
                     (Option.get expected));
              Some (found, bytes, true)
            end
            else begin
              ignore min_idx;
              Some (found, bytes, false)
            end)
  in
  let cap, rows =
    match manifest with
    | Some (cap, rows) -> (cap, rows)
    | None ->
        (* rebuild rows from the files on disk; counts fixed below *)
        let seqs = scan_segment_files dir in
        ( default_segment_cap,
          List.map
            (fun seq ->
              {
                seg_seq = seq;
                seg_file = seg_name seq;
                seg_min = 0 (* fixed below *);
                seg_max = 0;
                seg_nondet = 0;
                seg_epoch = 0;
                seg_bytes = 0;
                seg_crc = "";
              })
            seqs )
  in
  let kept = ref [] in
  let min_next = ref 1 in
  (try
     List.iter
       (fun row ->
         if !cut <> None then raise Exit;
         let expected =
           if rebuilt then None else Some (row.seg_max - row.seg_min + 1)
         in
         let crc = if rebuilt then None else Some row.seg_crc in
         match
           salvage_seg ~seq:row.seg_seq ~min_idx:!min_next ~expected ~crc
         with
         | None -> raise Exit
         | Some (found, bytes, trimmed) ->
             let nondet, _ =
               (* recompute from the salvaged records when rebuilding *)
               if rebuilt || trimmed then
                 let records, _ = Log_io.salvage bytes in
                 (nondet_of_records records, ())
               else (row.seg_nondet, ())
             in
             let s =
               {
                 row with
                 seg_min = !min_next;
                 seg_max = !min_next + found - 1;
                 seg_nondet = nondet;
                 seg_bytes = String.length bytes;
                 seg_crc = Uv_util.Crc32.(to_hex (digest bytes));
               }
             in
             min_next := !min_next + found;
             kept :=
               { s; valid = (if trimmed then Some found else None) } :: !kept;
             if trimmed then raise Exit)
       rows
   with Exit -> ());
  let sealed = List.rev !kept in
  let sealed = List.filter (fun i -> seg_count i > 0) sealed in
  let t =
    {
      t_dir = dir;
      fault;
      fsync;
      cap;
      epoch = 0;
      sealed;
      tail = [];
      tail_count = 0;
      tail_min = !min_next;
      tail_nondet = 0;
      cache = None;
      resident_peak = 0;
      manifest_len = 0;
      dirty = false;
      closed = false;
      orphans = [];
    }
  in
  let report =
    {
      sr_records = length t;
      sr_segments = List.length sealed;
      sr_manifest_rebuilt = rebuilt;
      sr_cut_segment = Option.map (fun (s, _, _) -> s) !cut;
      sr_cut_at = Option.map (fun (_, o, _) -> o) !cut;
      sr_reason = Option.map (fun (_, _, r) -> r) !cut;
    }
  in
  (t, report)

(* ------------------------------------------------------------------ *)
(* Attached ladder and dump                                             *)
(* ------------------------------------------------------------------ *)

let write_checkpoints t ladder =
  check_open t;
  let data = Dump.print_checkpoints ladder in
  guarded_write ~fault:t.fault ?fsync:t.fsync
    ~site:Uv_fault.Fault.Site.checkpoint_save ~key:0
    ~path:(Filename.concat t.t_dir checkpoints_name)
    data

let read_checkpoints t =
  check_open t;
  let path = Filename.concat t.t_dir checkpoints_name in
  if not (Sys.file_exists path) then []
  else
    let data = read_file_or_error path in
    try Dump.parse_checkpoints data
    with Dump.Corrupt reason ->
      raise (Error (Store_error.Corrupt_checkpoints { path; reason }))

let write_dump t cat =
  check_open t;
  guarded_write ~fault:t.fault ?fsync:t.fsync
    ~site:Uv_fault.Fault.Site.dump_save ~key:0
    ~path:(Filename.concat t.t_dir dump_name)
    (Dump.to_sql cat)

let read_dump t eng =
  check_open t;
  let path = Filename.concat t.t_dir dump_name in
  if not (Sys.file_exists path) then false
  else begin
    let data = read_file_or_error path in
    (try Dump.restore eng data
     with Engine.Sql_error reason ->
       raise (Error (Store_error.Corrupt_dump { path; reason })));
    true
  end

(* ------------------------------------------------------------------ *)
(* Single-file helpers (the legacy formats, unified error type)         *)
(* ------------------------------------------------------------------ *)

let save_log_file ?(fault = Uv_fault.Fault.disabled) ?fsync log ~path =
  guarded_write ~fault ?fsync ~site:Uv_fault.Fault.Site.log_save ~key:0 ~path
    (Log_io.print (Log_io.records_of_log log))

let salvage_log_file ~path = Log_io.salvage (read_file_or_error path)

let load_log_file ~path =
  let records, diag = salvage_log_file ~path in
  match diag.Log_io.reason with
  | None -> records
  | Some reason ->
      corrupt_segment ~seq:0 ~path
        ~offset:(Option.value diag.Log_io.cut_at ~default:diag.Log_io.total_bytes)
        reason

let save_dump_file ?(fault = Uv_fault.Fault.disabled) ?fsync cat ~path =
  guarded_write ~fault ?fsync ~site:Uv_fault.Fault.Site.dump_save ~key:0 ~path
    (Dump.to_sql cat)

let load_dump_file eng ~path =
  let data = read_file_or_error path in
  try Dump.restore eng data
  with Engine.Sql_error reason ->
    raise (Error (Store_error.Corrupt_dump { path; reason }))

let save_checkpoints_file ?(fault = Uv_fault.Fault.disabled) ?fsync ladder ~path
    =
  guarded_write ~fault ?fsync ~site:Uv_fault.Fault.Site.checkpoint_save ~key:0
    ~path
    (Dump.print_checkpoints ladder)

let load_checkpoints_file ~path =
  let data = read_file_or_error path in
  try Dump.parse_checkpoints data
  with Dump.Corrupt reason ->
    raise (Error (Store_error.Corrupt_checkpoints { path; reason }))
