(** Segmented durable history: ULOGv2 chunk files under a manifest.

    {!Log_io} persists a history as one monolithic file, which forces
    every consumer — replay, analysis, fsck, salvage — to hold the
    whole log resident. A [Log_store] splits the same records into
    capped {e segments} (each a standalone ULOGv2 file) described by a
    small manifest, so every path streams one segment at a time: peak
    resident log memory is one segment plus the manifest, regardless of
    history length. This is the unified persistence surface; the
    file-granular entry points on {!Log_io} and {!Dump} are deprecated
    shims over the [*_file] helpers below.

    {2 Layout}

    A store is a directory:

    {v
    <dir>/MANIFEST          manifest (ULSTv1, see below)
    <dir>/seg-000001.ulog   segment 1 (ULOGv2)
    <dir>/seg-000002.ulog   segment 2
    ...
    <dir>/checkpoints.uckp  optional checkpoint ladder (UCKPv1)
    <dir>/base.sql          optional base-catalog dump
    v}

    Every segment except the open tail holds exactly [segment_cap]
    records; the tail holds the remainder. All files are written with
    the temp + fsync + rename protocol, so a crash leaves the previous
    good state intact.

    {2 Manifest (ULSTv1)}

    {v
    ULSTv1 <segment_cap>
    S <seq> <min_idx> <max_idx> <nondet> <epoch> <bytes> <crc32>
    ...
    E <crc32 of every preceding byte>
    v}

    One [S] line per segment, ascending and contiguous ([min_idx] of
    segment [k+1] is [max_idx] of segment [k] plus one; indexes are
    global 1-based commit indexes). [nondet] counts the segment's
    recorded non-deterministic draws, [epoch] is the catalog-epoch tag
    the segment was sealed under ({!set_epoch}), [bytes]/[crc32] cover
    the segment file's exact content. The trailing [E] line checksums
    the manifest itself, so truncation at {e any} byte is detected. *)

(** The one typed error surface for history persistence. Every corrupt
    or unreadable input — manifest, segment, single-file log,
    checkpoint ladder, dump — is reported through {!Error} carrying one
    of these, replacing the ad-hoc [Log_io.Corrupt]/[Dump.Corrupt]
    exceptions at the store boundary. Offsets are {e segment-relative}
    byte positions (for a single-file log the file is its own segment,
    so the offset is file-relative). *)
module Store_error : sig
  type t =
    | Io of { path : string; message : string }
        (** the underlying system call failed *)
    | Corrupt_manifest of { path : string; offset : int; reason : string }
    | Corrupt_segment of {
        segment : int;  (** sequence number; [0] for a single-file log *)
        path : string;
        offset : int;  (** segment-relative byte offset of the damage *)
        reason : string;
      }
    | Corrupt_checkpoints of { path : string; reason : string }
    | Corrupt_dump of { path : string; reason : string }

  val to_string : t -> string
end

exception Error of Store_error.t

type t

val default_segment_cap : int
(** Records per segment when [open_] is not told otherwise (4096). *)

type segment = {
  seg_seq : int;  (** 1-based sequence number *)
  seg_file : string;  (** basename within the store directory *)
  seg_min : int;  (** first global commit index covered (1-based) *)
  seg_max : int;  (** last global commit index covered, inclusive *)
  seg_nondet : int;  (** recorded non-deterministic draws in the segment *)
  seg_epoch : int;  (** catalog-epoch tag the segment was sealed under *)
  seg_bytes : int;  (** file size; [0] for the unsynced open tail *)
  seg_crc : string;  (** 8 lowercase hex digits; [""] for the open tail *)
}

(** {2 Lifecycle} *)

val open_ :
  ?fault:Uv_fault.Fault.t ->
  ?fsync:bool ->
  ?segment_cap:int ->
  string ->
  t
(** Open (or create) the store directory. A missing directory is
    created; an empty one becomes an empty store. [segment_cap] applies
    to a new store; an existing store keeps the cap recorded in its
    manifest. Segment contents are read lazily — [open_] itself holds
    only the manifest resident. [fault] probes
    {!Uv_fault.Fault.Site.log_save} with [Torn_write] on every file the
    store writes (stream key = the segment's sequence number; [0] for
    the manifest), matching the [Log_io.save] contract: the tear leaves
    a prefix in the temp file, skips the rename and raises
    [Uv_fault.Fault.Injected].
    @raise Error on an unreadable or corrupt manifest. *)

val sync : t -> unit
(** Persist the open tail segment and the manifest. Idempotent; called
    by {!close}. @raise Error on I/O failure. *)

val close : t -> unit
(** {!sync}, then drop buffers. Further use raises [Invalid_argument]. *)

val dir : t -> string
val segment_cap : t -> int

val length : t -> int
(** Total records, including unsynced appends. *)

val segments : t -> segment list
(** Ascending by sequence number, open tail (if non-empty) last. *)

val segment_of_index : t -> int -> segment
(** The segment holding a global commit index.
    @raise Invalid_argument when out of range. *)

val boundaries : t -> int list
(** [seg_max] of every {e sealed} (full) segment, ascending — the
    commit indexes where the checkpoint ladder is aligned so rollback
    re-reads at most one segment tail (see {!Checkpoint.set_boundaries}). *)

val set_epoch : t -> int -> unit
(** Tag segments sealed from now on with this catalog epoch (a DDL
    generation counter). Defaults to [0]. *)

(** {2 Append} *)

val append : t -> Log_io.record -> unit
(** Buffer one record into the open tail; when the tail reaches the
    segment cap it is sealed (segment file + manifest written) and a
    fresh tail opened — so an appender also never holds more than one
    segment in memory. Unsealed appends persist on {!sync}/{!close}. *)

val append_log : t -> Log.t -> unit
(** {!append} the durable projection of every entry of an in-memory
    log, in order. *)

val truncate : t -> int -> unit
(** [truncate t n] drops every record with a global index above [n]
    (no-op when [n >= length t]). Whole segments beyond the cut are
    dropped, a boundary segment straddling it is re-opened as the
    trimmed tail, and the change persists on the next {!sync} — the
    shrunk manifest is written before any truncated chunk file is
    unlinked, so a crash mid-truncate leaves a consistent (if longer)
    store. Serve recovery uses this to cut an unacknowledged
    partially-durable ingest batch back out of the history. *)

(** {2 Streaming reads}

    All read paths decode one segment at a time; a one-segment cache
    makes sequential access O(1) amortised per record. *)

val fold_range :
  t -> lo:int -> hi:int -> init:'a -> f:('a -> int -> Log_io.record -> 'a) -> 'a
(** Fold [f] over records with global indexes in [[lo, hi]] (clamped to
    the store's range), in order. @raise Error on a corrupt segment. *)

val iter_range : t -> lo:int -> hi:int -> (int -> Log_io.record -> unit) -> unit

type cursor
(** A pull-based reader over a range — the streaming handle
    {!Uv_retroactive} analysis consumes. *)

val cursor : ?lo:int -> ?hi:int -> t -> cursor
(** Defaults: the store's whole range at creation time. *)

val next : cursor -> (int * Log_io.record) option

val records : t -> Log_io.record list
(** Materialise everything — legacy-compat and tests only; defeats the
    memory bound by design. *)

val entry_of_record : index:int -> Log_io.record -> Log.entry
(** Lift a durable record back into a log entry: the statement is
    re-parsed; volatile fields (undo images, written hashes, row
    counts, template id) start empty, exactly as after a fresh
    {!Log_io.replay}. *)

val replay : ?align_checkpoints:bool -> t -> Engine.t -> int list
(** Stream-replay the whole store into an engine (one segment
    resident), forcing each record's non-determinism; returns 1-based
    global indexes of records skipped on SQL errors. When the engine
    has a checkpoint ladder and [align_checkpoints] is true (default),
    the ladder is aligned to the store's segment boundaries first, so
    every sealed segment ends on a rung and a later rollback re-reads
    at most one segment tail. *)

(** {2 Memory accounting} *)

val resident_peak_bytes : t -> int
(** Largest segment (bytes) ever held resident by this handle — the
    bench's "one segment" bound witness. *)

val manifest_bytes : t -> int

(** {2 Integrity: verify and salvage} *)

type check = {
  chk_segment : int;  (** sequence number *)
  chk_file : string;
  chk_records : int;  (** records readable from the segment *)
  chk_crc_ok : bool;  (** manifest CRC-32 matches the file bytes *)
  chk_diag : Log_io.diagnosis option;
      (** [Some] when the segment is damaged; [cut_at] is
          segment-relative *)
}

val verify : ?segment:int -> t -> check list
(** Check every segment (or just [segment]) against the manifest: file
    present, CRC-32 match, records parse. Never raises on damaged
    content; one segment resident at a time. *)

type salvage_report = {
  sr_records : int;  (** records in the salvaged prefix *)
  sr_segments : int;  (** segments wholly or partly retained *)
  sr_manifest_rebuilt : bool;
      (** the manifest was damaged and re-derived from segment files *)
  sr_cut_segment : int option;  (** first damaged segment, if any *)
  sr_cut_at : int option;  (** segment-relative byte offset of the cut *)
  sr_reason : string option;
}

val open_salvage :
  ?fault:Uv_fault.Fault.t -> ?fsync:bool -> string -> t * salvage_report
(** Best-effort open that never raises on damaged content: a corrupt
    manifest is rebuilt from the segment files on disk; the first
    damaged segment is trimmed to its longest valid record prefix and
    every later segment dropped (replaying past a hole would silently
    reorder history — same contract as {!Log_io.salvage}). A segment
    whose bytes disagree with the manifest CRC but parse cleanly — the
    signature of a crash between a tail-segment write and the manifest
    update — keeps its longest valid record prefix rather than being
    dropped, so manifest-acknowledged records always survive. The
    returned handle serves exactly the salvaged prefix; {!sync} would
    commit the trim to the manifest. *)

(** {2 Attached checkpoint ladder and base dump} *)

val write_checkpoints : t -> Checkpoint.t -> unit
(** Persist a ladder as [<dir>/checkpoints.uckp] (UCKPv1, atomic;
    probes {!Uv_fault.Fault.Site.checkpoint_save}). *)

val read_checkpoints : t -> (int * Catalog.t) list
(** The attached ladder's rungs, ascending; [[]] when none was written.
    @raise Error on a corrupt file. *)

val write_dump : t -> Catalog.t -> unit
(** Persist a base-catalog dump as [<dir>/base.sql] (atomic; probes
    {!Uv_fault.Fault.Site.dump_save}). *)

val read_dump : t -> Engine.t -> bool
(** Restore [<dir>/base.sql] into an engine; [false] when none was
    written. @raise Error on a corrupt file. *)

(** {2 Single-file helpers}

    The legacy one-file formats under the unified error type — the
    non-deprecated homes of [Log_io.save]/[load]/[load_salvage],
    [Dump.save]/[load] and [Dump.save_checkpoints]/[load_checkpoints].
    Same bytes, same fault sites, same atomic-write protocol. *)

val is_store : string -> bool
(** Does the path name a store directory (existing directory that is
    empty or has a [MANIFEST])? Distinguishes store paths from
    single-file logs in path-polymorphic commands (fsck, recover). *)

val save_log_file :
  ?fault:Uv_fault.Fault.t -> ?fsync:bool -> Log.t -> path:string -> unit

val load_log_file : path:string -> Log_io.record list
(** @raise Error ([Corrupt_segment] with [segment = 0] and the
    file-relative offset) on bad input. *)

val salvage_log_file : path:string -> Log_io.record list * Log_io.diagnosis

val save_dump_file :
  ?fault:Uv_fault.Fault.t -> ?fsync:bool -> Catalog.t -> path:string -> unit

val load_dump_file : Engine.t -> path:string -> unit
(** @raise Error on bad input. *)

val save_checkpoints_file :
  ?fault:Uv_fault.Fault.t -> ?fsync:bool -> Checkpoint.t -> path:string -> unit

val load_checkpoints_file : path:string -> (int * Catalog.t) list
(** @raise Error ([Corrupt_checkpoints]) on bad input. *)
