open Uv_sql

type rowid = int

(* Cell tags: each live slot of a column carries one byte naming the
   dynamic kind of the stored value. Bools are folded into the tag so
   they occupy no payload; texts store a string-pool id. *)
let tag_free = '\000'
let tag_null = '\001'
let tag_int = '\002'
let tag_float = '\003'
let tag_text = '\004'
let tag_true = '\005'
let tag_false = '\006'

(* One typed column chunk: a tag byte per slot plus unboxed payload
   arrays. [ints] holds Int payloads and string-pool ids; [floats] is
   allocated lazily on the first Float stored in the column. *)
type col = {
  mutable tags : Bytes.t;
  mutable ints : int array;
  mutable floats : float array; (* [||] until the column sees a float *)
}

type t = {
  (* Guards every access during parallel replay (Wave_exec): the wave
     layering keeps conflicting statements in different waves, but
     same-wave statements may still touch disjoint rows of one table,
     and the slot arrays are not domain-safe even for disjoint slots
     (growth reallocates). The lock is the writer-priority [Rwlock]
     variant, so a mutation queued behind a stream of concurrent scans
     is admitted as soon as the already-running read sections drain.
     Writer priority makes nested read acquisition a deadlock, so scan
     callbacks and [Col] predicates must never re-enter this table's
     lock: predicates are pure row functions, and the engine collects
     matching rows before mutating or running subqueries. *)
  lock : Uv_util.Rwlock.t;
  mutable schema : Schema.table;
  (* columnar body: slot-indexed struct-of-arrays *)
  mutable cols : col array; (* length >= widest row ever stored *)
  mutable widths : int array; (* per-slot row width; -1 = dead slot *)
  mutable rowids : int array; (* per-slot rowid; valid while live *)
  mutable cap : int; (* slot capacity of every per-slot array *)
  mutable hi : int; (* slots handed out (dead ones included) *)
  mutable live : int;
  mutable slots : (rowid, int) Hashtbl.t;
  (* interned string pool (append-only) *)
  mutable pool : string array;
  mutable pool_len : int;
  mutable pool_ids : (string, int) Hashtbl.t;
  (* ascending-rowid scan order: slots in rowid order while inserts stay
     monotone; an out-of-order insert (undo re-insert, pinned replay
     ranges) marks it dirty and scans sort locally instead *)
  mutable order : int array;
  mutable order_len : int;
  mutable order_last : rowid;
  mutable order_dirty : bool;
  mutable next_rowid : rowid;
  mutable next_auto : int;
  (* incremental table hash (§4.5), split into the base value and a
     batched delta: mutations fold row digests into [pending] (one
     modular add per statement for the batched entry points), and the
     published hash is always [base + pending mod p] — reading it never
     writes, so concurrent readers race on nothing *)
  mutable hash_base : int64;
  mutable pending : int64;
  mutable indexes : index list;
  (* copy-on-write: [copy] shares every array above and marks both sides
     shared; the first mutation on either side deep-copies its own view
     ([unshare]) before writing. Snapshots that are never written — most
     checkpoint rungs, the untouched tables of a what-if snapshot — stay
     O(1). *)
  mutable shared : bool;
}

(* A hash index: postings are per-value rowid sets, so adding and
   removing a row is O(1) amortized. The column offset is resolved once
   — at index build and on schema changes — instead of per mutated row. *)
and index = {
  ix_col : string;
  mutable ix_offset : int option; (* None: column absent from the schema *)
  ix_postings : (string, (rowid, unit) Hashtbl.t) Hashtbl.t;
}

let locked t f = Uv_util.Rwlock.write t.lock f
let reading t f = Uv_util.Rwlock.read t.lock f

let schema_offset (schema : Schema.table) col =
  let rec find i = function
    | [] -> None
    | (c : Schema.column) :: rest ->
        if String.equal c.Schema.col_name col then Some i else find (i + 1) rest
  in
  find 0 schema.Schema.tbl_columns

let make_index schema col =
  { ix_col = col; ix_offset = schema_offset schema col;
    ix_postings = Hashtbl.create 64 }

let fresh_col cap =
  { tags = Bytes.make cap tag_free; ints = Array.make (max cap 1) 0;
    floats = [||] }

let create schema =
  let t =
    {
      lock = Uv_util.Rwlock.create ~writer_priority:true ();
      schema;
      cols =
        Array.init (List.length schema.Schema.tbl_columns) (fun _ ->
            fresh_col 0);
      widths = [||];
      rowids = [||];
      cap = 0;
      hi = 0;
      live = 0;
      slots = Hashtbl.create 64;
      pool = [||];
      pool_len = 0;
      pool_ids = Hashtbl.create 64;
      order = [||];
      order_len = 0;
      order_last = min_int;
      order_dirty = false;
      next_rowid = 1;
      next_auto = 1;
      hash_base = 0L;
      pending = 0L;
      indexes = [];
      shared = false;
    }
  in
  (* primary-key and UNIQUE columns get an index out of the box *)
  List.iter
    (fun c -> t.indexes <- make_index schema c :: t.indexes)
    (Schema.primary_key_columns schema @ Schema.unique_columns schema);
  t

let schema t = t.schema

let name t = t.schema.Schema.tbl_name

let row_count t = reading t (fun () -> t.live)

let hash t =
  reading t (fun () -> Uv_util.Table_hash.add_mod t.hash_base t.pending)

let next_auto_value t = reading t (fun () -> t.next_auto)

let next_rowid t = reading t (fun () -> t.next_rowid)

(* ------------------------------------------------------------------ *)
(* Copy-on-write                                                        *)
(* ------------------------------------------------------------------ *)

let copy_index ix =
  let postings = Hashtbl.create (max 16 (Hashtbl.length ix.ix_postings)) in
  Hashtbl.iter
    (fun k set -> Hashtbl.replace postings k (Hashtbl.copy set))
    ix.ix_postings;
  { ix_col = ix.ix_col; ix_offset = ix.ix_offset; ix_postings = postings }

(* Deep-copy every shared array before the first mutation after a
   [copy]. Runs under the write lock; the other side of the share keeps
   reading the original arrays, which nothing mutates afterwards. *)
let unshare t =
  if t.shared then begin
    t.cols <-
      Array.map
        (fun c ->
          {
            tags = Bytes.copy c.tags;
            ints = Array.copy c.ints;
            floats = (if Array.length c.floats = 0 then [||] else Array.copy c.floats);
          })
        t.cols;
    t.widths <- Array.copy t.widths;
    t.rowids <- Array.copy t.rowids;
    t.slots <- Hashtbl.copy t.slots;
    t.pool <- Array.copy t.pool;
    t.pool_ids <- Hashtbl.copy t.pool_ids;
    t.order <- Array.copy t.order;
    t.indexes <- List.map copy_index t.indexes;
    t.shared <- false
  end

let copy t =
  reading t (fun () ->
      t.shared <- true;
      {
        lock = Uv_util.Rwlock.create ~writer_priority:true ();
        schema = t.schema;
        cols = t.cols;
        widths = t.widths;
        rowids = t.rowids;
        cap = t.cap;
        hi = t.hi;
        live = t.live;
        slots = t.slots;
        pool = t.pool;
        pool_len = t.pool_len;
        pool_ids = t.pool_ids;
        order = t.order;
        order_len = t.order_len;
        order_last = t.order_last;
        order_dirty = t.order_dirty;
        next_rowid = t.next_rowid;
        next_auto = t.next_auto;
        hash_base = t.hash_base;
        pending = t.pending;
        indexes = t.indexes;
        shared = true;
      })

(* ------------------------------------------------------------------ *)
(* Counters                                                             *)
(* ------------------------------------------------------------------ *)

let take_auto_value t =
  locked t (fun () ->
      let v = t.next_auto in
      t.next_auto <- v + 1;
      v)

let bump_auto_value t v =
  locked t (fun () -> if v >= t.next_auto then t.next_auto <- v + 1)

let set_auto_value t v = locked t (fun () -> t.next_auto <- max 1 v)

let set_rowid_floor t v =
  locked t (fun () -> if v > t.next_rowid then t.next_rowid <- v)

(* ------------------------------------------------------------------ *)
(* Index keys                                                           *)
(* ------------------------------------------------------------------ *)

(* Index keys must respect SQL equality classes: Int 5, Float 5.0,
   Bool-ish 1/0 and the numeric string "5" all compare equal under
   [Value.compare_sql], so they must share a key. *)
let index_key v =
  let num f =
    if Float.is_integer f && Float.abs f < 1e15 then
      "N" ^ string_of_int (int_of_float f)
    else "N" ^ Printf.sprintf "%h" f
  in
  match v with
  | Value.Int i -> "N" ^ string_of_int i
  | Value.Float f -> num f
  | Value.Bool b -> num (if b then 1.0 else 0.0)
  | Value.Null -> "\x00null"
  | Value.Text s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> num f
      | None -> "T" ^ s)

let posting_add ix k id =
  let set =
    match Hashtbl.find_opt ix.ix_postings k with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 4 in
        Hashtbl.replace ix.ix_postings k s;
        s
  in
  Hashtbl.replace set id ()

let index_add t row id =
  List.iter
    (fun ix ->
      match ix.ix_offset with
      | Some ci when ci < Array.length row ->
          posting_add ix (index_key row.(ci)) id
      | _ -> ())
    t.indexes

let index_remove t row id =
  List.iter
    (fun ix ->
      match ix.ix_offset with
      | Some ci when ci < Array.length row -> (
          let k = index_key row.(ci) in
          match Hashtbl.find_opt ix.ix_postings k with
          | None -> ()
          | Some set ->
              Hashtbl.remove set id;
              if Hashtbl.length set = 0 then Hashtbl.remove ix.ix_postings k)
      | _ -> ())
    t.indexes

(* ------------------------------------------------------------------ *)
(* Hashing                                                              *)
(* ------------------------------------------------------------------ *)

let serialize_row t row =
  let buf = Buffer.create 64 in
  Buffer.add_string buf t.schema.Schema.tbl_name;
  Array.iter
    (fun v ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (Value.serialize v))
    row;
  Buffer.contents buf

let row_delta t row = Uv_util.Table_hash.row_digest (serialize_row t row)

let neg_delta d = Uv_util.Table_hash.sub_mod 0L d

(* ------------------------------------------------------------------ *)
(* Slot plumbing                                                        *)
(* ------------------------------------------------------------------ *)

let grow_slots t =
  let ncap = max 64 (t.cap * 2) in
  let widths = Array.make ncap (-1) in
  Array.blit t.widths 0 widths 0 t.hi;
  t.widths <- widths;
  let rowids = Array.make ncap 0 in
  Array.blit t.rowids 0 rowids 0 t.hi;
  t.rowids <- rowids;
  Array.iter
    (fun c ->
      let tags = Bytes.make ncap tag_free in
      Bytes.blit c.tags 0 tags 0 t.hi;
      c.tags <- tags;
      let ints = Array.make ncap 0 in
      Array.blit c.ints 0 ints 0 (min t.hi (Array.length c.ints));
      c.ints <- ints;
      if Array.length c.floats > 0 then begin
        let floats = Array.make ncap 0.0 in
        Array.blit c.floats 0 floats 0 t.hi;
        c.floats <- floats
      end)
    t.cols;
  t.cap <- ncap

let ensure_width t w =
  if w > Array.length t.cols then begin
    let extra = Array.init (w - Array.length t.cols) (fun _ -> fresh_col t.cap) in
    t.cols <- Array.append t.cols extra
  end

let intern t s =
  match Hashtbl.find_opt t.pool_ids s with
  | Some i -> i
  | None ->
      if t.pool_len >= Array.length t.pool then begin
        let ncap = max 64 (Array.length t.pool * 2) in
        let pool = Array.make ncap "" in
        Array.blit t.pool 0 pool 0 t.pool_len;
        t.pool <- pool
      end;
      let i = t.pool_len in
      t.pool.(i) <- s;
      t.pool_len <- i + 1;
      Hashtbl.replace t.pool_ids s i;
      i

let set_cell t c s v =
  let col = t.cols.(c) in
  match v with
  | Value.Null -> Bytes.unsafe_set col.tags s tag_null
  | Value.Int i ->
      Bytes.unsafe_set col.tags s tag_int;
      Array.unsafe_set col.ints s i
  | Value.Float f ->
      if Array.length col.floats = 0 then col.floats <- Array.make t.cap 0.0;
      Bytes.unsafe_set col.tags s tag_float;
      Array.unsafe_set col.floats s f
  | Value.Text str ->
      Bytes.unsafe_set col.tags s tag_text;
      Array.unsafe_set col.ints s (intern t str)
  | Value.Bool b -> Bytes.unsafe_set col.tags s (if b then tag_true else tag_false)

let vtrue = Value.Bool true
let vfalse = Value.Bool false

let get_cell t c s =
  let col = Array.unsafe_get t.cols c in
  match Bytes.unsafe_get col.tags s with
  | '\001' -> Value.Null
  | '\002' -> Value.Int (Array.unsafe_get col.ints s)
  | '\003' -> Value.Float (Array.unsafe_get col.floats s)
  | '\004' -> Value.Text (Array.unsafe_get t.pool (Array.unsafe_get col.ints s))
  | '\005' -> vtrue
  | '\006' -> vfalse
  | _ -> invalid_arg "Storage: dead cell"

let materialize t s =
  let w = t.widths.(s) in
  Array.init w (fun c -> get_cell t c s)

let push_order t s id =
  if t.order_len >= Array.length t.order then begin
    let ncap = max 64 (Array.length t.order * 2) in
    let order = Array.make ncap 0 in
    Array.blit t.order 0 order 0 t.order_len;
    t.order <- order
  end;
  t.order.(t.order_len) <- s;
  t.order_len <- t.order_len + 1;
  t.order_last <- id

(* Live slots in ascending rowid order. While the append-order cache is
   clean it is returned directly (entries of dead slots are skipped by
   the caller); after an out-of-order insert scans sort a local array. *)
let ordered_slots t =
  if not t.order_dirty then (t.order, t.order_len)
  else begin
    let arr = Array.make (max 1 t.live) 0 in
    let k = ref 0 in
    for s = 0 to t.hi - 1 do
      if Array.unsafe_get t.widths s >= 0 then begin
        arr.(!k) <- s;
        incr k
      end
    done;
    let a = if !k = Array.length arr then arr else Array.sub arr 0 !k in
    Array.sort (fun s1 s2 -> compare t.rowids.(s1) t.rowids.(s2)) a;
    (a, !k)
  end

let kill_slot t s =
  t.widths.(s) <- -1;
  t.live <- t.live - 1

(* ------------------------------------------------------------------ *)
(* Mutations                                                            *)
(* ------------------------------------------------------------------ *)

let insert_unlocked t id row =
  unshare t;
  (* replacing an existing rowid keeps the historical Hashtbl.replace
     semantics: the old image vanishes from scans but stays in the hash
     and indexes (only undo re-insertion can hit this, on images the
     hash already accounts for) *)
  (match Hashtbl.find_opt t.slots id with
  | Some s -> kill_slot t s
  | None -> ());
  let w = Array.length row in
  ensure_width t w;
  if t.hi >= t.cap then grow_slots t;
  let s = t.hi in
  t.hi <- t.hi + 1;
  t.widths.(s) <- w;
  t.rowids.(s) <- id;
  for c = 0 to w - 1 do
    set_cell t c s row.(c)
  done;
  Hashtbl.replace t.slots id s;
  t.live <- t.live + 1;
  if not t.order_dirty then
    if t.order_len = 0 || id > t.order_last then push_order t s id
    else t.order_dirty <- true;
  if id >= t.next_rowid then t.next_rowid <- id + 1;
  t.pending <- Uv_util.Table_hash.add_mod t.pending (row_delta t row);
  index_add t row id

let insert t row =
  locked t (fun () ->
      let id = t.next_rowid in
      insert_unlocked t id row;
      id)

let insert_with_rowid t id row = locked t (fun () -> insert_unlocked t id row)

let insert_at t id row =
  locked t (fun () ->
      if Hashtbl.mem t.slots id then
        invalid_arg "Storage.insert_at: rowid already in use";
      insert_unlocked t id row;
      id)

let delete_unlocked t id =
  match Hashtbl.find_opt t.slots id with
  | None -> raise Not_found
  | Some s ->
      unshare t;
      let row = materialize t s in
      Hashtbl.remove t.slots id;
      kill_slot t s;
      t.pending <-
        Uv_util.Table_hash.add_mod t.pending (neg_delta (row_delta t row));
      index_remove t row id;
      row

let delete t id = locked t (fun () -> delete_unlocked t id)

let update_unlocked t id row =
  match Hashtbl.find_opt t.slots id with
  | None -> raise Not_found
  | Some s ->
      unshare t;
      let before = materialize t s in
      let w = Array.length row in
      ensure_width t w;
      t.widths.(s) <- w;
      for c = 0 to w - 1 do
        set_cell t c s row.(c)
      done;
      t.pending <-
        Uv_util.Table_hash.add_mod
          (Uv_util.Table_hash.add_mod t.pending (neg_delta (row_delta t before)))
          (row_delta t row);
      index_remove t before id;
      index_add t row id;
      before

let update t id row = locked t (fun () -> update_unlocked t id row)

(* Whole-statement batches: one lock acquisition and one hash-chain
   update for all rows a statement touches, instead of per-row locking.
   The per-row digests are folded into a statement-local accumulator and
   applied to [pending] once. *)
let update_many t rows =
  locked t (fun () ->
      unshare t;
      let delta = ref 0L in
      let before =
        List.rev_map
          (fun (id, row) ->
            match Hashtbl.find_opt t.slots id with
            | None -> raise Not_found
            | Some s ->
                let old = materialize t s in
                let w = Array.length row in
                ensure_width t w;
                t.widths.(s) <- w;
                for c = 0 to w - 1 do
                  set_cell t c s row.(c)
                done;
                delta :=
                  Uv_util.Table_hash.add_mod
                    (Uv_util.Table_hash.add_mod !delta
                       (neg_delta (row_delta t old)))
                    (row_delta t row);
                index_remove t old id;
                index_add t row id;
                (id, old))
          rows
      in
      t.pending <- Uv_util.Table_hash.add_mod t.pending !delta;
      List.rev before)

let delete_many t ids =
  locked t (fun () ->
      unshare t;
      let delta = ref 0L in
      let removed =
        List.rev_map
          (fun id ->
            match Hashtbl.find_opt t.slots id with
            | None -> raise Not_found
            | Some s ->
                let row = materialize t s in
                Hashtbl.remove t.slots id;
                kill_slot t s;
                delta :=
                  Uv_util.Table_hash.add_mod !delta (neg_delta (row_delta t row));
                index_remove t row id;
                (id, row))
          ids
      in
      t.pending <- Uv_util.Table_hash.add_mod t.pending !delta;
      List.rev removed)

(* ------------------------------------------------------------------ *)
(* Reads                                                                *)
(* ------------------------------------------------------------------ *)

let get t id =
  reading t (fun () ->
      match Hashtbl.find_opt t.slots id with
      | None -> None
      | Some s -> Some (materialize t s))

(* iter/fold materialize each live row and run the callback under the
   shared read side, in slot (insertion) order. Callbacks must be pure
   row functions: under the writer-priority lock a callback that
   re-entered this table's lock could deadlock against a queued writer. *)
let iter t f =
  reading t (fun () ->
      for s = 0 to t.hi - 1 do
        if Array.unsafe_get t.widths s >= 0 then f t.rowids.(s) (materialize t s)
      done)

let fold t ~init ~f =
  reading t (fun () ->
      let acc = ref init in
      for s = 0 to t.hi - 1 do
        if Array.unsafe_get t.widths s >= 0 then
          acc := f !acc t.rowids.(s) (materialize t s)
      done;
      !acc)

let to_rows t =
  reading t (fun () ->
      let slots, n = ordered_slots t in
      let out = ref [] in
      for k = n - 1 downto 0 do
        let s = Array.unsafe_get slots k in
        if Array.unsafe_get t.widths s >= 0 then
          out := (t.rowids.(s), materialize t s) :: !out
      done;
      !out)

(* ------------------------------------------------------------------ *)
(* Typed column access                                                  *)
(* ------------------------------------------------------------------ *)

module Col = struct
  type table = t

  type cur = { tbl : table; mutable slot : int }

  let rowid cur = cur.tbl.rowids.(cur.slot)

  let width cur = cur.tbl.widths.(cur.slot)

  let value cur c =
    if c >= cur.tbl.widths.(cur.slot) then
      invalid_arg "index out of bounds"
    else get_cell cur.tbl c cur.slot

  let is_null cur c =
    c >= cur.tbl.widths.(cur.slot)
    || Bytes.unsafe_get cur.tbl.cols.(c).tags cur.slot = tag_null

  (* Cell-vs-literal comparison mirroring [Value.compare_sql] without
     materializing the cell for the common same-kind cases. Callers
     handle NULL on either side first. *)
  let cmp_lit cur c lit =
    let tbl = cur.tbl in
    let col = tbl.cols.(c) in
    let s = cur.slot in
    match (Bytes.unsafe_get col.tags s, lit) with
    | '\002', Value.Int j -> compare (Array.unsafe_get col.ints s) j
    | '\003', Value.Float j -> compare (Array.unsafe_get col.floats s) j
    | _ -> Value.compare_sql (value cur c) lit

  let equal_lit cur c lit =
    let tbl = cur.tbl in
    let col = tbl.cols.(c) in
    let s = cur.slot in
    match (Bytes.unsafe_get col.tags s, lit) with
    | '\002', Value.Int j -> Array.unsafe_get col.ints s = j
    (* [compare], not [=]: compare_sql equates nan with nan *)
    | '\003', Value.Float j -> compare (Array.unsafe_get col.floats s) j = 0
    | '\004', Value.Text str ->
        let cs = Array.unsafe_get tbl.pool (Array.unsafe_get col.ints s) in
        String.equal cs str || Value.compare_sql (Value.Text cs) lit = 0
    | _ -> Value.compare_sql (value cur c) lit = 0

  (* Typed readers: [Some v] when the cell currently holds that dynamic
     kind, [None] otherwise (including NULL and out-of-range). *)
  let read_tagged t id c f =
    reading t (fun () ->
        match Hashtbl.find_opt t.slots id with
        | None -> None
        | Some s -> if c >= t.widths.(s) then None else f s)

  let read_int t id c =
    read_tagged t id c (fun s ->
        let col = t.cols.(c) in
        if Bytes.get col.tags s = tag_int then Some col.ints.(s) else None)

  let read_float t id c =
    read_tagged t id c (fun s ->
        let col = t.cols.(c) in
        if Bytes.get col.tags s = tag_float then Some col.floats.(s) else None)

  let read_text t id c =
    read_tagged t id c (fun s ->
        let col = t.cols.(c) in
        if Bytes.get col.tags s = tag_text then Some t.pool.(col.ints.(s))
        else None)

  let read_bool t id c =
    read_tagged t id c (fun s ->
        match Bytes.get t.cols.(c).tags s with
        | '\005' -> Some true
        | '\006' -> Some false
        | _ -> None)

  (* Typed writer: rewrite one cell, keeping hash and indexes exact. *)
  let write t id c v =
    locked t (fun () ->
        match Hashtbl.find_opt t.slots id with
        | None -> raise Not_found
        | Some s ->
            if c >= t.widths.(s) then invalid_arg "Storage.Col.write: column";
            unshare t;
            let before = materialize t s in
            let row = Array.copy before in
            row.(c) <- v;
            set_cell t c s v;
            t.pending <-
              Uv_util.Table_hash.add_mod
                (Uv_util.Table_hash.add_mod t.pending
                   (neg_delta (row_delta t before)))
                (row_delta t row);
            index_remove t before id;
            index_add t row id)

  (* Filtered scan: runs [pred] over every live slot in ascending rowid
     order and materializes only the matches. [pred] must be a pure row
     predicate — no storage re-entry (the read lock is held). *)
  let select t pred =
    reading t (fun () ->
        let slots, n = ordered_slots t in
        let cur = { tbl = t; slot = 0 } in
        let out = ref [] in
        for k = n - 1 downto 0 do
          let s = Array.unsafe_get slots k in
          if Array.unsafe_get t.widths s >= 0 then begin
            cur.slot <- s;
            if pred cur then out := (t.rowids.(s), materialize t s) :: !out
          end
        done;
        !out)

  (* Same, over an explicit candidate rowid list (an index probe). The
     candidates are visited in the order given; unknown rowids skip. *)
  let select_ids t ids pred =
    reading t (fun () ->
        let cur = { tbl = t; slot = 0 } in
        List.filter_map
          (fun id ->
            match Hashtbl.find_opt t.slots id with
            | None -> None
            | Some s ->
                cur.slot <- s;
                if pred cur then Some (id, materialize t s) else None)
          ids)
end

(* ------------------------------------------------------------------ *)
(* Schema changes                                                       *)
(* ------------------------------------------------------------------ *)

let set_schema t schema remap =
  locked t @@ fun () ->
  unshare t;
  let updates =
    let acc = ref [] in
    for s = t.hi - 1 downto 0 do
      if t.widths.(s) >= 0 then acc := (t.rowids.(s), remap (materialize t s)) :: !acc
    done;
    !acc
  in
  t.schema <- schema;
  (* drop indexes on columns that no longer exist, rebuild the rest
     (fresh records so the column offsets are re-resolved against the
     new schema) *)
  let kept =
    List.filter (fun ix -> schema_offset schema ix.ix_col <> None) t.indexes
  in
  t.indexes <- List.map (fun ix -> make_index schema ix.ix_col) kept;
  (* rebuild the columnar body from the remapped images *)
  t.cols <-
    Array.init (List.length schema.Schema.tbl_columns) (fun _ -> fresh_col 0);
  t.widths <- [||];
  t.rowids <- [||];
  t.cap <- 0;
  t.hi <- 0;
  t.live <- 0;
  t.slots <- Hashtbl.create 64;
  t.order <- [||];
  t.order_len <- 0;
  t.order_last <- min_int;
  t.order_dirty <- false;
  t.hash_base <- 0L;
  t.pending <- 0L;
  let next = t.next_rowid in
  List.iter (fun (id, row) -> insert_unlocked t id row) updates;
  t.next_rowid <- max next t.next_rowid

let create_value_index t col =
  locked t @@ fun () ->
  if not (List.exists (fun ix -> String.equal ix.ix_col col) t.indexes)
  then begin
    unshare t;
    let ix = make_index t.schema col in
    t.indexes <- ix :: t.indexes;
    (* populate only the new index: re-adding rows through [index_add]
       would duplicate their entries in every pre-existing index *)
    match ix.ix_offset with
    | None -> ()
    | Some ci ->
        for s = 0 to t.hi - 1 do
          if t.widths.(s) >= 0 && ci < t.widths.(s) then
            posting_add ix (index_key (get_cell t ci s)) t.rowids.(s)
        done
  end

let indexed_lookup t col v =
  reading t (fun () ->
      match List.find_opt (fun ix -> String.equal ix.ix_col col) t.indexes with
      | None -> None
      | Some ix -> (
          match Hashtbl.find_opt ix.ix_postings (index_key v) with
          | None -> Some []
          | Some set ->
              Some (Hashtbl.fold (fun id () acc -> id :: acc) set [])))

let indexed_columns t =
  reading t (fun () -> List.map (fun ix -> ix.ix_col) t.indexes)

let column_index t col =
  let rec find i = function
    | [] -> None
    | (c : Schema.column) :: rest ->
        if String.equal c.Schema.col_name col then Some i else find (i + 1) rest
  in
  find 0 t.schema.Schema.tbl_columns

let memory_bytes t =
  reading t (fun () ->
      let word = Sys.word_size / 8 in
      let per_col acc (c : col) =
        acc + Bytes.length c.tags
        + (word * Array.length c.ints)
        + (word * Array.length c.floats)
      in
      let pool_bytes =
        let b = ref 0 in
        for i = 0 to t.pool_len - 1 do
          b := !b + String.length t.pool.(i) + (3 * word)
        done;
        !b
      in
      256
      + Array.fold_left per_col 0 t.cols
      + (word * (Array.length t.widths + Array.length t.rowids))
      + (word * 4 * Hashtbl.length t.slots)
      + pool_bytes)
