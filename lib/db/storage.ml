open Uv_sql

type rowid = int

type t = {
  (* Guards every access during parallel replay (Wave_exec): the wave
     layering keeps conflicting statements in different waves, but
     same-wave statements may still touch disjoint rows of one table,
     and Hashtbl is not domain-safe even for disjoint keys (resizing).
     A readers-writer lock lets the dominant cost — full-table scans
     from unindexed predicates — run concurrently; only mutations take
     the exclusive side. Row arrays are replaced, never mutated in
     place, so an array obtained under the lock stays consistent after
     release. Scan callbacks may re-enter the read side (subqueries),
     which the reader-preferring [Rwlock] permits; they must not write
     (the engine collects matching rows before mutating). *)
  lock : Uv_util.Rwlock.t;
  mutable schema : Schema.table;
  rows : (rowid, Value.t array) Hashtbl.t;
  mutable next_rowid : rowid;
  mutable next_auto : int;
  mutable hash : Uv_util.Table_hash.t;
  mutable indexes : index list;
}

(* A hash index: postings are per-value rowid sets, so adding and
   removing a row is O(1) amortized (removal used to filter an assoc
   list, making every indexed DELETE/UPDATE O(k) in the bucket size).
   The column offset is resolved once — at index build and on schema
   changes — instead of per mutated row. *)
and index = {
  ix_col : string;
  mutable ix_offset : int option; (* None: column absent from the schema *)
  ix_postings : (string, (rowid, unit) Hashtbl.t) Hashtbl.t;
}

let locked t f = Uv_util.Rwlock.write t.lock f
let reading t f = Uv_util.Rwlock.read t.lock f

let schema_offset (schema : Schema.table) col =
  let rec find i = function
    | [] -> None
    | (c : Schema.column) :: rest ->
        if String.equal c.Schema.col_name col then Some i else find (i + 1) rest
  in
  find 0 schema.Schema.tbl_columns

let make_index schema col =
  { ix_col = col; ix_offset = schema_offset schema col;
    ix_postings = Hashtbl.create 64 }

let create schema =
  let t =
    {
      lock = Uv_util.Rwlock.create ();
      schema;
      rows = Hashtbl.create 64;
      next_rowid = 1;
      next_auto = 1;
      hash = Uv_util.Table_hash.create ();
      indexes = [];
    }
  in
  (* primary-key and UNIQUE columns get an index out of the box *)
  List.iter
    (fun c -> t.indexes <- make_index schema c :: t.indexes)
    (Schema.primary_key_columns schema @ Schema.unique_columns schema);
  t

let schema t = t.schema

let name t = t.schema.Schema.tbl_name

let row_count t = reading t (fun () -> Hashtbl.length t.rows)

let hash t = reading t (fun () -> Uv_util.Table_hash.value t.hash)

let next_auto_value t = reading t (fun () -> t.next_auto)

let take_auto_value t =
  locked t (fun () ->
      let v = t.next_auto in
      t.next_auto <- v + 1;
      v)

let bump_auto_value t v =
  locked t (fun () -> if v >= t.next_auto then t.next_auto <- v + 1)

let set_auto_value t v = locked t (fun () -> t.next_auto <- max 1 v)

let next_rowid t = reading t (fun () -> t.next_rowid)

let set_rowid_floor t v =
  locked t (fun () -> if v > t.next_rowid then t.next_rowid <- v)

(* Index keys must respect SQL equality classes: Int 5, Float 5.0,
   Bool-ish 1/0 and the numeric string "5" all compare equal under
   [Value.compare_sql], so they must share a key. *)
let index_key v =
  let num f =
    if Float.is_integer f && Float.abs f < 1e15 then
      "N" ^ string_of_int (int_of_float f)
    else "N" ^ Printf.sprintf "%h" f
  in
  match v with
  | Value.Int i -> "N" ^ string_of_int i
  | Value.Float f -> num f
  | Value.Bool b -> num (if b then 1.0 else 0.0)
  | Value.Null -> "\x00null"
  | Value.Text s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> num f
      | None -> "T" ^ s)

let posting_add ix k id =
  let set =
    match Hashtbl.find_opt ix.ix_postings k with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 4 in
        Hashtbl.replace ix.ix_postings k s;
        s
  in
  Hashtbl.replace set id ()

let index_add t row id =
  List.iter
    (fun ix ->
      match ix.ix_offset with
      | Some ci when ci < Array.length row ->
          posting_add ix (index_key row.(ci)) id
      | _ -> ())
    t.indexes

let index_remove t row id =
  List.iter
    (fun ix ->
      match ix.ix_offset with
      | Some ci when ci < Array.length row -> (
          let k = index_key row.(ci) in
          match Hashtbl.find_opt ix.ix_postings k with
          | None -> ()
          | Some set ->
              Hashtbl.remove set id;
              if Hashtbl.length set = 0 then Hashtbl.remove ix.ix_postings k)
      | _ -> ())
    t.indexes

let serialize_row t row =
  let buf = Buffer.create 64 in
  Buffer.add_string buf t.schema.Schema.tbl_name;
  Array.iter
    (fun v ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (Value.serialize v))
    row;
  Buffer.contents buf

let insert_unlocked t id row =
  Hashtbl.replace t.rows id row;
  if id >= t.next_rowid then t.next_rowid <- id + 1;
  Uv_util.Table_hash.add_row t.hash (serialize_row t row);
  index_add t row id

let insert t row =
  locked t (fun () ->
      let id = t.next_rowid in
      insert_unlocked t id row;
      id)

let insert_with_rowid t id row = locked t (fun () -> insert_unlocked t id row)

let insert_at t id row =
  locked t (fun () ->
      if Hashtbl.mem t.rows id then
        invalid_arg "Storage.insert_at: rowid already in use";
      insert_unlocked t id row;
      id)

let delete t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.rows id with
      | None -> raise Not_found
      | Some row ->
          Hashtbl.remove t.rows id;
          Uv_util.Table_hash.remove_row t.hash (serialize_row t row);
          index_remove t row id;
          row)

let update t id row =
  locked t (fun () ->
      match Hashtbl.find_opt t.rows id with
      | None -> raise Not_found
      | Some before ->
          Uv_util.Table_hash.remove_row t.hash (serialize_row t before);
          Hashtbl.replace t.rows id row;
          Uv_util.Table_hash.add_row t.hash (serialize_row t row);
          index_remove t before id;
          index_add t row id;
          before)

let get t id = reading t (fun () -> Hashtbl.find_opt t.rows id)

(* iter/fold run the callbacks under the shared read side with no
   intermediate allocation: the callbacks are pure reads (they may
   re-enter the read lock for subqueries, which [Rwlock] allows, but
   they never mutate mid-scan — the engine collects matching rows
   before applying changes). to_rows keeps snapshot semantics because
   callers mutate the table while consuming the returned list. *)
let iter t f = reading t (fun () -> Hashtbl.iter (fun id row -> f id row) t.rows)

let fold t ~init ~f =
  reading t (fun () ->
      Hashtbl.fold (fun id row acc -> f acc id row) t.rows init)

let snapshot_rows t =
  reading t (fun () ->
      Hashtbl.fold (fun id row acc -> (id, row) :: acc) t.rows [])

let to_rows t =
  List.sort (fun (a, _) (b, _) -> compare a b) (snapshot_rows t)

let copy t =
  reading t (fun () ->
      {
        lock = Uv_util.Rwlock.create ();
        schema = t.schema;
        rows = Hashtbl.copy t.rows;
        next_rowid = t.next_rowid;
        next_auto = t.next_auto;
        hash = Uv_util.Table_hash.copy t.hash;
        indexes =
          List.map
            (fun ix ->
              let postings = Hashtbl.create (Hashtbl.length ix.ix_postings) in
              Hashtbl.iter
                (fun k set -> Hashtbl.replace postings k (Hashtbl.copy set))
                ix.ix_postings;
              { ix_col = ix.ix_col; ix_offset = ix.ix_offset;
                ix_postings = postings })
            t.indexes;
      })

let set_schema t schema remap =
  locked t @@ fun () ->
  let fresh = Uv_util.Table_hash.create () in
  let updates = Hashtbl.fold (fun id row acc -> (id, remap row) :: acc) t.rows [] in
  t.schema <- schema;
  (* drop indexes on columns that no longer exist, rebuild the rest
     (fresh records so the column offsets are re-resolved against the
     new schema) *)
  let kept =
    List.filter (fun ix -> schema_offset schema ix.ix_col <> None) t.indexes
  in
  t.indexes <- List.map (fun ix -> make_index schema ix.ix_col) kept;
  List.iter
    (fun (id, row) ->
      Hashtbl.replace t.rows id row;
      Uv_util.Table_hash.add_row fresh (serialize_row t row);
      index_add t row id)
    updates;
  t.hash <- fresh

let create_value_index t col =
  locked t @@ fun () ->
  if not (List.exists (fun ix -> String.equal ix.ix_col col) t.indexes)
  then begin
    let ix = make_index t.schema col in
    t.indexes <- ix :: t.indexes;
    (* populate only the new index: re-adding rows through [index_add]
       would duplicate their entries in every pre-existing index *)
    match ix.ix_offset with
    | None -> ()
    | Some ci ->
        Hashtbl.iter
          (fun id row ->
            if ci < Array.length row then
              posting_add ix (index_key row.(ci)) id)
          t.rows
  end

let indexed_lookup t col v =
  reading t (fun () ->
      match List.find_opt (fun ix -> String.equal ix.ix_col col) t.indexes with
      | None -> None
      | Some ix -> (
          match Hashtbl.find_opt ix.ix_postings (index_key v) with
          | None -> Some []
          | Some set ->
              Some (Hashtbl.fold (fun id () acc -> id :: acc) set [])))

let indexed_columns t =
  reading t (fun () -> List.map (fun ix -> ix.ix_col) t.indexes)

let column_index t col =
  let rec find i = function
    | [] -> None
    | (c : Schema.column) :: rest ->
        if String.equal c.Schema.col_name col then Some i else find (i + 1) rest
  in
  find 0 t.schema.Schema.tbl_columns

let memory_bytes t =
  let word = Sys.word_size / 8 in
  let per_value v =
    match v with
    | Value.Text s -> (3 * word) + String.length s
    | _ -> 3 * word
  in
  fold t ~init:256 ~f:(fun acc _ row ->
      acc + (4 * word) + Array.fold_left (fun a v -> a + per_value v) 0 row)
