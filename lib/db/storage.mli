(** Physical table storage, columnar.

    Each table is a struct-of-arrays: one typed column chunk per schema
    column (a tag byte per slot plus unboxed [int array] / [float array]
    payloads and an interned string pool), a validity array marking live
    slots, and a rowid-to-slot map. [Value.t] is materialized only at
    this API boundary — scans and compiled WHERE predicates read the
    typed columns directly through {!Col}. Every mutation keeps the
    table's incremental hash (§4.5) in sync — inserts add the row
    digest, deletes subtract it, updates do both — and the batched entry
    points ({!update_many}, {!delete_many}, {!Col.write}) fold one
    hash-chain delta per statement instead of per row, so reading the
    hash is O(1) at any commit point.

    Thread safety: every operation holds an internal per-table
    readers-writer lock in its writer-priority variant — reads (scans,
    lookups, hash) share it, mutations are exclusive, and a queued
    writer blocks new reader admissions so scan streams cannot starve
    it. Statements touching disjoint tables, or disjoint rows of one
    table as scheduled by the wave executor, may run on concurrent
    domains. Under writer priority, nested read acquisition can
    deadlock, so the callbacks of [iter]/[fold] and the predicates of
    {!Col.select} must be pure row functions that never re-enter this
    table's lock — the engine collects matching rows before mutating or
    evaluating subqueries. Row arrays returned by reads are fresh
    materializations, never aliased to storage, so they stay consistent
    after the lock is released. *)

open Uv_sql

type rowid = int

type t

val create : Schema.table -> t

val schema : t -> Schema.table

val name : t -> string

val row_count : t -> int

val hash : t -> int64
(** Current incremental table hash (§4.5). *)

val next_auto_value : t -> int
(** Peek the next AUTO_INCREMENT value without consuming it. *)

val take_auto_value : t -> int
(** Consume and return the next AUTO_INCREMENT value. *)

val bump_auto_value : t -> int -> unit
(** Raise the counter to at least [v + 1] (applied when an explicit value
    is inserted into an AUTO_INCREMENT column). *)

val set_auto_value : t -> int -> unit
(** Pin the counter to exactly [v] (clamped to at least 1). Used by
    [ALTER TABLE ... AUTO_INCREMENT = v] and by statement rollback, which
    must restore the pre-statement counter so a retried statement draws
    the same fresh keys. *)

val insert : t -> Value.t array -> rowid
(** Insert a row (already coerced and padded to schema width). *)

val insert_with_rowid : t -> rowid -> Value.t array -> unit
(** Re-insert a row under a known rowid (undo of a delete). *)

val insert_at : t -> rowid -> Value.t array -> rowid
(** Insert under an explicit fresh rowid, raising [Invalid_argument] if
    the rowid is taken. Parallel replay pins each statement to a private
    rowid range so allocation is deterministic at every worker count. *)

val next_rowid : t -> rowid
(** The rowid the next plain [insert] would use. *)

val set_rowid_floor : t -> rowid -> unit
(** Raise [next_rowid] to at least [v]. Checkpoint-jumping rollback uses
    this to pin the allocator to the value plain undo would have left,
    so replayed inserts draw identical rowids under either strategy. *)

val delete : t -> rowid -> Value.t array
(** Remove a row; returns the removed image. Raises [Not_found]. *)

val update : t -> rowid -> Value.t array -> Value.t array
(** Replace a row; returns the before-image. Raises [Not_found]. *)

val update_many : t -> (rowid * Value.t array) list -> (rowid * Value.t array) list
(** Replace a batch of rows under one lock acquisition and one
    hash-chain update (per-statement batching): returns the
    before-images in input order. Raises [Not_found] on the first
    missing rowid, leaving earlier replacements applied — callers batch
    only rowids they have just observed under the same statement. *)

val delete_many : t -> rowid list -> (rowid * Value.t array) list
(** Remove a batch of rows under one lock acquisition and one hash-chain
    update: returns the removed images in input order. Same [Not_found]
    contract as {!update_many}. *)

val get : t -> rowid -> Value.t array option

val iter : t -> (rowid -> Value.t array -> unit) -> unit

val fold : t -> init:'a -> f:('a -> rowid -> Value.t array -> 'a) -> 'a

val to_rows : t -> (rowid * Value.t array) list
(** Rows in ascending rowid order (deterministic iteration). *)

val copy : t -> t
(** Snapshot copy. Implemented copy-on-write: the column chunks, string
    pool and indexes are shared until either side next mutates, so
    snapshotting a table that is never written afterwards — most
    checkpoint rungs — is O(1). Both sides remain fully independent
    [t] values. *)

val set_schema : t -> Schema.table -> (Value.t array -> Value.t array) -> unit
(** [set_schema t schema remap] rewrites every row through [remap]
    (ALTER TABLE), rebuilding the column chunks and refreshing the
    hash. *)

val column_index : t -> string -> int option

val index_key : Uv_sql.Value.t -> string
(** Canonical SQL-equality-class key: [Int 5], [Float 5.0] and ["5"] all
    map to the same key. Used by the hash indexes and by DISTINCT
    aggregate deduplication. *)

val create_value_index : t -> string -> unit
(** Build (or rebuild) a hash index on the column; maintained by every
    subsequent mutation. Primary-key columns are indexed automatically
    at [create]. *)

val indexed_lookup : t -> string -> Value.t -> rowid list option
(** [Some rowids] holding exactly the rows whose column equals the value
    when the column is indexed; [None] when it is not. The list order is
    unspecified (postings are hash sets) — callers needing determinism
    sort it. *)

val indexed_columns : t -> string list

val serialize_row : t -> Value.t array -> string
(** Canonical row serialization used for hashing. *)

val memory_bytes : t -> int
(** Rough live size, for the RAM-overhead benches. *)

(** Typed access to the column chunks, bypassing [Value.t] boxing.

    Readers return the unboxed payload when the cell currently holds
    that dynamic kind. The cursor API is the scan hot path: compiled
    WHERE predicates evaluate against a cursor positioned on a slot,
    and only matching rows are materialized. *)
module Col : sig
  type table := t

  type cur
  (** A cursor positioned on one live slot during {!select} /
      {!select_ids}. Only valid inside the predicate callback. *)

  val rowid : cur -> rowid

  val width : cur -> int
  (** Stored width of the current row (rows may be narrower than the
      schema after ALTER TABLE). *)

  val value : cur -> int -> Value.t
  (** Materialize one cell. Raises [Invalid_argument] when the column
      is beyond the stored row width, like [row.(i)] would. *)

  val is_null : cur -> int -> bool
  (** True when the cell is NULL or beyond the stored row width. *)

  val cmp_lit : cur -> int -> Value.t -> int
  (** [Value.compare_sql] of cell vs literal without boxing the cell in
      the same-kind cases. Callers handle NULL on either side first. *)

  val equal_lit : cur -> int -> Value.t -> bool
  (** SQL equality of cell vs literal, unboxed in the common cases. *)

  val select : table -> (cur -> bool) -> (rowid * Value.t array) list
  (** Filtered scan in ascending rowid order, materializing only the
      matching rows. The predicate runs under the table's read lock and
      must be a pure row function (no storage re-entry). *)

  val select_ids :
    table -> rowid list -> (cur -> bool) -> (rowid * Value.t array) list
  (** Like {!select} over an explicit candidate list (an index probe),
      visited in the order given; unknown rowids are skipped. *)

  val read_int : table -> rowid -> int -> int option
  val read_float : table -> rowid -> int -> float option
  val read_text : table -> rowid -> int -> string option
  val read_bool : table -> rowid -> int -> bool option
  (** Typed single-cell readers: [Some payload] when the cell holds that
      dynamic kind, [None] otherwise (including NULL, a missing rowid,
      or a column beyond the stored width). *)

  val write : table -> rowid -> int -> Value.t -> unit
  (** Rewrite one cell in place, maintaining the table hash and the
      indexes. Raises [Not_found] on a missing rowid and
      [Invalid_argument] on a column beyond the stored width. *)
end
