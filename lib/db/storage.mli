(** Physical table storage.

    Rows are value arrays in schema column order, keyed by an internal
    rowid. Every mutation keeps the table's incremental hash (§4.5) in
    sync: inserts add the row digest, deletes subtract it, updates do
    both — so reading the hash is O(1) at any commit point.

    Thread safety: every operation holds an internal per-table
    readers-writer lock — reads (scans, lookups, hash) share it, while
    mutations are exclusive — so statements touching disjoint tables, or
    disjoint rows of one table as scheduled by the wave executor, may
    run on concurrent domains, and concurrent full-table scans proceed
    in parallel. [iter]/[fold] run their callbacks under the read side:
    callbacks may re-enter reads (subqueries) but must not mutate the
    table mid-scan. Row arrays are replaced on update, never mutated in
    place, so rows obtained under the lock stay consistent after it is
    released. *)

open Uv_sql

type rowid = int

type t

val create : Schema.table -> t

val schema : t -> Schema.table

val name : t -> string

val row_count : t -> int

val hash : t -> int64
(** Current incremental table hash (§4.5). *)

val next_auto_value : t -> int
(** Peek the next AUTO_INCREMENT value without consuming it. *)

val take_auto_value : t -> int
(** Consume and return the next AUTO_INCREMENT value. *)

val bump_auto_value : t -> int -> unit
(** Raise the counter to at least [v + 1] (applied when an explicit value
    is inserted into an AUTO_INCREMENT column). *)

val set_auto_value : t -> int -> unit
(** Pin the counter to exactly [v] (clamped to at least 1). Used by
    [ALTER TABLE ... AUTO_INCREMENT = v] and by statement rollback, which
    must restore the pre-statement counter so a retried statement draws
    the same fresh keys. *)

val insert : t -> Value.t array -> rowid
(** Insert a row (already coerced and padded to schema width). *)

val insert_with_rowid : t -> rowid -> Value.t array -> unit
(** Re-insert a row under a known rowid (undo of a delete). *)

val insert_at : t -> rowid -> Value.t array -> rowid
(** Insert under an explicit fresh rowid, raising [Invalid_argument] if
    the rowid is taken. Parallel replay pins each statement to a private
    rowid range so allocation is deterministic at every worker count. *)

val next_rowid : t -> rowid
(** The rowid the next plain [insert] would use. *)

val set_rowid_floor : t -> rowid -> unit
(** Raise [next_rowid] to at least [v]. Checkpoint-jumping rollback uses
    this to pin the allocator to the value plain undo would have left,
    so replayed inserts draw identical rowids under either strategy. *)

val delete : t -> rowid -> Value.t array
(** Remove a row; returns the removed image. Raises [Not_found]. *)

val update : t -> rowid -> Value.t array -> Value.t array
(** Replace a row; returns the before-image. Raises [Not_found]. *)

val get : t -> rowid -> Value.t array option

val iter : t -> (rowid -> Value.t array -> unit) -> unit

val fold : t -> init:'a -> f:('a -> rowid -> Value.t array -> 'a) -> 'a

val to_rows : t -> (rowid * Value.t array) list
(** Rows in ascending rowid order (deterministic iteration). *)

val copy : t -> t
(** Deep copy (snapshotting). *)

val set_schema : t -> Schema.table -> (Value.t array -> Value.t array) -> unit
(** [set_schema t schema remap] rewrites every row through [remap]
    (ALTER TABLE), refreshing the hash. *)

val column_index : t -> string -> int option

val index_key : Uv_sql.Value.t -> string
(** Canonical SQL-equality-class key: [Int 5], [Float 5.0] and ["5"] all
    map to the same key. Used by the hash indexes and by DISTINCT
    aggregate deduplication. *)

val create_value_index : t -> string -> unit
(** Build (or rebuild) a hash index on the column; maintained by every
    subsequent mutation. Primary-key columns are indexed automatically
    at [create]. *)

val indexed_lookup : t -> string -> Value.t -> rowid list option
(** [Some rowids] holding exactly the rows whose column equals the value
    when the column is indexed; [None] when it is not. The list order is
    unspecified (postings are hash sets) — callers needing determinism
    sort it. *)

val indexed_columns : t -> string list

val serialize_row : t -> Value.t array -> string
(** Canonical row serialization used for hashing. *)

val memory_bytes : t -> int
(** Rough live size, for the RAM-overhead benches. *)
