type kind = Stmt_fail | Worker_crash | Torn_write | Slow

type injection = {
  site : string;
  key : int;
  hit : int;
  kind : kind;
  arg : float;
}

exception Injected of injection

type policy =
  | Seeded of int * (kind * float) list
  | Script of injection list

type state = {
  policy : policy;
  mutex : Mutex.t;
  hits : (string * int, int ref) Hashtbl.t;
  mutable fired_rev : injection list;
}

type t = Off | On of state

let disabled = Off

let enabled = function Off -> false | On _ -> true

let make policy =
  On
    {
      policy;
      mutex = Mutex.create ();
      hits = Hashtbl.create 16;
      fired_rev = [];
    }

let seeded ?(stmt_fail = 0.0) ?(worker_crash = 0.0) ?(torn_write = 0.0)
    ?(slow = 0.0) ~seed () =
  make
    (Seeded
       ( seed,
         [
           (Stmt_fail, stmt_fail);
           (Worker_crash, worker_crash);
           (Torn_write, torn_write);
           (Slow, slow);
         ] ))

let script plan = make (Script plan)

(* The decision is a pure function of (seed, site, key, hit): a private
   PRNG is seeded from the coordinates, drawn once for the fire roll and
   once more for the fault argument. *)
let decide policy site key hit kinds =
  match policy with
  | Script plan ->
      List.find_opt
        (fun inj ->
          String.equal inj.site site && inj.key = key && inj.hit = hit
          && List.mem inj.kind kinds)
        plan
  | Seeded (seed, probs) ->
      let prng =
        Uv_util.Prng.create
          ((seed * 1_000_003) lxor Hashtbl.hash (site, key, hit))
      in
      let u = Uv_util.Prng.float prng 1.0 in
      let applicable = List.filter (fun (k, _) -> List.mem k kinds) probs in
      let rec pick acc = function
        | [] -> None
        | (k, p) :: rest ->
            if p > 0.0 && u < acc +. p then
              let arg =
                match k with
                | Torn_write -> Uv_util.Prng.float prng 1.0
                | Slow -> 0.2 +. Uv_util.Prng.float prng 2.0
                | Stmt_fail | Worker_crash -> 0.0
              in
              Some { site; key; hit; kind = k; arg }
            else pick (acc +. p) rest
      in
      pick 0.0 applicable

let check ?(key = 0) t site kinds =
  match t with
  | Off -> None
  | On st ->
      Mutex.lock st.mutex;
      let hit =
        match Hashtbl.find_opt st.hits (site, key) with
        | Some r ->
            incr r;
            !r
        | None ->
            Hashtbl.add st.hits (site, key) (ref 1);
            1
      in
      let decision = decide st.policy site key hit kinds in
      (match decision with
      | Some inj -> st.fired_rev <- inj :: st.fired_rev
      | None -> ());
      Mutex.unlock st.mutex;
      decision

let fire ?key t site kinds =
  match check ?key t site kinds with
  | Some inj -> raise (Injected inj)
  | None -> ()

let fired = function Off -> [] | On st -> List.rev st.fired_rev

let kind_name = function
  | Stmt_fail -> "stmt-fail"
  | Worker_crash -> "worker-crash"
  | Torn_write -> "torn-write"
  | Slow -> "slow"

module Site = struct
  let engine_exec = "engine.exec"
  let engine_commit = "engine.commit"
  let log_save = "log_io.save"
  let dump_save = "dump.save"
  let worker = "domain_pool.worker"
  let wave = "wave_exec.wave"
  let checkpoint = "engine.checkpoint"
  let checkpoint_save = "checkpoint.save"
  let serve_ingest_append = "serve.ingest.append"
  let serve_ingest_sync = "serve.ingest.sync"
  let serve_ack = "serve.ack"
end
