(** Deterministic fault injection for the what-if pipeline.

    Mirrors the {!Uv_obs.Trace} null-hook design: a disabled injector is
    a single immutable constructor and every probe short-circuits on it,
    so production code pays one pattern match per site when faults are
    off. With an injector installed, named sites scattered through the
    engine, the durable-log writer, the domain pool and the wave
    executor ask [check] whether a fault fires {e here, now} — and the
    answer is a pure function of the injector's seed and the probe's
    coordinates, never of wall-clock time or domain scheduling, so a
    failing chaos run replays exactly from its seed.

    {2 Coordinates}

    A probe is identified by [(site, key, hit)]: the site name (see
    {!Site}), a caller-chosen stream key (e.g. the statement's logical
    timestamp, [0] when there is only one stream), and the per-[(site,
    key)] attempt counter maintained internally. A statement retried
    after an injected failure probes the same [(site, key)] with a
    fresh [hit], so retries draw an independent decision rather than
    deterministically re-failing forever. *)

type kind =
  | Stmt_fail  (** statement aborts mid-flight; engine must roll back *)
  | Worker_crash  (** a pool domain dies; its items must be re-run *)
  | Torn_write  (** a file write stops after a prefix of the bytes *)
  | Slow  (** a worker stalls for [arg] milliseconds *)

type injection = {
  site : string;
  key : int;
  hit : int;  (** 1-based attempt number within the [(site, key)] stream *)
  kind : kind;
  arg : float;
      (** [Torn_write]: fraction of the bytes written, in [0, 1);
          [Slow]: stall in milliseconds; [0.] otherwise *)
}

exception Injected of injection
(** The canonical way a site reports a fired fault. Distinct from
    {!Uv_db.Engine.Sql_error}: an injected fault models infrastructure
    failure, so recovery retries the operation instead of treating it as
    an application-level abort. *)

type t

val disabled : t
(** The null injector: every [check] is [None] at the cost of one match. *)

val enabled : t -> bool

val seeded :
  ?stmt_fail:float ->
  ?worker_crash:float ->
  ?torn_write:float ->
  ?slow:float ->
  seed:int ->
  unit ->
  t
(** Probabilistic injector: each probe fires kind [k] with the given
    probability (all default [0.]), decided by hashing
    [(seed, site, key, hit)] — deterministic and schedule-independent. *)

val script : injection list -> t
(** Fire exactly the listed injections: a probe fires when an entry
    matches its [(site, key, hit)] and its kind is applicable. Used by
    tests to aim a single fault at a precise point. *)

val check : ?key:int -> t -> string -> kind list -> injection option
(** [check t site kinds] registers one probe of [site] (stream [key],
    default [0]) and returns the injection to apply, if any. [kinds]
    lists the fault kinds meaningful at this site; others never fire. *)

val fire : ?key:int -> t -> string -> kind list -> unit
(** [check] and raise {!Injected} if a fault fired. *)

val fired : t -> injection list
(** All injections fired so far, in probe order. Empty for {!disabled}. *)

val kind_name : kind -> string

(** The injection sites threaded through the pipeline. *)
module Site : sig
  val engine_exec : string
  (** Probed by [Engine.exec] before the statement runs ([Stmt_fail]);
      key = the statement's logical timestamp. *)

  val engine_commit : string
  (** Probed after the statement executed but before its log entry is
      committed ([Stmt_fail]) — exercises the full journal rollback. *)

  val log_save : string
  (** Probed by [Log_io.save] ([Torn_write]): the temp file receives
      only a prefix and the rename is skipped. *)

  val dump_save : string
  (** Probed by [Dump.save] ([Torn_write]). *)

  val worker : string
  (** Probed on the pool domain about to replay an item
      ([Worker_crash], [Slow]); key = the item's commit index. *)

  val wave : string
  (** Probed at each wave-batch boundary ([Worker_crash] models a
      domain found dead between waves and triggers degradation). *)

  val checkpoint : string
  (** Probed when the engine is about to record a checkpoint rung
      ([Stmt_fail]: the rung is skipped gracefully — the ladder stays
      valid, the next eligible commit tries again); key = the commit
      index the rung would cover. *)

  val checkpoint_save : string
  (** Probed by [Dump.save_checkpoints] ([Torn_write]): the checkpoint
      file receives only a prefix and the rename is skipped, so recovery
      must reject it on CRC and fall back to undo-only rollback. *)

  val serve_ingest_append : string
  (** Probed by the durable-ingest path after a batch executed but
      before its records reach the store ([Stmt_fail] models the daemon
      dying here); key = the batch's first global commit index. *)

  val serve_ingest_sync : string
  (** Probed inside the group-commit flush, between the intent journal
      and the store sync ([Stmt_fail]): the batch is journalled but its
      records may be only partially durable — recovery must truncate it
      away. *)

  val serve_ack : string
  (** Probed after a batch is fully durable, before the acknowledgment
      frame is written ([Stmt_fail]): the client never sees the ack and
      re-sends; the idempotency key must deduplicate. *)
end
