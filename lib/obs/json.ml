type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> Buffer.add_string buf "null"
  | _ ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let rec write_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as j -> write buf j
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          write_pretty buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          escape buf k;
          Buffer.add_string buf ": ";
          write_pretty buf (indent + 2) v)
        kvs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf '}'

let pretty j =
  let buf = Buffer.create 256 in
  write_pretty buf 0 j;
  Buffer.contents buf

(* ---------- parsing ---------- *)

type limits = { max_bytes : int; max_depth : int; max_string : int }

let default_limits =
  { max_bytes = 64 * 1024 * 1024; max_depth = 512; max_string = 16 * 1024 * 1024 }

exception Bad of int * string

let parse ?(limits = default_limits) s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected %s" lit)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let add_utf8 buf cp =
    (* encode a Unicode code point as UTF-8 *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then (
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
    else if cp < 0x10000 then (
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
    else (
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "truncated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              let cp = hex4 () in
              let cp =
                (* surrogate pair *)
                if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n && s.[!pos] = '\\'
                   && s.[!pos + 1] = 'u'
                then (
                  pos := !pos + 2;
                  let lo = hex4 () in
                  0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00)))
                else cp
              in
              add_utf8 buf cp
          | _ -> fail "bad escape");
          loop ())
      | c when Char.code c < 0x20 -> fail "control char in string"
      | c ->
          Buffer.add_char buf c;
          if Buffer.length buf > limits.max_string then
            fail
              (Printf.sprintf "string longer than %d bytes" limits.max_string);
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let deeper depth =
    if depth >= limits.max_depth then
      fail (Printf.sprintf "nesting deeper than %d levels" limits.max_depth);
    depth + 1
  in
  let rec parse_value depth =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        let depth = deeper depth in
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec items acc =
            let v = parse_value depth in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        let depth = deeper depth in
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value depth in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    if n > limits.max_bytes then
      fail (Printf.sprintf "input of %d bytes exceeds %d" n limits.max_bytes);
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (off, msg) ->
      Error (Printf.sprintf "json: %s at byte %d" msg off)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
