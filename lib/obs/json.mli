(** Minimal JSON tree, printer and parser.

    The toolchain has no JSON library, and every machine-readable surface in
    the repo hand-rolls its own escaping. This module is the one shared
    implementation: a plain value tree, a compact printer, and a strict
    recursive-descent parser (UTF-8 passthrough, [\uXXXX] decoded) good
    enough to round-trip everything the exporters emit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Floats are printed with enough
    precision to round-trip; NaN/infinity degrade to [null] as JSON has no
    spelling for them. *)

val pretty : t -> string
(** Two-space-indented rendering, for human-facing output. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document. Trailing garbage, unterminated
    literals and control characters in strings are errors; the message
    includes a character offset. Numbers with [.], [e] or [E] become
    [Float], all others [Int]. *)

val member : string -> t -> t option
(** [member k j] looks up key [k] when [j] is an object. *)

val to_float : t -> float option
(** Numeric coercion: [Int] and [Float] both yield a float. *)
