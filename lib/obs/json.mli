(** Minimal JSON tree, printer and parser.

    The toolchain has no JSON library, and every machine-readable surface in
    the repo hand-rolls its own escaping. This module is the one shared
    implementation: a plain value tree, a compact printer, and a strict
    recursive-descent parser (UTF-8 passthrough, [\uXXXX] decoded) good
    enough to round-trip everything the exporters emit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Floats are printed with enough
    precision to round-trip; NaN/infinity degrade to [null] as JSON has no
    spelling for them. *)

val pretty : t -> string
(** Two-space-indented rendering, for human-facing output. *)

type limits = { max_bytes : int; max_depth : int; max_string : int }
(** Resource bounds for {!parse}, the difference between "trusted file
    on disk" and "bytes from a socket": [max_bytes] rejects the input
    up front, [max_depth] bounds recursion (the parser is recursive
    descent — unbounded [\[\[\[…] is a stack overflow), [max_string]
    bounds any single decoded string literal. *)

val default_limits : limits
(** Generous file-grade bounds (64 MiB input, 512 levels, 16 MiB
    strings) — every trace, lint report and bench artifact the repo
    emits sits far inside them. Network servers should set much
    stricter limits sized to their frame cap. *)

val parse : ?limits:limits -> string -> (t, string) result
(** Strict parse of a complete JSON document. Trailing garbage, unterminated
    literals, control characters in strings and limit violations are
    errors; the message includes the byte offset where parsing stopped.
    Numbers with [.], [e] or [E] become [Float], all others [Int]. *)

val member : string -> t -> t option
(** [member k j] looks up key [k] when [j] is an object. *)

val to_float : t -> float option
(** Numeric coercion: [Int] and [Float] both yield a float. *)
