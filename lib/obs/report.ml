let tool = "ultraverse"
let version = "1.4.0"
let schemas =
  [ "uv.whatif/1"; "uv.lint/1"; "uv.metrics/1"; "uv.bench/1"; "uv.templates/1";
    "uv.serve/1" ]

let envelope ~schema payload =
  if not (List.mem schema schemas) then
    invalid_arg (Printf.sprintf "Uv_obs.Report.envelope: unregistered schema %S" schema);
  Json.Obj
    [ ("schema", Str schema); ("tool", Str tool); ("version", Str version);
      ("payload", payload) ]

let to_string ~schema payload = Json.to_string (envelope ~schema payload)

let parse ?limits ?expect s =
  match Json.parse ?limits s with
  | Error e -> Error e
  | Ok j -> (
      let str k =
        match Json.member k j with
        | Some (Str v) -> Ok v
        | Some _ -> Error (Printf.sprintf "report: field %S is not a string" k)
        | None -> Error (Printf.sprintf "report: missing field %S" k)
      in
      match (str "schema", str "tool", Json.member "payload" j) with
      | Error e, _, _ | _, Error e, _ -> Error e
      | _, _, None -> Error "report: missing field \"payload\""
      | Ok schema, Ok t, Some payload ->
          if not (List.mem schema schemas) then
            Error (Printf.sprintf "report: unregistered schema %S" schema)
          else if t <> tool then Error (Printf.sprintf "report: unexpected tool %S" t)
          else if Json.member "version" j = None then Error "report: missing field \"version\""
          else
            match expect with
            | Some want when want <> schema ->
                Error (Printf.sprintf "report: expected schema %S, got %S" want schema)
            | _ -> Ok payload)
