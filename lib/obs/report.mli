(** Versioned JSON report envelope — the one wire format for every
    machine-readable output the tool produces.

    Every emitter wraps its payload as

    {v {"schema": "<name>/<major>", "tool": "ultraverse",
        "version": "<tool version>", "payload": {...}} v}

    so consumers can dispatch on [schema] without sniffing payload shape,
    and payload majors can evolve independently of the tool version. The
    schema registry is closed: emitting or parsing an unregistered schema
    is an error, which is what keeps the set documented in README honest. *)

val tool : string
(** ["ultraverse"]. *)

val version : string
(** Tool version stamped into every envelope (matches the CLI's). *)

val schemas : string list
(** The registry: [uv.whatif/1], [uv.lint/1], [uv.metrics/1],
    [uv.bench/1], [uv.templates/1], [uv.serve/1]. *)

val envelope : schema:string -> Json.t -> Json.t
(** Wrap a payload. @raise Invalid_argument on an unregistered schema. *)

val to_string : schema:string -> Json.t -> string
(** [envelope] rendered compactly. *)

val parse : ?limits:Json.limits -> ?expect:string -> string -> (Json.t, string) result
(** Parse an envelope and return its payload. Fails when the document is
    not valid JSON, violates [limits] (defaults to {!Json.default_limits};
    servers pass network-grade bounds), is missing any envelope field,
    carries an unregistered schema, names a different tool, or — when
    [expect] is given — carries a schema other than [expect]. *)
