let reservoir_cap = 4096

type event = {
  ev_name : string;
  ev_cat : string;
  ev_tid : int;
  ev_start : float; (* absolute Clock.now_ms *)
  ev_dur : float; (* ms; 0 with ev_instant = true for markers *)
  ev_instant : bool;
  ev_args : (string * Json.t) list;
}

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_samples : float array; (* bounded reservoir, ring-overwritten *)
}

type state = {
  mutex : Mutex.t;
  origin : float;
  mutable events : event list; (* newest first *)
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

type t = Off | On of state

type span =
  | No_span
  | Open of { sp_name : string; sp_cat : string; sp_tid : int; sp_start : float;
              sp_args : (string * Json.t) list }

let disabled = Off

let create () =
  On
    {
      mutex = Mutex.create ();
      origin = Uv_util.Clock.now_ms ();
      events = [];
      counters = Hashtbl.create 16;
      hists = Hashtbl.create 16;
    }

let enabled = function Off -> false | On _ -> true

let tid () = (Domain.self () :> int)

let locked st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

let start t ?(cat = "uv") ?(args = []) name =
  match t with
  | Off -> No_span
  | On _ ->
      Open
        { sp_name = name; sp_cat = cat; sp_tid = tid (); sp_start = Uv_util.Clock.now_ms ();
          sp_args = args }

let finish t span =
  match (t, span) with
  | Off, _ | _, No_span -> ()
  | On st, Open sp ->
      let now = Uv_util.Clock.now_ms () in
      let ev =
        {
          ev_name = sp.sp_name;
          ev_cat = sp.sp_cat;
          ev_tid = sp.sp_tid;
          ev_start = sp.sp_start;
          ev_dur = Float.max 0.0 (now -. sp.sp_start);
          ev_instant = false;
          ev_args = sp.sp_args;
        }
      in
      locked st (fun () -> st.events <- ev :: st.events)

let with_span t ?cat ?args name f =
  match t with
  | Off -> f ()
  | On _ ->
      let sp = start t ?cat ?args name in
      Fun.protect ~finally:(fun () -> finish t sp) f

let instant t ?(args = []) name =
  match t with
  | Off -> ()
  | On st ->
      let ev =
        {
          ev_name = name;
          ev_cat = "uv";
          ev_tid = tid ();
          ev_start = Uv_util.Clock.now_ms ();
          ev_dur = 0.0;
          ev_instant = true;
          ev_args = args;
        }
      in
      locked st (fun () -> st.events <- ev :: st.events)

let incr t ?(by = 1) name =
  match t with
  | Off -> ()
  | On st ->
      locked st (fun () ->
          match Hashtbl.find_opt st.counters name with
          | Some r -> r := !r + by
          | None -> Hashtbl.add st.counters name (ref by))

let observe t name v =
  match t with
  | Off -> ()
  | On st ->
      locked st (fun () ->
          let h =
            match Hashtbl.find_opt st.hists name with
            | Some h -> h
            | None ->
                let h =
                  { h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity;
                    h_samples = Array.make reservoir_cap 0.0 }
                in
                Hashtbl.add st.hists name h;
                h
          in
          h.h_samples.(h.h_count mod reservoir_cap) <- v;
          h.h_count <- h.h_count + 1;
          h.h_sum <- h.h_sum +. v;
          if v < h.h_min then h.h_min <- v;
          if v > h.h_max then h.h_max <- v)

let counter_value t name =
  match t with
  | Off -> 0
  | On st ->
      locked st (fun () ->
          match Hashtbl.find_opt st.counters name with Some r -> !r | None -> 0)

(* ---------- exporters ---------- *)

let snapshot_events st = locked st (fun () -> List.rev st.events)

let chrome_json t =
  match t with
  | Off -> Json.Obj [ ("traceEvents", Json.List []) ]
  | On st ->
      let events = snapshot_events st in
      let us ms = Float.round (ms *. 1000.0) in
      let tids =
        List.fold_left (fun acc ev -> if List.mem ev.ev_tid acc then acc else ev.ev_tid :: acc)
          [] events
        |> List.sort compare
      in
      let meta =
        Json.Obj
          [ ("name", Str "process_name"); ("ph", Str "M"); ("pid", Int 1); ("tid", Int 0);
            ("args", Obj [ ("name", Str "ultraverse") ]) ]
        :: List.map
             (fun tid ->
               Json.Obj
                 [ ("name", Str "thread_name"); ("ph", Str "M"); ("pid", Int 1);
                   ("tid", Int tid);
                   ("args", Obj [ ("name", Str (Printf.sprintf "domain-%d" tid)) ]) ])
             tids
      in
      let body =
        List.map
          (fun ev ->
            let common =
              [ ("name", Json.Str ev.ev_name); ("cat", Json.Str ev.ev_cat); ("pid", Json.Int 1);
                ("tid", Json.Int ev.ev_tid);
                ("ts", Json.Float (us (ev.ev_start -. st.origin))) ]
            in
            let shape =
              if ev.ev_instant then [ ("ph", Json.Str "i"); ("s", Json.Str "t") ]
              else [ ("ph", Json.Str "X"); ("dur", Json.Float (us ev.ev_dur)) ]
            in
            let args = if ev.ev_args = [] then [] else [ ("args", Json.Obj ev.ev_args) ] in
            Json.Obj (common @ shape @ args))
          events
      in
      Json.Obj [ ("traceEvents", Json.List (meta @ body)); ("displayTimeUnit", Str "ms") ]

let chrome_string t = Json.to_string (chrome_json t)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (Float.of_int (n - 1) *. q) in
    sorted.(idx)

let metrics_payload t =
  match t with
  | Off ->
      Json.Obj [ ("counters", Json.Obj []); ("histograms", Json.Obj []); ("spans", Json.Obj []) ]
  | On st ->
      let counters, hists =
        locked st (fun () ->
            ( Hashtbl.fold (fun k r acc -> (k, !r) :: acc) st.counters [],
              Hashtbl.fold
                (fun k h acc ->
                  let stored = min h.h_count reservoir_cap in
                  (k, (h.h_count, h.h_sum, h.h_min, h.h_max, Array.sub h.h_samples 0 stored))
                  :: acc)
                st.hists [] ))
      in
      let events = snapshot_events st in
      let counters_json =
        List.sort compare counters |> List.map (fun (k, v) -> (k, Json.Int v))
      in
      let hists_json =
        List.sort compare hists
        |> List.map (fun (k, (count, sum, mn, mx, samples)) ->
               Array.sort compare samples;
               ( k,
                 Json.Obj
                   [ ("count", Json.Int count); ("sum_ms", Json.Float sum);
                     ("min_ms", Json.Float (if count = 0 then 0.0 else mn));
                     ("max_ms", Json.Float (if count = 0 then 0.0 else mx));
                     ("p50_ms", Json.Float (percentile samples 0.5));
                     ("p95_ms", Json.Float (percentile samples 0.95)) ] ))
      in
      let rollup = Hashtbl.create 16 in
      List.iter
        (fun ev ->
          if not ev.ev_instant then begin
            let count, total, mn, mx =
              match Hashtbl.find_opt rollup ev.ev_name with
              | Some x -> x
              | None -> (0, 0.0, infinity, neg_infinity)
            in
            Hashtbl.replace rollup ev.ev_name
              (count + 1, total +. ev.ev_dur, Float.min mn ev.ev_dur, Float.max mx ev.ev_dur)
          end)
        events;
      let spans_json =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) rollup []
        |> List.sort compare
        |> List.map (fun (k, (count, total, mn, mx)) ->
               ( k,
                 Json.Obj
                   [ ("count", Json.Int count); ("total_ms", Json.Float total);
                     ("min_ms", Json.Float mn); ("max_ms", Json.Float mx) ] ))
      in
      Json.Obj
        [ ("counters", Json.Obj counters_json); ("histograms", Json.Obj hists_json);
          ("spans", Json.Obj spans_json) ]
