(** Tracing and metrics collector for the what-if pipeline.

    One [t] is threaded through a pipeline run (engine, analyzer, wave
    executor, driver). It collects three kinds of data:

    - {b spans} — named intervals with monotonic start/duration
      ([Uv_util.Clock.now_ms]) tagged with the OCaml domain that recorded
      them, so parallel replay renders as one lane per domain;
    - {b counters} — monotonically increasing named integers;
    - {b histograms} — named distributions with count/sum/min/max and
      p50/p95 over a bounded sample reservoir.

    The collector is a two-state sum: [disabled] is a null sink — every
    operation is a single pattern-match branch, no clock read, no
    allocation, no lock — so instrumented code pays nothing when
    observability is off. [create ()] returns a live collector whose
    operations are safe to call concurrently from multiple domains
    (internally mutex-protected; spans are short critical sections).

    Exporters: {!chrome_json} renders the span set in Chrome trace-event
    format (load the file in chrome://tracing or Perfetto), and
    {!metrics_payload} renders counters, histograms and per-name span
    rollups as the [uv.metrics/1] payload. *)

type t

type span
(** In-flight span handle. [finish]ing it records the interval; dropping it
    records nothing. Handles from a disabled collector are free. *)

val disabled : t
(** The null sink. *)

val create : unit -> t
(** A live collector; time zero for exported timestamps is the call. *)

val enabled : t -> bool

val start : t -> ?cat:string -> ?args:(string * Json.t) list -> string -> span
(** Open a span named [name] on the calling domain. [cat] (default
    ["uv"]) becomes the Chrome event category; [args] are attached
    key/values. *)

val finish : t -> span -> unit
(** Close and record a span. Closing a span twice records it twice; don't. *)

val with_span : t -> ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f ()] inside a span, finishing it even when
    [f] raises. *)

val instant : t -> ?args:(string * Json.t) list -> string -> unit
(** Record a zero-duration marker event (Chrome phase ["i"]). *)

val incr : t -> ?by:int -> string -> unit
(** Add [by] (default 1) to a named counter, creating it at 0. *)

val observe : t -> string -> float -> unit
(** Record one sample into a named histogram, creating it empty. *)

val counter_value : t -> string -> int
(** Current value of a counter; 0 if absent or disabled. *)

val chrome_json : t -> Json.t
(** Chrome trace-event document: [{"traceEvents": [...]}] with one ["X"]
    (complete) event per finished span — timestamps and durations in
    microseconds relative to [create] — one ["i"] event per instant, and
    ["M"] metadata events naming each domain's lane. For [disabled] the
    event list is empty. *)

val chrome_string : t -> string

val metrics_payload : t -> Json.t
(** The [uv.metrics/1] payload: [{counters, histograms, spans}] where
    histograms carry count/sum/min/max/p50/p95 and [spans] aggregates
    finished spans by name (count, total/min/max duration). *)
