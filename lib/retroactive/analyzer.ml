open Uv_sql

type op = Add of Ast.stmt | Remove | Change of Ast.stmt

type target = { tau : int; op : op }

type mode = Col_only | Row_only | Cell | Joint

type info = {
  index : int;
  stmt : Ast.stmt;
  rw : Rwset.rw;
  rows : Rowset.entry_rows;
  app_txn : string option;
}

(* Per-table row-value index over the first RI dimension. *)
type tindex = {
  mutable any_r : int list;
  mutable any_w : int list;
  by_val_r : (string, int list ref) Hashtbl.t;
  by_val_w : (string, int list ref) Hashtbl.t;
}

(* Cell-level conflict index: buckets keyed by (column, canonical dim0
   row value). Everything in here is joinable — writers by definition,
   readers only when they also write — so a closure scanning a bucket
   either joins what it finds or prunes it for good, and the per-question
   cost is bounded by the buckets touched rather than the history. Built
   lazily for [replay_members], rebuilt when the RI merge generation or
   the analysed length moves. *)
type cell_index = {
  ci_generation : int;
  ci_n : int;
  cw_val : (string, int list ref) Hashtbl.t; (* "col|val" -> writers, desc *)
  cw_any : (string, int list ref) Hashtbl.t; (* "col" -> wildcard-row writers *)
  cw_all : (string, int list ref) Hashtbl.t; (* "col" -> every writer *)
  cr_val : (string, int list ref) Hashtbl.t; (* ditto, joinable readers *)
  cr_any : (string, int list ref) Hashtbl.t;
  cr_all : (string, int list ref) Hashtbl.t;
}

(* Where entries come from: a pull interface so analysis never needs a
   materialized [Log.t] — an in-memory log and a segmented on-disk
   store are both one-segment-at-a-time folds from here. *)
type source = {
  src_length : unit -> int;
  src_iter : int -> int -> (Uv_db.Log.entry -> unit) -> unit;
      (* [src_iter lo hi f]: apply [f] to entries [lo..hi] in order *)
}

let source_of_log log =
  {
    src_length = (fun () -> Uv_db.Log.length log);
    src_iter =
      (fun lo hi f ->
        for i = lo to hi do
          f (Uv_db.Log.entry log i)
        done);
  }

let source_of_store store =
  {
    src_length = (fun () -> Uv_db.Log_store.length store);
    src_iter =
      (fun lo hi f ->
        Uv_db.Log_store.iter_range store ~lo ~hi (fun index r ->
            f (Uv_db.Log_store.entry_of_record ~index r)));
  }

let source_of_fun ~length fetch =
  {
    src_length = length;
    src_iter =
      (fun lo hi f ->
        for i = lo to hi do
          f (fetch i)
        done);
  }

type t = {
  mutable infos : info array;
  config : Rowset.config;
  row_state : Rowset.t;
  sv : Schema_view.t; (* evolving view at the analysed head *)
  source : source;
  base : Uv_db.Catalog.t option;
  base_hashes : (string * int64) list;
  readers_by_col : (string, int list ref) Hashtbl.t; (* descending indexes *)
  writers_by_col : (string, int list ref) Hashtbl.t;
  row_index : (string, tindex) Hashtbl.t;
  groups : (string, int list) Hashtbl.t; (* app_txn tag -> entry indexes *)
  mutable indexed_generation : int;
      (* Rowset merge generation the value buckets were keyed under *)
  mutable joinable_cache : bool array option;
      (* per-entry "has a column-wise write" — shared by every ungrouped
         closure run so replay-set cost stays off the history length *)
  mutable cell_index : cell_index option;
  mutable scratch_members : int array; (* epoch-stamped; 0 = never *)
  mutable scratch_excluded : int array;
  mutable closure_epoch : int;
  mutable dep_edges_cache : (bool array * (int * int) list) option;
      (* last [dependency_edges] result keyed by its member set: every
         run of one what-if target asks for the same edges (replay
         scheduling, then the cost model), and repeated what-ifs over an
         unchanged history hit it too. The pair is immutable, so a racy
         publish is harmless — a loser just recomputes. *)
}

let length t = Array.length t.infos

let info t i = t.infos.(i - 1)

let is_schema_key k = String.length k > 3 && String.sub k 0 3 = "_S."

let tables_of_rw (rw : Rwset.rw) =
  let of_set s =
    Rwset.Colset.fold
      (fun key acc ->
        if is_schema_key key then acc
        else
          match String.index_opt key '.' with
          | Some i -> String.sub key 0 i :: acc
          | None -> acc)
      s []
  in
  List.sort_uniq compare (of_set rw.Rwset.r @ of_set rw.Rwset.w)

let dim0_of (config : Rowset.config) table =
  match List.assoc_opt table config.Rowset.ri_columns with
  | Some (d :: _) -> d
  | _ -> "#0"

let bucket tbl key =
  match Hashtbl.find_opt tbl key with
  | Some b -> b
  | None ->
      let b = ref [] in
      Hashtbl.replace tbl key b;
      b

let tindex_for row_index table =
  match Hashtbl.find_opt row_index table with
  | Some ti -> ti
  | None ->
      let ti =
        {
          any_r = [];
          any_w = [];
          by_val_r = Hashtbl.create 64;
          by_val_w = Hashtbl.create 64;
        }
      in
      Hashtbl.replace row_index table ti;
      ti

(* Index one entry. All buckets are kept in descending index order so
   appending a later entry is a cons; consumers reverse at fetch time.
   Row values are canonicalised with the merge state as of this entry;
   [rekey_row_index] folds stale keys forward when later entries merge
   two RI values. *)
let index_info t inf =
  let i = inf.index in
  let push tbl c =
    let b = bucket tbl c in
    b := i :: !b
  in
  Rwset.Colset.iter (fun c -> push t.readers_by_col c) inf.rw.Rwset.r;
  Rwset.Colset.iter (fun c -> push t.writers_by_col c) inf.rw.Rwset.w;
  List.iter
    (fun (table, access) ->
      let ti = tindex_for t.row_index table in
      if Array.length access > 0 then begin
        let dim0 = dim0_of t.config table in
        (match access.(0).Rowset.dr with
        | Rowset.Any -> ti.any_r <- i :: ti.any_r
        | Rowset.Vals s ->
            Rowset.Vset.iter
              (fun v ->
                let cv = Rowset.canonical t.row_state table dim0 v in
                push ti.by_val_r cv)
              s);
        match access.(0).Rowset.dw with
        | Rowset.Any -> ti.any_w <- i :: ti.any_w
        | Rowset.Vals s ->
            Rowset.Vset.iter
              (fun v ->
                let cv = Rowset.canonical t.row_state table dim0 v in
                push ti.by_val_w cv)
              s
      end)
    inf.rows;
  match inf.app_txn with
  | Some tag ->
      Hashtbl.replace t.groups tag
        (i :: Option.value (Hashtbl.find_opt t.groups tag) ~default:[])
  | None -> ()

(* Merge two strictly-descending index lists, deduplicating. *)
let merge_desc a b =
  let rec go acc a b =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys ->
        if x = y then go (x :: acc) xs ys
        else if x > y then go (x :: acc) xs b
        else go (y :: acc) a ys
  in
  go [] a b

(* An RI merge learned by a later entry changes the canonical form of
   previously indexed values: fold every value bucket forward to its
   current root, merging buckets that now share one. Equivalent to the
   full rebuild's final-state canonicalisation because canonicalising a
   past root under the current state reaches the current root. *)
let rekey_buckets t table dim0 (h : (string, int list ref) Hashtbl.t) =
  let moved = Hashtbl.fold (fun v b acc -> (v, b) :: acc) h [] in
  Hashtbl.reset h;
  List.iter
    (fun (v, b) ->
      let cv = Rowset.canonical t.row_state table dim0 v in
      match Hashtbl.find_opt h cv with
      | Some b' -> b' := merge_desc !b' !b
      | None -> Hashtbl.replace h cv b)
    moved

let rekey_row_index t =
  Hashtbl.iter
    (fun table ti ->
      let dim0 = dim0_of t.config table in
      rekey_buckets t table dim0 ti.by_val_r;
      rekey_buckets t table dim0 ti.by_val_w)
    t.row_index

let create ?(config = Rowset.default_config) ?base source =
  let sv =
    match base with
    | Some cat -> Schema_view.of_catalog cat
    | None -> Schema_view.create ()
  in
  let base_hashes =
    match base with
    | Some cat ->
        List.map
          (fun (name, tbl) -> (name, Uv_db.Storage.hash tbl))
          (Uv_db.Catalog.tables cat)
    | None -> []
  in
  let row_state = Rowset.create config in
  Option.iter (Rowset.seed_aliases row_state) base;
  {
    infos = [||];
    config;
    row_state;
    sv;
    source;
    base;
    base_hashes;
    readers_by_col = Hashtbl.create 256;
    writers_by_col = Hashtbl.create 256;
    row_index = Hashtbl.create 64;
    groups = Hashtbl.create 256;
    indexed_generation = Rowset.merge_generation row_state;
    joinable_cache = None;
    cell_index = None;
    scratch_members = [||];
    scratch_excluded = [||];
    closure_epoch = 0;
    dep_edges_cache = None;
  }

let extend ?(obs = Uv_obs.Trace.disabled) t =
  let n = t.source.src_length () in
  let from = Array.length t.infos + 1 in
  if n < from then 0
  else begin
    let batch = ref [] in
    Uv_obs.Trace.with_span obs ~cat:"analyze" "analyze.rwsets" (fun () ->
        t.source.src_iter from n (fun e ->
            let rw = Rwset.of_stmt t.sv e.Uv_db.Log.stmt in
            let rows =
              Rowset.of_entry t.row_state t.sv e.Uv_db.Log.stmt
                e.Uv_db.Log.nondet
            in
            Schema_view.apply t.sv e.Uv_db.Log.stmt;
            let inf =
              {
                index = e.Uv_db.Log.index;
                stmt = e.Uv_db.Log.stmt;
                rw;
                rows;
                app_txn = e.Uv_db.Log.app_txn;
              }
            in
            batch := inf :: !batch;
            index_info t inf));
    t.infos <- Array.append t.infos (Array.of_list (List.rev !batch));
    t.joinable_cache <- None;
    t.dep_edges_cache <- None;
    Uv_obs.Trace.with_span obs ~cat:"analyze" "analyze.index" (fun () ->
        let gen = Rowset.merge_generation t.row_state in
        if gen <> t.indexed_generation then begin
          rekey_row_index t;
          t.indexed_generation <- gen
        end);
    n - from + 1
  end

let of_source ?(config = Rowset.default_config) ?base
    ?(obs = Uv_obs.Trace.disabled) source =
  let t = create ~config ?base source in
  ignore (extend ~obs t);
  t

let analyze ?config ?base ?obs log = of_source ?config ?base ?obs (source_of_log log)

let base_hashes t = t.base_hashes

(* Rebuilt from the analysed statements, so no log access: matches
   [Schema_view.of_log ~upto] — entries strictly before [upto]. *)
let schema_view_at t upto =
  let sv =
    match t.base with
    | Some cat -> Schema_view.of_catalog cat
    | None -> Schema_view.create ()
  in
  let hi = min (upto - 1) (Array.length t.infos) in
  for i = 1 to hi do
    Schema_view.apply sv t.infos.(i - 1).stmt
  done;
  sv

let target_rw t (target : target) =
  let sv = schema_view_at t target.tau in
  let row_probe = Rowset.create t.config in
  (* Use a throwaway row state seeded with the analysed alias/merge maps:
     extraction must see aliases learned before τ. We reuse the final
     state — a superset, which can only widen the target's sets. *)
  ignore row_probe;
  let sets_of stmt =
    ( Rwset.of_stmt sv stmt,
      Rowset.of_entry t.row_state sv stmt [] )
  in
  let old_sets () =
    if target.tau >= 1 && target.tau <= Array.length t.infos then
      let inf = t.infos.(target.tau - 1) in
      (inf.rw, inf.rows)
    else (Rwset.empty, [])
  in
  match target.op with
  | Add stmt -> sets_of stmt
  | Remove -> old_sets ()
  | Change stmt ->
      let rw_new, rows_new = sets_of stmt in
      let rw_old, rows_old = old_sets () in
      (Rwset.union rw_new rw_old, Rowset.merge_rows rows_new rows_old)

type replay_set = {
  members : bool array;
  member_count : int;
  mutated : string list;
  consulted : string list;
  col_only_count : int;
  row_only_count : int;
}

(* ------------------------------------------------------------------ *)
(* Closure computation                                                  *)
(* ------------------------------------------------------------------ *)

(* Candidate generator contract shared by the built-in per-statement
   bucket scans and external fast-paths (the template matrix): given a
   member's sets, return candidate indexes past [min_idx] that may
   conflict with it. [min_idx] doubles as the member's identity — the
   seed is the single call made before the worklist drains, members call
   with their own index. *)
type joins_fn = min_idx:int -> Rwset.rw -> Rowset.entry_rows -> int list

(* Generic worklist closure. [make_joins ~live] builds a candidate
   generator; candidates for which [live] is false (already joined,
   excluded, before τ, or never joinable) may be skipped and pruned from
   the generator's internal state, so buckets shrink as the closure
   grows. Candidates with an empty column-wise write set never join
   (read-only queries, Prop E.7) unless they belong to a transaction
   group: a grouped read is an application-level data flow into the rest
   of its transaction (Table A's BEGIN TRANSACTION union rule). *)
let ungrouped_joinable t =
  match t.joinable_cache with
  | Some a when Array.length a = Array.length t.infos -> a
  | _ ->
      let a =
        Array.map
          (fun inf -> not (Rwset.Colset.is_empty inf.rw.Rwset.w))
          t.infos
      in
      t.joinable_cache <- Some a;
      a

let compute_closure ?via ?(obs = Uv_obs.Trace.disabled) t ~tau ~exclude
    ~seed_rw ~seed_rows ~make_joins ~joinable ~expand =
  let n = Array.length t.infos in
  let members = Array.make n false in
  let joined = ref [] in
  let excluded = Array.make (n + 2) false in
  List.iter (fun i -> if i >= 1 && i <= n then excluded.(i) <- true) exclude;
  let live i =
    i >= tau && i <= n && (not excluded.(i)) && joinable.(i - 1)
    && not members.(i - 1)
  in
  (* provenance: [via] records, for each joined entry, which member's sets
     pulled it in (0 = the retroactive target itself) — negative when it
     joined as a transaction-group mate of that member *)
  let record i src =
    match via with Some a -> a.(i - 1) <- src | None -> ()
  in
  let queue = Queue.create () in
  let join src i =
    if live i then begin
      members.(i - 1) <- true;
      joined := i :: !joined;
      record i src;
      Queue.push i queue;
      List.iter
        (fun g ->
          if live g then begin
            members.(g - 1) <- true;
            joined := g :: !joined;
            record g (-i);
            Queue.push g queue
          end)
        (expand i)
    end
  in
  let joins_of = make_joins ~live in
  (* seed from the target's sets (pseudo-member just before τ) *)
  List.iter (join 0) (joins_of ~min_idx:(tau - 1) seed_rw seed_rows);
  let iters = ref 0 in
  while not (Queue.is_empty queue) do
    incr iters;
    let i = Queue.pop queue in
    let inf = t.infos.(i - 1) in
    List.iter (join i) (joins_of ~min_idx:i inf.rw inf.rows)
  done;
  Uv_obs.Trace.incr obs ~by:!iters "analyze.closure_iters";
  (members, !joined)

(* Shared pruning cache for one closure run: each bucket is copied on
   first use and re-filtered on every scan, dropping entries that can
   never join again ([live] is monotone towards false). Offered
   candidates are the live entries past [min_idx]; live entries at or
   before [min_idx] are kept for members seeded with a lower bound. *)
let scan_pruned cache ~live ~min_idx ~offer key fetch =
  let entries =
    match Hashtbl.find_opt cache key with Some l -> l | None -> fetch ()
  in
  let kept =
    List.filter
      (fun i ->
        if live i then begin
          if i > min_idx then offer i;
          true
        end
        else false)
      entries
  in
  Hashtbl.replace cache key kept

(* Column-wise candidates conflicting with (rw): later readers of written
   columns, later writers of read columns, later writers of written
   columns. *)
let col_joins t ~live =
  let cache : (string, int list) Hashtbl.t = Hashtbl.create 256 in
  fun ~min_idx (rw : Rwset.rw) (_rows : Rowset.entry_rows) ->
    let acc = ref [] in
    let offer i = acc := i :: !acc in
    let scan kind tbl c =
      scan_pruned cache ~live ~min_idx ~offer
        (kind ^ c)
        (fun () ->
          match Hashtbl.find_opt tbl c with
          | None -> []
          | Some b -> List.rev !b)
    in
    Rwset.Colset.iter
      (fun c ->
        scan "r|" t.readers_by_col c;
        scan "w|" t.writers_by_col c)
      rw.Rwset.w;
    Rwset.Colset.iter (fun c -> scan "w|" t.writers_by_col c) rw.Rwset.r;
    !acc

let table_of_col c =
  match String.index_opt c '.' with
  | Some i -> String.sub c 0 i
  | None -> c

(* The joint (cell-wise) pair conflict: the two entries share a column
   (direction-aware) whose table's rows overlap — i.e., they touch a
   common cell, up to the first-dimension approximation that
   [Rowset.overlaps] verifies multi-dimensionally. A side missing the
   row entry for a shared column's table degrades to a conflict
   (conservative). Schema-key overlap is a wildcard conflict as ever. *)
let cell_pair_conflict t (rw : Rwset.rw) rows (inf : info) =
  let inter a b = Rwset.Colset.inter a b in
  let nonempty s = not (Rwset.Colset.is_empty s) in
  let schema_conflict =
    let sk s = Rwset.Colset.filter is_schema_key s in
    nonempty (inter (sk rw.Rwset.w) (sk inf.rw.Rwset.r))
    || nonempty (inter (sk rw.Rwset.r) (sk inf.rw.Rwset.w))
    || nonempty (inter (sk rw.Rwset.w) (sk inf.rw.Rwset.w))
  in
  schema_conflict
  ||
  let shared =
    Rwset.Colset.union
      (inter rw.Rwset.w inf.rw.Rwset.r)
      (Rwset.Colset.union
         (inter rw.Rwset.w inf.rw.Rwset.w)
         (inter rw.Rwset.r inf.rw.Rwset.w))
  in
  Rwset.Colset.exists
    (fun c ->
      (not (is_schema_key c))
      &&
      let table = table_of_col c in
      match (List.assoc_opt table rows, List.assoc_opt table inf.rows) with
      | Some mine, Some theirs ->
          Rowset.overlaps t.row_state table mine `Any_conflict theirs
      (* a table absent from an entry's row sets is unreachable through
         the row-wise closure, so it cannot carry a cell conflict either
         — the same convention keeps Joint inside Cell *)
      | _ -> false)
    shared

(* Row-wise candidates: value-indexed over each table's first dimension,
   verified with the full multi-dimensional overlap; plus schema-key
   ([_S.*]) conflicts, which are wildcard rows per Table B. With
   [require_col] the verification instead demands the joint cell-wise
   pair conflict, whose closure is a subset of the [Cell] intersection
   and whose cost is bounded by the value buckets actually touched, not
   the history. *)
let rowwise_joins ~require_col t ~live =
  let cache : (string, int list) Hashtbl.t = Hashtbl.create 256 in
  fun ~min_idx (rw : Rwset.rw) (rows : Rowset.entry_rows) ->
    let acc = ref [] in
    let offer i = acc := i :: !acc in
    let scan key fetch = scan_pruned cache ~live ~min_idx ~offer key fetch in
    (* _S pseudo-rows: wildcard, so any column-level _S conflict is a row
       conflict too *)
    let scan_schema kind tbl c =
      if is_schema_key c then
        scan (kind ^ c) (fun () ->
            match Hashtbl.find_opt tbl c with
            | None -> []
            | Some b -> List.rev !b)
    in
    Rwset.Colset.iter
      (fun c ->
        scan_schema "Sr|" t.readers_by_col c;
        scan_schema "Sw|" t.writers_by_col c)
      rw.Rwset.w;
    Rwset.Colset.iter (fun c -> scan_schema "Sw|" t.writers_by_col c) rw.Rwset.r;
    (* table rows *)
    List.iter
      (fun (table, access) ->
        match Hashtbl.find_opt t.row_index table with
        | None -> ()
        | Some ti ->
            if Array.length access > 0 then begin
              let dim0 =
                match List.assoc_opt table t.config.Rowset.ri_columns with
                | Some (d :: _) -> d
                | _ -> "#0"
              in
              let candidates_of rs kind (any_bucket : int list)
                  (val_buckets : (string, int list ref) Hashtbl.t) =
                let any_key = "A" ^ kind ^ table in
                match rs with
                | Rowset.Any ->
                    scan any_key (fun () -> List.rev any_bucket);
                    (* all value buckets of this table, flattened once *)
                    scan
                      ("*" ^ kind ^ table)
                      (fun () ->
                        Hashtbl.fold
                          (fun _ b acc -> List.rev_append !b acc)
                          val_buckets [])
                | Rowset.Vals s ->
                    scan any_key (fun () -> List.rev any_bucket);
                    Rowset.Vset.iter
                      (fun v ->
                        let cv = Rowset.canonical t.row_state table dim0 v in
                        scan
                          ("V" ^ kind ^ table ^ "|" ^ cv)
                          (fun () ->
                            match Hashtbl.find_opt val_buckets cv with
                            | Some b -> List.rev !b
                            | None -> []))
                      s
              in
              (* my writes vs their reads and writes *)
              candidates_of access.(0).Rowset.dw "r|" ti.any_r ti.by_val_r;
              candidates_of access.(0).Rowset.dw "w|" ti.any_w ti.by_val_w;
              (* my reads vs their writes *)
              candidates_of access.(0).Rowset.dr "w|" ti.any_w ti.by_val_w
            end)
      rows;
    (* verify candidates with the full multi-dimensional predicate *)
    List.filter
      (fun i ->
        let inf = t.infos.(i - 1) in
        if require_col then cell_pair_conflict t rw rows inf
        else
          let inter a b =
            not (Rwset.Colset.is_empty (Rwset.Colset.inter a b))
          in
          (* either a schema-key conflict... *)
          let schema_conflict =
            let sk s = Rwset.Colset.filter is_schema_key s in
            inter (sk rw.Rwset.w) (sk inf.rw.Rwset.r)
            || inter (sk rw.Rwset.r) (sk inf.rw.Rwset.w)
            || inter (sk rw.Rwset.w) (sk inf.rw.Rwset.w)
          in
          schema_conflict
          || List.exists
               (fun (table, access) ->
                 match List.assoc_opt table inf.rows with
                 | None -> false
                 | Some their ->
                     Rowset.overlaps t.row_state table access `Any_conflict
                       their)
               rows)
      (List.sort_uniq compare !acc)

let row_joins t ~live = rowwise_joins ~require_col:false t ~live

let cell_joins t ~live = rowwise_joins ~require_col:true t ~live


let group_expand t i =
  match t.infos.(i - 1).app_txn with
  | None -> []
  | Some tag -> Option.value (Hashtbl.find_opt t.groups tag) ~default:[]

let count_members m = Array.fold_left (fun a b -> if b then a + 1 else a) 0 m

let classify ?joined t ~members (target : target) seed_rw =
  let add_tables_of rwsets =
    let real_of s =
      Rwset.Colset.fold
        (fun key acc ->
          if is_schema_key key then
            (* mutated schema object: the object itself must be restored *)
            String.sub key 3 (String.length key - 3) :: acc
          else
            match String.index_opt key '.' with
            | Some i -> String.sub key 0 i :: acc
            | None -> acc)
        s []
    in
    real_of rwsets
  in
  let written = ref [] and read = ref [] in
  let take (rw : Rwset.rw) =
    written := add_tables_of rw.Rwset.w @ !written;
    read := add_tables_of rw.Rwset.r @ !read
  in
  take seed_rw;
  (match joined with
  | Some js -> List.iter (fun i -> take t.infos.(i - 1).rw) js
  | None -> Array.iteri (fun i inf -> if members.(i) then take inf.rw) t.infos);
  ignore target;
  let mutated = List.sort_uniq compare !written in
  let consulted =
    List.filter (fun x -> not (List.mem x mutated)) (List.sort_uniq compare !read)
  in
  (mutated, consulted)

(* a removed query is never re-executed, so its reads need no consulted
   reconstruction: only its writes seed the closure *)
let strip_removed_reads (seed_rw, seed_rows) =
  ( { seed_rw with Rwset.r = Rwset.Colset.empty },
    List.map
      (fun (table, access) ->
        ( table,
          Array.map
            (fun (d : Rowset.dim_access) ->
              { d with Rowset.dr = Rowset.Vals Rowset.Vset.empty })
            access ))
      seed_rows )

let target_group_indexes t tau =
  if tau >= 1 && tau <= Array.length t.infos then
    match t.infos.(tau - 1).app_txn with
    | Some tag -> Option.value (Hashtbl.find_opt t.groups tag) ~default:[ tau ]
    | None -> [ tau ]
  else [ tau ]

let replay_set_gen ?via_col ?via_row ?(obs = Uv_obs.Trace.disabled) ~grouped
    ~expand ?col_joins:cj_override ?(mode = Cell) t (target : target) =
  let seed_rw, seed_rows = target_rw t target in
  (* at transaction granularity the retroactive target is the whole
     application-level transaction: seed with the union of its entries'
     sets, and keep all of them out of the replay set *)
  let group_indexes = if grouped then target_group_indexes t target.tau else [ target.tau ] in
  let seed_rw, seed_rows =
    if grouped then
      List.fold_left
        (fun (rw, rows) i ->
          let inf = t.infos.(i - 1) in
          (Rwset.union rw inf.rw, Rowset.merge_rows rows inf.rows))
        (seed_rw, seed_rows) group_indexes
    else (seed_rw, seed_rows)
  in
  let exclude =
    match target.op with
    | Remove | Change _ -> group_indexes
    | Add _ -> []
  in
  let seed_rw, seed_rows =
    match target.op with
    | Remove -> strip_removed_reads (seed_rw, seed_rows)
    | Add _ | Change _ -> (seed_rw, seed_rows)
  in
  let joinable =
    (* an entry is joinable when it writes — or, at transaction
       granularity, has a group mate. The write-only part is shared
       across closure runs; the group part stays per-run (grouped
       analysis is not on the per-question hot path). *)
    let base = ungrouped_joinable t in
    if grouped then
      Array.init (Array.length t.infos) (fun j ->
          base.(j) || expand t (j + 1) <> [])
    else base
  in
  let run ?via make_joins =
    compute_closure ?via ~obs t ~tau:target.tau ~exclude ~seed_rw ~seed_rows
      ~make_joins ~joinable ~expand:(expand t)
  in
  let col_members () =
    Uv_obs.Trace.with_span obs ~cat:"analyze" "closure.col" (fun () ->
        run ?via:via_col
          (match cj_override with Some f -> f | None -> col_joins t))
  in
  let row_members () =
    Uv_obs.Trace.with_span obs ~cat:"analyze" "closure.row" (fun () ->
        run ?via:via_row (row_joins t))
  in
  let members, joined, col_count, row_count =
    match mode with
    | Col_only ->
        let m, j = col_members () in
        (m, Some j, List.length j, -1)
    | Row_only ->
        let m, j = row_members () in
        (m, Some j, -1, List.length j)
    | Cell ->
        let mc, _ = col_members () in
        let mr, _ = row_members () in
        let m = Array.map2 ( && ) mc mr in
        (m, None, count_members mc, count_members mr)
    | Joint ->
        let m, j =
          Uv_obs.Trace.with_span obs ~cat:"analyze" "closure.cell" (fun () ->
              run ?via:via_row (cell_joins t))
        in
        (m, Some j, -1, -1)
  in
  let mutated, consulted = classify ?joined t ~members target seed_rw in
  {
    members;
    member_count =
      (match joined with Some j -> List.length j | None -> count_members members);
    mutated;
    consulted;
    col_only_count = col_count;
    row_only_count = row_count;
  }

let replay_set ?obs ?mode t target =
  replay_set_gen ?obs ~grouped:false ~expand:(fun _ _ -> []) ?mode t target

let replay_set_grouped ?obs ?mode t target =
  replay_set_gen ?obs ~grouped:true ~expand:group_expand ?mode t target

(* Ungrouped replay set with the column-wise candidate generator replaced
   by an external one (the template fast-path). The row-wise closure and
   everything else stay on the built-in path, so Cell mode intersects the
   caller's column closure with the oracle row closure. *)
let replay_set_via ?obs ?mode t ~col_joins target =
  replay_set_gen ?obs ~grouped:false
    ~expand:(fun _ _ -> [])
    ~col_joins ?mode t target

(* ------------------------------------------------------------------ *)
(* Lean replay-set computation over the cell index                      *)
(* ------------------------------------------------------------------ *)

let build_cell_index t =
  let ci =
    {
      ci_generation = Rowset.merge_generation t.row_state;
      ci_n = Array.length t.infos;
      cw_val = Hashtbl.create 1024;
      cw_any = Hashtbl.create 64;
      cw_all = Hashtbl.create 64;
      cr_val = Hashtbl.create 1024;
      cr_any = Hashtbl.create 64;
      cr_all = Hashtbl.create 64;
    }
  in
  let push tbl key i =
    let b = bucket tbl key in
    b := i :: !b
  in
  Array.iter
    (fun inf ->
      let i = inf.index in
      (* one column's cells: the column crossed with its table's dim0
         access. A column whose table has no row entry touches no cell
         (unreachable through the row-wise closure, matching
         [cell_pair_conflict]); empty row sets touch no cell either. *)
      let file v_tbl a_tbl all_tbl c rs =
        match rs with
        | None -> ()
        | Some Rowset.Any ->
            push a_tbl c i;
            push all_tbl c i
        | Some (Rowset.Vals s) ->
            if not (Rowset.Vset.is_empty s) then begin
              let table = table_of_col c in
              let dim0 = dim0_of t.config table in
              Rowset.Vset.iter
                (fun v ->
                  let cv = Rowset.canonical t.row_state table dim0 v in
                  push v_tbl (c ^ "|" ^ cv) i)
                s;
              push all_tbl c i
            end
      in
      let access_of c side =
        match List.assoc_opt (table_of_col c) inf.rows with
        | Some access when Array.length access > 0 ->
            Some
              (match side with
              | `W -> access.(0).Rowset.dw
              | `R -> access.(0).Rowset.dr)
        | _ -> None
      in
      Rwset.Colset.iter
        (fun c ->
          if not (is_schema_key c) then
            file ci.cw_val ci.cw_any ci.cw_all c (access_of c `W))
        inf.rw.Rwset.w;
      (* read-only entries never join an ungrouped closure: keep them out
         of the index so scans stay proportional to joinable work *)
      if not (Rwset.Colset.is_empty inf.rw.Rwset.w) then
        Rwset.Colset.iter
          (fun c ->
            if not (is_schema_key c) then
              file ci.cr_val ci.cr_any ci.cr_all c (access_of c `R))
          inf.rw.Rwset.r)
    t.infos;
  ci

let cell_index_of t =
  match t.cell_index with
  | Some ci
    when ci.ci_generation = Rowset.merge_generation t.row_state
         && ci.ci_n = Array.length t.infos ->
      ci
  | _ ->
      let ci = build_cell_index t in
      t.cell_index <- Some ci;
      ci

(* Joint-mode replay-set membership without the O(history) arrays:
   epoch-stamped scratch (allocated once per analyzer, reused across
   questions) plus cell-index candidate generation. Returns the member
   indexes, ascending. Single closure at a time per analyzer. *)
let replay_members_joint t (target : target) =
  let n = Array.length t.infos in
  if Array.length t.scratch_members < n then begin
    t.scratch_members <- Array.make (max n 64) 0;
    t.scratch_excluded <- Array.make (max n 64) 0
  end;
  t.closure_epoch <- t.closure_epoch + 1;
  let epoch = t.closure_epoch in
  let members = t.scratch_members and excluded = t.scratch_excluded in
  let seed_rw, seed_rows = target_rw t target in
  let seed_rw, seed_rows =
    match target.op with
    | Remove -> strip_removed_reads (seed_rw, seed_rows)
    | Add _ | Change _ -> (seed_rw, seed_rows)
  in
  (match target.op with
  | Remove | Change _ ->
      if target.tau >= 1 && target.tau <= n then
        excluded.(target.tau - 1) <- epoch
  | Add _ -> ());
  let joinable = ungrouped_joinable t in
  let tau = target.tau in
  let live i =
    i >= tau && i <= n
    && excluded.(i - 1) <> epoch
    && joinable.(i - 1)
    && members.(i - 1) <> epoch
  in
  let ci = cell_index_of t in
  let cache : (string, int list) Hashtbl.t = Hashtbl.create 64 in
  let joined = ref [] in
  let queue = Queue.create () in
  let offers = ref [] in
  let fetch tbl key () =
    match Hashtbl.find_opt tbl key with
    | None -> []
    | Some b -> List.rev !b
  in
  (* candidates cell-conflicting with (rw, rows), past [min_idx] — the
     same forward-only contract as [joins_fn] *)
  let candidates ~min_idx (rw : Rwset.rw) rows =
    offers := [];
    let scan key fetch =
      scan_pruned cache ~live ~min_idx
        ~offer:(fun i -> offers := i :: !offers)
        key fetch
    in
    let scan_family v_tbl a_tbl all_tbl tag c rs =
      match rs with
      | None -> ()
      | Some Rowset.Any ->
          (* wildcard rows conflict with every row of the column *)
          scan ("A" ^ tag ^ c) (fetch all_tbl c)
      | Some (Rowset.Vals s) ->
          if not (Rowset.Vset.is_empty s) then begin
            scan ("N" ^ tag ^ c) (fetch a_tbl c);
            let table = table_of_col c in
            let dim0 = dim0_of t.config table in
            Rowset.Vset.iter
              (fun v ->
                let cv = Rowset.canonical t.row_state table dim0 v in
                scan
                  ("V" ^ tag ^ c ^ "|" ^ cv)
                  (fetch v_tbl (c ^ "|" ^ cv)))
              s
          end
    in
    let access_of c side =
      match List.assoc_opt (table_of_col c) rows with
      | Some access when Array.length access > 0 ->
          Some
            (match side with
            | `W -> access.(0).Rowset.dw
            | `R -> access.(0).Rowset.dr)
      | _ -> None
    in
    Rwset.Colset.iter
      (fun c ->
        if is_schema_key c then begin
          scan ("Sr|" ^ c) (fetch t.readers_by_col c);
          scan ("Sw|" ^ c) (fetch t.writers_by_col c)
        end
        else begin
          let acc = access_of c `W in
          scan_family ci.cr_val ci.cr_any ci.cr_all "r|" c acc;
          scan_family ci.cw_val ci.cw_any ci.cw_all "w|" c acc
        end)
      rw.Rwset.w;
    Rwset.Colset.iter
      (fun c ->
        if is_schema_key c then scan ("Sw|" ^ c) (fetch t.writers_by_col c)
        else scan_family ci.cw_val ci.cw_any ci.cw_all "w|" c (access_of c `R))
      rw.Rwset.r;
    List.filter
      (fun i -> cell_pair_conflict t rw rows t.infos.(i - 1))
      (List.sort_uniq compare !offers)
  in
  let join i =
    if live i then begin
      members.(i - 1) <- epoch;
      joined := i :: !joined;
      Queue.push i queue
    end
  in
  List.iter join (candidates ~min_idx:(tau - 1) seed_rw seed_rows);
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    let inf = t.infos.(i - 1) in
    List.iter join (candidates ~min_idx:i inf.rw inf.rows)
  done;
  List.sort compare !joined

let members_list (rs : replay_set) =
  let acc = ref [] in
  for i = Array.length rs.members downto 1 do
    if rs.members.(i - 1) then acc := i :: !acc
  done;
  !acc

let replay_members ?(mode = Joint) t target =
  match mode with
  | Joint -> replay_members_joint t target
  | m -> members_list (replay_set ~mode:m t target)

let canonical_row_value t ~table v =
  Rowset.canonical t.row_state table (dim0_of t.config table)
    (Value.serialize v)

let row_merge_generation t = Rowset.merge_generation t.row_state

(* ------------------------------------------------------------------ *)
(* Provenance: why did each member join?                                *)
(* ------------------------------------------------------------------ *)

type provenance = {
  p_col_via : int option;
      (* parent in the column-wise closure: Some 0 = the target's own
         sets; Some v = entry v's sets; Some (-v) = joined as a
         transaction-group mate of entry v *)
  p_row_via : int option; (* ditto, row-wise closure *)
}

let replay_set_explained ?mode ?(grouped = false) t (target : target) =
  let n = Array.length t.infos in
  let via_col = Array.make n min_int and via_row = Array.make n min_int in
  let rs =
    if grouped then
      replay_set_gen ~via_col ~via_row ~grouped:true ~expand:group_expand ?mode
        t target
    else
      replay_set_gen ~via_col ~via_row ~grouped:false
        ~expand:(fun _ _ -> [])
        ?mode t target
  in
  let decode a j = if a.(j) = min_int then None else Some a.(j) in
  let prov =
    Array.init n (fun j ->
        if rs.members.(j) then
          Some { p_col_via = decode via_col j; p_row_via = decode via_row j }
        else None)
  in
  (rs, prov)

let shared_columns (a : Rwset.rw) (b : Rwset.rw) =
  let inter x y = Rwset.Colset.elements (Rwset.Colset.inter x y) in
  List.sort_uniq compare
    (inter a.Rwset.w b.Rwset.r @ inter a.Rwset.r b.Rwset.w
    @ inter a.Rwset.w b.Rwset.w)

let shared_tables t (a : Rowset.entry_rows) (b : Rowset.entry_rows) =
  List.filter_map
    (fun (table, access) ->
      match List.assoc_opt table b with
      | None -> None
      | Some their ->
          if Rowset.overlaps t.row_state table access `Any_conflict their then
            let values =
              if Array.length access = 0 || Array.length their = 0 then []
              else
                let vals_of (d : Rowset.dim_access) =
                  match (d.Rowset.dr, d.Rowset.dw) with
                  | Rowset.Any, _ | _, Rowset.Any -> None
                  | Rowset.Vals r, Rowset.Vals w ->
                      Some (Rowset.Vset.union r w)
                in
                match (vals_of access.(0), vals_of their.(0)) with
                | Some mine, Some theirs ->
                    Rowset.Vset.elements (Rowset.Vset.inter mine theirs)
                | _ -> [ "*" ]
            in
            Some (table, values)
          else None)
    a

let conflict_columns t i j = shared_columns t.infos.(i - 1).rw t.infos.(j - 1).rw

let conflict_tables t i j =
  shared_tables t t.infos.(i - 1).rows t.infos.(j - 1).rows

let explain_report ?mode ?grouped t (target : target) =
  let rs, prov = replay_set_explained ?mode ?grouped t target in
  let seed_rw, seed_rows = target_rw t target in
  let rw_of v = if v = 0 then seed_rw else t.infos.(v - 1).rw in
  let rows_of v = if v = 0 then seed_rows else t.infos.(v - 1).rows in
  let name v = if v = 0 then "the target" else Printf.sprintf "#%d" v in
  let lines = ref [] in
  Array.iteri
    (fun j p ->
      match p with
      | None -> ()
      | Some p ->
          let i = j + 1 in
          let inf = t.infos.(j) in
          let describe = function
            | None -> []
            | Some v when v < 0 ->
                [ Printf.sprintf "group-mate of #%d" (-v) ]
            | Some v ->
                let cols = shared_columns (rw_of v) inf.rw in
                let tabs = shared_tables t (rows_of v) inf.rows in
                let col_part =
                  if cols = [] then []
                  else
                    [ Printf.sprintf "columns {%s} with %s"
                        (String.concat ", " cols) (name v) ]
                in
                let row_part =
                  if tabs = [] then []
                  else
                    [ Printf.sprintf "rows {%s} with %s"
                        (String.concat ", "
                           (List.map
                              (fun (tbl, vs) ->
                                if vs = [] then tbl
                                else tbl ^ "=" ^ String.concat "|" vs)
                              tabs))
                        (name v) ]
                in
                col_part @ row_part
          in
          let reasons =
            List.sort_uniq compare (describe p.p_col_via @ describe p.p_row_via)
          in
          let reasons = if reasons = [] then [ "seeded" ] else reasons in
          lines :=
            Printf.sprintf "#%d %s <- %s" i
              (Uv_sql.Ast.stmt_kind inf.stmt)
              (String.concat "; " reasons)
            :: !lines)
    prov;
  (rs, List.rev !lines)

(* ------------------------------------------------------------------ *)
(* Scheduler edges                                                      *)
(* ------------------------------------------------------------------ *)

(* value tokens of an entry for one table, over the first RI dimension:
   concrete canonicalized values, or ["*"] for a wildcard access *)
let entry_row_tokens t (inf : info) table ~write =
  match List.assoc_opt table inf.rows with
  | Some access when Array.length access > 0 -> (
      let rs = if write then access.(0).Rowset.dw else access.(0).Rowset.dr in
      match rs with
      | Rowset.Any -> [ "*" ]
      | Rowset.Vals s ->
          if Rowset.Vset.is_empty s then []
          else
            let dim0 =
              match List.assoc_opt table t.config.Rowset.ri_columns with
              | Some (d :: _) -> d
              | _ -> "#0"
            in
            Rowset.Vset.fold
              (fun v acc -> Rowset.canonical t.row_state table dim0 v :: acc)
              s [])
  | _ -> [ "*" ]

let dependency_edges_uncached t ~members =
  (* Conflict edges at cell granularity: accesses are bucketed by
     (column, first-RI-dimension value), so row-disjoint chains stay
     parallel (the source of TPC-C's and SEATS' replay parallelism,
     §4.4). A wildcard access uses the per-column "*" bucket, which
     conflicts with every value bucket of that column. *)
  let edges = ref [] in
  (* (column, value-token) -> recent accessors, most recent first *)
  let buckets : (string * string, (int * bool) list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  (* column -> all value tokens seen (for wildcard scans) *)
  let tokens_of_col : (string, string list ref) Hashtbl.t = Hashtbl.create 256 in
  let bucket key =
    match Hashtbl.find_opt buckets key with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.replace buckets key b;
        let c, v = key in
        let toks =
          match Hashtbl.find_opt tokens_of_col c with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace tokens_of_col c l;
              l
        in
        if not (List.mem v !toks) then toks := v :: !toks;
        b
  in
  let scan_limit = 64 in
  let table_of_col c =
    match String.index_opt c '.' with
    | Some i -> String.sub c 0 i
    | None -> c
  in
  let tokens_for inf table ~write = entry_row_tokens t inf table ~write in
  Array.iter
    (fun inf ->
      if members.(inf.index - 1) then begin
        let i = inf.index in
        let consider key ~i_writes =
          match Hashtbl.find_opt buckets key with
          | None -> ()
          | Some accs ->
              (* a write orders after every reader back to (and including)
                 the previous writer; a read orders after the previous
                 writer only — intermediate readers are no conflict *)
              let rec scan k = function
                | [] -> ()
                | (j, _) :: rest when j = i -> scan k rest
                | (j, j_wrote) :: rest ->
                    if k >= scan_limit then edges := (i, j) :: !edges
                    else if i_writes then begin
                      edges := (i, j) :: !edges;
                      if not j_wrote then scan (k + 1) rest
                    end
                    else if j_wrote then edges := (i, j) :: !edges
                    else scan (k + 1) rest
              in
              scan 0 !accs
        in
        let touch c ~write =
          let table = table_of_col c in
          let toks = tokens_for inf table ~write in
          List.iter
            (fun v ->
              (* conflict with same-value and wildcard buckets; a wildcard
                 access conflicts with every bucket of the column *)
              (if v = "*" then
                 match Hashtbl.find_opt tokens_of_col c with
                 | Some all -> List.iter (fun v' -> consider (c, v') ~i_writes:write) !all
                 | None -> ()
               else begin
                 consider (c, v) ~i_writes:write;
                 consider (c, "*") ~i_writes:write
               end);
              let b = bucket (c, v) in
              b := (i, write) :: (if List.length !b > 2 * scan_limit then
                                    List.filteri (fun k _ -> k < scan_limit) !b
                                  else !b))
            toks
        in
        Rwset.Colset.iter (fun c -> touch c ~write:false) inf.rw.Rwset.r;
        Rwset.Colset.iter (fun c -> touch c ~write:true) inf.rw.Rwset.w
      end)
    t.infos;
  List.sort_uniq compare !edges

let dependency_edges t ~members =
  match t.dep_edges_cache with
  | Some (m, e) when m = members -> e
  | _ ->
      let e = dependency_edges_uncached t ~members in
      t.dep_edges_cache <- Some (Array.copy members, e);
      e

(* Write-write edges between members writing overlapping rows of one
   table, regardless of which columns they assign. [dependency_edges]
   works per column, so two updates hitting *different columns of the
   same row* are invisible to it — harmless for the simulated makespan,
   but fatal for real parallel execution, where [Storage.update]
   replaces the whole row array and the later commit must see the
   earlier one's cells. Chains collapse to last-writer edges; wave
   layering restores transitivity. *)
let write_write_table_edges t ~members =
  let edges = ref [] in
  let last_writer : (string * string, int) Hashtbl.t = Hashtbl.create 256 in
  let toks_of_table : (string, string list ref) Hashtbl.t = Hashtbl.create 64 in
  let note_tok table v =
    let l =
      match Hashtbl.find_opt toks_of_table table with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.replace toks_of_table table l;
          l
    in
    if not (List.mem v !l) then l := v :: !l
  in
  let write_tables (rw : Rwset.rw) =
    Rwset.Colset.fold
      (fun key acc ->
        if is_schema_key key then acc
        else
          match String.index_opt key '.' with
          | Some i -> String.sub key 0 i :: acc
          | None -> acc)
      rw.Rwset.w []
    |> List.sort_uniq compare
  in
  Array.iter
    (fun inf ->
      if members.(inf.index - 1) then begin
        let i = inf.index in
        List.iter
          (fun table ->
            let toks = entry_row_tokens t inf table ~write:true in
            let edge_to j = if j <> i then edges := (i, j) :: !edges in
            List.iter
              (fun v ->
                if v = "*" then (
                  match Hashtbl.find_opt toks_of_table table with
                  | Some all ->
                      List.iter
                        (fun v' ->
                          Option.iter edge_to
                            (Hashtbl.find_opt last_writer (table, v')))
                        !all
                  | None -> ())
                else begin
                  Option.iter edge_to (Hashtbl.find_opt last_writer (table, v));
                  Option.iter edge_to (Hashtbl.find_opt last_writer (table, "*"))
                end)
              toks;
            List.iter
              (fun v ->
                if v = "*" then begin
                  (* a wildcard write is now the last writer of every row *)
                  (match Hashtbl.find_opt toks_of_table table with
                  | Some all ->
                      List.iter
                        (fun v' -> Hashtbl.replace last_writer (table, v') i)
                        !all
                  | None -> ());
                  note_tok table "*";
                  Hashtbl.replace last_writer (table, "*") i
                end
                else begin
                  note_tok table v;
                  Hashtbl.replace last_writer (table, v) i
                end)
              toks)
          (write_tables inf.rw)
      end)
    t.infos;
  List.sort_uniq compare !edges

let exec_dependency_edges t ~members =
  List.sort_uniq compare
    (dependency_edges t ~members @ write_write_table_edges t ~members)

let to_dot t ~members =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph replay {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  Array.iteri
    (fun i inf ->
      if members.(i) then begin
        let label =
          let sql = Uv_sql.Printer.stmt_compact inf.stmt in
          let sql =
            if String.length sql > 48 then String.sub sql 0 45 ^ "..." else sql
          in
          String.concat "\\\"" (String.split_on_char '"' sql)
        in
        Buffer.add_string buf
          (Printf.sprintf "  q%d [label=\"Q%d: %s\"];\n" (i + 1) (i + 1) label)
      end)
    t.infos;
  List.iter
    (fun (later, earlier) ->
      Buffer.add_string buf (Printf.sprintf "  q%d -> q%d;\n" later earlier))
    (dependency_edges t ~members);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
