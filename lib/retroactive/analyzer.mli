(** The query analyzer: per-entry read/write sets, the query dependency
    graph, and replay-set computation (§4.2–§4.4, §E).

    Given a committed-statement log, [analyze] derives each entry's
    column-wise and row-wise sets (maintaining the evolving schema view and
    RI alias/merge state in commit order). A what-if request is a
    {!target}; {!replay_set} computes the set 𝕀 of entries that must be
    rolled back and replayed, as the closure of conflict with the target:

    - an entry joins 𝕀 if it reads something a member (or the target)
      wrote — Rule 1 dependence;
    - an entry joins 𝕀 if it writes something a member read — the
      consulted-table propositions (E.9, E.10);
    - an entry joins 𝕀 if it writes something a member wrote — required
      so that blind overwrites by non-members survive the replay (the
      paper's replay arrows already treat write-write as a conflict,
      §4.4).

    Read-only entries (empty write set) never join 𝕀 (Prop E.7).
    [`Cell] mode intersects the column-wise and row-wise closures
    (Theorem E.20): 𝕀 = 𝕀c ∩ 𝕀r. *)

open Uv_sql

type op =
  | Add of Ast.stmt  (** execute the new statement right before index τ *)
  | Remove  (** delete the statement committed at τ *)
  | Change of Ast.stmt  (** replace the statement at τ *)

type target = { tau : int; op : op }

type mode = Col_only | Row_only | Cell | Joint
(** [Cell] intersects two independent closures (Theorem E.20); [Joint]
    closes over the pairwise cell conflict relation instead — a member
    pulls in an entry only when they conflict both column-wise and
    row-wise with {e each other}. Joint ⊆ Cell (every joint conflict is a
    conflict in both constituent closures), and joint ⊇ the true
    dependency closure (a shared cell implies shared columns and shared
    rows), so it is sound and at least as tight. Its cost is bounded by
    the row-value buckets actually touched rather than the history
    length, which is what lets replay-set computation stay flat while
    the log grows — the history-scale bench gates on this. [Cell]
    remains the default for bit-for-bit continuity of existing
    replay-set counts. *)

type info = {
  index : int;
  stmt : Ast.stmt;
  rw : Rwset.rw;
  rows : Rowset.entry_rows;
  app_txn : string option;
}

type t

(** Where entries come from. The analyzer pulls its input through this
    record, so it never requires a materialized {!Uv_db.Log.t}: an
    in-memory log, a segmented {!Uv_db.Log_store} (one segment resident
    at a time) and any custom fold all analyse identically. *)
type source = {
  src_length : unit -> int;  (** entries available right now *)
  src_iter : int -> int -> (Uv_db.Log.entry -> unit) -> unit;
      (** [src_iter lo hi f] applies [f] to entries with 1-based commit
          indexes [lo..hi], in order. Called once per {!extend} batch. *)
}

val source_of_log : Uv_db.Log.t -> source

val source_of_store : Uv_db.Log_store.t -> source
(** Streams via {!Uv_db.Log_store.iter_range}/[entry_of_record]: peak
    resident log memory during analysis is one segment plus the
    manifest. *)

val source_of_fun : length:(unit -> int) -> (int -> Uv_db.Log.entry) -> source
(** A source from a random-access fetch function. *)

val of_source :
  ?config:Rowset.config ->
  ?base:Uv_db.Catalog.t ->
  ?obs:Uv_obs.Trace.t ->
  source ->
  t
(** Scan the source once, building per-entry sets and the value indexes
    used by replay-set computation. [base] is the catalog state at the
    start of the history (the checkpoint the history grows from); it
    seeds the schema view and the Hash-jumper's initial table hashes.
    [obs] records [analyze.rwsets]/[analyze.index] spans. *)

val analyze :
  ?config:Rowset.config ->
  ?base:Uv_db.Catalog.t ->
  ?obs:Uv_obs.Trace.t ->
  Uv_db.Log.t ->
  t
(** [of_source] over [source_of_log]. *)

val extend : ?obs:Uv_obs.Trace.t -> t -> int
(** Fold entries committed to the source since the analyzer was built
    (or last extended) into the per-entry sets and value indexes,
    without re-scanning the analysed prefix; returns the number of new
    entries. Equivalent to a fresh [of_source] of the grown history: the evolving
    schema view and RI merge state are carried in the analyzer, and an
    RI merge learned by a new entry re-keys the affected value buckets.
    Only sound while the analysed prefix is intact — a truncated log or
    a history rewritten in place requires a fresh [analyze] (the what-if
    session enforces this, treating DDL among the new entries as a
    rebuild trigger as well out of caution for retroactive targets that
    predate the schema change). *)

val base_hashes : t -> (string * int64) list
(** Per-table hashes at the start of the history (from [base]). *)

val length : t -> int

val info : t -> int -> info
(** 1-based commit index. *)

val schema_view_at : t -> int -> Schema_view.t
(** Schema state just before the given commit index executes. *)

val target_rw : t -> target -> Rwset.rw * Rowset.entry_rows
(** Combined sets of the retroactive target (for [Change], the union of
    the old and new statements' sets). *)

type replay_set = {
  members : bool array;  (** [members.(i-1)] — is entry [i] in 𝕀 *)
  member_count : int;
  mutated : string list;  (** tables written by 𝕀 ∪ {target} *)
  consulted : string list;  (** tables read but not written *)
  col_only_count : int;  (** |𝕀c| — for the ablation bench *)
  row_only_count : int;  (** |𝕀r| *)
}

val replay_set : ?obs:Uv_obs.Trace.t -> ?mode:mode -> t -> target -> replay_set
(** Compute 𝕀 for a target. [obs] records one [closure.col]/[closure.row]
    span per closure run and counts worklist pops in
    [analyze.closure_iters]. *)

val replay_set_grouped :
  ?obs:Uv_obs.Trace.t -> ?mode:mode -> t -> target -> replay_set
(** Transaction-granularity variant used by the non-transpiled (D)
    system: entries sharing an [app_txn] tag join or stay out of 𝕀 as a
    unit, and set propagation runs over the per-transaction unions. *)

val replay_members : ?mode:mode -> t -> target -> int list
(** The replay-set members as a sorted list of 1-based commit indexes.
    For [Joint] (the default here) this runs a lean closure that never
    materializes [length t]-sized arrays: candidates come from
    cell-granular value buckets and membership scratch is epoch-stamped,
    so the cost of answering a what-if question scales with the replay
    set and the buckets it touches, not with the history length. Agrees
    exactly with [members_of (replay_set ~mode)] for every mode; other
    modes delegate to {!replay_set}. *)

type joins_fn = min_idx:int -> Rwset.rw -> Rowset.entry_rows -> int list
(** Candidate generator used by the closure worklist: given a member's
    sets, return candidate indexes past [min_idx] that may conflict with
    it. The first call (and only the first) carries the target's seed
    sets; every later call is a joined member calling with its own index
    as [min_idx], so [min_idx] identifies the member. Over-approximation
    is safe (candidates are re-filtered for liveness and joinability);
    omission is not. *)

val replay_set_via :
  ?obs:Uv_obs.Trace.t ->
  ?mode:mode ->
  t ->
  col_joins:(live:(int -> bool) -> joins_fn) ->
  target ->
  replay_set
(** [replay_set] with the column-wise candidate generator replaced by an
    external one — the template-matrix fast-path. [col_joins ~live] is
    invoked once per column-closure run; candidates for which [live] is
    false may be skipped. The row-wise closure stays on the built-in
    per-statement path, so [`Cell] intersects the caller's column closure
    with the oracle row closure. *)

val canonical_row_value : t -> table:string -> Value.t -> string
(** Canonical first-dimension RI token for a value of [table] under the
    analyzer's current alias/merge state — the key the row index buckets
    by. Stable until {!row_merge_generation} changes. *)

val row_merge_generation : t -> int
(** Generation counter of the RI alias/merge state; external value-keyed
    caches must be rebuilt when it changes. *)

val write_write_table_edges : t -> members:bool array -> (int * int) list
(** The row-level write-write ordering edges that [exec_dependency_edges]
    adds on top of [dependency_edges]: any two members writing
    overlapping rows of one table, even through disjoint columns. *)

type provenance = {
  p_col_via : int option;
      (** parent in the column-wise closure: [Some 0] — pulled in directly
          by the target's own sets; [Some v], [v > 0] — by entry [v]'s
          sets; [Some (-v)] — joined as a transaction-group mate of entry
          [v] (grouped mode only) *)
  p_row_via : int option;  (** ditto for the row-wise closure *)
}

val replay_set_explained :
  ?mode:mode -> ?grouped:bool -> t -> target -> replay_set * provenance option array
(** The replay set plus, for each log entry (0-based array of length
    [length t]), why it joined — [None] for non-members. Because the
    cell-wise set is the intersection of two independently computed
    closures (Theorem E.20), a member carries up to two parents; either
    may itself be outside the final intersection. *)

val conflict_columns : t -> int -> int -> string list
(** Columns through which entries [i] and [j] conflict (W∩R ∪ R∩W ∪ W∩W
    of their column-wise sets). Empty if they don't. *)

val conflict_tables : t -> int -> int -> (string * string list) list
(** Tables through which the row-wise sets of [i] and [j] overlap, each
    with the shared first-dimension RI values (["*"] when either side is
    a wildcard). *)

val explain_report :
  ?mode:mode -> ?grouped:bool -> t -> target -> replay_set * string list
(** Human-readable provenance, one line per member:
    ["#12 UPDATE <- columns {stock.qty} with #7; rows {stock=42} with #7"]. *)

val dependency_edges : t -> members:bool array -> (int * int) list
(** Conflict edges (n, m) with m < n among 𝕀 members, for the replay
    scheduler: n must run after m. *)

val exec_dependency_edges : t -> members:bool array -> (int * int) list
(** [dependency_edges] strengthened for *real* parallel execution:
    additionally orders any two members that write overlapping rows of
    one table, even through disjoint columns — whole-row storage updates
    make such writes physically conflicting although the cell-wise model
    keeps them independent. Superset of [dependency_edges]. *)

val tables_of_rw : Rwset.rw -> string list
(** Real tables (not [_S] objects) appearing in a column set. *)

val to_dot : t -> members:bool array -> string
(** Graphviz rendering of the replay conflict graph over 𝕀 (Figure 6
    style): nodes are member statements, edges point from each statement
    to the earlier ones it must replay after. *)
