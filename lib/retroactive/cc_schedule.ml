type plan = {
  waves : int list list;
  conflict_edges : int;
  statements : int;
}

let is_schema_key k = String.length k > 3 && String.sub k 0 3 = "_S."

(* cell-wise conflict: column-level overlap refined by row-level overlap;
   _S schema keys behave as wildcard rows (Table B) *)
let conflicts row_state (a_rw : Rwset.rw) a_rows (b_rw : Rwset.rw) b_rows =
  let inter x y = not (Rwset.Colset.is_empty (Rwset.Colset.inter x y)) in
  let sk s = Rwset.Colset.filter is_schema_key s in
  let col_conflict =
    inter a_rw.Rwset.w b_rw.Rwset.r
    || inter a_rw.Rwset.r b_rw.Rwset.w
    || inter a_rw.Rwset.w b_rw.Rwset.w
  in
  let schema_conflict =
    inter (sk a_rw.Rwset.w) (sk b_rw.Rwset.r)
    || inter (sk a_rw.Rwset.r) (sk b_rw.Rwset.w)
    || inter (sk a_rw.Rwset.w) (sk b_rw.Rwset.w)
  in
  let row_conflict =
    schema_conflict
    || List.exists
         (fun (table, acc_a) ->
           match List.assoc_opt table b_rows with
           | Some acc_b -> Rowset.overlaps row_state table acc_a `Any_conflict acc_b
           | None -> false)
         a_rows
  in
  col_conflict && row_conflict

let plan ?(config = Rowset.default_config) ~base stmts =
  let sv = Schema_view.of_catalog base in
  let row_state = Rowset.create config in
  Rowset.seed_aliases row_state base;
  let infos =
    List.map
      (fun s ->
        let rw = Rwset.of_stmt sv s in
        let rows = Rowset.of_entry row_state sv s [] in
        (* planned DDL evolves the schema for later statements *)
        Schema_view.apply sv s;
        (rw, rows))
      stmts
  in
  let arr = Array.of_list infos in
  let n = Array.length arr in
  let edges = ref [] in
  for i = 0 to n - 1 do
    let a_rw, a_rows = arr.(i) in
    for j = 0 to i - 1 do
      let b_rw, b_rows = arr.(j) in
      if conflicts row_state b_rw b_rows a_rw a_rows then
        edges := (i, j) :: !edges
    done
  done;
  let dag = Conflict_dag.build ~nodes:(List.init n Fun.id) ~edges:!edges in
  {
    waves = Conflict_dag.waves dag;
    conflict_edges = Conflict_dag.edge_count dag;
    statements = n;
  }

let wave_count p = List.length p.waves

let parallelism p =
  if p.waves = [] then 1.0
  else float_of_int p.statements /. float_of_int (List.length p.waves)

let execute eng stmts plan =
  let arr = Array.of_list stmts in
  List.concat_map
    (fun wave ->
      List.filter_map
        (fun i ->
          match Uv_db.Engine.exec eng arr.(i) with
          | r -> Some (i, r)
          | exception (Uv_db.Engine.Sql_error _ | Uv_db.Engine.Signal_raised _) ->
              None)
        wave)
    plan.waves

let pp fmt p =
  Format.fprintf fmt "%d statements, %d waves (parallelism %.1fx, %d conflicts)@."
    p.statements (wave_count p) (parallelism p) p.conflict_edges;
  List.iteri
    (fun w ids ->
      Format.fprintf fmt "  wave %d: %s@." w
        (String.concat ", " (List.map string_of_int ids)))
    p.waves
