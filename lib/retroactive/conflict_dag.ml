type edge = int * int

type t = {
  nodes : int array; (* ascending node ids; position = dense index *)
  dag : Uv_util.Dag.t; (* edges point later -> earlier (dependencies) *)
}

let build ~nodes ~edges =
  let nodes = Array.of_list nodes in
  let pos = Hashtbl.create (Array.length nodes) in
  Array.iteri (fun p id -> Hashtbl.replace pos id p) nodes;
  let dag = Uv_util.Dag.create (Array.length nodes) in
  List.iter
    (fun (later, earlier) ->
      match (Hashtbl.find_opt pos later, Hashtbl.find_opt pos earlier) with
      | Some l, Some e when l <> e -> Uv_util.Dag.add_edge dag l e
      | _ -> ())
    edges;
  { nodes; dag }

let node_count t = Array.length t.nodes

let edge_count t = Uv_util.Dag.edge_count t.dag

let waves t =
  let n = Array.length t.nodes in
  if n = 0 then []
  else begin
    (* edges point backwards, so a forward scan sees every dependency's
       wave before its dependents *)
    let wave_of = Array.make n 0 in
    for p = 0 to n - 1 do
      List.iter
        (fun dep ->
          if wave_of.(dep) + 1 > wave_of.(p) then wave_of.(p) <- wave_of.(dep) + 1)
        (Uv_util.Dag.successors t.dag p)
    done;
    let max_wave = Array.fold_left max 0 wave_of in
    let buckets = Array.make (max_wave + 1) [] in
    for p = n - 1 downto 0 do
      buckets.(wave_of.(p)) <- t.nodes.(p) :: buckets.(wave_of.(p))
    done;
    Array.to_list buckets
  end

let wave_count t = List.length (waves t)

let parallelism t =
  let w = wave_count t in
  if w = 0 then 1.0 else float_of_int (node_count t) /. float_of_int w

let makespan t ~weight ~workers =
  if Array.length t.nodes = 0 then 0.0
  else
    let weights = Array.map weight t.nodes in
    Uv_util.Dag.critical_path_makespan t.dag ~weights ~workers
