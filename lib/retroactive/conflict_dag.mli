(** The replay conflict DAG (§4.4), shared by every scheduler.

    Both conflict-edge producers in the system — [Analyzer.dependency_edges]
    over committed log entries and [Cc_schedule]'s pairwise planner over
    un-committed statements — speak the same language: nodes are integer
    ids and an edge [(later, earlier)] means [later] must execute after
    [earlier]. This module is the single home for the two derived views:

    - {b wave layering} — longest-path levels; every node lands one wave
      after the latest of its dependencies, so the entries of one wave are
      mutually conflict-free and may execute simultaneously;
    - {b makespan} — greedy list scheduling with a bounded worker count
      (the simulated parallel replay cost).

    [Scheduler] (simulated replay cost) and [Cc_schedule] (concurrency-
    control planner) are thin wrappers; [Wave_exec] drives real domains
    over the wave layering. *)

type edge = int * int
(** [(later, earlier)]: [later] conflicts with, and must run after,
    [earlier]. Both endpoints are node ids; edges mentioning unknown ids
    are ignored by {!build}. *)

type t

val build : nodes:int list -> edges:edge list -> t
(** [nodes] in ascending order (commit order); every edge must point
    backwards ([earlier < later]). Duplicated edges are deduplicated. *)

val node_count : t -> int

val edge_count : t -> int
(** Distinct in-range edges. *)

val waves : t -> int list list
(** Longest-path layering: wave [k] holds every node whose deepest
    dependency chain has length [k]. Within a wave, nodes keep ascending
    order. Concatenating the waves yields a valid execution order; nodes
    of one wave are pairwise non-adjacent in the DAG. *)

val wave_count : t -> int

val parallelism : t -> float
(** [node_count / wave_count]; [1.0] for an empty DAG. *)

val makespan : t -> weight:(int -> float) -> workers:int -> float
(** Greedy list-scheduling makespan over [workers] lanes, with [weight]
    giving each node's cost in milliseconds. *)
