(* Durable acknowledged ingest: store-backed history, intent journal,
   idempotency keys and group-commit fsync. See durable.mli for the
   contract and the crash-window analysis. *)

module Fault = Uv_fault.Fault
module Log_store = Uv_db.Log_store
module Engine = Uv_db.Engine
module Log = Uv_db.Log
module Log_io = Uv_db.Log_io

type config = {
  sync_every : int;
  sync_ms : float;
  fsync : bool;
  fault : Fault.t;
}

let default_config =
  { sync_every = 1; sync_ms = 0.; fsync = true; fault = Fault.disabled }

type recovery = {
  rec_records : int;
  rec_truncated : int;
  rec_keys : int;
  rec_replay_skipped : int;
  rec_salvaged : bool;
}

type ack = {
  applied : int;
  failed : int;
  history_len : int;
  duplicate : bool;
}

type stats = {
  durable_len : int;
  last_seal : int;
  pending_batches : int;
  keys : int;
  flushes : int;
  poisoned : bool;
}

type t = {
  cfg : config;
  dir : string;
  store : Log_store.t;
  eng : Engine.t;
  journal_path : string;
  mutable journal_fd : Unix.file_descr option;
  key_acks : (string, ack) Hashtbl.t;
  mutable exec : (Uv_sql.Ast.stmt list -> int * int) option;
  m : Mutex.t;
  cond : Condition.t;
  mutable pending : int;  (** batches appended but not yet flushed *)
  mutable pending_since : float;  (** when the oldest pending batch arrived *)
  mutable durable_upto : int;  (** store length covered by the last flush *)
  mutable flushes : int;
  mutable failed : exn option;  (** a crash site fired: handle is poisoned *)
  mutable closing : bool;
  mutable closed : bool;
  mutable syncer : unit Domain.t option;
  mutable recovery : recovery;
}

(* ------------------------------------------------------------------ *)
(* Intent journal (UVJNLv1).

   <dir>/INGEST is a line-oriented append-only file:

     UVJNLv1
     B <len> # <crc32>
     I <hex key|-> <start> <applied> <failed> # <crc32>

   [B] sets the coverage baseline (store length known durable when the
   line was written); [I] records one ingest batch's idempotency key
   (hex-encoded; "-" when the client sent none) and exact global-index
   range: the batch appended [applied] records starting at [start].
   Each line's CRC-32 covers the text before " # ", so a torn tail is
   detected and dropped like a torn ULOGv2 record. The journal is
   compacted on attach (baseline + surviving intents). *)

let journal_header = "UVJNLv1"

let hex_of_string s =
  let b = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    match
      String.init (n / 2) (fun i ->
          Char.chr (int_of_string ("0x" ^ String.sub s (i * 2) 2)))
    with
    | decoded -> Some decoded
    | exception _ -> None

let seal_line body = body ^ " # " ^ Uv_util.Crc32.to_hex (Uv_util.Crc32.digest body)

let unseal_line line =
  match String.rindex_opt line '#' with
  | Some i
    when i >= 1
         && line.[i - 1] = ' '
         && String.length line = i + 10
         && line.[i + 1] = ' ' -> (
      let body = String.sub line 0 (i - 1) in
      let hex = String.sub line (i + 2) 8 in
      match Uv_util.Crc32.of_hex hex with
      | Some crc when crc = Uv_util.Crc32.digest body -> Some body
      | _ -> None)
  | _ -> None

type intent = {
  in_key : string option;
  in_start : int;  (** first global index the batch appended *)
  in_applied : int;
  in_failed : int;
}

let intent_line it =
  let key = match it.in_key with None -> "-" | Some k -> hex_of_string k in
  seal_line
    (Printf.sprintf "I %s %d %d %d" key it.in_start it.in_applied it.in_failed)

let baseline_line len = seal_line (Printf.sprintf "B %d" len)

(* Longest valid prefix of the journal: (baseline, intents, torn?).
   Stops at the first malformed or checksum-failing line — entries past
   a hole cannot be trusted to be in append order. *)
let parse_journal text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | header :: rest when String.equal header journal_header ->
      let baseline = ref 0 and intents = ref [] and torn = ref false in
      let parse_line line =
        match unseal_line line with
        | None -> false
        | Some body -> (
            match String.split_on_char ' ' body with
            | [ "B"; len ] -> (
                match int_of_string_opt len with
                | Some n when n >= 0 ->
                    baseline := max !baseline n;
                    true
                | _ -> false)
            | [ "I"; key; start; applied; failed ] -> (
                match
                  ( (if String.equal key "-" then Some None
                     else Option.map Option.some (string_of_hex key)),
                    int_of_string_opt start,
                    int_of_string_opt applied,
                    int_of_string_opt failed )
                with
                | Some k, Some s, Some a, Some f when s >= 1 && a >= 0 && f >= 0
                  ->
                    intents :=
                      { in_key = k; in_start = s; in_applied = a; in_failed = f }
                      :: !intents;
                    true
                | _ -> false)
            | _ -> false)
      in
      let rec go = function
        | [] -> ()
        | [ "" ] -> ()  (* trailing newline *)
        | line :: rest ->
            if parse_line line then go rest
            else torn := true  (* stop at the first bad line *)
      in
      go rest;
      (!baseline, List.rev !intents, !torn)
  | [ "" ] | [] -> (0, [], false)
  | _ -> (0, [], true)

(* ------------------------------------------------------------------ *)
(* Journal I/O on the live handle. *)

let journal_open t =
  let fd =
    Unix.openfile t.journal_path Unix.[ O_WRONLY; O_APPEND; O_CREAT ] 0o644
  in
  t.journal_fd <- Some fd

let journal_append t line =
  match t.journal_fd with
  | None -> ()
  | Some fd ->
      let bytes = Bytes.of_string (line ^ "\n") in
      let n = Bytes.length bytes in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write fd bytes !written (n - !written)
      done

let journal_fsync t =
  match t.journal_fd with
  | Some fd when t.cfg.fsync -> Unix.fsync fd
  | _ -> ()

(* Rewrite the journal to baseline + surviving intents (atomic). *)
let journal_compact ~fsync path ~baseline intents =
  let b = Buffer.create 256 in
  Buffer.add_string b journal_header;
  Buffer.add_char b '\n';
  Buffer.add_string b (baseline_line baseline);
  Buffer.add_char b '\n';
  List.iter
    (fun it ->
      Buffer.add_string b (intent_line it);
      Buffer.add_char b '\n')
    intents;
  Uv_util.Safe_io.atomic_write ~fsync ~path (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Attach: salvage + truncate-to-coverage + replay. *)

let attach ?(config = default_config) ~dir eng =
  let config = { config with sync_every = max 1 config.sync_every } in
  (* a first boot points at a directory that does not exist yet:
     create it, as [Log_store.open_] would *)
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let store, sr =
    Log_store.open_salvage ~fault:config.fault ~fsync:config.fsync dir
  in
  let durable_len = Log_store.length store in
  let journal_path = Filename.concat dir "INGEST" in
  let journal_text =
    if Sys.file_exists journal_path then Uv_util.Safe_io.read_file journal_path
    else ""
  in
  let baseline, intents, torn = parse_journal journal_text in
  (* Coverage = acknowledged prefix. Walk intents in append order; an
     intent whose range is fully inside the salvaged store extends
     coverage, the first one that is not marks the crash frontier —
     it and everything after it were never acknowledged. *)
  let covered = ref (min baseline durable_len) in
  let kept = ref [] in
  (try
     List.iter
       (fun it ->
         let finish = it.in_start + it.in_applied - 1 in
         if it.in_start > !covered + 1 then raise Exit  (* gap: distrust *)
         else if finish <= durable_len then begin
           covered := max !covered finish;
           kept := it :: !kept
         end
         else raise Exit)
       intents
   with Exit -> ());
  let kept = List.rev !kept in
  let truncated = durable_len - !covered in
  if truncated > 0 then begin
    Log_store.truncate store !covered;
    Log_store.sync store
  end;
  let skipped = Log_store.replay store eng in
  journal_compact ~fsync:config.fsync journal_path ~baseline:!covered kept;
  let key_acks = Hashtbl.create 16 in
  List.iter
    (fun it ->
      match it.in_key with
      | None -> ()
      | Some k ->
          Hashtbl.replace key_acks k
            {
              applied = it.in_applied;
              failed = it.in_failed;
              history_len = it.in_start + it.in_applied - 1;
              duplicate = true;
            })
    kept;
  let t =
    {
      cfg = config;
      dir;
      store;
      eng;
      journal_path;
      journal_fd = None;
      key_acks;
      exec = None;
      m = Mutex.create ();
      cond = Condition.create ();
      pending = 0;
      pending_since = 0.;
      durable_upto = !covered;
      flushes = 0;
      failed = None;
      closing = false;
      closed = false;
      syncer = None;
      recovery =
        {
          rec_records = !covered;
          rec_truncated = max 0 truncated;
          rec_keys = Hashtbl.length key_acks;
          rec_replay_skipped = List.length skipped;
          rec_salvaged =
            torn || truncated > 0 || sr.Log_store.sr_manifest_rebuilt
            || sr.Log_store.sr_cut_segment <> None;
        };
    }
  in
  journal_open t;
  (t, t.recovery)

let seed t =
  let len = Log.length (Engine.log t.eng) in
  if Log_store.length t.store <> 0 then
    invalid_arg "Durable.seed: store is not empty";
  Log_store.append_log t.store (Engine.log t.eng);
  Log_store.sync t.store;
  journal_append t (baseline_line len);
  journal_fsync t;
  t.durable_upto <- len

(* ------------------------------------------------------------------ *)
(* Group commit. *)

let poison t exn =
  t.failed <- Some exn;
  Condition.broadcast t.cond

let check_live t =
  if t.closed then invalid_arg "Durable: closed";
  match t.failed with Some e -> raise e | None -> ()

(* Runs with [t.m] held. Journal first, then the store: an intent made
   durable before its records can be truncated back out on recovery;
   records durable before their intent are beyond coverage and equally
   truncated — either order is safe, journal-first loses less. *)
let flush_locked t =
  if t.pending > 0 then begin
    (try
       journal_fsync t;
       (match
          Fault.check ~key:(Log_store.length t.store) t.cfg.fault
            Fault.Site.serve_ingest_sync [ Fault.Stmt_fail ]
        with
       | Some inj -> raise (Fault.Injected inj)
       | None -> ());
       Log_store.sync t.store
     with e ->
       poison t e;
       raise e);
    t.durable_upto <- Log_store.length t.store;
    t.pending <- 0;
    t.flushes <- t.flushes + 1;
    Condition.broadcast t.cond
  end

let windowed cfg = cfg.sync_every > 1 || cfg.sync_ms > 0.

let syncer_loop t =
  let tick = max 0.0005 (t.cfg.sync_ms /. 4000.) in
  let rec loop () =
    Mutex.lock t.m;
    let stop = (t.closing && t.pending = 0) || t.failed <> None in
    if stop then Mutex.unlock t.m
    else begin
      (if t.pending > 0 then
         let age_ms = (Unix.gettimeofday () -. t.pending_since) *. 1000. in
         if t.closing || age_ms >= t.cfg.sync_ms then
           try flush_locked t with _ -> ());
      Mutex.unlock t.m;
      Unix.sleepf tick;
      loop ()
    end
  in
  loop ()

let start ~ingest t =
  Mutex.lock t.m;
  if t.exec <> None then begin
    Mutex.unlock t.m;
    invalid_arg "Durable.start: already started"
  end;
  t.exec <- Some ingest;
  if windowed t.cfg then t.syncer <- Some (Domain.spawn (fun () -> syncer_loop t));
  Mutex.unlock t.m

let record_of_entry (e : Log.entry) =
  { Log_io.r_sql = e.sql; r_nondet = e.nondet; r_app_txn = e.app_txn }

let ingest ?key t stmts =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      check_live t;
      if t.closing then invalid_arg "Durable.ingest: closing";
      match Option.bind key (Hashtbl.find_opt t.key_acks) with
      | Some ack -> ack  (* already durable: nothing re-executes *)
      | None ->
          let exec =
            match t.exec with
            | Some f -> f
            | None -> invalid_arg "Durable.ingest: not started"
          in
          let n0 = Log_store.length t.store in
          let applied, failed = exec stmts in
          (* The service has applied the batch in memory; from here on,
             a fired crash site poisons the handle — the in-memory
             engine is ahead of disk, exactly like a killed daemon. *)
          (match
             Fault.check ~key:(n0 + 1) t.cfg.fault
               Fault.Site.serve_ingest_append [ Fault.Stmt_fail ]
           with
          | Some inj ->
              let e = Fault.Injected inj in
              poison t e;
              raise e
          | None -> ());
          let log = Engine.log t.eng in
          let n1 = Log.length log in
          (try
             for i = n0 + 1 to n1 do
               Log_store.append t.store (record_of_entry (Log.entry log i))
             done;
             journal_append t
               (intent_line
                  {
                    in_key = key;
                    in_start = n0 + 1;
                    in_applied = applied;
                    in_failed = failed;
                  })
           with e ->
             poison t e;
             raise e);
          if t.pending = 0 then t.pending_since <- Unix.gettimeofday ();
          t.pending <- t.pending + 1;
          if (not (windowed t.cfg)) || t.pending >= t.cfg.sync_every then
            flush_locked t
          else
            while t.durable_upto < n1 && t.failed = None do
              Condition.wait t.cond t.m
            done;
          check_live t;
          (match
             Fault.check ~key:(n0 + 1) t.cfg.fault Fault.Site.serve_ack
               [ Fault.Stmt_fail ]
           with
          | Some inj ->
              let e = Fault.Injected inj in
              poison t e;
              raise e
          | None -> ());
          let ack = { applied; failed; history_len = n1; duplicate = false } in
          (match key with
          | Some k -> Hashtbl.replace t.key_acks k { ack with duplicate = true }
          | None -> ());
          ack)

let stats t =
  Mutex.lock t.m;
  let last_seal =
    match List.rev (Log_store.boundaries t.store) with x :: _ -> x | [] -> 0
  in
  let s =
    {
      durable_len = t.durable_upto;
      last_seal;
      pending_batches = t.pending;
      keys = Hashtbl.length t.key_acks;
      flushes = t.flushes;
      poisoned = t.failed <> None;
    }
  in
  Mutex.unlock t.m;
  s

let last_recovery t = t.recovery
let dir t = t.dir

let close t =
  Mutex.lock t.m;
  if t.closed then Mutex.unlock t.m
  else begin
    t.closing <- true;
    (if t.failed = None then try flush_locked t with _ -> ());
    let syncer = t.syncer in
    t.syncer <- None;
    Mutex.unlock t.m;
    (match syncer with Some d -> Domain.join d | None -> ());
    Mutex.lock t.m;
    t.closed <- true;
    (match t.journal_fd with
    | Some fd ->
        t.journal_fd <- None;
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    (if t.failed = None then
       try Log_store.close t.store with _ -> ());
    Mutex.unlock t.m
  end
