(** Durable acknowledged ingest for the serve daemon.

    The serve daemon's contract is that an acknowledged ingest batch is
    {e committed history}: it must survive a [SIGKILL] and be present,
    bit-identical, after restart — otherwise every later what-if
    answers over a history the client believes is longer than it is.
    This module is the machinery behind that contract, shared by
    [ultraverse serve] and the chaos harness:

    - a {!Uv_db.Log_store} holds the history on disk; ingested batches
      append to its live tail segment;
    - an {e intent journal} ([<dir>/INGEST], per-line CRC) records each
      batch's idempotency key and exact global-index range {e before}
      the store is synced, so recovery can tell acknowledged batches
      (fully durable, range within the salvaged prefix) from
      unacknowledged ones (range beyond it — truncated back out, even
      when a mid-batch segment seal made a prefix of the batch
      durable);
    - a {e group-commit buffer} batches fsyncs: a batch waits at most
      [sync_ms] (or until [sync_every] batches are pending) before one
      flush — journal first, then store — makes every waiter durable at
      once. The acknowledgment is not sent until the flush covering the
      batch completes: the daemon never lies to a client;
    - {e idempotency keys}: a client that lost its connection before
      the ack re-sends the batch with the same key; if the original
      made it to disk the recorded ack is returned verbatim and nothing
      re-executes.

    {2 Crash windows}

    With the order [exec → journal intent (fsync) → store sync → ack],
    every window is covered:

    + crash before the intent is durable: any records a mid-batch
      segment seal pushed to disk lie beyond the journal's coverage —
      recovery truncates to the last covered index;
    + crash after the intent, before (or during) the store sync: the
      intent's range exceeds the salvaged store length — recovery drops
      the intent and truncates to its start − 1;
    + crash after the sync, before the ack frame: batch and intent are
      durable; the client re-sends under its key and receives the
      recorded ack ([duplicate = true]) without re-execution.

    Fault sites [serve.ingest.append], [serve.ingest.sync] and
    [serve.ack] ({!Uv_fault.Fault.Site}) mark exactly these windows for
    the chaos harness. *)

type t

type config = {
  sync_every : int;
      (** flush when this many batches are pending (clamped to ≥ 1);
          [1] with [sync_ms = 0.] syncs inline on the ingesting domain *)
  sync_ms : float;
      (** longest a batch waits for companions before the flush runs
          anyway; [0.] disables the window (every batch syncs inline) *)
  fsync : bool;  (** [false] only in tests, to stay fast on slow disks *)
  fault : Uv_fault.Fault.t;
}

val default_config : config
(** [sync_every = 1], [sync_ms = 0.], [fsync = true], faults off:
    maximum durability, one fsync pair per batch. *)

(** What {!attach} found and did on startup. *)
type recovery = {
  rec_records : int;  (** records served after salvage and truncation *)
  rec_truncated : int;
      (** records cut back out as unacknowledged (beyond journal
          coverage, or a partially-durable batch) *)
  rec_keys : int;  (** idempotency keys restored for deduplication *)
  rec_replay_skipped : int;
      (** records the engine replay skipped on SQL errors (0 on a
          faithful history) *)
  rec_salvaged : bool;
      (** the store or journal needed salvage (trimmed segment, rebuilt
          manifest, or torn journal tail) — surface on [health] as
          degraded *)
}

val attach :
  ?config:config -> dir:string -> Uv_db.Engine.t -> t * recovery
(** Open (or create) the store directory, salvage it, cut every
    unacknowledged batch back out (see the crash-window list above),
    replay the surviving history into [eng] — which must be freshly
    created — and compact the intent journal. The engine afterwards
    holds exactly the acknowledged history; build the
    {!Whatif.Service} over it and call {!start}. *)

val seed : t -> unit
(** One-time initial load: append the attached engine's current log (a
    history loaded from a script) to the empty store, set the journal
    baseline, and sync. @raise Invalid_argument when the store is not
    empty. *)

val start : ingest:(Uv_sql.Ast.stmt list -> int * int) -> t -> unit
(** Bind the execution path — [Whatif.Service.ingest] partially applied
    to the service — and, when the config has a group-commit window,
    spawn the syncer domain. Must be called once before {!ingest}. *)

(** One acknowledged batch. *)
type ack = {
  applied : int;
  failed : int;
  history_len : int;  (** committed history length after the batch *)
  duplicate : bool;
      (** the idempotency key matched an already-durable batch; nothing
          re-executed and the original ack is returned *)
}

val ingest : ?key:string -> t -> Uv_sql.Ast.stmt list -> ack
(** Execute the batch through the bound ingest path, journal its
    intent, append its records to the store's live segment, and block
    until the group-commit flush covering it completes. When the
    returned ack is in the caller's hands the batch is durable —
    acknowledge the client only after this returns. Thread-safe; calls
    from different connections batch into shared flushes. *)

(** Supervision counters for the [health] endpoint. *)
type stats = {
  durable_len : int;  (** records covered by the last completed flush *)
  last_seal : int;  (** last global index inside a sealed (full) segment *)
  pending_batches : int;  (** batches waiting on the group-commit flush *)
  keys : int;  (** idempotency keys held for deduplication *)
  flushes : int;  (** group-commit flushes completed *)
  poisoned : bool;
      (** a crash site fired or a flush failed: the handle refuses
          further ingest and the daemon should report itself degraded *)
}

val stats : t -> stats
val last_recovery : t -> recovery
(** The report {!attach} returned, kept for supervision. *)

val dir : t -> string

val close : t -> unit
(** Final flush, stop the syncer domain, close the store and journal.
    Idempotent. *)
